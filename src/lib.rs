//! # lcf-switch — Least Choice First switch scheduling
//!
//! A from-scratch Rust reproduction of *"The Least Choice First Scheduling
//! Method for High-Speed Network Switches"* (Gura & Eberle, IPPS 2002).
//!
//! This meta-crate re-exports the five workspace crates:
//!
//! * [`core`] ([`lcf_core`]) — the schedulers: central and distributed LCF,
//!   PIM, iSLIP, wavefront, FIFO round-robin, and a Hopcroft–Karp
//!   maximum-size reference matcher.
//! * [`sim`] ([`lcf_sim`]) — the slot-based switch simulator (VOQ
//!   input-queued, single-FIFO input-queued and output-buffered models,
//!   traffic generators, statistics, parallel sweep runner).
//! * [`clint`] ([`lcf_clint`]) — the Clint cluster-interconnect model
//!   (bulk/quick channels, config/grant packet codecs with CRC-16,
//!   precalculated multicast schedules, 3-stage bulk pipeline).
//! * [`fabric`] ([`lcf_fabric`]) — non-blocking fabrics: crosspoint-level
//!   crossbar and 3-stage Clos networks with an edge-coloring router.
//! * [`hw`] ([`lcf_hw`]) — hardware models: gate counts, cycle timing,
//!   communication bits, and a cycle-accurate RTL model of the Fig. 6
//!   scheduler verified against the behavioral implementation.
//!
//! ## Quickstart
//!
//! ```
//! use lcf_switch::prelude::*;
//!
//! // Schedule one slot of a 4-port switch by hand...
//! let requests = RequestMatrix::from_pairs(4, [(0, 1), (1, 1), (2, 0)]);
//! let mut lcf = CentralLcf::with_round_robin(4);
//! let matching = lcf.schedule(&requests);
//! assert!(matching.is_valid_for(&requests));
//!
//! // ...or simulate the paper's 16-port switch at 80% load.
//! let cfg = SimConfig {
//!     load: 0.8,
//!     warmup_slots: 1_000,
//!     measure_slots: 5_000,
//!     ..SimConfig::paper_default()
//! };
//! let report = run_sim(&cfg);
//! assert!(report.throughput > 0.75);
//! ```
//!
//! See `examples/` for runnable scenarios and the `lcf-bench` crate for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lcf_clint as clint;
pub use lcf_core as core;
pub use lcf_fabric as fabric;
pub use lcf_hw as hw;
pub use lcf_sim as sim;

/// One-stop re-exports for applications.
pub mod prelude {
    pub use lcf_clint::prelude::*;
    pub use lcf_core::prelude::*;
    pub use lcf_fabric::prelude::*;
    pub use lcf_sim::config::TrafficKind;
    pub use lcf_sim::prelude::*;
}
