//! End-to-end Clint integration: both channels, wire-format control
//! packets, error injection — through the public API only.

use lcf_switch::prelude::*;

#[test]
fn clint_cluster_carries_mixed_traffic() {
    let report = ClintSim::new(ClintConfig {
        n: 16,
        bulk_load: 0.5,
        quick_load: 0.2,
        cfg_error_rate: 0.0,
        gnt_error_rate: 0.0,
        slots: 20_000,
        seed: 7,
    })
    .run();

    // Bulk: scheduled, collision-free, pipeline latency >= 1 slot.
    assert!(report.bulk_delivered > 0);
    assert!(report.bulk_mean_latency >= 1.0);
    // Quick: immediate at this load, some collisions are fine.
    assert!(report.quick_delivered > 0);
    assert!(report.quick_mean_latency < report.bulk_mean_latency);
    // Request-acknowledgment protocol: every bulk transfer is acked.
    assert!(report.acks_received as f64 >= report.bulk_delivered as f64 * 0.999);
}

#[test]
fn clint_survives_noisy_control_plane() {
    let clean = ClintSim::new(ClintConfig {
        n: 16,
        bulk_load: 0.6,
        quick_load: 0.0,
        cfg_error_rate: 0.0,
        gnt_error_rate: 0.0,
        slots: 20_000,
        seed: 11,
    })
    .run();
    let noisy = ClintSim::new(ClintConfig {
        n: 16,
        bulk_load: 0.6,
        quick_load: 0.0,
        cfg_error_rate: 0.1,
        gnt_error_rate: 0.0,
        slots: 20_000,
        seed: 11,
    })
    .run();

    assert!(
        noisy.cfg_crc_errors > 1_000,
        "10% corruption over 320k packets"
    );
    // Corruption slows the bulk channel but never breaks it.
    assert!(noisy.bulk_mean_latency > clean.bulk_mean_latency);
    assert!(noisy.bulk_delivered as f64 > clean.bulk_delivered as f64 * 0.8);
}

#[test]
fn segregation_tradeoff_is_visible() {
    // The architectural claim of Sec. 4: bulk pays scheduling latency but
    // sustains high load; quick is fast when idle but collapses under load.
    let idle_quick = ClintSim::new(ClintConfig {
        n: 16,
        bulk_load: 0.0,
        quick_load: 0.05,
        slots: 20_000,
        ..Default::default()
    })
    .run();
    assert!(
        idle_quick.quick_mean_latency < 0.2,
        "idle quick channel is immediate"
    );

    let busy_quick = ClintSim::new(ClintConfig {
        n: 16,
        bulk_load: 0.0,
        quick_load: 0.9,
        slots: 20_000,
        ..Default::default()
    })
    .run();
    let collision_rate = busy_quick.quick_collisions as f64
        / (busy_quick.quick_collisions + busy_quick.quick_delivered) as f64;
    assert!(collision_rate > 0.2, "busy quick channel collides heavily");

    let busy_bulk = ClintSim::new(ClintConfig {
        n: 16,
        bulk_load: 0.9,
        quick_load: 0.0,
        slots: 20_000,
        ..Default::default()
    })
    .run();
    // Scheduled channel: high goodput, zero collisions by construction.
    assert!(busy_bulk.bulk_delivered as f64 > busy_bulk.bulk_generated as f64 * 0.9);
}

#[test]
fn packet_codecs_are_the_wire_contract() {
    // Every field of both packet formats survives an encode/decode trip.
    let cfg = ConfigPacket {
        req: 0xA5A5,
        pre: 0x0F0F,
        ben: 0xFFFF,
        qen: 0x7FFF,
    };
    assert_eq!(ConfigPacket::decode(&cfg.encode()), Ok(cfg));

    let gnt = GrantPacket {
        node_id: 15,
        gnt: 9,
        gnt_val: true,
        link_err: true,
        crc_err: false,
    };
    assert_eq!(GrantPacket::decode(&gnt.encode()), Ok(gnt));

    // And corruption anywhere is caught (the CRC contract).
    let wire = cfg.encode();
    for i in 0..wire.len() {
        let mut bad = wire.clone();
        bad[i] ^= 0x01;
        assert!(
            ConfigPacket::decode(&bad).is_err(),
            "flip at byte {i} undetected"
        );
    }
}
