//! Cross-crate integration tests pinning every worked example and analytic
//! number in the paper (see DESIGN.md's experiment index).

use lcf_switch::prelude::*;

/// Fig. 3 — the central LCF walkthrough, end to end through the public API.
#[test]
fn figure3_central_schedule() {
    let requests = RequestMatrix::from_pairs(
        4,
        [
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 2),
            (1, 3),
            (2, 0),
            (2, 2),
            (2, 3),
            (3, 1),
        ],
    );
    let mut sched = CentralLcf::with_round_robin(4);
    sched.advance_pointer(); // Fig. 3 shows the I=1, J=0 diagonal
    let m = sched.schedule(&requests);
    assert_eq!(
        m.pairs().collect::<Vec<_>>(),
        vec![(0, 2), (1, 0), (2, 3), (3, 1)],
        "grants must be [I1,T0], [I3,T1], [I0,T2], [I2,T3]"
    );
}

/// Fig. 9 — two iterations of the distributed scheduler.
#[test]
fn figure9_distributed_schedule() {
    let requests = RequestMatrix::from_pairs(
        4,
        [
            (0, 2),
            (1, 0),
            (1, 2),
            (1, 3),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 3),
        ],
    );
    let mut sched = DistributedLcf::pure(4, 2);
    let m = sched.schedule(&requests);
    assert_eq!(
        m.size(),
        4,
        "Fig. 9 completes the matching in two iterations"
    );
    assert_eq!(
        m.output_for(0),
        Some(2),
        "T2 grants I0 (one request, highest priority)"
    );
    assert_eq!(
        m.output_for(3),
        Some(1),
        "I3 accepts T1 over T3 (lower NGT)"
    );
}

/// Table 1 — gate/register counts at n = 16.
#[test]
fn table1_numbers() {
    let m = lcf_switch::hw::gates::GateModel::new(16);
    assert_eq!(m.distributed().gates, 7200);
    assert_eq!(m.distributed().regs, 1376);
    assert_eq!(m.central().gates, 767);
    assert_eq!(m.central().regs, 216);
    assert_eq!(m.total().gates, 7967);
    assert_eq!(m.total().regs, 1592);
}

/// Table 2 — cycle counts and times at 66 MHz.
#[test]
fn table2_numbers() {
    let t = lcf_switch::hw::timing::TimingModel::paper(16);
    let rows = t.table2();
    assert_eq!(
        rows.iter().map(|r| r.cycles).collect::<Vec<_>>(),
        vec![33, 50, 83]
    );
    for (row, expect_ns) in rows.iter().zip([500.0, 757.6, 1257.6]) {
        assert!(
            (row.time_ns - expect_ns).abs() < 1.0,
            "{}: {}",
            row.task,
            row.time_ns
        );
    }
}

/// Fig. 10 — communication formulas.
#[test]
fn figure10_formulas() {
    use lcf_switch::hw::comm;
    assert_eq!(comm::central_bits(16), 16 * (16 + 4 + 1));
    assert_eq!(comm::distributed_bits(16, 4), 4 * 256 * 11);
    assert!(comm::overhead_ratio(16, 4) > 30.0);
}

/// Fig. 5 — the Clint bulk pipeline timing, via the packet codecs (the
/// config packets travel in their wire format).
#[test]
fn figure5_pipeline_with_wire_packets() {
    use lcf_switch::clint::pipeline::BulkPipeline;

    let mut pipe = BulkPipeline::new(2);
    let cfg0 = ConfigPacket {
        req: 0b10,
        ben: 0xFFFF,
        qen: 0xFFFF,
        ..Default::default()
    };
    let cfg1 = ConfigPacket {
        req: 0b01,
        ben: 0xFFFF,
        qen: 0xFFFF,
        ..Default::default()
    };
    // Encode to the wire and decode on the switch side, as Clint does.
    let decode = |p: &ConfigPacket| ConfigPacket::decode(&p.encode()).ok();
    let configs = [decode(&cfg0), decode(&cfg1)];

    let c = pipe.step(&configs);
    assert!(c.grants.iter().all(|g| g.gnt_val && !g.crc_err));
    let c1 = pipe.step(&[None, None]);
    assert_eq!(c1.transfers, vec![(0, 1), (1, 0)]);
    let c2 = pipe.step(&[None, None]);
    assert_eq!(c2.acks, vec![(0, 1), (1, 0)]);
}

/// Fig. 7 — precalculated multicast checked end to end.
#[test]
fn figure7_precalculated_multicast() {
    let precalc = PrecalcSchedule::from_claims(4, [(3, 1), (3, 3)]);
    let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1), (2, 2), (2, 3)]);
    let mut sched = lcf_switch::clint::precalc::ClintScheduler::new(4);
    let slot = sched.schedule(&requests, &precalc);
    assert!(slot.precalc.is_multicast(3));
    assert_eq!(slot.precalc.targets_of(3), vec![1, 3]);
    // LCF fills T0 and T2 around the reservation.
    assert!(slot.lcf.input_for(0).is_some());
    assert!(slot.lcf.input_for(2).is_some());
    assert_eq!(slot.dropped_claims, 0);
}

/// Sec. 1 — the Clint deployment numbers: a 16-port switch rescheduled
/// every 8.5 µs with 1.3 µs scheduling time.
#[test]
fn clint_deployment_timing() {
    let t = lcf_switch::hw::timing::TimingModel::paper(16);
    let schedule_us = t.cycles_to_ns(t.total_cycles()) / 1000.0;
    assert!(schedule_us < 1.3);
    // The scheduler is pipelined with forwarding, so the 8.5 µs slot has
    // ample room for the 1.26 µs schedule computation.
    assert!(schedule_us < 8.5 / 2.0);
}
