//! The headline result, as a fast integration test: the latency ordering of
//! Fig. 12 must hold. Uses shorter windows than the fig12 binary but the
//! same model; the assertions are on orderings (robust), not point values.

use lcf_switch::prelude::*;

fn latency(model: ModelKind, load: f64) -> f64 {
    let cfg = SimConfig {
        model,
        load,
        warmup_slots: 10_000,
        measure_slots: 40_000,
        ..SimConfig::paper_default()
    };
    run_sim(&cfg).mean_latency()
}

fn sweep_latencies(load: f64) -> std::collections::HashMap<String, f64> {
    let configs: Vec<SimConfig> = ModelKind::figure12_lineup()
        .into_iter()
        .map(|model| SimConfig {
            model,
            load,
            warmup_slots: 10_000,
            measure_slots: 40_000,
            ..SimConfig::paper_default()
        })
        .collect();
    sweep(&configs)
        .into_iter()
        .map(|r| (r.model.clone(), r.mean_latency()))
        .collect()
}

/// At high load (0.9): outbuf < lcf_central < {distributed LCF family} <=
/// pim-ish pack << fifo. These are the orderings Sec. 6.3 calls out.
#[test]
fn figure12_high_load_ordering() {
    let lat = sweep_latencies(0.9);
    let get = |m: &str| lat[m];

    // outbuf is the lower envelope.
    for model in [
        "lcf_central",
        "lcf_central_rr",
        "lcf_dist",
        "lcf_dist_rr",
        "pim",
        "islip",
        "wfront",
        "fifo",
    ] {
        assert!(
            get("outbuf") < get(model),
            "outbuf ({}) must beat {model} ({})",
            get("outbuf"),
            get(model)
        );
    }

    // lcf_central performs significantly better than any other scheduler.
    for model in ["lcf_dist", "lcf_dist_rr", "pim", "islip", "wfront", "fifo"] {
        assert!(
            get("lcf_central") < get(model),
            "lcf_central ({}) must beat {model} ({})",
            get("lcf_central"),
            get(model)
        );
    }

    // The distributed LCF schedulers beat PIM at 0.9 (Sec. 6.3: lcf_dist
    // has lower latency than pim up to 0.9).
    assert!(get("lcf_dist") < get("pim"));

    // fifo is the worst by a wide margin (head-of-line blocking).
    for model in [
        "lcf_central",
        "lcf_dist",
        "pim",
        "islip",
        "wfront",
        "outbuf",
    ] {
        assert!(get("fifo") > 5.0 * get(model), "fifo must collapse at 0.9");
    }
}

/// "For low load, the latencies for the various schedulers differ very
/// little" (Sec. 6.3).
#[test]
fn figure12_low_load_convergence() {
    let lat = sweep_latencies(0.2);
    let voq_models = [
        "lcf_central",
        "lcf_central_rr",
        "lcf_dist",
        "lcf_dist_rr",
        "pim",
        "islip",
        "wfront",
    ];
    let min = voq_models
        .iter()
        .map(|&m| lat[m])
        .fold(f64::INFINITY, f64::min);
    let max = voq_models.iter().map(|&m| lat[m]).fold(0.0, f64::max);
    assert!(
        max - min < 0.2,
        "VOQ schedulers must be near-identical at low load (min {min}, max {max})"
    );
}

/// lcf_central sits around 1.4x outbuf at high load (Sec. 6.3 reads "about
/// 1.4 times"); allow a generous band since windows are short.
#[test]
fn figure12_lcf_central_ratio() {
    let ob = latency(ModelKind::OutputBuffered, 0.9);
    let lcf = latency(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.9);
    let ratio = lcf / ob;
    assert!(
        (1.1..1.9).contains(&ratio),
        "lcf_central/outbuf ratio {ratio} out of the paper's band"
    );
}

/// The round-robin crossover: lcf_central_rr is slightly worse than
/// lcf_central up to ~0.9 but better beyond (Sec. 6.3 highlights the trend
/// change above 0.9).
#[test]
fn figure12_round_robin_crossover() {
    let below = sweep_latencies(0.8);
    assert!(
        below["lcf_central_rr"] >= below["lcf_central"] * 0.95,
        "below the crossover the RR variant should not win decisively"
    );
    let above = sweep_latencies(0.97);
    assert!(
        above["lcf_central_rr"] < above["lcf_central"],
        "beyond load 0.9 the RR variant must take the lead ({} vs {})",
        above["lcf_central_rr"],
        above["lcf_central"]
    );
}

/// fifo saturates near the Karol 0.586 ceiling while VOQ schedulers carry
/// full offered load.
#[test]
fn fifo_throughput_ceiling() {
    let mk = |model| SimConfig {
        model,
        load: 1.0,
        warmup_slots: 10_000,
        measure_slots: 40_000,
        ..SimConfig::paper_default()
    };
    let fifo = run_sim(&mk(ModelKind::Scheduler(SchedulerKind::Fifo)));
    assert!(
        (0.55..0.65).contains(&fifo.throughput),
        "fifo throughput {} should sit at the HOL ceiling",
        fifo.throughput
    );
    let lcf = run_sim(&mk(ModelKind::Scheduler(SchedulerKind::LcfCentralRr)));
    assert!(
        lcf.throughput > 0.95,
        "VOQ LCF throughput {}",
        lcf.throughput
    );
}
