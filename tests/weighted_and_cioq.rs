//! Integration tests for the extension subsystems: weighted schedulers in
//! the full switch model, and the CIOQ speedup/pipelining switch.

use lcf_switch::prelude::*;
use lcf_switch::sim::stats::SimStats;
use lcf_switch::sim::switch::WeightSource;
use lcf_switch::sim::traffic::Bernoulli;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive_iq(mut sw: IqSwitch, load: f64, slots: u64, seed: u64) -> (SimStats, IqSwitch) {
    let n = sw.n();
    let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    (stats, sw)
}

#[test]
fn lqf_switch_sustains_high_uniform_load() {
    let n = 16;
    let sw = IqSwitch::new_weighted(
        n,
        Box::new(GreedyWeight::new(n, "lqf")),
        WeightSource::QueueLength,
        256,
        1000,
    );
    let (stats, sw) = drive_iq(sw, 0.95, 20_000, 3);
    let throughput = stats.delivered as f64 / (20_000.0 * n as f64);
    assert!(throughput > 0.9, "LQF throughput {throughput}");
    let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
    assert_eq!(stats.generated, accounted);
}

#[test]
fn ocf_bounds_the_tail_better_than_pure_lcf() {
    let n = 16;
    let slots = 60_000;
    let ocf = IqSwitch::new_weighted(
        n,
        Box::new(GreedyWeight::new(n, "ocf")),
        WeightSource::HolAge,
        256,
        1000,
    );
    let (ocf_stats, _) = drive_iq(ocf, 0.95, slots, 4);
    let lcf = IqSwitch::new(
        n,
        SchedulerKind::LcfCentral.build(n, 4, 4),
        lcf_switch::sim::switch::QueueMode::Voq { cap: 256 },
        1000,
    );
    let (lcf_stats, _) = drive_iq(lcf, 0.95, slots, 4);
    // Oldest-cell-first is tail-optimal by construction; LCF wins the mean.
    assert!(
        ocf_stats.latency_quantile(0.999) < lcf_stats.latency_quantile(0.999),
        "OCF p99.9 {} vs LCF p99.9 {}",
        ocf_stats.latency_quantile(0.999),
        lcf_stats.latency_quantile(0.999)
    );
    assert!(
        lcf_stats.mean_latency() < ocf_stats.mean_latency(),
        "LCF mean {} vs OCF mean {}",
        lcf_stats.mean_latency(),
        ocf_stats.mean_latency()
    );
}

#[test]
fn mwm_switch_sustains_high_uniform_load() {
    let n = 16;
    let sw = IqSwitch::new_weighted(
        n,
        Box::new(MaxWeightMatcher::new(n)),
        WeightSource::QueueLength,
        256,
        1000,
    );
    let (stats, sw) = drive_iq(sw, 0.95, 20_000, 3);
    let throughput = stats.delivered as f64 / (20_000.0 * n as f64);
    assert!(throughput > 0.9, "MWM throughput {throughput}");
    let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
    assert_eq!(stats.generated, accounted);
}

#[test]
fn nwgreedy_tracks_the_reference_tier_closely() {
    let n = 16;
    let slots = 20_000;
    let greedy = IqSwitch::new_weighted(
        n,
        Box::new(NodeWeightedGreedy::new(n)),
        WeightSource::QueueLength,
        256,
        1000,
    );
    let (greedy_stats, _) = drive_iq(greedy, 0.9, slots, 11);
    let mwm = IqSwitch::new_weighted(
        n,
        Box::new(MaxWeightMatcher::new(n)),
        WeightSource::QueueLength,
        256,
        1000,
    );
    let (mwm_stats, _) = drive_iq(mwm, 0.9, slots, 11);
    let gt = greedy_stats.delivered as f64 / (slots as f64 * n as f64);
    let mt = mwm_stats.delivered as f64 / (slots as f64 * n as f64);
    assert!(gt > 0.85, "nwgreedy throughput {gt}");
    // The O(n log n) heuristic must stay within a few percent of the O(n³)
    // exact matcher on uniform traffic — the point of shipping it at all.
    assert!(
        gt > mt - 0.03,
        "nwgreedy throughput {gt} falls too far below MWM's {mt}"
    );
}

#[test]
fn weighted_runner_is_reachable_from_the_facade() {
    let mut cfg = lcf_switch::sim::config::SimConfig::paper_default();
    cfg.n = 8;
    cfg.warmup_slots = 200;
    cfg.measure_slots = 2_000;
    for kind in WeightedKind::ALL {
        let report = lcf_switch::sim::runner::run_sim_weighted(&cfg, kind);
        assert_eq!(report.model, kind.name());
        assert!(report.throughput > 0.0, "{kind}: no packets delivered");
    }
}

#[test]
fn cioq_speedup_two_emulates_output_queueing() {
    let n = 16;
    let slots = 30_000u64;
    let run_cioq = |speedup: usize| {
        let mut sw = CioqSwitch::new(
            n,
            SchedulerKind::LcfCentralRr.build(n, 4, 9),
            speedup,
            0,
            1000,
            256,
            256,
        );
        let mut traffic = Bernoulli::new(n, 0.95, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(9);
        let mut stats = SimStats::new(n, 0, 4096);
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        stats
    };
    let s1 = run_cioq(1);
    let s2 = run_cioq(2);
    assert!(
        s2.mean_latency() < s1.mean_latency() * 0.8,
        "speedup 2 must cut delay substantially ({} vs {})",
        s2.mean_latency(),
        s1.mean_latency()
    );

    // Reference: the output-buffered switch with identical arrivals.
    let mut ob = ObSwitch::new(n, 1000, 256);
    let mut traffic = Bernoulli::new(n, 0.95, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(9);
    let mut ob_stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        ob.step(slot, &mut traffic, &mut rng, &mut ob_stats);
    }
    let gap = (s2.mean_latency() - ob_stats.mean_latency()).abs();
    assert!(
        gap < 0.05,
        "speedup-2 CIOQ must sit on the outbuf curve (gap {gap})"
    );
}

#[test]
fn pipelined_scheduling_costs_exactly_its_depth() {
    let n = 8;
    let slots = 30_000u64;
    let run_depth = |depth: usize| {
        let mut sw = CioqSwitch::new(
            n,
            SchedulerKind::LcfCentralRr.build(n, 4, 5),
            1,
            depth,
            1000,
            256,
            256,
        );
        let mut traffic = Bernoulli::new(n, 0.5, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = SimStats::new(n, 0, 4096);
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        (stats.mean_latency(), sw.wasted_grants())
    };
    let (d0, w0) = run_depth(0);
    let (d3, w3) = run_depth(3);
    assert_eq!(w0, 0);
    assert_eq!(w3, 0, "in-flight accounting must prevent stale grants");
    let added = d3 - d0;
    assert!(
        (2.7..3.3).contains(&added),
        "3 pipeline stages must add ~3 slots of delay, added {added}"
    );
}
