//! End-to-end hardware/behavioral equivalence: the cycle-accurate RTL
//! model of the Fig. 6 scheduler drives the *full* switch simulation and
//! must reproduce the behavioral scheduler's results packet for packet.

use lcf_switch::hw::rtl::RtlScheduler;
use lcf_switch::prelude::*;
use lcf_switch::sim::stats::SimStats;
use lcf_switch::sim::switch::QueueMode;
use lcf_switch::sim::traffic::Bernoulli;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive(scheduler: Box<dyn Scheduler + Send>, n: usize, load: f64, slots: u64) -> SimStats {
    let mut sw = IqSwitch::new(n, scheduler, QueueMode::Voq { cap: 256 }, 1000);
    let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(0xB17);
    let mut stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    stats
}

#[test]
fn rtl_switch_equals_behavioral_switch() {
    let n = 16;
    let slots = 10_000;
    for load in [0.5, 0.9, 0.99] {
        let rtl = drive(Box::new(RtlScheduler::new(n)), n, load, slots);
        let beh = drive(Box::new(CentralLcf::with_round_robin(n)), n, load, slots);
        // Same seeds, equivalent schedulers: identical packet-level history.
        assert_eq!(rtl.generated, beh.generated, "load {load}");
        assert_eq!(rtl.delivered, beh.delivered, "load {load}");
        assert_eq!(rtl.mean_latency(), beh.mean_latency(), "load {load}");
        assert_eq!(
            rtl.latency_quantile(0.99),
            beh.latency_quantile(0.99),
            "load {load}"
        );
    }
}

#[test]
fn rtl_two_stage_sequence_equals_clint_scheduler() {
    use lcf_switch::clint::precalc::{ClintScheduler, PrecalcSchedule};
    use lcf_switch::core::bitmat::BitMatrix;
    use rand::Rng;

    let n = 8;
    let mut rtl = RtlScheduler::new(n);
    let mut clint = ClintScheduler::new(n);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for round in 0..300 {
        let requests = RequestMatrix::random(n, 0.35, &mut rng);
        let claim_bits = BitMatrix::from_fn(n, |_, _| rng.gen_bool(0.05));
        let claims: Vec<(usize, usize)> = claim_bits.ones().collect();
        let precalc = PrecalcSchedule::from_claims(n, claims);

        let (rtl_owners, rtl_matching) = rtl.schedule_with_precalc(&requests, &claim_bits);
        let slot = clint.schedule(&requests, &precalc);

        for (j, &owner) in rtl_owners.iter().enumerate() {
            assert_eq!(
                owner,
                slot.precalc.owner_of(j),
                "precalc owner of target {j} diverged in round {round}"
            );
        }
        assert_eq!(
            rtl_matching.pairs().collect::<Vec<_>>(),
            slot.lcf.pairs().collect::<Vec<_>>(),
            "LCF stage diverged in round {round}"
        );
    }
}

#[test]
fn rtl_cycle_budget_scales_with_slots() {
    let n = 8;
    let rtl = RtlScheduler::new(n);
    let slots = 500u64;
    let mut sw = IqSwitch::new(
        n,
        Box::new(RtlScheduler::new(n)),
        QueueMode::Voq { cap: 64 },
        100,
    );
    let mut traffic = Bernoulli::new(n, 0.7, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(3);
    let mut stats = SimStats::new(n, 0, 1024);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    // The standalone model's accounting: 3n+2 cycles per schedule. The
    // switch ran `slots` schedules, so the FPGA would have burned:
    let per = rtl.cycles_per_schedule();
    assert_eq!(per, (3 * n + 2) as u64);
    // At the paper's clock that is comfortably inside the slot time of the
    // real Clint (8.5 µs slots at 66 MHz = 561 cycles per slot).
    assert!(per < 561);
}
