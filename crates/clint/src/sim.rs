//! End-to-end simulation of both Clint channels (EXT-7).
//!
//! Models the segregated architecture of Fig. 4: per-host bulk VOQs feeding
//! the scheduled bulk channel through send buffers, and a per-host quick
//! queue feeding the best-effort quick channel (losers of a collision
//! retransmit). Configuration packets are encoded to their wire format and
//! can be corrupted in flight, exercising the CRC path.

use crate::packets::ConfigPacket;
use crate::pipeline::BulkPipeline;
use crate::quick::QuickChannel;
#[cfg(feature = "telemetry")]
use lcf_telemetry::{Event, MetricsRegistry, SlotClock, TraceBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Telemetry collected by a traced Clint run: per-slot bulk pipeline
/// events (schedule/transfer/acknowledge stage progress), quick-channel
/// collision events and CRC/reservation counters, all stamped from the
/// simulation's slot clock.
#[cfg(feature = "telemetry")]
#[derive(Debug, Default)]
pub struct ClintTelemetry {
    /// Event trace (ring buffer; oldest evicted when full).
    pub trace: TraceBuffer,
    /// Counters and per-slot distributions.
    pub metrics: MetricsRegistry,
    /// The time base the events are stamped from.
    pub clock: SlotClock,
}

/// Configuration of a Clint simulation.
#[derive(Clone, Debug)]
pub struct ClintConfig {
    /// Number of hosts (≤ 16).
    pub n: usize,
    /// Per-host probability of generating a bulk packet per slot.
    pub bulk_load: f64,
    /// Per-host probability of generating a quick packet per slot.
    pub quick_load: f64,
    /// Probability that a config packet is corrupted in flight (bit flip,
    /// caught by the CRC).
    pub cfg_error_rate: f64,
    /// Probability that a grant packet is corrupted in flight. A host that
    /// cannot decode its grant does not transmit; the reserved fabric slot
    /// goes idle and the packet is rescheduled from the next config.
    pub gnt_error_rate: f64,
    /// Simulated slots.
    pub slots: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClintConfig {
    fn default() -> Self {
        ClintConfig {
            n: crate::CLINT_PORTS,
            bulk_load: 0.6,
            quick_load: 0.1,
            cfg_error_rate: 0.0,
            gnt_error_rate: 0.0,
            slots: 10_000,
            seed: 0xC11A7,
        }
    }
}

/// Aggregate results of a Clint simulation.
///
/// `PartialEq` backs the telemetry contract: a traced and an untraced run
/// of the same config must produce identical reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClintReport {
    /// Bulk packets generated / delivered.
    pub bulk_generated: u64,
    /// Bulk packets delivered (transfer stage completed).
    pub bulk_delivered: u64,
    /// Mean bulk latency in slots (generation → transfer).
    pub bulk_mean_latency: f64,
    /// Quick packets generated.
    pub quick_generated: u64,
    /// Quick packets delivered.
    pub quick_delivered: u64,
    /// Collision drops on the quick channel (each triggers a retransmit).
    pub quick_collisions: u64,
    /// Mean quick latency in slots (generation → successful transmission).
    pub quick_mean_latency: f64,
    /// Config packets lost to CRC errors.
    pub cfg_crc_errors: u64,
    /// Grant packets lost to CRC errors (the host misses its grant).
    pub gnt_crc_errors: u64,
    /// Scheduled fabric slots that went idle because the grant was lost.
    pub wasted_reservations: u64,
    /// Acknowledgment packets received by initiators.
    pub acks_received: u64,
}

struct Host {
    /// Bulk VOQs: generation slots of queued packets, per target.
    voqs: Vec<VecDeque<u64>>,
    /// Send buffer: packet popped on grant, transmitted next slot.
    send_buffer: Option<(usize, u64)>,
    /// Quick queue: (destination, generation slot).
    quick: VecDeque<(usize, u64)>,
}

/// The simulation driver.
pub struct ClintSim {
    cfg: ClintConfig,
    pipeline: BulkPipeline,
    quick: QuickChannel,
    hosts: Vec<Host>,
    rng: StdRng,
    slot: u64,
    report: ClintReport,
    bulk_latency_sum: f64,
    quick_latency_sum: f64,
    /// Transfers that actually carried a packet last slot (their acks
    /// arrive this slot).
    last_flew: Vec<(usize, usize)>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<Box<ClintTelemetry>>,
}

impl ClintSim {
    /// Creates a simulation.
    pub fn new(cfg: ClintConfig) -> Self {
        assert!(cfg.n > 0 && cfg.n <= 16, "Clint supports up to 16 hosts");
        assert!((0.0..=1.0).contains(&cfg.bulk_load), "bulk load in [0,1]");
        assert!((0.0..=1.0).contains(&cfg.quick_load), "quick load in [0,1]");
        assert!(
            (0.0..=1.0).contains(&cfg.cfg_error_rate),
            "error rate in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.gnt_error_rate) && cfg.gnt_error_rate < 1.0,
            "grant error rate in [0,1) — total loss never transmits"
        );
        let n = cfg.n;
        ClintSim {
            pipeline: BulkPipeline::new(n),
            quick: QuickChannel::new(n),
            hosts: (0..n)
                .map(|_| Host {
                    voqs: (0..n).map(|_| VecDeque::new()).collect(),
                    send_buffer: None,
                    quick: VecDeque::new(),
                })
                .collect(),
            rng: StdRng::seed_from_u64(cfg.seed),
            slot: 0,
            report: ClintReport::default(),
            bulk_latency_sum: 0.0,
            quick_latency_sum: 0.0,
            last_flew: Vec::new(),
            #[cfg(feature = "telemetry")]
            telemetry: None,
            cfg,
        }
    }

    /// Runs the configured number of slots and returns the report.
    pub fn run(mut self) -> ClintReport {
        for _ in 0..self.cfg.slots {
            self.step();
        }
        self.finalize()
    }

    /// Like [`run`](ClintSim::run), but records telemetry into a trace
    /// buffer of `trace_capacity` events (0 = unbounded). The report is
    /// identical to the untraced one — telemetry is read-only.
    #[cfg(feature = "telemetry")]
    pub fn run_traced(mut self, trace_capacity: usize) -> (ClintReport, Box<ClintTelemetry>) {
        self.telemetry = Some(Box::new(ClintTelemetry {
            trace: TraceBuffer::new(trace_capacity),
            metrics: MetricsRegistry::new(),
            clock: SlotClock::new(),
        }));
        for _ in 0..self.cfg.slots {
            self.step();
        }
        let telemetry = self.telemetry.take().unwrap_or_default();
        (self.finalize(), telemetry)
    }

    fn finalize(mut self) -> ClintReport {
        if self.report.bulk_delivered > 0 {
            self.report.bulk_mean_latency =
                self.bulk_latency_sum / self.report.bulk_delivered as f64;
        }
        if self.report.quick_delivered > 0 {
            self.report.quick_mean_latency =
                self.quick_latency_sum / self.report.quick_delivered as f64;
        }
        self.report
    }

    fn step(&mut self) {
        let n = self.cfg.n;
        let slot = self.slot;
        // Counters are derived at the end of the slot by diffing the report
        // against this snapshot — one instrumentation point instead of one
        // per increment site, and provably consistent with the report.
        #[cfg(feature = "telemetry")]
        let report_before = if let Some(t) = self.telemetry.as_deref_mut() {
            t.clock.seek(slot);
            Some(self.report.clone())
        } else {
            None
        };

        // Arrivals.
        for i in 0..n {
            if self.rng.gen_bool(self.cfg.bulk_load) {
                let dst = self.rng.gen_range(0..n);
                self.hosts[i].voqs[dst].push_back(slot);
                self.report.bulk_generated += 1;
            }
            if self.rng.gen_bool(self.cfg.quick_load) {
                let dst = self.rng.gen_range(0..n);
                self.hosts[i].quick.push_back((dst, slot));
                self.report.quick_generated += 1;
            }
        }

        // Bulk channel: hosts encode config packets; the wire may corrupt
        // them (CRC catches it and the scheduler sees nothing from that
        // host this cycle).
        let configs: Vec<Option<ConfigPacket>> = (0..n)
            .map(|i| {
                let mut req = 0u16;
                for j in 0..n {
                    if !self.hosts[i].voqs[j].is_empty() {
                        req |= 1 << j;
                    }
                }
                let pkt = ConfigPacket {
                    req,
                    ben: 0xFFFF,
                    qen: 0xFFFF,
                    ..Default::default()
                };
                let mut wire = pkt.encode();
                if self.cfg.cfg_error_rate > 0.0 && self.rng.gen_bool(self.cfg.cfg_error_rate) {
                    let byte = self.rng.gen_range(0..wire.len());
                    let bit = self.rng.gen_range(0..8u32);
                    wire[byte] ^= 1u8 << bit;
                }
                match ConfigPacket::decode(&wire) {
                    Ok(decoded) => Some(decoded),
                    Err(_) => {
                        self.report.cfg_crc_errors += 1;
                        None
                    }
                }
            })
            .collect();

        let events = self.pipeline.step(&configs);

        // One event per slot tells the 3-stage story: grants issued by this
        // slot's schedule stage, transfers flying for last slot's schedule,
        // acks returning for the slot before that.
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.telemetry.as_deref_mut() {
            let granted = events.grants.iter().filter(|g| g.gnt_val).count();
            t.trace.push(
                Event::new(t.clock.slot(), "bulk_pipeline")
                    .field("schedule_grants", granted)
                    .field("transfers", events.transfers.len())
                    .field("acks", events.acks.len()),
            );
            t.metrics.histogram_record(
                "clint.transfers_per_slot",
                n + 1,
                events.transfers.len() as u64,
            );
        }

        // Transfers scheduled last slot complete now: deliver from the send
        // buffers (Fig. 4's SendBuffers). A host whose grant was lost never
        // loaded its buffer; that reserved slot goes idle.
        let mut flew: Vec<(usize, usize)> = Vec::new();
        for &(i, j) in &events.transfers {
            match self.hosts[i].send_buffer.take() {
                Some((dst, gen)) => {
                    debug_assert_eq!(dst, j, "send buffer target mismatch");
                    self.report.bulk_delivered += 1;
                    self.bulk_latency_sum += (slot - gen) as f64;
                    flew.push((i, j));
                }
                None => self.report.wasted_reservations += 1,
            }
        }

        // Grants for this slot's schedule travel back over the quick
        // channel and may be corrupted; an undecodable grant means the host
        // does not transmit (its packet stays queued and is re-requested).
        for g in &events.grants {
            if g.gnt_val {
                let mut wire = g.encode();
                if self.cfg.gnt_error_rate > 0.0 && self.rng.gen_bool(self.cfg.gnt_error_rate) {
                    let byte = self.rng.gen_range(0..wire.len());
                    wire[byte] ^= 1u8 << self.rng.gen_range(0..8u32);
                }
                let Ok(g) = crate::packets::GrantPacket::decode(&wire) else {
                    self.report.gnt_crc_errors += 1;
                    continue;
                };
                let i = g.node_id as usize;
                let j = g.gnt as usize;
                let gen = self.hosts[i].voqs[j]
                    .pop_front()
                    // lint:allow(no-panic): grants are only issued against VOQs reported non-empty this slot
                    .expect("grant for an empty VOQ");
                debug_assert!(self.hosts[i].send_buffer.is_none());
                self.hosts[i].send_buffer = Some((j, gen));
            }
        }

        // Targets only acknowledge packets that actually arrived.
        self.report.acks_received += events
            .acks
            .iter()
            .filter(|&&(j, i)| self.last_flew.contains(&(i, j)))
            .count() as u64;
        self.last_flew = flew;

        // Quick channel: heads of the quick queues race; losers retransmit.
        let sends: Vec<Option<usize>> = self
            .hosts
            .iter()
            .map(|h| h.quick.front().map(|&(dst, _)| dst))
            .collect();
        let outcome = self.quick.transmit(&sends);
        for &(i, _dst) in &outcome.forwarded {
            // lint:allow(no-panic): transmit() forwards only heads it was handed from these queues
            let (_, gen) = self.hosts[i].quick.pop_front().expect("forwarded head");
            self.report.quick_delivered += 1;
            self.quick_latency_sum += (slot - gen) as f64;
        }
        self.report.quick_collisions += outcome.dropped.len() as u64;
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.telemetry.as_deref_mut() {
            for &(src, dst) in &outcome.dropped {
                t.trace.push(
                    Event::new(t.clock.slot(), "quick_collision")
                        .field("src", src)
                        .field("dst", dst),
                );
            }
        }

        #[cfg(feature = "telemetry")]
        if let Some(before) = report_before {
            // lint:allow(no-panic): report_before is Some only while telemetry is
            let t = self.telemetry.as_deref_mut().expect("telemetry enabled");
            let r = &self.report;
            t.metrics.counter_add(
                "clint.bulk_generated",
                r.bulk_generated - before.bulk_generated,
            );
            t.metrics.counter_add(
                "clint.bulk_delivered",
                r.bulk_delivered - before.bulk_delivered,
            );
            t.metrics.counter_add(
                "clint.quick_generated",
                r.quick_generated - before.quick_generated,
            );
            t.metrics.counter_add(
                "clint.quick_delivered",
                r.quick_delivered - before.quick_delivered,
            );
            t.metrics.counter_add(
                "clint.quick_collisions",
                r.quick_collisions - before.quick_collisions,
            );
            t.metrics.counter_add(
                "clint.cfg_crc_errors",
                r.cfg_crc_errors - before.cfg_crc_errors,
            );
            t.metrics.counter_add(
                "clint.gnt_crc_errors",
                r.gnt_crc_errors - before.gnt_crc_errors,
            );
            t.metrics.counter_add(
                "clint.wasted_reservations",
                r.wasted_reservations - before.wasted_reservations,
            );
            t.metrics.counter_inc("clint.slots");
        }

        self.slot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_delivers_most_traffic() {
        let report = ClintSim::new(ClintConfig {
            n: 8,
            bulk_load: 0.3,
            quick_load: 0.1,
            slots: 5_000,
            ..Default::default()
        })
        .run();
        assert!(report.bulk_generated > 0);
        // Everything except in-flight tail is delivered.
        assert!(report.bulk_delivered as f64 > report.bulk_generated as f64 * 0.98);
        assert!(report.quick_delivered as f64 > report.quick_generated as f64 * 0.98);
        assert_eq!(report.cfg_crc_errors, 0);
    }

    #[test]
    fn bulk_has_pipeline_latency_quick_does_not() {
        // At very light load the quick channel forwards immediately
        // (0 slots) while every bulk packet pays the schedule->transfer
        // pipeline (>= 1 slot).
        let report = ClintSim::new(ClintConfig {
            n: 8,
            bulk_load: 0.05,
            quick_load: 0.05,
            slots: 20_000,
            ..Default::default()
        })
        .run();
        assert!(
            report.bulk_mean_latency >= 1.0,
            "bulk {}",
            report.bulk_mean_latency
        );
        assert!(
            report.quick_mean_latency < report.bulk_mean_latency,
            "quick {} vs bulk {}",
            report.quick_mean_latency,
            report.bulk_mean_latency
        );
    }

    #[test]
    fn quick_channel_collides_under_load() {
        let report = ClintSim::new(ClintConfig {
            n: 8,
            bulk_load: 0.0,
            quick_load: 0.8,
            slots: 5_000,
            ..Default::default()
        })
        .run();
        assert!(report.quick_collisions > 0, "high quick load must collide");
        // Retransmission means nothing is lost, only delayed: deliveries
        // track generation minus what is still queued.
        assert!(report.quick_delivered <= report.quick_generated);
    }

    #[test]
    fn crc_errors_are_detected_and_survivable() {
        let report = ClintSim::new(ClintConfig {
            n: 8,
            bulk_load: 0.4,
            quick_load: 0.0,
            cfg_error_rate: 0.05,
            slots: 10_000,
            ..Default::default()
        })
        .run();
        assert!(report.cfg_crc_errors > 0, "5% corruption must trip the CRC");
        // Corrupted configs delay but never corrupt the schedule: deliveries
        // continue and every transfer is acknowledged two slots later.
        assert!(report.bulk_delivered > 0);
        assert!(report.acks_received <= report.bulk_delivered);
        assert!(report.acks_received as f64 > report.bulk_delivered as f64 * 0.99);
    }

    #[test]
    fn acks_match_transfers() {
        let report = ClintSim::new(ClintConfig {
            n: 4,
            bulk_load: 0.5,
            quick_load: 0.0,
            slots: 2_000,
            ..Default::default()
        })
        .run();
        // Acks lag transfers by one slot, so they can differ by at most the
        // in-flight window.
        let diff = report.bulk_delivered - report.acks_received;
        assert!(diff <= 4, "ack deficit {diff}");
    }

    #[test]
    fn grant_loss_wastes_reservations_but_loses_no_packets() {
        let report = ClintSim::new(ClintConfig {
            n: 8,
            bulk_load: 0.4,
            quick_load: 0.0,
            gnt_error_rate: 0.1,
            slots: 10_000,
            ..Default::default()
        })
        .run();
        assert!(report.gnt_crc_errors > 0, "10% grant corruption must bite");
        assert!(
            report.wasted_reservations > 0,
            "a lost grant leaves its fabric slot idle"
        );
        // The packet stays queued and is rescheduled: deliveries still track
        // generation closely over a long run.
        assert!(report.bulk_delivered as f64 > report.bulk_generated as f64 * 0.98);
        // Only packets that actually flew are acknowledged.
        assert!(report.acks_received <= report.bulk_delivered);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ClintConfig {
            n: 8,
            slots: 3_000,
            ..Default::default()
        };
        let a = ClintSim::new(cfg.clone()).run();
        let b = ClintSim::new(cfg).run();
        assert_eq!(a.bulk_delivered, b.bulk_delivered);
        assert_eq!(a.quick_collisions, b.quick_collisions);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn traced_run_matches_untraced_and_records_the_story() {
        let cfg = ClintConfig {
            n: 8,
            bulk_load: 0.4,
            quick_load: 0.6,
            cfg_error_rate: 0.02,
            slots: 2_000,
            ..Default::default()
        };
        let plain = ClintSim::new(cfg.clone()).run();
        let (traced, t) = ClintSim::new(cfg.clone()).run_traced(0);
        assert_eq!(plain, traced, "tracing changed the Clint report");

        // The counters retell the report.
        assert_eq!(t.metrics.counter("clint.slots"), cfg.slots);
        assert_eq!(
            t.metrics.counter("clint.bulk_delivered"),
            traced.bulk_delivered
        );
        assert_eq!(
            t.metrics.counter("clint.quick_collisions"),
            traced.quick_collisions
        );
        assert_eq!(
            t.metrics.counter("clint.cfg_crc_errors"),
            traced.cfg_crc_errors
        );

        // The trace tells the per-slot story: one pipeline event per slot,
        // one collision event per drop.
        let pipeline_events = t.trace.iter().filter(|e| e.kind == "bulk_pipeline").count();
        assert_eq!(pipeline_events as u64, cfg.slots);
        let collisions = t
            .trace
            .iter()
            .filter(|e| e.kind == "quick_collision")
            .count();
        assert_eq!(collisions as u64, traced.quick_collisions);

        // And the transfer distribution covers every slot without overflow.
        let hist = t
            .metrics
            .histogram("clint.transfers_per_slot")
            .expect("histogram");
        assert_eq!(hist.count(), cfg.slots);
        assert_eq!(hist.overflow(), 0);
    }

    #[test]
    #[should_panic(expected = "up to 16 hosts")]
    fn oversized_cluster_panics() {
        let _ = ClintSim::new(ClintConfig {
            n: 20,
            ..Default::default()
        });
    }
}
