//! The Clint control packet formats (Sec. 4.1).
//!
//! Two packet types travel on the quick channel to drive the bulk
//! scheduler:
//!
//! * **Configuration packets**, host → switch:
//!   `{type=cfg | req[15..0] | pre[15..0] | ben[15..0] | qen[15..0] | CRC[15..0]}`
//! * **Grant packets**, switch → host:
//!   `{type=gnt | nodeId[3..0] | gnt[3..0] | gntVal | linkErr | CRCErr | CRC[15..0]}`
//!
//! The wire encoding here is byte-aligned (a type byte, big-endian fields,
//! flag bits packed into one byte) — the paper does not specify framing
//! below the field level, and byte alignment keeps the codec honest and
//! testable without changing any semantics.

use crate::crc::{append_crc, check_crc};

/// Packet type tag for configuration packets.
pub const TYPE_CFG: u8 = 0xC5;
/// Packet type tag for grant packets.
pub const TYPE_GNT: u8 = 0x6A;

/// Codec error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// Frame shorter than the fixed format.
    Truncated,
    /// CRC mismatch — the receiver sets its `CRCErr` flag.
    CrcMismatch,
    /// Unknown or unexpected type byte.
    BadType,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated => f.write_str("truncated frame"),
            PacketError::CrcMismatch => f.write_str("CRC mismatch"),
            PacketError::BadType => f.write_str("unexpected packet type"),
        }
    }
}

impl std::error::Error for PacketError {}

/// A configuration packet (host → bulk scheduler).
///
/// ```
/// use lcf_clint::packets::ConfigPacket;
///
/// let p = ConfigPacket { req: 0b0110, ben: 0xFFFF, qen: 0xFFFF, ..Default::default() };
/// let wire = p.encode();
/// assert_eq!(ConfigPacket::decode(&wire), Ok(p));
/// assert!(p.requests(1) && p.requests(2) && !p.requests(0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfigPacket {
    /// Requested targets: bit `j` set iff this host has a bulk packet queued
    /// for target `j` (the scheduler's request vector).
    pub req: u16,
    /// Precalculated schedule: bit `j` set iff this host claims target `j`
    /// for its precalculated (real-time / multicast) transfer (Sec. 4.3).
    pub pre: u16,
    /// Bulk-initiator enable mask — hosts use this to disable forwarding
    /// from malfunctioning hosts.
    pub ben: u16,
    /// Quick-initiator enable mask.
    pub qen: u16,
}

impl ConfigPacket {
    /// Encoded length in bytes: type + 4×u16 fields + CRC16.
    pub const WIRE_LEN: usize = 1 + 8 + 2;

    /// Encodes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut f = Vec::with_capacity(Self::WIRE_LEN);
        f.push(TYPE_CFG);
        f.extend_from_slice(&self.req.to_be_bytes());
        f.extend_from_slice(&self.pre.to_be_bytes());
        f.extend_from_slice(&self.ben.to_be_bytes());
        f.extend_from_slice(&self.qen.to_be_bytes());
        append_crc(&mut f);
        f
    }

    /// Decodes from the wire format.
    pub fn decode(frame: &[u8]) -> Result<ConfigPacket, PacketError> {
        if frame.len() != Self::WIRE_LEN {
            return Err(PacketError::Truncated);
        }
        let payload = check_crc(frame).ok_or(PacketError::CrcMismatch)?;
        if payload[0] != TYPE_CFG {
            return Err(PacketError::BadType);
        }
        let word = |i: usize| u16::from_be_bytes([payload[i], payload[i + 1]]);
        Ok(ConfigPacket {
            req: word(1),
            pre: word(3),
            ben: word(5),
            qen: word(7),
        })
    }

    /// True if this host requests target `j`.
    pub fn requests(&self, j: usize) -> bool {
        j < 16 && self.req & (1 << j) != 0
    }

    /// True if this host pre-claims target `j`.
    pub fn preclaims(&self, j: usize) -> bool {
        j < 16 && self.pre & (1 << j) != 0
    }
}

/// A grant packet (bulk scheduler → host).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GrantPacket {
    /// Host id assigned at initialization time.
    pub node_id: u8,
    /// Encoded target number of the granted request.
    pub gnt: u8,
    /// Whether `gnt` is valid (the host was granted a connection).
    pub gnt_val: bool,
    /// A link error was detected since the last grant packet.
    pub link_err: bool,
    /// The last configuration packet had a CRC error or was missing.
    pub crc_err: bool,
}

impl GrantPacket {
    /// Encoded length: type + nodeId/gnt byte + flags byte + CRC16.
    pub const WIRE_LEN: usize = 1 + 2 + 2;

    /// Encodes to the wire format. `node_id` and `gnt` are 4-bit fields.
    ///
    /// # Panics
    /// Panics if `node_id` or `gnt` exceed 4 bits.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.node_id < 16, "nodeId is a 4-bit field");
        assert!(self.gnt < 16, "gnt is a 4-bit field");
        let mut f = Vec::with_capacity(Self::WIRE_LEN);
        f.push(TYPE_GNT);
        f.push((self.node_id << 4) | self.gnt);
        f.push(
            u8::from(self.gnt_val) | (u8::from(self.link_err) << 1) | (u8::from(self.crc_err) << 2),
        );
        append_crc(&mut f);
        f
    }

    /// Decodes from the wire format.
    pub fn decode(frame: &[u8]) -> Result<GrantPacket, PacketError> {
        if frame.len() != Self::WIRE_LEN {
            return Err(PacketError::Truncated);
        }
        let payload = check_crc(frame).ok_or(PacketError::CrcMismatch)?;
        if payload[0] != TYPE_GNT {
            return Err(PacketError::BadType);
        }
        Ok(GrantPacket {
            node_id: payload[1] >> 4,
            gnt: payload[1] & 0x0F,
            gnt_val: payload[2] & 1 != 0,
            link_err: payload[2] & 2 != 0,
            crc_err: payload[2] & 4 != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrip() {
        let p = ConfigPacket {
            req: 0b1010_0000_0000_0011,
            pre: 0b0000_0000_0001_0000,
            ben: 0xFFFF,
            qen: 0xFFFE,
        };
        let wire = p.encode();
        assert_eq!(wire.len(), ConfigPacket::WIRE_LEN);
        assert_eq!(ConfigPacket::decode(&wire), Ok(p));
    }

    #[test]
    fn config_bit_queries() {
        let p = ConfigPacket {
            req: 0b101,
            pre: 0b010,
            ..Default::default()
        };
        assert!(p.requests(0));
        assert!(!p.requests(1));
        assert!(p.requests(2));
        assert!(p.preclaims(1));
        assert!(!p.preclaims(0));
        assert!(!p.requests(99));
    }

    #[test]
    fn grant_roundtrip_all_flag_combos() {
        for flags in 0..8u8 {
            let p = GrantPacket {
                node_id: 13,
                gnt: 7,
                gnt_val: flags & 1 != 0,
                link_err: flags & 2 != 0,
                crc_err: flags & 4 != 0,
            };
            assert_eq!(GrantPacket::decode(&p.encode()), Ok(p));
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut wire = ConfigPacket {
            req: 0x1234,
            ..Default::default()
        }
        .encode();
        wire[2] ^= 0x40;
        assert_eq!(ConfigPacket::decode(&wire), Err(PacketError::CrcMismatch));
    }

    #[test]
    fn wrong_type_rejected() {
        let cfg_wire = ConfigPacket::default().encode();
        assert_eq!(GrantPacket::decode(&cfg_wire), Err(PacketError::Truncated));
        // Same length, wrong tag: craft a grant-length frame with cfg tag.
        let mut frame = vec![TYPE_CFG, 0x00, 0x00];
        crate::crc::append_crc(&mut frame);
        assert_eq!(GrantPacket::decode(&frame), Err(PacketError::BadType));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            ConfigPacket::decode(&[0xC5, 1, 2]),
            Err(PacketError::Truncated)
        );
        assert_eq!(GrantPacket::decode(&[]), Err(PacketError::Truncated));
    }

    #[test]
    #[should_panic(expected = "4-bit field")]
    fn oversized_grant_field_panics() {
        let _ = GrantPacket {
            node_id: 16,
            ..Default::default()
        }
        .encode();
    }
}
