//! The precalculated schedule (Sec. 4.3): pre-reserved connections for
//! real-time and multicast traffic, integrity-checked ahead of regular LCF
//! scheduling.

use lcf_core::arbiter::select_rotating;
use lcf_core::bitmat::BitMatrix;
use lcf_core::lcf::CentralLcf;
use lcf_core::matching::Matching;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;

/// The precalculated claims of one scheduling cycle: `claim(i, j)` means
/// initiator `i` pre-schedules a connection to target `j`. One initiator
/// claiming several targets is a *multicast* connection (Fig. 7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrecalcSchedule {
    claims: BitMatrix,
}

impl PrecalcSchedule {
    /// An empty precalculated schedule for `n` ports.
    pub fn new(n: usize) -> Self {
        PrecalcSchedule {
            claims: BitMatrix::new(n),
        }
    }

    /// Builds from `(initiator, target)` claims.
    pub fn from_claims(n: usize, claims: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut s = PrecalcSchedule::new(n);
        for (i, j) in claims {
            s.claim(i, j);
        }
        s
    }

    /// Builds from the per-host `pre` bit vectors of the config packets
    /// (host `i`'s `pre` bit `j` claims target `j`).
    pub fn from_pre_fields(n: usize, pre: &[u16]) -> Self {
        assert!(n <= 16, "pre fields are 16-bit vectors");
        assert_eq!(pre.len(), n, "one pre field per host");
        let mut s = PrecalcSchedule::new(n);
        for (i, &bits) in pre.iter().enumerate() {
            for j in 0..n {
                if bits & (1 << j) != 0 {
                    s.claim(i, j);
                }
            }
        }
        s
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.claims.n()
    }

    /// Adds a claim.
    pub fn claim(&mut self, initiator: usize, target: usize) {
        self.claims.set(initiator, target, true);
    }

    /// Whether initiator `i` claims target `j`.
    pub fn claims(&self, initiator: usize, target: usize) -> bool {
        self.claims.get(initiator, target)
    }

    /// True if no claims are present.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Stage 1 of Clint scheduling: the integrity check. The precalculated
    /// schedule is assumed conflict-free but verified: if several initiators
    /// claim the same target, one claim is accepted and the rest are
    /// dropped (Sec. 4.3). `priority_start` anchors the rotating chain that
    /// picks the surviving claim.
    ///
    /// Returns the validated multicast schedule and the number of dropped
    /// claims.
    pub fn validate(&self, priority_start: usize) -> (MulticastSchedule, usize) {
        let n = self.n();
        let mut owner = vec![None; n];
        let mut dropped = 0;
        for (j, slot) in owner.iter_mut().enumerate() {
            let claimants = self.claims.col_count(j);
            if claimants == 0 {
                continue;
            }
            let winner = select_rotating(n, priority_start, |i| self.claims.get(i, j))
                // lint:allow(no-panic): claimants > 0 was checked just above
                .expect("column has claimants");
            *slot = Some(winner);
            dropped += claimants - 1;
        }
        (MulticastSchedule { owner }, dropped)
    }
}

/// A validated (conflict-free) set of pre-scheduled connections: each target
/// has at most one owning initiator, but one initiator may own several
/// targets (multicast).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MulticastSchedule {
    owner: Vec<Option<usize>>,
}

impl MulticastSchedule {
    /// An empty schedule over `n` ports.
    pub fn empty(n: usize) -> Self {
        MulticastSchedule {
            owner: vec![None; n],
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// The initiator owning target `j`, if pre-scheduled.
    pub fn owner_of(&self, target: usize) -> Option<usize> {
        self.owner[target]
    }

    /// All targets owned by initiator `i`.
    pub fn targets_of(&self, initiator: usize) -> Vec<usize> {
        (0..self.n())
            .filter(|&j| self.owner[j] == Some(initiator))
            .collect()
    }

    /// True if initiator `i` owns more than one target this cycle.
    pub fn is_multicast(&self, initiator: usize) -> bool {
        self.targets_of(initiator).len() > 1
    }

    /// Number of pre-scheduled connections.
    pub fn size(&self) -> usize {
        self.owner.iter().flatten().count()
    }

    /// Iterates `(initiator, target)` connections.
    pub fn connections(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.owner
            .iter()
            .enumerate()
            .filter_map(|(j, &o)| o.map(|i| (i, j)))
    }
}

/// The complete schedule of one bulk slot: validated precalculated
/// connections plus the LCF-computed remainder.
#[derive(Clone, Debug)]
pub struct SlotSchedule {
    /// Pre-scheduled (possibly multicast) connections.
    pub precalc: MulticastSchedule,
    /// Regular unicast connections computed by the LCF scheduler.
    pub lcf: Matching,
    /// Claims dropped by the integrity check.
    pub dropped_claims: usize,
}

impl SlotSchedule {
    /// The initiator transmitting to `target` this slot, from either stage.
    pub fn source_for(&self, target: usize) -> Option<usize> {
        self.precalc.owner_of(target).or(self.lcf.input_for(target))
    }

    /// Total scheduled connections.
    pub fn size(&self) -> usize {
        self.precalc.size() + self.lcf.size()
    }
}

/// The two-stage Clint bulk scheduler: integrity-check the precalculated
/// schedule, then run the central LCF scheduler over what remains.
///
/// "The precalculated schedule does not add any overhead in the sense that
/// the existing logic of the LCF scheduler is used during the first stage."
/// (Sec. 4.3) — here that reuse shows up as both stages sharing the same
/// rotating priority machinery.
#[derive(Clone, Debug)]
pub struct ClintScheduler {
    n: usize,
    lcf: CentralLcf,
    masked: RequestMatrix,
}

impl ClintScheduler {
    /// Creates a scheduler for `n` ports (round-robin LCF variant, as in
    /// the Clint implementation).
    pub fn new(n: usize) -> Self {
        ClintScheduler {
            n,
            lcf: CentralLcf::with_round_robin(n),
            masked: RequestMatrix::new(n),
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Schedules one slot: validates `precalc`, removes pre-scheduled
    /// initiators and targets from `requests`, and lets the LCF scheduler
    /// fill the remainder.
    pub fn schedule(
        &mut self,
        requests: &RequestMatrix,
        precalc: &PrecalcSchedule,
    ) -> SlotSchedule {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        assert_eq!(precalc.n(), self.n, "precalc size mismatch");

        let (validated, dropped_claims) = precalc.validate(self.lcf.pointer().0);

        // Stage 2: mask out everything stage 1 consumed. An initiator that
        // owns a precalculated connection transmits that packet this slot
        // and does not compete for further targets; claimed targets are
        // likewise taken (this is the "conflict with round-robin positions"
        // fairness caveat of Sec. 4.3 — the RR position may point at a
        // masked cell and then protects nobody this cycle).
        self.masked.copy_from(requests);
        for (i, j) in validated.connections() {
            self.masked.clear_requester(i);
            self.masked.clear_resource(j);
        }
        let lcf = self.lcf.schedule(&self.masked);

        SlotSchedule {
            precalc: validated,
            lcf,
            dropped_claims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 7-style scenario: I3 pre-schedules a multicast to T1 and T3;
    /// the LCF stage fills T0 and T2 from the regular requests.
    #[test]
    fn paper_figure7_multicast() {
        let precalc = PrecalcSchedule::from_claims(4, [(3, 1), (3, 3)]);
        let requests =
            RequestMatrix::from_pairs(4, [(0, 0), (0, 2), (1, 0), (1, 1), (2, 2), (2, 3)]);
        let mut sched = ClintScheduler::new(4);
        let slot = sched.schedule(&requests, &precalc);

        assert_eq!(slot.precalc.owner_of(1), Some(3));
        assert_eq!(slot.precalc.owner_of(3), Some(3));
        assert!(slot.precalc.is_multicast(3));
        assert_eq!(slot.dropped_claims, 0);
        // LCF fills the remaining targets T0 and T2 from I0, I1, I2.
        assert!(slot.lcf.input_for(0).is_some());
        assert!(slot.lcf.input_for(2).is_some());
        // Claimed targets must not be double-booked by the LCF stage.
        assert_eq!(slot.lcf.input_for(1), None);
        assert_eq!(slot.lcf.input_for(3), None);
        assert_eq!(slot.size(), 4);
    }

    #[test]
    fn integrity_check_drops_conflicting_claims() {
        // Three initiators all pre-claim target 2: one survives.
        let precalc = PrecalcSchedule::from_claims(4, [(0, 2), (1, 2), (3, 2)]);
        let (validated, dropped) = precalc.validate(0);
        assert_eq!(dropped, 2);
        assert_eq!(validated.size(), 1);
        assert_eq!(
            validated.owner_of(2),
            Some(0),
            "rotating chain from 0 picks I0"
        );
        // A different priority anchor picks a different survivor.
        let (validated, _) = precalc.validate(1);
        assert_eq!(validated.owner_of(2), Some(1));
    }

    #[test]
    fn precalc_initiator_excluded_from_lcf_stage() {
        // I0 pre-claims T0 but also requests T1; the LCF stage must not
        // grant I0 anything (it transmits its precalculated packet).
        let precalc = PrecalcSchedule::from_claims(4, [(0, 0)]);
        let requests = RequestMatrix::from_pairs(4, [(0, 1), (1, 1)]);
        let mut sched = ClintScheduler::new(4);
        let slot = sched.schedule(&requests, &precalc);
        assert_eq!(slot.lcf.output_for(0), None);
        assert_eq!(slot.lcf.output_for(1), Some(1));
        assert_eq!(slot.source_for(0), Some(0));
        assert_eq!(slot.source_for(1), Some(1));
    }

    #[test]
    fn empty_precalc_is_pure_lcf() {
        let precalc = PrecalcSchedule::new(4);
        assert!(precalc.is_empty());
        let requests = RequestMatrix::full(4);
        let mut sched = ClintScheduler::new(4);
        let slot = sched.schedule(&requests, &precalc);
        assert_eq!(slot.precalc.size(), 0);
        assert_eq!(slot.lcf.size(), 4);
    }

    #[test]
    fn pre_fields_roundtrip() {
        let pre = [0b0000u16, 0b1010, 0b0000, 0b0001];
        let s = PrecalcSchedule::from_pre_fields(4, &pre);
        assert!(s.claims(1, 1));
        assert!(s.claims(1, 3));
        assert!(s.claims(3, 0));
        assert!(!s.claims(0, 0));
        let (validated, dropped) = s.validate(0);
        assert_eq!(dropped, 0);
        assert_eq!(validated.size(), 3);
    }

    #[test]
    fn full_precalc_leaves_lcf_nothing() {
        // Every target pre-claimed by a distinct initiator: stage 2 idles.
        let precalc = PrecalcSchedule::from_claims(4, (0..4).map(|i| (i, (i + 1) % 4)));
        let requests = RequestMatrix::full(4);
        let mut sched = ClintScheduler::new(4);
        let slot = sched.schedule(&requests, &precalc);
        assert_eq!(slot.precalc.size(), 4);
        assert_eq!(slot.lcf.size(), 0);
        assert_eq!(slot.size(), 4);
    }

    #[test]
    fn multicast_queries() {
        let m = PrecalcSchedule::from_claims(8, [(2, 0), (2, 5), (2, 7), (4, 1)])
            .validate(0)
            .0;
        assert_eq!(m.targets_of(2), vec![0, 5, 7]);
        assert!(m.is_multicast(2));
        assert!(!m.is_multicast(4));
        assert_eq!(m.connections().count(), 4);
    }
}
