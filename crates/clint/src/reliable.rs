//! Reliable bulk transfers over lossy links (Sec. 4.1's
//! request-acknowledgment protocol, end to end).
//!
//! "Data transmission follows a request-acknowledgment protocol whereby the
//! payload containing the data is always part of the request packet and an
//! acknowledgment packet is returned for the receipt of every request
//! packet. While only bulk requests use the bulk channel, all other packets
//! including bulk acknowledgments … use the quick channel."
//!
//! This module adds what the protocol exists for: loss recovery. Hosts keep
//! an outstanding-transfer table; a bulk request (`breq`) or its
//! acknowledgment (`back`) may be lost in flight, and a transfer whose ack
//! does not arrive within a timeout is re-queued for retransmission.
//! Receivers deduplicate by `(source, sequence number)` so the application
//! layer sees **exactly-once** delivery regardless of link quality.

use crate::packets::ConfigPacket;
use crate::pipeline::BulkPipeline;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// A transfer the application asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Transfer {
    seq: u64,
    dst: usize,
    enqueued_at: u64,
}

/// A transmitted transfer awaiting its acknowledgment.
#[derive(Clone, Copy, Debug)]
struct Outstanding {
    transfer: Transfer,
    sent_at: u64,
}

/// Configuration of a reliable-transfer simulation.
#[derive(Clone, Debug)]
pub struct ReliableConfig {
    /// Number of hosts (≤ 16).
    pub n: usize,
    /// Per-host probability of the application enqueueing a transfer per
    /// slot (uniform random destination).
    pub offered_load: f64,
    /// Probability a bulk request packet is lost in the fabric/link.
    pub breq_loss: f64,
    /// Probability an acknowledgment packet is lost on the quick channel.
    pub back_loss: f64,
    /// Slots an initiator waits for an ack before retransmitting. Must
    /// exceed the pipeline's 2-slot transfer+ack latency.
    pub timeout: u64,
    /// Simulated slots.
    pub slots: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            n: crate::CLINT_PORTS,
            offered_load: 0.4,
            breq_loss: 0.0,
            back_loss: 0.0,
            timeout: 16,
            slots: 20_000,
            seed: 0x5EC5,
        }
    }
}

/// Results of a reliable-transfer simulation.
#[derive(Clone, Debug, Default)]
pub struct ReliableReport {
    /// Transfers the application enqueued.
    pub enqueued: u64,
    /// Transfers delivered to the receiving application (deduplicated).
    pub delivered_unique: u64,
    /// Duplicate arrivals suppressed by the receiver.
    pub duplicates_suppressed: u64,
    /// Bulk request packets lost in flight.
    pub breq_lost: u64,
    /// Acknowledgment packets lost in flight.
    pub back_lost: u64,
    /// Retransmissions triggered by timeouts.
    pub retransmissions: u64,
    /// Transfers completed (acknowledged) at the initiators.
    pub completed: u64,
    /// Mean slots from enqueue to (first) delivery.
    pub mean_delivery_latency: f64,
    /// Transfers still unfinished when the simulation ended.
    pub in_flight_at_end: u64,
}

struct Host {
    next_seq: u64,
    /// Transfers queued for (re)transmission, FIFO per destination.
    pending: Vec<VecDeque<Transfer>>,
    /// Sent, awaiting acknowledgment.
    outstanding: Vec<Outstanding>,
    /// Receiver-side dedup: sequences already delivered, per source.
    delivered: Vec<BTreeSet<u64>>,
    /// Grant received this slot: transfer moved to the wire for next slot.
    wire: Option<Transfer>,
}

impl Host {
    fn new(n: usize) -> Self {
        Host {
            next_seq: 0,
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            outstanding: Vec::new(),
            delivered: (0..n).map(|_| BTreeSet::new()).collect(),
            wire: None,
        }
    }

    fn request_vector(&self) -> u16 {
        let mut req = 0u16;
        for (j, q) in self.pending.iter().enumerate() {
            if !q.is_empty() {
                req |= 1 << j;
            }
        }
        req
    }
}

/// The simulation driver.
pub struct ReliableSim {
    cfg: ReliableConfig,
    pipeline: BulkPipeline,
    hosts: Vec<Host>,
    rng: StdRng,
    report: ReliableReport,
    latency_sum: f64,
}

impl ReliableSim {
    /// Creates a simulation.
    pub fn new(cfg: ReliableConfig) -> Self {
        assert!(cfg.n > 0 && cfg.n <= 16, "Clint supports up to 16 hosts");
        assert!(
            cfg.timeout >= 3,
            "timeout must exceed the 2-slot pipeline latency"
        );
        for p in [cfg.offered_load, cfg.breq_loss, cfg.back_loss] {
            assert!((0.0..=1.0).contains(&p), "probabilities must be in [0,1]");
        }
        assert!(
            cfg.breq_loss < 1.0 || cfg.offered_load == 0.0,
            "total loss never completes"
        );
        ReliableSim {
            pipeline: BulkPipeline::new(cfg.n),
            hosts: (0..cfg.n).map(|_| Host::new(cfg.n)).collect(),
            rng: StdRng::seed_from_u64(cfg.seed),
            report: ReliableReport::default(),
            latency_sum: 0.0,
            cfg,
        }
    }

    /// Runs the configured number of slots, then lets the system drain
    /// (no new arrivals) for up to `10 × timeout` additional slots so the
    /// tail of retransmissions completes.
    pub fn run(mut self) -> ReliableReport {
        for slot in 0..self.cfg.slots {
            self.step(slot, true);
        }
        let drain_end = self.cfg.slots + 10 * self.cfg.timeout * (1 + self.cfg.n as u64);
        for slot in self.cfg.slots..drain_end {
            if self.hosts.iter().all(|h| {
                h.outstanding.is_empty()
                    && h.wire.is_none()
                    && h.pending.iter().all(|q| q.is_empty())
            }) {
                break;
            }
            self.step(slot, false);
        }
        self.report.in_flight_at_end = self
            .hosts
            .iter()
            .map(|h| {
                h.outstanding.len() as u64
                    + u64::from(h.wire.is_some())
                    + h.pending.iter().map(|q| q.len() as u64).sum::<u64>()
            })
            .sum();
        if self.report.delivered_unique > 0 {
            self.report.mean_delivery_latency =
                self.latency_sum / self.report.delivered_unique as f64;
        }
        self.report
    }

    fn step(&mut self, slot: u64, arrivals: bool) {
        let n = self.cfg.n;

        // Application arrivals.
        if arrivals {
            for i in 0..n {
                if self.rng.gen_bool(self.cfg.offered_load) {
                    let dst = self.rng.gen_range(0..n);
                    let seq = self.hosts[i].next_seq;
                    self.hosts[i].next_seq += 1;
                    self.hosts[i].pending[dst].push_back(Transfer {
                        seq,
                        dst,
                        enqueued_at: slot,
                    });
                    self.report.enqueued += 1;
                }
            }
        }

        // Timeouts: unacknowledged transfers go back to the pending queues.
        for host in self.hosts.iter_mut() {
            let timeout = self.cfg.timeout;
            let mut idx = 0;
            while idx < host.outstanding.len() {
                if slot.saturating_sub(host.outstanding[idx].sent_at) >= timeout {
                    let o = host.outstanding.swap_remove(idx);
                    host.pending[o.transfer.dst].push_front(o.transfer);
                    self.report.retransmissions += 1;
                } else {
                    idx += 1;
                }
            }
        }

        // Bulk scheduling round.
        let configs: Vec<Option<ConfigPacket>> = self
            .hosts
            .iter()
            .map(|h| {
                Some(ConfigPacket {
                    req: h.request_vector(),
                    ben: 0xFFFF,
                    qen: 0xFFFF,
                    ..Default::default()
                })
            })
            .collect();
        let events = self.pipeline.step(&configs);

        // Transfers granted last slot hit the wire now; the breq may be
        // lost. A surviving breq is delivered and acknowledged; the ack may
        // be lost on the quick channel.
        for &(i, j) in &events.transfers {
            let t = self.hosts[i]
                .wire
                .take()
                // lint:allow(no-panic): a transfer event is only emitted after the grant placed a packet on the wire
                .expect("transfer without wire packet");
            debug_assert_eq!(t.dst, j);
            if self.rng.gen_bool(self.cfg.breq_loss) {
                self.report.breq_lost += 1;
                // Stays outstanding; the timeout will recover it.
                continue;
            }
            // Receiver side: dedup, deliver, acknowledge.
            let fresh = self.hosts[j].delivered[i].insert(t.seq);
            if fresh {
                self.report.delivered_unique += 1;
                self.latency_sum += (slot - t.enqueued_at) as f64;
            } else {
                self.report.duplicates_suppressed += 1;
            }
            // The ack rides the quick channel.
            if self.rng.gen_bool(self.cfg.back_loss) {
                self.report.back_lost += 1;
                continue;
            }
            // Initiator completes the transfer.
            let host = &mut self.hosts[i];
            if let Some(pos) = host
                .outstanding
                .iter()
                .position(|o| o.transfer.seq == t.seq && o.transfer.dst == j)
            {
                host.outstanding.swap_remove(pos);
                self.report.completed += 1;
            }
            // An ack for an already-retransmitted transfer finds no entry;
            // the duplicate breq will be suppressed at the receiver.
        }

        // Grants for this slot's schedule: move the head pending transfer
        // to the wire and start its ack timer.
        for g in &events.grants {
            if g.gnt_val {
                let i = g.node_id as usize;
                let j = g.gnt as usize;
                let host = &mut self.hosts[i];
                // lint:allow(no-panic): the scheduler only grants VOQs it saw non-empty, and nothing drains them in between
                let t = host.pending[j].pop_front().expect("grant for empty queue");
                debug_assert!(host.wire.is_none());
                host.wire = Some(t);
                host.outstanding.push(Outstanding {
                    transfer: t,
                    sent_at: slot,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_links_deliver_everything_exactly_once() {
        let report = ReliableSim::new(ReliableConfig {
            n: 8,
            offered_load: 0.4,
            slots: 5_000,
            ..Default::default()
        })
        .run();
        assert!(report.enqueued > 0);
        assert_eq!(report.delivered_unique, report.enqueued);
        assert_eq!(report.duplicates_suppressed, 0);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.completed, report.enqueued);
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn breq_loss_is_recovered_by_retransmission() {
        let report = ReliableSim::new(ReliableConfig {
            n: 8,
            offered_load: 0.3,
            breq_loss: 0.1,
            slots: 5_000,
            ..Default::default()
        })
        .run();
        assert!(report.breq_lost > 0, "10% loss must bite");
        assert!(report.retransmissions > 0);
        assert_eq!(
            report.delivered_unique, report.enqueued,
            "every transfer must eventually arrive"
        );
        assert_eq!(report.in_flight_at_end, 0, "drain must finish the tail");
    }

    #[test]
    fn ack_loss_causes_duplicates_that_receivers_suppress() {
        let report = ReliableSim::new(ReliableConfig {
            n: 8,
            offered_load: 0.3,
            back_loss: 0.1,
            slots: 5_000,
            ..Default::default()
        })
        .run();
        assert!(report.back_lost > 0);
        assert!(
            report.duplicates_suppressed > 0,
            "lost acks must trigger duplicate breqs"
        );
        assert_eq!(
            report.delivered_unique, report.enqueued,
            "exactly-once at the application layer"
        );
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn heavy_bidirectional_loss_still_converges() {
        let report = ReliableSim::new(ReliableConfig {
            n: 4,
            offered_load: 0.15,
            breq_loss: 0.25,
            back_loss: 0.25,
            timeout: 8,
            slots: 4_000,
            seed: 5,
        })
        .run();
        assert!(report.retransmissions > 0);
        assert!(report.duplicates_suppressed > 0);
        assert_eq!(report.delivered_unique, report.enqueued);
        assert_eq!(report.in_flight_at_end, 0, "the drain window must suffice");
    }

    #[test]
    fn latency_grows_with_loss() {
        let mk = |loss: f64| {
            ReliableSim::new(ReliableConfig {
                n: 8,
                offered_load: 0.2,
                breq_loss: loss,
                slots: 8_000,
                seed: 77,
                ..Default::default()
            })
            .run()
        };
        let clean = mk(0.0);
        let lossy = mk(0.2);
        assert!(lossy.mean_delivery_latency > clean.mean_delivery_latency);
        assert_eq!(lossy.delivered_unique, lossy.enqueued);
    }

    #[test]
    #[should_panic(expected = "timeout must exceed")]
    fn tiny_timeout_rejected() {
        let _ = ReliableSim::new(ReliableConfig {
            timeout: 1,
            ..Default::default()
        });
    }
}
