//! # lcf-clint — a model of the Clint cluster interconnect
//!
//! The paper's Sec. 4 describes Clint, the system the LCF scheduler was
//! built for: a 16-host star-topology cluster interconnect with a
//! *segregated architecture* — two physically separate transmission
//! channels:
//!
//! * the **bulk channel**, optimized for bandwidth: time slots are
//!   *scheduled* by the central LCF scheduler before packets are sent, so
//!   packets never collide ([`pipeline`]);
//! * the **quick channel**, optimized for latency: best-effort transmission;
//!   colliding packets lose all but one ([`quick`]).
//!
//! Hosts and switch exchange scheduling information in *configuration* and
//! *grant* packets ([`packets`]) protected by CRC-16 ([`crc`]). A
//! *precalculated schedule* carried in the config packet reserves
//! connections for real-time or multicast traffic before the LCF scheduler
//! fills the rest of the slot ([`precalc`]).
//!
//! [`sim`] ties it all together into a per-slot simulation of both channels
//! (used by the EXT-7 experiment and the `realtime_multicast` example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod packets;
pub mod pipeline;
pub mod precalc;
pub mod quick;
pub mod reliable;
pub mod sim;

/// Number of hosts in the Clint prototype (Sec. 4: "up to 16 host
/// computers").
pub const CLINT_PORTS: usize = 16;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::crc::crc16;
    pub use crate::packets::{ConfigPacket, GrantPacket, PacketError};
    pub use crate::pipeline::{BulkPipeline, PipelineStage};
    pub use crate::precalc::{MulticastSchedule, PrecalcSchedule};
    pub use crate::quick::QuickChannel;
    pub use crate::reliable::{ReliableConfig, ReliableSim};
    pub use crate::sim::{ClintConfig, ClintSim};
    pub use crate::CLINT_PORTS;
}
