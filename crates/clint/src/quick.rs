//! The quick channel (Sec. 4): best-effort, collision-drop forwarding.
//!
//! "The quick channel takes a best-effort approach and packets are sent
//! whenever they are available. If they collide in the switch, one packet
//! wins and is forwarded while the other packets are dropped."

use lcf_core::arbiter::RoundRobinPointer;

/// Outcome of one quick-channel slot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuickOutcome {
    /// `(src, dst)` packets that won their output and were forwarded.
    pub forwarded: Vec<(usize, usize)>,
    /// `(src, dst)` packets that collided and were dropped.
    pub dropped: Vec<(usize, usize)>,
}

/// The quick switch: an unscheduled crossbar where per-target collisions
/// are resolved by a rotating arbiter (so persistent colliders share the
/// output instead of one host capturing it).
#[derive(Clone, Debug)]
pub struct QuickChannel {
    n: usize,
    winners: Vec<RoundRobinPointer>,
}

impl QuickChannel {
    /// Creates a quick channel for `n` hosts.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "channel requires n > 0");
        QuickChannel {
            n,
            winners: vec![RoundRobinPointer::new(n); n],
        }
    }

    /// Number of hosts.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Transmits one slot's worth of packets. Each host may send at most
    /// one packet (`sends[i]` is host `i`'s destination, if any). Collisions
    /// at a target forward exactly one packet and drop the rest.
    pub fn transmit(&mut self, sends: &[Option<usize>]) -> QuickOutcome {
        assert_eq!(sends.len(), self.n, "one send slot per host");
        let mut outcome = QuickOutcome::default();
        for dst in 0..self.n {
            let contenders: Vec<usize> = (0..self.n).filter(|&i| sends[i] == Some(dst)).collect();
            if contenders.is_empty() {
                continue;
            }
            let winner = self.winners[dst]
                .select(|i| sends[i] == Some(dst))
                // lint:allow(no-panic): contenders was checked non-empty just above
                .expect("contender exists");
            self.winners[dst].advance_past(winner);
            outcome.forwarded.push((winner, dst));
            outcome.dropped.extend(
                contenders
                    .into_iter()
                    .filter(|&i| i != winner)
                    .map(|i| (i, dst)),
            );
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collision_everything_forwards() {
        let mut ch = QuickChannel::new(4);
        let out = ch.transmit(&[Some(1), Some(2), None, Some(0)]);
        assert_eq!(out.forwarded, vec![(3, 0), (0, 1), (1, 2)]);
        assert!(out.dropped.is_empty());
    }

    #[test]
    fn collision_drops_all_but_one() {
        let mut ch = QuickChannel::new(4);
        let out = ch.transmit(&[Some(2), Some(2), Some(2), None]);
        assert_eq!(out.forwarded.len(), 1);
        assert_eq!(out.dropped.len(), 2);
        assert_eq!(out.forwarded[0].1, 2);
    }

    #[test]
    fn rotating_winner_shares_the_output() {
        let mut ch = QuickChannel::new(4);
        let sends = [Some(0), Some(0), None, None];
        let mut wins = [0usize; 2];
        for _ in 0..10 {
            let out = ch.transmit(&sends);
            wins[out.forwarded[0].0] += 1;
        }
        assert_eq!(wins, [5, 5], "persistent colliders must alternate");
    }

    #[test]
    fn idle_slot() {
        let mut ch = QuickChannel::new(3);
        let out = ch.transmit(&[None, None, None]);
        assert!(out.forwarded.is_empty() && out.dropped.is_empty());
    }

    #[test]
    fn conservation() {
        let mut ch = QuickChannel::new(8);
        let sends: Vec<Option<usize>> = (0..8).map(|i| Some(i % 3)).collect();
        let out = ch.transmit(&sends);
        assert_eq!(out.forwarded.len() + out.dropped.len(), 8);
        // One winner per contended target.
        assert_eq!(out.forwarded.len(), 3);
    }
}
