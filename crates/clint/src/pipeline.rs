//! The three-stage bulk channel pipeline (Sec. 4.1, Fig. 5).
//!
//! The bulk channel overlaps scheduling and forwarding: in slot `c` the
//! hosts' configuration packets are scheduled and grants returned; in slot
//! `c+1` the granted bulk request packets (`breq`) traverse the switch; in
//! slot `c+2` the targets return acknowledgment packets (`back`). A new
//! schedule starts every slot, so the pipeline sustains one full slot of
//! transfers per slot despite the 3-slot control latency.

use crate::packets::{ConfigPacket, GrantPacket};
use crate::precalc::{PrecalcSchedule, SlotSchedule};
use lcf_core::request::RequestMatrix;
use std::collections::VecDeque;

/// The pipeline stage a scheduled slot is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineStage {
    /// Config/grant exchange; the scheduler runs.
    Schedule,
    /// Bulk request packets traverse the switch.
    Transfer,
    /// Acknowledgment packets return to the initiators.
    Acknowledge,
}

/// Everything that happened on the bulk channel in one slot.
#[derive(Clone, Debug)]
pub struct SlotEvents {
    /// Slot number.
    pub slot: u64,
    /// Grant packets returned to the hosts (schedule stage of this slot).
    pub grants: Vec<GrantPacket>,
    /// `(initiator, target)` transfers executed this slot (scheduled in the
    /// previous slot).
    pub transfers: Vec<(usize, usize)>,
    /// `(target, initiator)` acknowledgments returned this slot (for
    /// transfers executed in the previous slot).
    pub acks: Vec<(usize, usize)>,
    /// Quick-channel enable mask voted this slot (AND of all intact `qen`
    /// fields): bit `i` clear means the quick switch must not forward from
    /// host `i`.
    pub quick_enable: u16,
}

/// The bulk-channel pipeline: a Clint scheduler plus two slots of in-flight
/// schedule state.
pub struct BulkPipeline {
    n: usize,
    slot: u64,
    scheduler: crate::precalc::ClintScheduler,
    // Front = transfer stage, back = schedule stage of the previous slot.
    in_flight: VecDeque<SlotSchedule>,
    requests: RequestMatrix,
}

impl BulkPipeline {
    /// Creates a pipeline for `n <= 16` hosts (the config packet's bit
    /// vectors are 16 wide).
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= 16, "Clint supports up to 16 hosts");
        BulkPipeline {
            n,
            slot: 0,
            scheduler: crate::precalc::ClintScheduler::new(n),
            in_flight: VecDeque::new(),
            requests: RequestMatrix::new(n),
        }
    }

    /// Number of hosts.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current slot number.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Advances one slot.
    ///
    /// `configs[i]` is host `i`'s configuration packet, or `None` if it was
    /// lost or failed its CRC check — the scheduler then treats the host as
    /// requesting nothing and flags `crc_err` in its next grant packet
    /// (Sec. 4.1's `CRCErr` field).
    pub fn step(&mut self, configs: &[Option<ConfigPacket>]) -> SlotEvents {
        self.step_with_status(configs, &vec![false; self.n])
    }

    /// Like [`step`](BulkPipeline::step), additionally reporting per-host
    /// link errors detected since the last grant packet — they come back in
    /// the grants' `linkErr` flag (Sec. 4.1).
    pub fn step_with_status(
        &mut self,
        configs: &[Option<ConfigPacket>],
        link_errors: &[bool],
    ) -> SlotEvents {
        assert_eq!(configs.len(), self.n, "one config slot per host");
        assert_eq!(link_errors.len(), self.n, "one link status per host");

        // Enable voting: hosts use ben/qen "to disable malfunctioning
        // hosts". The switch ANDs the vectors from all intact configs — a
        // host is forwarded from only while every peer agrees it is healthy.
        // Lost configs vote all-enabled so a CRC error cannot disable the
        // cluster.
        let bulk_enable = configs
            .iter()
            .flatten()
            .fold(0xFFFFu16, |acc, c| acc & c.ben);
        let quick_enable = configs
            .iter()
            .flatten()
            .fold(0xFFFFu16, |acc, c| acc & c.qen);

        // Schedule stage: build request matrix + precalc claims from the
        // configs that arrived intact, skipping bulk-disabled initiators.
        let mut precalc = PrecalcSchedule::new(self.n);
        for (i, cfg) in configs.iter().enumerate() {
            let enabled = bulk_enable & (1 << i) != 0;
            for j in 0..self.n {
                self.requests
                    .set(i, j, enabled && cfg.is_some_and(|c| c.requests(j)));
                if enabled && cfg.is_some_and(|c| c.preclaims(j)) {
                    precalc.claim(i, j);
                }
            }
        }
        let schedule = self.scheduler.schedule(&self.requests, &precalc);

        let grants: Vec<GrantPacket> = (0..self.n)
            .map(|i| {
                // A grant packet reports at most one unicast target; a
                // multicast owner knows its targets from its own precalc.
                let gnt = schedule.lcf.output_for(i).or_else(|| {
                    let t = schedule.precalc.targets_of(i);
                    t.first().copied()
                });
                GrantPacket {
                    node_id: i as u8,
                    gnt: gnt.unwrap_or(0) as u8,
                    gnt_val: gnt.is_some(),
                    link_err: link_errors[i],
                    crc_err: configs[i].is_none(),
                }
            })
            .collect();

        // Transfer stage: execute the schedule computed last slot.
        let transfers: Vec<(usize, usize)> = self
            .in_flight
            .back()
            .map(|s| {
                let mut t: Vec<(usize, usize)> = s.precalc.connections().collect();
                t.extend(s.lcf.pairs());
                t.sort_unstable();
                t
            })
            .unwrap_or_default();

        // Acknowledge stage: ack the transfers of two slots ago.
        let acks: Vec<(usize, usize)> = if self.in_flight.len() == 2 {
            // lint:allow(no-panic): front() of a deque whose len was checked == 2
            let s = self.in_flight.front().expect("len checked");
            let mut a: Vec<(usize, usize)> = s.precalc.connections().map(|(i, j)| (j, i)).collect();
            a.extend(s.lcf.pairs().map(|(i, j)| (j, i)));
            a.sort_unstable();
            a
        } else {
            Vec::new()
        };

        // Shift the pipeline.
        if self.in_flight.len() == 2 {
            self.in_flight.pop_front();
        }
        self.in_flight.push_back(schedule);

        let events = SlotEvents {
            slot: self.slot,
            grants,
            transfers,
            acks,
            quick_enable,
        };
        self.slot += 1;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(req: u16) -> Option<ConfigPacket> {
        Some(ConfigPacket {
            req,
            ben: 0xFFFF,
            qen: 0xFFFF,
            ..Default::default()
        })
    }

    /// The Fig. 5 timing example: bini0 requests btgt1 and bini1 requests
    /// btgt0. Slot c exchanges cfg/gnt, slot c+1 carries breq(0,1) and
    /// breq(1,0), slot c+2 returns back(1,0) and back(0,1).
    #[test]
    fn paper_figure5_timing() {
        let mut pipe = BulkPipeline::new(2);
        let configs = [cfg(0b10), cfg(0b01)]; // host0 -> tgt1, host1 -> tgt0

        // Slot c: schedule stage only.
        let c = pipe.step(&configs);
        assert!(c.grants[0].gnt_val && c.grants[0].gnt == 1);
        assert!(c.grants[1].gnt_val && c.grants[1].gnt == 0);
        assert!(c.transfers.is_empty(), "transfer happens next slot");
        assert!(c.acks.is_empty());

        // Slot c+1: the granted requests traverse the switch.
        let c1 = pipe.step(&[None, None]);
        assert_eq!(c1.transfers, vec![(0, 1), (1, 0)]);
        assert!(c1.acks.is_empty());

        // Slot c+2: acknowledgments return (target, initiator).
        let c2 = pipe.step(&[None, None]);
        assert!(c2.transfers.is_empty());
        assert_eq!(c2.acks, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn pipeline_sustains_one_schedule_per_slot() {
        // Persistent cross traffic: after the 2-slot fill, every slot
        // carries transfers and acks simultaneously (full overlap).
        let mut pipe = BulkPipeline::new(2);
        let configs = [cfg(0b10), cfg(0b01)];
        pipe.step(&configs);
        pipe.step(&configs);
        for _ in 0..5 {
            let ev = pipe.step(&configs);
            assert_eq!(ev.transfers.len(), 2, "pipeline must stay full");
            assert_eq!(ev.acks.len(), 2);
        }
    }

    #[test]
    fn missing_config_flags_crc_err() {
        let mut pipe = BulkPipeline::new(2);
        let ev = pipe.step(&[cfg(0b10), None]);
        assert!(!ev.grants[0].crc_err);
        assert!(ev.grants[1].crc_err, "lost config must set CRCErr");
        assert!(!ev.grants[1].gnt_val, "host without config gets no grant");
    }

    #[test]
    fn precalc_claims_flow_through_pipeline() {
        let mut pipe = BulkPipeline::new(4);
        let mut configs: Vec<Option<ConfigPacket>> = vec![cfg(0); 4];
        // Host 2 pre-claims targets 0 and 3 (multicast).
        configs[2] = Some(ConfigPacket {
            pre: 0b1001,
            ben: 0xFFFF,
            qen: 0xFFFF,
            ..Default::default()
        });
        let c = pipe.step(&configs);
        assert!(c.grants[2].gnt_val);
        let c1 = pipe.step(&[None; 4]);
        assert_eq!(c1.transfers, vec![(2, 0), (2, 3)]);
    }

    #[test]
    fn slot_counter_advances() {
        let mut pipe = BulkPipeline::new(2);
        assert_eq!(pipe.slot(), 0);
        pipe.step(&[None, None]);
        pipe.step(&[None, None]);
        assert_eq!(pipe.slot(), 2);
    }

    #[test]
    #[should_panic(expected = "up to 16 hosts")]
    fn too_many_hosts_panics() {
        let _ = BulkPipeline::new(17);
    }

    #[test]
    fn ben_vote_disables_a_malfunctioning_host() {
        let mut pipe = BulkPipeline::new(4);
        // Host 2 requests target 0; host 0 votes to disable host 2.
        let mut configs: Vec<Option<ConfigPacket>> = vec![
            Some(ConfigPacket {
                ben: !(1 << 2),
                qen: 0xFFFF,
                ..Default::default()
            }),
            cfg(0),
            Some(ConfigPacket {
                req: 0b0001,
                ben: 0xFFFF,
                qen: 0xFFFF,
                ..Default::default()
            }),
            cfg(0),
        ];
        let c = pipe.step(&configs);
        assert!(!c.grants[2].gnt_val, "disabled host must get no grant");
        let c1 = pipe.step(&[None; 4]);
        assert!(c1.transfers.is_empty());

        // Once the vote is withdrawn, the host is served again.
        configs[0] = cfg(0);
        let c = pipe.step(&configs);
        assert!(c.grants[2].gnt_val);
    }

    #[test]
    fn qen_vote_propagates_to_events() {
        let mut pipe = BulkPipeline::new(4);
        let configs: Vec<Option<ConfigPacket>> = vec![
            Some(ConfigPacket {
                ben: 0xFFFF,
                qen: !(1 << 3),
                ..Default::default()
            }),
            cfg(0),
            None, // lost config must not disable anyone
            cfg(0),
        ];
        let c = pipe.step(&configs);
        assert_eq!(c.quick_enable & (1 << 3), 0, "host 3 quick-disabled");
        assert_ne!(c.quick_enable & (1 << 2), 0, "lost config votes enabled");
    }

    #[test]
    fn link_errors_reported_in_grants() {
        let mut pipe = BulkPipeline::new(2);
        let ev = pipe.step_with_status(&[cfg(0), cfg(0)], &[true, false]);
        assert!(ev.grants[0].link_err);
        assert!(!ev.grants[1].link_err);
    }
}
