//! CRC-16 for the Clint control packets.
//!
//! The config and grant packet formats (Sec. 4.1) both end in a 16-bit CRC
//! used to detect transmission errors. We use CRC-16/CCITT-FALSE
//! (polynomial `0x1021`, initial value `0xFFFF`, no reflection) — a common
//! choice for short control frames and fully sufficient for the model.

/// CRC-16/CCITT-FALSE polynomial.
pub const POLY: u16 = 0x1021;
/// CRC-16/CCITT-FALSE initial value.
pub const INIT: u16 = 0xFFFF;

/// Computes the CRC-16/CCITT-FALSE of `data`.
///
/// ```
/// use lcf_clint::crc::crc16;
/// assert_eq!(crc16(b"123456789"), 0x29B1); // the standard check value
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = INIT;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ POLY;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Appends the CRC (big-endian) to a frame.
pub fn append_crc(frame: &mut Vec<u8>) {
    let c = crc16(frame);
    frame.extend_from_slice(&c.to_be_bytes());
}

/// Verifies a frame that ends in its big-endian CRC; returns the payload on
/// success.
pub fn check_crc(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 2 {
        return None;
    }
    let (payload, tail) = frame.split_at(frame.len() - 2);
    let expect = u16::from_be_bytes([tail[0], tail[1]]);
    (crc16(payload) == expect).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The CRC-16/CCITT-FALSE check value for "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16(&[]), INIT);
    }

    #[test]
    fn append_then_check_roundtrip() {
        let mut frame = vec![0xDE, 0xAD, 0xBE, 0xEF];
        append_crc(&mut frame);
        assert_eq!(frame.len(), 6);
        assert_eq!(check_crc(&frame), Some(&[0xDE, 0xAD, 0xBE, 0xEF][..]));
    }

    #[test]
    fn single_bit_flip_detected() {
        let mut frame = vec![1, 2, 3, 4, 5];
        append_crc(&mut frame);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupted = frame.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    check_crc(&corrupted).is_none(),
                    "flip at byte {byte} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn burst_errors_detected() {
        // CRC-16 detects all burst errors up to 16 bits.
        let mut frame = vec![0x55; 10];
        append_crc(&mut frame);
        for start in 0..frame.len() - 1 {
            let mut corrupted = frame.clone();
            corrupted[start] ^= 0xFF;
            corrupted[start + 1] ^= 0xFF;
            assert!(
                check_crc(&corrupted).is_none(),
                "burst at {start} undetected"
            );
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(check_crc(&[]).is_none());
        assert!(check_crc(&[0x12]).is_none());
    }
}
