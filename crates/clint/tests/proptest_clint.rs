//! Property tests for the Clint packet codecs and the precalculated
//! schedule integrity check.

use lcf_clint::crc::{append_crc, check_crc, crc16};
use lcf_clint::packets::{ConfigPacket, GrantPacket};
use lcf_clint::precalc::PrecalcSchedule;
use lcf_core::request::RequestMatrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CRC framing round-trips for arbitrary payloads.
    #[test]
    fn crc_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut frame = payload.clone();
        append_crc(&mut frame);
        prop_assert_eq!(check_crc(&frame), Some(payload.as_slice()));
    }

    /// Any single-bit corruption anywhere in a frame is detected.
    #[test]
    fn crc_detects_any_single_bit_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        byte_pick in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut frame = payload;
        append_crc(&mut frame);
        let byte = byte_pick as usize % frame.len();
        frame[byte] ^= 1 << bit;
        prop_assert!(check_crc(&frame).is_none());
    }

    /// CRC is a function of the data (equal data, equal CRC; this guards
    /// against accidental statefulness in the implementation).
    #[test]
    fn crc_is_pure(data in proptest::collection::vec(any::<u8>(), 0..48)) {
        prop_assert_eq!(crc16(&data), crc16(&data));
    }

    /// Config packets round-trip every field combination.
    #[test]
    fn config_packet_roundtrip(req in any::<u16>(), pre in any::<u16>(), ben in any::<u16>(), qen in any::<u16>()) {
        let p = ConfigPacket { req, pre, ben, qen };
        prop_assert_eq!(ConfigPacket::decode(&p.encode()), Ok(p));
    }

    /// Grant packets round-trip every legal field combination.
    #[test]
    fn grant_packet_roundtrip(
        node_id in 0u8..16,
        gnt in 0u8..16,
        gnt_val in any::<bool>(),
        link_err in any::<bool>(),
        crc_err in any::<bool>(),
    ) {
        let p = GrantPacket { node_id, gnt, gnt_val, link_err, crc_err };
        prop_assert_eq!(GrantPacket::decode(&p.encode()), Ok(p));
    }

    /// The integrity check always yields a conflict-free multicast schedule
    /// (at most one owner per target), drops exactly the surplus claims,
    /// and never invents a connection nobody claimed.
    #[test]
    fn integrity_check_invariants(
        claims in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
        start in 0usize..8,
    ) {
        let pre = PrecalcSchedule::from_claims(8, claims.clone());
        let (validated, dropped) = pre.validate(start);
        // Each target has at most one owner, and that owner claimed it.
        for j in 0..8 {
            if let Some(i) = validated.owner_of(j) {
                prop_assert!(pre.claims(i, j));
            }
        }
        // Dropped = total distinct claims - surviving connections.
        let distinct: std::collections::HashSet<(usize, usize)> = claims.into_iter().collect();
        prop_assert_eq!(validated.size() + dropped, distinct.len());
    }

    /// The two-stage Clint scheduler never double-books a target between
    /// the precalculated stage and the LCF stage.
    #[test]
    fn clint_schedule_never_double_books(
        claims in proptest::collection::vec((0usize..8, 0usize..8), 0..8),
        bits in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let pre = PrecalcSchedule::from_claims(8, claims);
        let requests = RequestMatrix::from_fn(8, |i, j| bits[i * 8 + j]);
        let mut sched = lcf_clint::precalc::ClintScheduler::new(8);
        let slot = sched.schedule(&requests, &pre);
        for j in 0..8 {
            let pre_owner = slot.precalc.owner_of(j);
            let lcf_owner = slot.lcf.input_for(j);
            prop_assert!(
                pre_owner.is_none() || lcf_owner.is_none(),
                "target {} booked by both stages", j
            );
        }
        // LCF grants must be real requests; precalc owners may be anything
        // (claims are independent of the request vector).
        for (i, j) in slot.lcf.pairs() {
            prop_assert!(requests.get(i, j));
        }
    }
}
