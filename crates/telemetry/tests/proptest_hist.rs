//! Property-based tests of the shared histogram: the quantile/CDF/merge
//! contracts must hold for arbitrary sample streams, including streams
//! with overflow.

use lcf_telemetry::hist::Quantile;
use lcf_telemetry::Histogram;
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..64, 0..200)
}

fn fill(range: usize, samples: &[u64]) -> Histogram {
    let mut h = Histogram::new(range);
    for &v in samples {
        h.add(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles are monotone in q: a higher quantile never reads out a
    /// smaller value, and an exact read-out never follows an overflow one.
    #[test]
    fn quantile_is_monotone_in_q(
        samples in arb_samples(),
        range in 1usize..48,
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let h = fill(range, &samples);
        let (a, b) = (h.quantile(lo), h.quantile(hi));
        prop_assert!(a.value() <= b.value(), "q={lo} -> {a:?}, q={hi} -> {b:?}");
        prop_assert!(
            !a.is_overflow() || b.is_overflow(),
            "overflow at q={lo} but exact at larger q={hi}"
        );
    }

    /// Quantiles are consistent with the CDF: for every CDF point, reading
    /// the quantile at that point's cumulative fraction lands back on the
    /// point's value (and overflow flags agree).
    #[test]
    fn quantile_matches_cdf(samples in arb_samples(), range in 1usize..48) {
        let h = fill(range, &samples);
        for point in h.cdf() {
            let q = h.quantile(point.fraction);
            prop_assert_eq!(q.value(), point.value);
            prop_assert_eq!(q.is_overflow(), point.overflow);
        }
    }

    /// The CDF itself is sound: fractions strictly increase, end at 1.0,
    /// and the overflow flag appears only on the final point.
    #[test]
    fn cdf_is_well_formed(samples in arb_samples(), range in 1usize..48) {
        let h = fill(range, &samples);
        let cdf = h.cdf();
        if samples.is_empty() {
            prop_assert!(cdf.is_empty());
            return;
        }
        let mut prev = 0.0;
        for (k, point) in cdf.iter().enumerate() {
            prop_assert!(point.fraction > prev);
            prop_assert!(point.fraction <= 1.0);
            prop_assert!(!point.overflow || k == cdf.len() - 1);
            prev = point.fraction;
        }
        prop_assert_eq!(cdf.last().map(|p| p.fraction), Some(1.0));
        prop_assert_eq!(cdf.last().map(|p| p.overflow), Some(h.overflow() > 0));
    }

    /// Merging two histograms is exactly concatenating their sample
    /// streams — bucket by bucket, overflow included.
    #[test]
    fn merge_is_concatenation(
        a in arb_samples(),
        b in arb_samples(),
        range in 1usize..48,
    ) {
        let mut merged = fill(range, &a);
        merged.merge(&fill(range, &b)).expect("same range");
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, fill(range, &both));
    }

    /// Overflow accounting: count() covers every sample, overflow() counts
    /// exactly the samples at or beyond the range.
    #[test]
    fn overflow_accounting(samples in arb_samples(), range in 1usize..48) {
        let h = fill(range, &samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        let expect = samples.iter().filter(|&&v| v >= range as u64).count() as u64;
        prop_assert_eq!(h.overflow(), expect);
        if expect > 0 {
            prop_assert_eq!(h.quantile(1.0), Quantile::Overflow { at_least: range as u64 });
        }
    }
}
