//! The slot-clock time base.
//!
//! Deterministic simulations must never read wall clocks (the repo's
//! `wall-clock` lint enforces this), so telemetry is stamped with *slot*
//! counts — the simulator's fundamental time unit — optionally subdivided
//! into *cycles* for models that resolve finer steps inside a slot (the
//! Clint bulk pipeline, the RTL model).

/// A monotonically advancing slot/cycle counter.
///
/// One `SlotClock` per instrumented component; the owner advances it in
/// lock-step with its simulation loop and stamps every emitted event from
/// it. Two runs of the same seed therefore stamp identical times.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotClock {
    slot: u64,
    cycle: u64,
}

impl SlotClock {
    /// A clock at slot 0, cycle 0.
    pub fn new() -> Self {
        SlotClock::default()
    }

    /// A clock positioned at `slot` (cycle 0) — used when measurement
    /// starts after a warm-up window.
    pub fn at_slot(slot: u64) -> Self {
        SlotClock { slot, cycle: 0 }
    }

    /// The current slot.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The current cycle within the slot.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances to the next slot; the cycle counter restarts at 0.
    pub fn advance_slot(&mut self) {
        self.slot += 1;
        self.cycle = 0;
    }

    /// Advances one cycle within the current slot.
    pub fn advance_cycle(&mut self) {
        self.cycle += 1;
    }

    /// Jumps the clock to `slot` (cycle 0). Time never moves backwards:
    /// jumps to earlier slots are ignored.
    pub fn seek(&mut self, slot: u64) {
        if slot > self.slot {
            self.slot = slot;
            self.cycle = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_restarts_cycles() {
        let mut c = SlotClock::new();
        c.advance_cycle();
        c.advance_cycle();
        assert_eq!((c.slot(), c.cycle()), (0, 2));
        c.advance_slot();
        assert_eq!((c.slot(), c.cycle()), (1, 0));
    }

    #[test]
    fn seek_is_monotone() {
        let mut c = SlotClock::at_slot(10);
        c.seek(5);
        assert_eq!(c.slot(), 10, "seek must not move time backwards");
        c.seek(20);
        assert_eq!(c.slot(), 20);
    }
}
