//! The bounded decision-trace ring buffer.
//!
//! Instrumented components push [`Event`]s — a slot stamp, a static kind
//! string, and a small list of named fields — into a [`TraceBuffer`]. The
//! buffer is bounded: once full, the *oldest* events are evicted and
//! counted, so a long run keeps the most recent window instead of growing
//! without limit. Export is JSON-Lines (one event per line), byte-identical
//! across runs of the same seed.

use crate::json::Value;
use std::collections::VecDeque;

/// One traced event.
///
/// `kind` is a `&'static str` so that instrumentation sites cannot
/// accidentally interpolate run-dependent data into the event name — all
/// run-dependent data goes into `fields`, where it is visible and diffable.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Slot the event occurred in.
    pub slot: u64,
    /// Static event name, e.g. `"grant"`, `"drop_pq"`, `"quick_collision"`.
    pub kind: &'static str,
    /// Named payload fields, serialized in the order given here.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Builds an event at `slot` with the given `kind` and no fields.
    pub fn new(slot: u64, kind: &'static str) -> Self {
        Event {
            slot,
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn field(mut self, name: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((name, value.into()));
        self
    }

    /// The event as a JSON object: `{"slot":..,"kind":..,<fields...>}`.
    pub fn to_value(&self) -> Value {
        let mut obj = Vec::with_capacity(2 + self.fields.len());
        obj.push(("slot".to_string(), Value::U64(self.slot)));
        obj.push(("kind".to_string(), Value::Str(self.kind.to_string())));
        for (name, value) in &self.fields {
            obj.push((name.to_string(), value.clone()));
        }
        Value::Obj(obj)
    }

    /// The event rendered as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

/// A bounded ring buffer of trace events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBuffer {
    events: VecDeque<Event>,
    capacity: usize,
    evicted: u64,
}

impl TraceBuffer {
    /// A buffer keeping at most `capacity` events (0 means unbounded).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            capacity,
            evicted: 0,
        }
    }

    /// Records an event, evicting the oldest one if the buffer is full.
    pub fn push(&mut self, event: Event) {
        if self.capacity > 0 && self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full. A non-zero
    /// value means the export is a *suffix* of the run, not the whole run.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Removes and returns all events, oldest-first. The eviction count is
    /// kept (it describes the whole run, not the current window).
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Discards all events and resets the eviction count.
    pub fn clear(&mut self) {
        self.events.clear();
        self.evicted = 0;
    }

    /// The buffer as JSON-Lines: one event per line, oldest-first, each
    /// line terminated by `\n`. Byte-identical across runs of the same
    /// seed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.to_value().write(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shape() {
        let e = Event::new(7, "grant")
            .field("output", 2u64)
            .field("input", 3u64);
        assert_eq!(
            e.to_json(),
            r#"{"slot":7,"kind":"grant","output":2,"input":3}"#
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        for slot in 0..5u64 {
            t.push(Event::new(slot, "tick"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 3);
        let slots: Vec<u64> = t.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![3, 4], "most recent window survives");
    }

    #[test]
    fn unbounded_when_capacity_zero() {
        let mut t = TraceBuffer::new(0);
        for slot in 0..100u64 {
            t.push(Event::new(slot, "tick"));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.evicted(), 0);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut t = TraceBuffer::new(0);
        t.push(Event::new(0, "a"));
        t.push(Event::new(1, "b").field("x", 1u64));
        assert_eq!(
            t.to_jsonl(),
            "{\"slot\":0,\"kind\":\"a\"}\n{\"slot\":1,\"kind\":\"b\",\"x\":1}\n"
        );
    }

    #[test]
    fn drain_empties_but_keeps_eviction_count() {
        let mut t = TraceBuffer::new(1);
        t.push(Event::new(0, "a"));
        t.push(Event::new(1, "b"));
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.evicted(), 1);
    }
}
