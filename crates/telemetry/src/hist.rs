//! Integer-valued histograms with explicit overflow accounting.
//!
//! This is the shared histogram used by both the simulator's latency
//! statistics and the telemetry metrics registry. Compared to a naive
//! bucket array it makes two guarantees that matter for honest reporting:
//!
//! * **Overflow is explicit.** Samples beyond the bucket range are counted,
//!   and every read-out that touches them says so: [`Histogram::cdf`] marks
//!   its final point, [`Histogram::quantile`] returns
//!   [`Quantile::Overflow`] instead of silently reporting the bucket range
//!   as if it were an observed value.
//! * **Histograms merge.** [`Histogram::merge`] combines two histograms of
//!   the same range so that per-shard collectors (e.g. one per sweep
//!   configuration) aggregate exactly as if every sample had been recorded
//!   into one histogram.

/// A quantile read-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantile {
    /// The quantile falls in a regular bucket: the exact recorded value.
    Exact(u64),
    /// The quantile falls among overflowed samples; only a lower bound is
    /// known (the bucket range).
    Overflow {
        /// All overflowed samples are `>= at_least`.
        at_least: u64,
    },
}

impl Quantile {
    /// The exact value, or the lower bound for overflowed quantiles —
    /// the legacy scalar read-out.
    pub fn value(self) -> u64 {
        match self {
            Quantile::Exact(v) => v,
            Quantile::Overflow { at_least } => at_least,
        }
    }

    /// Whether the quantile is only a lower bound.
    pub fn is_overflow(self) -> bool {
        matches!(self, Quantile::Overflow { .. })
    }
}

/// One point of the empirical CDF.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// The bucket value (or the bucket range, for the overflow point).
    pub value: u64,
    /// Cumulative fraction of samples `<= value` (or 1.0 for overflow).
    pub fraction: f64,
    /// True for the final overflow point: `value` is a lower bound on the
    /// samples it covers, not an observed value.
    pub overflow: bool,
}

/// The error returned when merging histograms of different ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeMismatch {
    /// Bucket range of the receiving histogram.
    pub ours: usize,
    /// Bucket range of the histogram being merged in.
    pub theirs: usize,
}

impl std::fmt::Display for RangeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge histograms of ranges {} and {}",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for RangeMismatch {}

/// Integer-valued histogram for values `0..range`, with a saturating
/// overflow bucket for everything else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram for values `0..range` (larger values land in the
    /// overflow bucket).
    pub fn new(range: usize) -> Self {
        assert!(range > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; range],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a value.
    pub fn add(&mut self, value: u64) {
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of values that exceeded the bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bucket range: values `0..range` are recorded exactly.
    pub fn range(&self) -> usize {
        self.buckets.len()
    }

    /// Merges `other` into `self`; afterwards `self` is exactly the
    /// histogram that would have recorded both sample streams. Fails if the
    /// bucket ranges differ (overflowed samples of the narrower histogram
    /// could not be re-bucketed faithfully).
    pub fn merge(&mut self, other: &Histogram) -> Result<(), RangeMismatch> {
        if self.buckets.len() != other.buckets.len() {
            return Err(RangeMismatch {
                ours: self.buckets.len(),
                theirs: other.buckets.len(),
            });
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        Ok(())
    }

    /// The empirical CDF, one [`CdfPoint`] per occupied bucket. If any
    /// sample overflowed, the final point has `overflow: true` and carries
    /// the bucket range as a *lower bound* — it is never conflated with an
    /// observed value.
    pub fn cdf(&self) -> Vec<CdfPoint> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut cum = 0u64;
        for (value, &count) in self.buckets.iter().enumerate() {
            if count > 0 {
                cum += count;
                points.push(CdfPoint {
                    value: value as u64,
                    fraction: cum as f64 / self.total as f64,
                    overflow: false,
                });
            }
        }
        if self.overflow > 0 {
            points.push(CdfPoint {
                value: self.buckets.len() as u64,
                fraction: 1.0,
                overflow: true,
            });
        }
        points
    }

    /// Value at quantile `q ∈ [0, 1]`. Returns [`Quantile::Overflow`] when
    /// the rank falls among overflowed samples, [`Quantile::Exact(0)`] for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> Quantile {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return Quantile::Exact(0);
        }
        // The smallest value whose cumulative fraction reaches q, with the
        // fraction computed exactly as `cdf()` computes it — so the two
        // read-outs can never disagree by a rounding ulp.
        let mut seen = 0u64;
        for (value, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen as f64 / self.total as f64 >= q {
                return Quantile::Exact(value as u64);
            }
        }
        Quantile::Overflow {
            at_least: self.buckets.len() as u64,
        }
    }

    /// The legacy scalar quantile: exact value, or the bucket range as a
    /// lower bound for overflowed quantiles.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        self.quantile(q).value()
    }

    /// Renders the histogram as a JSON value (occupied buckets only):
    /// `{"count":N,"overflow":K,"range":R,"buckets":[[value,count],...]}`.
    pub fn to_value(&self) -> crate::json::Value {
        use crate::json::Value;
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| Value::Seq(vec![Value::U64(v as u64), Value::U64(c)]))
            .collect();
        Value::Obj(vec![
            ("count".into(), Value::U64(self.total)),
            ("overflow".into(), Value::U64(self.overflow)),
            ("range".into(), Value::U64(self.buckets.len() as u64)),
            ("buckets".into(), Value::Seq(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_exact() {
        let mut h = Histogram::new(100);
        for v in 0..100u64 {
            h.add(v);
        }
        assert_eq!(h.quantile(0.0), Quantile::Exact(0));
        assert_eq!(h.quantile(0.5), Quantile::Exact(49));
        assert_eq!(h.quantile(1.0), Quantile::Exact(99));
        assert_eq!(h.count(), 100);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_is_marked_not_conflated() {
        let mut h = Histogram::new(4);
        h.add(1);
        h.add(1000);
        assert_eq!(h.overflow(), 1);
        let q = h.quantile(1.0);
        assert_eq!(q, Quantile::Overflow { at_least: 4 });
        assert!(q.is_overflow());
        assert_eq!(q.value(), 4, "lower bound preserved for legacy read-out");
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 2);
        assert!(!cdf[0].overflow);
        assert!(cdf[1].overflow, "final point must be flagged");
        assert_eq!(cdf[1].value, 4);
        assert_eq!(cdf[1].fraction, 1.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(4);
        assert_eq!(h.quantile(0.99), Quantile::Exact(0));
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn merge_is_concatenation() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        let mut c = Histogram::new(8);
        for v in [0u64, 1, 1, 9] {
            a.add(v);
            c.add(v);
        }
        for v in [2u64, 7, 100] {
            b.add(v);
            c.add(v);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn merge_rejects_range_mismatch() {
        let mut a = Histogram::new(8);
        let b = Histogram::new(16);
        assert_eq!(
            a.merge(&b),
            Err(RangeMismatch {
                ours: 8,
                theirs: 16
            })
        );
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new(4);
        h.add(2);
        h.add(2);
        h.add(9);
        assert_eq!(
            h.to_value().to_json(),
            r#"{"count":3,"overflow":1,"range":4,"buckets":[[2,2]]}"#
        );
    }
}
