//! The metrics registry: counters, gauges and mergeable histograms.
//!
//! Keys are plain strings (instrumentation sites use `&'static str` names;
//! sweep-style aggregators may derive `sweep.cfg3.delivered`-shaped names
//! from config indices). Storage is `BTreeMap`, so iteration — and thus the
//! JSON export — is key-sorted and deterministic regardless of insertion
//! order (`HashMap` is banned repo-wide for exactly this reason).

use crate::hist::Histogram;
use crate::json::Value;
use std::collections::BTreeMap;

/// A registry of named counters, gauges and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (created at 0 on first use).
    pub fn counter_add(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn counter_inc(&mut self, name: impl Into<String>) {
        self.counter_add(name, 1);
    }

    /// Reads counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Reads gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into the histogram `name`, creating it with bucket
    /// range `range` on first use (later calls keep the original range).
    pub fn histogram_record(&mut self, name: impl Into<String>, range: usize, value: u64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(|| Histogram::new(range))
            .add(value);
    }

    /// Merges an already-populated histogram into the slot `name` (cloned in
    /// on first use). Returns `Err` — leaving the slot untouched — when the
    /// slot already holds a histogram of a different bucket range, mirroring
    /// [`merge`](MetricsRegistry::merge)'s mismatch reporting.
    pub fn histogram_merge(
        &mut self,
        name: impl Into<String>,
        hist: &Histogram,
    ) -> Result<(), crate::hist::RangeMismatch> {
        match self.histograms.entry(name.into()) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(hist.clone());
                Ok(())
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => slot.get_mut().merge(hist),
        }
    }

    /// Reads histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Number of distinct metric names across all three kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges `other` into `self`: counters add, gauges take `other`'s value
    /// (last writer wins), histograms merge sample-exactly. Histogram pairs
    /// with mismatched ranges are reported in the returned list (their
    /// samples are *not* silently dropped into a resized histogram — the
    /// caller decides).
    pub fn merge(&mut self, other: &MetricsRegistry) -> Vec<String> {
        for (name, &v) in &other.counters {
            self.counter_add(name.clone(), v);
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        let mut mismatched = Vec::new();
        for (name, theirs) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name.clone(), theirs.clone());
                }
                Some(ours) => {
                    if ours.merge(theirs).is_err() {
                        mismatched.push(name.clone());
                    }
                }
            }
        }
        mismatched
    }

    /// The registry as a deterministic JSON value:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` with keys
    /// sorted inside every section.
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::U64(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Value::F64(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        Value::Obj(vec![
            ("counters".into(), Value::Obj(counters)),
            ("gauges".into(), Value::Obj(gauges)),
            ("histograms".into(), Value::Obj(histograms)),
        ])
    }

    /// The registry rendered as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.counter_inc("slots");
        m.counter_add("slots", 2);
        m.gauge_set("load", 0.8);
        m.histogram_record("occupancy", 16, 3);
        assert_eq!(m.counter("slots"), 3);
        assert_eq!(m.gauge("load"), Some(0.8));
        assert_eq!(m.histogram("occupancy").map(|h| h.count()), Some(1));
        assert_eq!(m.counter("missing"), 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn export_is_key_sorted_and_insertion_independent() {
        let mut a = MetricsRegistry::new();
        a.counter_inc("zeta");
        a.counter_inc("alpha");
        let mut b = MetricsRegistry::new();
        b.counter_inc("alpha");
        b.counter_inc("zeta");
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().find("alpha").unwrap() < a.to_json().find("zeta").unwrap());
    }

    #[test]
    fn merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", 2);
        a.gauge_set("g", 1.0);
        a.histogram_record("h", 8, 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("n", 3);
        b.gauge_set("g", 2.0);
        b.histogram_record("h", 8, 7);
        b.histogram_record("only-b", 4, 0);
        assert!(a.merge(&b).is_empty());
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.gauge("g"), Some(2.0));
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(2));
        assert_eq!(a.histogram("only-b").map(|h| h.count()), Some(1));
    }

    #[test]
    fn histogram_merge_clones_then_accumulates() {
        let mut h = Histogram::new(8);
        h.add(1);
        h.add(3);
        let mut m = MetricsRegistry::new();
        assert!(m.histogram_merge("occ", &h).is_ok());
        assert!(m.histogram_merge("occ", &h).is_ok());
        assert_eq!(m.histogram("occ").map(|h| h.count()), Some(4));
        let wrong = Histogram::new(16);
        assert!(m.histogram_merge("occ", &wrong).is_err());
        assert_eq!(m.histogram("occ").map(|h| h.count()), Some(4), "unchanged");
    }

    #[test]
    fn merge_reports_range_mismatch() {
        let mut a = MetricsRegistry::new();
        a.histogram_record("h", 8, 1);
        let mut b = MetricsRegistry::new();
        b.histogram_record("h", 16, 1);
        assert_eq!(a.merge(&b), vec!["h".to_string()]);
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(1), "unchanged");
    }
}
