//! # lcf-telemetry — deterministic observability primitives
//!
//! The paper's argument is built from *per-slot decisions* — who had the
//! fewest choices, who held the round-robin position, how a tie broke — so
//! this crate provides the plumbing to record those decisions without
//! compromising the repo's reproducibility contract:
//!
//! * [`clock::SlotClock`] — a slot/cycle time base. Simulation telemetry is
//!   stamped with slot counts, never wall clocks (`lcf-lint` forbids
//!   `SystemTime`/`Instant` in deterministic code, and this crate honors the
//!   same rule).
//! * [`metrics::MetricsRegistry`] — counters, gauges and mergeable
//!   [`hist::Histogram`]s keyed by names, exported as deterministic JSON
//!   (keys sorted, insertion-independent).
//! * [`trace::TraceBuffer`] — a bounded ring buffer of [`trace::Event`]s
//!   with JSON-Lines export. Under a fixed seed the exported bytes are
//!   identical run over run, which is what makes traces *testable* (golden
//!   fixtures, equivalence checks) rather than merely printable.
//!
//! The crate is dependency-free; JSON is written by the in-tree
//! [`json::Value`] writer. Everything here is plain data — no global state,
//! no I/O — so instrumented code stays easy to reason about and trivially
//! compiles out when the consumer's `telemetry` feature is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod trace;

pub use clock::SlotClock;
pub use hist::{CdfPoint, Histogram, Quantile};
pub use json::Value;
pub use metrics::MetricsRegistry;
pub use trace::{Event, TraceBuffer};
