//! A minimal deterministic JSON writer.
//!
//! The build environment is dependency-free, so traces and metrics are
//! serialized by this hand-rolled writer. Determinism rules:
//!
//! * object keys are written in the order the caller supplies them (the
//!   metrics registry supplies them sorted — it stores `BTreeMap`s),
//! * floats use Rust's shortest round-trip formatting (`{}`), which is
//!   platform-independent; non-finite floats become `null` (JSON has no
//!   NaN/Infinity),
//! * no whitespace is emitted, so byte-for-byte comparison of two exports
//!   is meaningful.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`null` if not finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object with caller-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Serializes the value into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                // Integers formatted via std; no allocation beyond `out`.
                use std::fmt::Write as _;
                // lint:allow(no-panic): fmt::Write to String cannot fail
                write!(out, "{v}").expect("write to String");
            }
            Value::I64(v) => {
                use std::fmt::Write as _;
                // lint:allow(no-panic): fmt::Write to String cannot fail
                write!(out, "{v}").expect("write to String");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    use std::fmt::Write as _;
                    // lint:allow(no-panic): fmt::Write to String cannot fail
                    write!(out, "{v}").expect("write to String");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value rendered as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Seq(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                // lint:allow(no-panic): fmt::Write to String cannot fail
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::U64(42).to_json(), "42");
        assert_eq!(Value::I64(-7).to_json(), "-7");
        assert_eq!(Value::F64(0.5).to_json(), "0.5");
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Value::Str("a\"b\\c\nd".into()).to_json(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Value::Str("\u{1}".into()).to_json(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let v = Value::Obj(vec![
            ("kind".into(), "grant".into()),
            ("ports".into(), Value::Seq(vec![1u64.into(), 2u64.into()])),
        ]);
        assert_eq!(v.to_json(), r#"{"kind":"grant","ports":[1,2]}"#);
    }

    #[test]
    fn float_format_is_shortest_roundtrip() {
        assert_eq!(Value::F64(1.0).to_json(), "1");
        assert_eq!(Value::F64(0.1).to_json(), "0.1");
        assert_eq!(Value::F64(1.0 / 3.0).to_json(), "0.3333333333333333");
    }
}
