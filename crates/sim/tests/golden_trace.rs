//! Golden-trace snapshot: the decision trace of a pinned-seed n = 4
//! central-LCF run must be **byte-identical** to the committed fixture —
//! the same contract the `lcf-rng` golden tests pin for the raw random
//! stream, lifted to the full telemetry pipeline (traffic → slot loop →
//! scheduler decisions → JSON-Lines export).
//!
//! If this test fails, the reproducibility contract broke: a published
//! trace no longer regenerates from its seed. Fix the regression — do not
//! re-bless the fixture — unless the release notes declare a trace-format
//! or stream break. To re-bless deliberately:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lcf-sim --features telemetry --test golden_trace
//! ```

#![cfg(feature = "telemetry")]

use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::run_sim_traced;

const FIXTURE: &str = include_str!("fixtures/golden_trace_n4.jsonl");
const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace_n4.jsonl"
);

fn golden_cfg() -> SimConfig {
    SimConfig {
        model: ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
        n: 4,
        load: 0.85,
        warmup_slots: 8,
        measure_slots: 24,
        seed: 0x601D,
        ..SimConfig::paper_default()
    }
}

fn run_trace() -> String {
    let (_, telemetry) = run_sim_traced(&golden_cfg(), 0);
    assert_eq!(
        telemetry.trace.evicted(),
        0,
        "fixture must be the whole run"
    );
    telemetry.trace.to_jsonl()
}

#[test]
fn golden_trace_matches_fixture_twice() {
    let first = run_trace();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(FIXTURE_PATH, &first).expect("write fixture");
        eprintln!("re-blessed {FIXTURE_PATH}");
    }

    // Twice in a row from fresh state: the trace is a pure function of the
    // seed, not of allocator or scheduler-object history.
    let second = run_trace();
    assert_eq!(
        first, second,
        "same seed, same process: trace must not drift"
    );

    if std::env::var("UPDATE_GOLDEN").is_err() {
        assert_eq!(
            first, FIXTURE,
            "trace diverged from the committed golden fixture"
        );
    }
}

/// The fixture freezes the *legacy* Bernoulli stream: `paper_default()`
/// (which `golden_cfg` inherits its traffic kind from) must keep the legacy
/// generator, or the byte-identity check above would silently start testing
/// a different process.
#[test]
fn golden_cfg_pins_the_legacy_generator() {
    let cfg = golden_cfg();
    assert_eq!(cfg.traffic, lcf_sim::config::TrafficKind::Bernoulli);
    assert!(!cfg.traffic.is_fast());
}

#[test]
fn golden_trace_is_wellformed_jsonl() {
    // Every fixture line is one JSON object with the mandatory envelope
    // keys in canonical order. (A full JSON parser is overkill — the
    // writer is first-party and tested; this guards the envelope shape.)
    assert!(!FIXTURE.is_empty());
    for line in FIXTURE.lines() {
        assert!(line.starts_with("{\"slot\":"), "bad envelope: {line}");
        assert!(line.contains("\"kind\":"), "missing kind: {line}");
        assert!(line.ends_with('}'), "truncated line: {line}");
    }
    // The pinned run exercises the interesting decision kinds.
    for kind in ["\"kind\":\"grant\"", "\"reason\":\"rr_position\""] {
        assert!(FIXTURE.contains(kind), "fixture never exercises {kind}");
    }
}

/// Scheduler events are recorded with slot 0 (schedulers have no time base)
/// and re-stamped by the shared `drive()` loop. If the re-stamping were ever
/// lost, every event would carry a slot below the warm-up boundary — so pin
/// that each fixture line lands inside the measurement window.
#[test]
fn golden_trace_slots_are_restamped_into_measurement_window() {
    let cfg = golden_cfg();
    let window = cfg.warmup_slots..cfg.warmup_slots + cfg.measure_slots;
    for line in FIXTURE.lines() {
        let rest = line
            .strip_prefix("{\"slot\":")
            .expect("envelope starts with slot");
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let slot: u64 = digits.parse().expect("slot number");
        assert!(
            window.contains(&slot),
            "event stamped outside the measurement window ({window:?}): {line}"
        );
    }
}
