//! Serve/session contracts: windowed stepping is observationally identical
//! to the one-shot drive protocol, shard merging is order-independent, the
//! sharded serve engine is byte-deterministic across runs, reconfiguration
//! is deterministic, and graceful drains terminate.

use lcf_core::bitkern::Backend;
use lcf_core::registry::{SchedulerKind, WeightedKind};
use lcf_core::traits::Scheduler as _;
use lcf_sim::config::{ModelKind, SimConfig, TrafficKind};
use lcf_sim::model::{drive, DriveOptions, SwitchModel};
use lcf_sim::serve::{merge_window_reports, serve, ControlScript, ServeConfig};
use lcf_sim::session::{DriveSession, WindowReport};
use lcf_sim::stats::{Histogram, SimStats};
use lcf_sim::switch::{IqSwitch, QueueMode, WeightSource};
use lcf_sim::traffic::{Bernoulli, DestPattern, Silence, Traffic};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;
const BUCKET: usize = 512;
const WARMUP: u64 = 400;
const MEASURE: u64 = 2_000;

/// One (model, traffic, rng) triple, constructed identically every call so
/// two builds evolve bit-identically under the same stepping schedule.
fn build(kind: SchedulerKind, backend: Backend, seed: u64) -> (IqSwitch, Bernoulli, StdRng) {
    let (scheduler, _) = kind.build_with_backend(N, 4, seed ^ 0x5EED, backend);
    (
        IqSwitch::new(N, scheduler, QueueMode::Voq { cap: 64 }, 200),
        Bernoulli::new(N, 0.7, DestPattern::Uniform),
        StdRng::seed_from_u64(seed),
    )
}

fn assert_stats_eq(a: &SimStats, b: &SimStats) {
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.dropped(), b.dropped());
    assert_eq!(a.latency_samples(), b.latency_samples());
    assert_eq!(a.mean_latency(), b.mean_latency(), "bit-equal Welford mean");
    assert_eq!(a.latency_quantile(0.5), b.latency_quantile(0.5));
    assert_eq!(a.latency_quantile(0.99), b.latency_quantile(0.99));
}

/// The tentpole equivalence: repeated `step_window(w)` calls — any chunking
/// — reproduce the one-shot `drive()` protocol exactly, on both kernel
/// backends.
#[test]
fn windowed_stepping_matches_one_shot_drive() {
    for backend in [Backend::Scalar, Backend::Bitset] {
        let (mut model, mut traffic, mut rng) = build(SchedulerKind::LcfCentralRr, backend, 42);
        let opts = DriveOptions::new(WARMUP, MEASURE, BUCKET);
        let oneshot = drive(&mut model, &mut traffic, &mut rng, &opts);

        for window in [1u64, 7, 250, MEASURE] {
            let (model, traffic, rng) = build(SchedulerKind::LcfCentralRr, backend, 42);
            let mut session = DriveSession::new(model, traffic, rng, BUCKET);
            session.step_window(WARMUP);
            session.begin_measurement();
            let mut left = MEASURE;
            while left > 0 {
                let step = window.min(left);
                let report = session.step_window(step);
                assert_eq!(report.slots, step);
                left -= step;
            }
            let windowed = session.into_stats();
            assert_stats_eq(&oneshot, &windowed);
        }
    }
}

/// Same equivalence with telemetry enabled: the decision trace and metrics
/// registry are byte-identical whether the measurement ran as one window or
/// many.
#[cfg(feature = "telemetry")]
#[test]
fn windowed_stepping_matches_one_shot_trace() {
    let (mut model, mut traffic, mut rng) = build(SchedulerKind::LcfCentralRr, Backend::Bitset, 7);
    let opts = DriveOptions::new(WARMUP, MEASURE, BUCKET).traced(0);
    let oneshot_stats = drive(&mut model, &mut traffic, &mut rng, &opts);
    let oneshot = model.take_telemetry().expect("telemetry was enabled");

    let (model, traffic, rng) = build(SchedulerKind::LcfCentralRr, Backend::Bitset, 7);
    let mut session = DriveSession::new(model, traffic, rng, BUCKET);
    session.step_window(WARMUP);
    session.enable_telemetry(0);
    session.begin_measurement();
    for _ in 0..MEASURE / 100 {
        session.step_window(100);
    }
    let windowed = session
        .model_mut()
        .take_telemetry()
        .expect("telemetry was enabled");
    let windowed_stats = session.into_stats();

    assert_stats_eq(&oneshot_stats, &windowed_stats);
    assert_eq!(oneshot.trace.to_jsonl(), windowed.trace.to_jsonl());
    assert_eq!(oneshot.metrics.to_json(), windowed.metrics.to_json());
}

/// Occupancy sampling is a pure observer: a sampling session and a
/// non-sampling session evolve identically, and the per-window histogram
/// accounts for exactly one sample per slot.
#[test]
fn occupancy_sampling_does_not_perturb_the_run() {
    let (model, traffic, rng) = build(SchedulerKind::Islip, Backend::Bitset, 11);
    let mut plain = DriveSession::new(model, traffic, rng, BUCKET);
    let (model, traffic, rng) = build(SchedulerKind::Islip, Backend::Bitset, 11);
    let mut sampling = DriveSession::new(model, traffic, rng, BUCKET);
    sampling.sample_occupancy(1 << 12);

    for _ in 0..4 {
        let a = plain.step_window(500);
        let b = sampling.step_window(500);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.backlog, b.backlog);
        assert!(a.occupancy.is_none());
        let hist = b.occupancy.expect("sampler was enabled");
        assert_eq!(hist.count() + hist.overflow(), 500, "one sample per slot");
        assert!(b.mean_backlog >= 0.0);
    }
}

/// Shard-merge determinism under forced orderings: every permutation of the
/// per-shard reports — the worst thread interleaving the coordinator could
/// observe — merges to the same registry JSON, occupancy histograms
/// included.
#[test]
fn shard_merge_is_thread_order_independent() {
    let report = |shard: usize| {
        let mut hist = Histogram::new(64);
        for v in 0..(shard as u64 + 3) {
            hist.add(v);
        }
        WindowReport {
            start_slot: 400,
            slots: 500,
            generated: 1_000 + shard as u64,
            delivered: 990 - shard as u64,
            dropped: shard as u64,
            latency_samples: 900,
            mean_latency: 1.5 * (shard + 1) as f64,
            backlog: 10 * shard,
            mean_backlog: 2.0 * shard as f64,
            occupancy: Some(hist),
        }
    };
    let reports: Vec<(usize, WindowReport)> = (0..3).map(|s| (s, report(s))).collect();
    let reference = merge_window_reports(&reports).to_json();
    let permutations: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for perm in permutations {
        let shuffled: Vec<(usize, WindowReport)> =
            perm.iter().map(|&i| reports[i].clone()).collect();
        assert_eq!(merge_window_reports(&shuffled).to_json(), reference);
    }
    let merged = merge_window_reports(&reports);
    assert_eq!(merged.counter("serve.generated"), 3_003);
    assert_eq!(
        merged.histogram("serve.occupancy").map(|h| h.count()),
        Some(3 + 4 + 5),
        "occupancy merges sample-exactly"
    );
}

fn quick_serve_cfg(script: ControlScript) -> ServeConfig {
    let base = SimConfig {
        model: ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
        n: N,
        load: 0.6,
        warmup_slots: 200,
        measure_slots: 0,
        traffic: TrafficKind::Bernoulli,
        seed: 0xD1CE,
        max_latency_bucket: BUCKET,
        ..SimConfig::paper_default()
    };
    ServeConfig {
        shards: 3,
        window_slots: 300,
        windows: 4,
        drain_deadline_slots: 20_000,
        occupancy_range: 1 << 12,
        script,
        ..ServeConfig::new(base)
    }
}

/// The full engine — worker threads, barrier, coordinator — emits
/// byte-identical merged snapshots on every run, whatever the OS makes of
/// the thread schedule.
#[test]
fn serve_output_is_byte_deterministic_across_runs() {
    let cfg = quick_serve_cfg(ControlScript::empty());
    let first = serve(&cfg).expect("serve runs");
    for _ in 0..3 {
        let again = serve(&cfg).expect("serve runs");
        assert_eq!(first.snapshots, again.snapshots);
        assert_eq!(first.drain_json, again.drain_json);
    }
    assert_eq!(first.windows_run, 4);
    assert!(first.drained, "light load drains inside the deadline");
}

/// Online reconfiguration — scheduler swap, backend swap, load change, then
/// a scripted early drain — is deterministic and actually takes effect.
#[test]
fn scripted_reconfiguration_is_deterministic_and_effective() {
    let script = ControlScript::parse(
        "at 1 scheduler islip\nat 1 load 0.3\nat 2 backend scalar\nat 3 drain\n",
    )
    .expect("valid script");
    let cfg = quick_serve_cfg(script);
    let a = serve(&cfg).expect("serve runs");
    let b = serve(&cfg).expect("serve runs");
    assert_eq!(a.snapshots, b.snapshots);
    assert_eq!(a.drain_json, b.drain_json);
    assert_eq!(
        a.windows_run, 3,
        "the 'at 3 drain' command ends measurement"
    );
    assert!(a.drained);
    assert!(!a.drain_json.is_empty());

    let unscripted = serve(&quick_serve_cfg(ControlScript::empty())).expect("serve runs");
    assert_ne!(
        a.snapshots[1], unscripted.snapshots[1],
        "the window-1 swap must change the merged snapshot"
    );
    assert_eq!(
        a.snapshots[0], unscripted.snapshots[0],
        "windows before the first command are untouched"
    );
}

/// The scheduler-swap surface itself: port-count mismatches and weighted
/// engines are rejected, a valid swap installs the new scheduler.
#[test]
fn swap_scheduler_validates_and_installs() {
    let (mut switch, _, _) = build(SchedulerKind::LcfCentralRr, Backend::Bitset, 3);
    let (wrong_ports, _) = SchedulerKind::Islip.build_with_backend(N * 2, 4, 0, Backend::Bitset);
    let err = switch
        .swap_scheduler(wrong_ports)
        .err()
        .expect("port mismatch must be rejected");
    assert!(err.contains("port count"), "{err}");

    let (islip, _) = SchedulerKind::Islip.build_with_backend(N, 4, 0, Backend::Bitset);
    let old = switch.swap_scheduler(islip).expect("valid swap");
    assert_eq!(old.name(), "lcf_central_rr");
    assert_eq!(SwitchModel::scheduler_name(&switch), "islip");

    let weighted = WeightedKind::Lqf.build(N);
    let mut weighted_switch =
        IqSwitch::new_weighted(N, weighted, WeightSource::QueueLength, 64, 200);
    let (other, _) = SchedulerKind::Pim.build_with_backend(N, 4, 0, Backend::Bitset);
    let err = weighted_switch
        .swap_scheduler(other)
        .err()
        .expect("weighted engines must reject swaps");
    assert!(err.contains("weighted"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Graceful drains terminate: after arrivals stop, every buffered
    /// packet is eventually delivered and the books balance.
    #[test]
    fn drain_terminates_and_conserves_packets(
        kind in proptest::sample::select(SchedulerKind::VOQ_PRACTICAL.to_vec()),
        load in 0.05f64..=0.95,
        seed in any::<u64>(),
    ) {
        let (scheduler, _) = kind.build_with_backend(N, 4, seed ^ 0x5EED, Backend::Bitset);
        let model = IqSwitch::new(N, scheduler, QueueMode::Voq { cap: 64 }, 200);
        let traffic: Box<dyn Traffic> = Box::new(Bernoulli::new(N, load, DestPattern::Uniform));
        let rng = StdRng::seed_from_u64(seed);
        let mut session = DriveSession::new(model, traffic, rng, BUCKET);
        session.step_window(500);
        let report = session.drain(Box::new(Silence::new(N)), 50_000);
        prop_assert!(report.drained, "drain must finish before the deadline");
        prop_assert_eq!(report.remaining_packets, 0);
        prop_assert_eq!(session.buffered_packets(), 0);
        let stats = session.stats();
        prop_assert_eq!(stats.generated, stats.delivered + stats.dropped());
    }
}
