//! Per-flow FIFO ordering and conservation across every switch model.
//!
//! A correct switch delivers packets of the same (input, output) flow in
//! generation order. With a probe flow generating exactly one packet per
//! slot, the k-th delivery on that flow must carry `generated_at == k − 1`;
//! the [`FlowOrderChecker`] verifies that reconstruction.

use lcf_core::registry::SchedulerKind;
use lcf_core::weighted::GreedyWeight;
use lcf_sim::cioq::CioqSwitch;
use lcf_sim::outbuf::ObSwitch;
use lcf_sim::packet::Packet;
use lcf_sim::stats::{FlowOrderChecker, SimStats};
use lcf_sim::switch::{IqSwitch, QueueMode, WeightSource};
use lcf_sim::traffic::{Bernoulli, DestPattern, OnOffBursty, Traffic};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Input 0 sends one packet per slot to output 0; other inputs offer
/// Bernoulli background noise.
struct ProbeFlow {
    n: usize,
    background: Bernoulli,
}

impl Traffic for ProbeFlow {
    fn n(&self) -> usize {
        self.n
    }

    fn arrival(&mut self, slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        if input == 0 {
            Some(0)
        } else {
            self.background.arrival(slot, input, rng)
        }
    }
}

#[test]
fn single_flow_is_fifo_through_every_scheduler() {
    let n = 4;
    let slots = 3_000u64;
    let schedulers = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
    ];
    for kind in schedulers {
        let mut sw = IqSwitch::new(n, kind.build(n, 4, 7), QueueMode::Voq { cap: 256 }, 1000);
        let mut traffic = ProbeFlow {
            n,
            background: Bernoulli::new(n, 0.6, DestPattern::Uniform),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = SimStats::new(n, 0, 4096);
        let mut checker = FlowOrderChecker::new(n);
        let mut seen = 0u64;
        let mut next_gen = 0u64;
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
            // FIFO VOQs mean the k-th delivery on the probe flow carries
            // the k-th generated packet; replay that into the checker.
            while seen < stats.service().get(0, 0) {
                assert!(
                    checker.check(&Packet::new(0, 0, next_gen)),
                    "{}: flow (0,0) reordered",
                    kind.name()
                );
                next_gen += 1;
                seen += 1;
            }
        }
        assert_eq!(checker.violations(), 0);
        assert!(
            seen > slots / 2,
            "{}: probe flow starved ({seen})",
            kind.name()
        );
    }
}

fn assert_conserves(generated: u64, delivered: u64, dropped: u64, buffered: usize, tag: &str) {
    assert_eq!(
        generated,
        delivered + dropped + buffered as u64,
        "conservation violated in {tag}"
    );
}

#[test]
fn bursty_traffic_conserves_in_every_model() {
    let n = 8;
    let slots = 4_000u64;
    let mk_traffic = || OnOffBursty::new(n, 0.7, 12.0, DestPattern::Uniform);

    // Boolean-scheduler IQ switch.
    let mut sw = IqSwitch::new(
        n,
        SchedulerKind::LcfCentralRr.build(n, 4, 5),
        QueueMode::Voq { cap: 128 },
        500,
    );
    let mut traffic = mk_traffic();
    let mut rng = StdRng::seed_from_u64(5);
    let mut stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    assert_conserves(
        stats.generated,
        stats.delivered,
        stats.dropped(),
        sw.buffered_packets(),
        "iq",
    );

    // Weighted (LQF) IQ switch.
    let mut sw = IqSwitch::new_weighted(
        n,
        Box::new(GreedyWeight::new(n, "lqf")),
        WeightSource::QueueLength,
        128,
        500,
    );
    let mut traffic = mk_traffic();
    let mut rng = StdRng::seed_from_u64(5);
    let mut stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    assert_conserves(
        stats.generated,
        stats.delivered,
        stats.dropped(),
        sw.buffered_packets(),
        "lqf",
    );

    // CIOQ with speedup and pipeline depth.
    let mut sw = CioqSwitch::new(
        n,
        SchedulerKind::LcfCentralRr.build(n, 4, 5),
        2,
        1,
        500,
        128,
        128,
    );
    let mut traffic = mk_traffic();
    let mut rng = StdRng::seed_from_u64(5);
    let mut stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    assert_conserves(
        stats.generated,
        stats.delivered,
        stats.dropped(),
        sw.buffered_packets(),
        "cioq",
    );

    // Output-buffered reference.
    let mut sw = ObSwitch::new(n, 500, 128);
    let mut traffic = mk_traffic();
    let mut rng = StdRng::seed_from_u64(5);
    let mut stats = SimStats::new(n, 0, 4096);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    assert_conserves(
        stats.generated,
        stats.delivered,
        stats.dropped(),
        sw.buffered_packets(),
        "outbuf",
    );
}
