//! Property-based tests of the simulator: conservation laws and metric
//! sanity must hold for arbitrary configurations.

use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig, TrafficKind};
use lcf_sim::runner::run_sim;
use lcf_sim::stats::SimStats;
use lcf_sim::switch::{IqSwitch, QueueMode};
use lcf_sim::traffic::{Bernoulli, DestPattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_model() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::OutputBuffered),
        proptest::sample::select(SchedulerKind::ALL.to_vec()).prop_map(ModelKind::Scheduler),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packet conservation: generated = delivered + dropped + in flight,
    /// for any model, load and seed.
    #[test]
    fn packets_are_conserved(
        kind in proptest::sample::select(SchedulerKind::VOQ_PRACTICAL.to_vec()),
        load in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n = 8;
        let mut sw = IqSwitch::new(n, kind.build(n, 4, seed), QueueMode::Voq { cap: 16 }, 50);
        let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = SimStats::new(n, 0, 256);
        for slot in 0..2_000 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
        prop_assert_eq!(stats.generated, accounted);
    }

    /// Report sanity: throughput never exceeds offered load or capacity;
    /// percentiles are ordered; loss rate is a probability.
    #[test]
    fn reports_are_sane(
        model in arb_model(),
        load in 0.05f64..=1.0,
        seed in any::<u64>(),
        bursty in any::<bool>(),
    ) {
        let cfg = SimConfig {
            model,
            n: 8,
            load,
            seed,
            traffic: if bursty { TrafficKind::Bursty { mean_burst: 4.0 } } else { TrafficKind::Bernoulli },
            warmup_slots: 500,
            measure_slots: 3_000,
            ..SimConfig::paper_default()
        };
        let r = run_sim(&cfg);
        prop_assert!(r.throughput <= 1.0 + 1e-9);
        // Delivered cannot exceed what entered the system (generated during
        // the window plus anything the warm-up left queued).
        let max_carryover = (cfg.n * (cfg.pq_cap + cfg.n * cfg.voq_cap)) as u64;
        prop_assert!(r.delivered <= r.generated + max_carryover);
        prop_assert!(r.p50_latency <= r.p99_latency);
        prop_assert!((0.0..=1.0).contains(&r.loss_rate()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.jain_index));
        prop_assert!(r.mean_latency() >= 0.0);
    }

    /// Monotonicity: with everything else fixed, higher load never lowers
    /// the delivered packet count for a work-conserving scheduler.
    #[test]
    fn delivered_grows_with_load(seed in any::<u64>()) {
        let run = |load: f64| {
            run_sim(&SimConfig {
                model: ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
                n: 8,
                load,
                seed,
                warmup_slots: 500,
                measure_slots: 4_000,
                ..SimConfig::paper_default()
            })
        };
        let lo = run(0.2);
        let hi = run(0.6);
        prop_assert!(hi.delivered > lo.delivered);
    }
}

/// Zero load is a special case worth pinning exactly.
#[test]
fn zero_load_is_silent() {
    let cfg = SimConfig {
        model: ModelKind::Scheduler(SchedulerKind::Pim),
        n: 8,
        load: 0.0,
        warmup_slots: 100,
        measure_slots: 1_000,
        ..SimConfig::paper_default()
    };
    let r = run_sim(&cfg);
    assert_eq!(r.generated, 0);
    assert_eq!(r.delivered, 0);
    assert_eq!(r.mean_latency(), 0.0);
}
