//! Fault isolation in [`lcf_sim::runner::try_sweep`]: a scheduler that
//! panics mid-simulation (the registry's hidden `panic_probe`) must not
//! poison sibling configurations, and its failure must be visible in the
//! sweep output.

use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::try_sweep;

fn cfg(kind: SchedulerKind) -> SimConfig {
    SimConfig {
        model: ModelKind::Scheduler(kind),
        n: 8,
        load: 0.4,
        warmup_slots: 200,
        measure_slots: 1_000,
        ..SimConfig::paper_default()
    }
}

#[test]
fn panicking_scheduler_does_not_poison_siblings() {
    let probe = SchedulerKind::from_name("panic_probe").expect("probe is registered by name");
    let configs = [
        cfg(SchedulerKind::LcfCentralRr),
        cfg(probe),
        cfg(SchedulerKind::Islip),
    ];
    let outcomes = try_sweep(&configs);
    assert_eq!(outcomes.len(), 3);

    let first = outcomes[0].as_ref().expect("sibling before the probe runs");
    assert_eq!(first.model, "lcf_central_rr");
    assert!(first.delivered > 0);

    let last = outcomes[2].as_ref().expect("sibling after the probe runs");
    assert_eq!(last.model, "islip");
    assert!(last.delivered > 0);

    let err = outcomes[1]
        .as_ref()
        .expect_err("the probe config must fail, not vanish");
    assert_eq!(err.index, 1, "failure is attributed to the right slot");
    assert!(
        err.message.contains("panic_probe"),
        "sweep output must name the faulty scheduler: {}",
        err.message
    );
    // And the rendered form a caller would log carries both.
    let rendered = err.to_string();
    assert!(rendered.contains("#1") && rendered.contains("panic_probe"));
}

#[test]
fn sweep_with_only_failures_still_returns_in_order() {
    let probe = SchedulerKind::from_name("panic_probe").expect("probe is registered by name");
    let outcomes = try_sweep(&[cfg(probe), cfg(probe)]);
    assert_eq!(outcomes.len(), 2);
    for (i, o) in outcomes.iter().enumerate() {
        let err = o.as_ref().expect_err("probe always fails");
        assert_eq!(err.index, i);
    }
}
