//! Property tests for the CIOQ switch: conservation and pipelining
//! invariants must hold for arbitrary speedups, pipeline depths and loads.

use lcf_core::registry::SchedulerKind;
use lcf_sim::cioq::CioqSwitch;
use lcf_sim::stats::SimStats;
use lcf_sim::traffic::{Bernoulli, DestPattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(
    kind: SchedulerKind,
    speedup: usize,
    depth: usize,
    load: f64,
    slots: u64,
    seed: u64,
) -> (SimStats, CioqSwitch) {
    let n = 8;
    let mut sw = CioqSwitch::new(n, kind.build(n, 4, seed), speedup, depth, 100, 32, 32);
    let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = SimStats::new(n, 0, 1024);
    for slot in 0..slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    (stats, sw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation holds for any (scheduler, speedup, depth, load, seed).
    #[test]
    fn cioq_conserves_packets(
        kind in proptest::sample::select(SchedulerKind::VOQ_PRACTICAL.to_vec()),
        speedup in 1usize..4,
        depth in 0usize..6,
        load in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let (stats, sw) = run(kind, speedup, depth, load, 1_500, seed);
        let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
        prop_assert_eq!(stats.generated, accounted);
    }

    /// With in-flight grant accounting, pipelining never wastes grants on
    /// drained VOQs (only full output buffers can waste one).
    #[test]
    fn pipelining_never_stales_grants_below_saturation(
        depth in 0usize..6,
        seed in any::<u64>(),
    ) {
        // Load 0.6 with 32-deep output buffers: buffers never fill, so any
        // wasted grant would indicate an accounting bug.
        let (_, sw) = run(SchedulerKind::LcfCentralRr, 1, depth, 0.6, 2_000, seed);
        prop_assert_eq!(sw.wasted_grants(), 0);
    }

    /// Output links never exceed capacity: delivered <= slots * n.
    #[test]
    fn output_capacity_respected(
        speedup in 1usize..4,
        load in 0.5f64..=1.0,
        seed in any::<u64>(),
    ) {
        let slots = 1_000u64;
        let (stats, _) = run(SchedulerKind::Islip, speedup, 0, load, slots, seed);
        prop_assert!(stats.delivered <= slots * 8, "speedup must not inflate link rate");
    }
}
