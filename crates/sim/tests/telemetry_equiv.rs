//! The telemetry layer is **read-only**: enabling it must never change a
//! simulation result.
//!
//! These tests run the same configuration traced and untraced and compare
//! the [`SimReport`]s field for field (`SimReport: PartialEq` exists for
//! exactly this), across scalar and bitset kernel backends and across every
//! scheduler family that has a tracing hook. Together with the CI feature
//! matrix (which runs the golden-count tests with the `telemetry` feature
//! both off and on), this pins the contract from both sides: the feature
//! compiles to no-ops when disabled, and is inert when enabled but not
//! exported.

#![cfg(feature = "telemetry")]

use lcf_core::bitkern::Backend;
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::{run_sim, run_sim_traced, try_sweep, try_sweep_traced};

fn cfg(kind: SchedulerKind, backend: Backend) -> SimConfig {
    SimConfig {
        model: ModelKind::Scheduler(kind),
        n: 8,
        load: 0.8,
        warmup_slots: 500,
        measure_slots: 3_000,
        seed: 0xBEEF,
        backend,
        ..SimConfig::paper_default()
    }
}

#[test]
fn traced_and_untraced_reports_are_identical() {
    for kind in [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDist,
        SchedulerKind::Islip,
        SchedulerKind::Pim,
        SchedulerKind::Fifo,
    ] {
        for backend in [Backend::Scalar, Backend::Bitset] {
            let c = cfg(kind, backend);
            let untraced = run_sim(&c);
            let (traced, telemetry) = run_sim_traced(&c, 0);
            assert_eq!(
                untraced, traced,
                "{kind} on {backend:?}: tracing changed the report"
            );
            // And the run was actually observed, not skipped.
            assert_eq!(telemetry.metrics.counter("sim.slots"), c.measure_slots);
            assert_eq!(telemetry.metrics.counter("sim.delivered"), traced.delivered);
            assert_eq!(telemetry.metrics.counter("sim.generated"), traced.generated);
        }
    }
}

#[test]
fn traced_sweep_matches_untraced_sweep() {
    let configs: Vec<SimConfig> = [0.3, 0.6, 0.9]
        .iter()
        .map(|&load| SimConfig {
            load,
            ..cfg(SchedulerKind::LcfCentralRr, Backend::Bitset)
        })
        .collect();
    let plain: Vec<_> = try_sweep(&configs)
        .into_iter()
        .map(|r| r.expect("sweep config failed"))
        .collect();
    let (traced, metrics) = try_sweep_traced(&configs, 64);
    let traced: Vec<_> = traced
        .into_iter()
        .map(|r| r.expect("traced sweep config failed").0)
        .collect();
    assert_eq!(plain, traced, "tracing changed a sweep result");

    // The merged registry tells the batch's story: per-config progress
    // gauges plus counters summed across all three runs.
    assert_eq!(metrics.counter("sweep.configs_ok"), 3);
    assert_eq!(metrics.counter("sweep.configs_failed"), 0);
    let total_delivered: u64 = traced.iter().map(|r| r.delivered).sum();
    assert_eq!(metrics.counter("sim.delivered"), total_delivered);
    for (idx, report) in traced.iter().enumerate() {
        assert_eq!(
            metrics.gauge(&format!("sweep.config.{idx}.throughput")),
            Some(report.throughput)
        );
    }
    // Same n across configs, so the matching-size histograms merged clean.
    assert_eq!(metrics.counter("sweep.histogram_range_mismatches"), 0);
    let hist = metrics
        .histogram("sim.matching_size")
        .expect("merged histogram");
    assert_eq!(hist.count() + hist.overflow(), 3 * configs[0].measure_slots);
}

#[test]
fn traced_run_is_deterministic() {
    let c = cfg(SchedulerKind::LcfCentralRr, Backend::Bitset);
    let (a, ta) = run_sim_traced(&c, 0);
    let (b, tb) = run_sim_traced(&c, 0);
    assert_eq!(a, b);
    assert_eq!(
        ta.trace.to_jsonl(),
        tb.trace.to_jsonl(),
        "traces must be bit-deterministic"
    );
    assert_eq!(ta.metrics.to_json(), tb.metrics.to_json());
}

/// The strongest form of the read-only contract: a traced and an untraced
/// switch, fed the same arrivals, must compute **the same matching every
/// slot** — not just the same aggregate report. (Tracing switches the
/// scheduler to its scalar kernel; the kernels are bit-identical by
/// contract, and this test holds the whole slot loop to it.)
#[test]
fn tracing_does_not_change_slot_schedules() {
    use lcf_sim::stats::SimStats;
    use lcf_sim::switch::{CrossbarSwitch, QueueMode};
    use lcf_sim::traffic::{Bernoulli, DestPattern};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 8;
    let mk = || {
        let (sched, _) = SchedulerKind::LcfCentralRr.build_with_backend(n, 4, 11, Backend::Bitset);
        CrossbarSwitch::new(n, sched, QueueMode::Voq { cap: 256 }, 1000)
    };
    let mut plain = mk();
    let mut traced = mk();
    traced.enable_telemetry(0);
    let mut t1 = Bernoulli::new(n, 0.85, DestPattern::Uniform);
    let mut t2 = Bernoulli::new(n, 0.85, DestPattern::Uniform);
    let mut r1 = StdRng::seed_from_u64(3);
    let mut r2 = StdRng::seed_from_u64(3);
    let mut s1 = SimStats::new(n, 0, 4096);
    let mut s2 = SimStats::new(n, 0, 4096);
    for slot in 0..2_000 {
        let a: Vec<_> = plain
            .step(slot, &mut t1, &mut r1, &mut s1)
            .pairs()
            .collect();
        let b: Vec<_> = traced
            .step(slot, &mut t2, &mut r2, &mut s2)
            .pairs()
            .collect();
        assert_eq!(a, b, "slot {slot}: tracing changed the schedule");
    }
}

/// CIOQ runs under the shared `drive()` loop: tracing must not change the
/// run, the slot-loop metrics must cover exactly the measurement window, and
/// every relayed scheduler event must be re-stamped into that window (the
/// scheduler itself stamps slot 0 — it has no time base).
#[test]
fn cioq_traced_run_matches_untraced_and_stamps_slots() {
    use lcf_sim::cioq::CioqSwitch;
    use lcf_sim::model::{drive, DriveOptions};
    use lcf_sim::traffic::{Bernoulli, DestPattern};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 8;
    let (warmup, measure) = (200u64, 1_000u64);
    let mk = || {
        CioqSwitch::new(
            n,
            SchedulerKind::LcfCentralRr.build(n, 4, 11),
            2,
            2,
            1000,
            256,
            256,
        )
    };
    let run = |sw: &mut CioqSwitch, traced: bool| {
        let mut traffic = Bernoulli::new(n, 0.8, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(5);
        let mut opts = DriveOptions::new(warmup, measure, 4096);
        if traced {
            opts = opts.traced(0);
        }
        drive(sw, &mut traffic, &mut rng, &opts)
    };

    let mut plain = mk();
    let mut traced_sw = mk();
    let a = run(&mut plain, false);
    let b = run(&mut traced_sw, true);
    assert_eq!(a.generated, b.generated, "tracing changed CIOQ arrivals");
    assert_eq!(a.delivered, b.delivered, "tracing changed CIOQ deliveries");
    assert_eq!(
        a.mean_latency(),
        b.mean_latency(),
        "tracing changed CIOQ latency"
    );

    let telemetry = traced_sw.take_telemetry().expect("telemetry was enabled");
    assert_eq!(telemetry.metrics.counter("sim.slots"), measure);
    assert_eq!(telemetry.metrics.counter("sim.delivered"), b.delivered);
    assert!(
        !telemetry.trace.is_empty(),
        "CIOQ scheduler decisions must be traced"
    );
    for line in telemetry.trace.to_jsonl().lines() {
        let rest = line.strip_prefix("{\"slot\":").expect("envelope");
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let slot: u64 = digits.parse().expect("slot number");
        assert!(
            (warmup..warmup + measure).contains(&slot),
            "event stamped outside the measurement window: {line}"
        );
    }
}

#[test]
fn output_buffered_model_reports_empty_telemetry() {
    let c = SimConfig {
        model: ModelKind::OutputBuffered,
        n: 8,
        load: 0.5,
        warmup_slots: 100,
        measure_slots: 500,
        ..SimConfig::paper_default()
    };
    let untraced = run_sim(&c);
    let (traced, telemetry) = run_sim_traced(&c, 0);
    assert_eq!(untraced, traced);
    assert!(telemetry.trace.is_empty());
    assert!(telemetry.metrics.is_empty());
}
