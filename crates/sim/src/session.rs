//! Resumable drive sessions: the windowed slot loop under every runner.
//!
//! A [`DriveSession`] owns a switch model, a traffic generator, an RNG and
//! the in-flight statistics of a run, and advances them one bounded
//! *window* at a time ([`DriveSession::step_window`]). The one-shot
//! [`drive`](crate::model::drive) protocol is a thin wrapper — warm-up
//! window, fresh measurement collector, measurement window — so batch runs
//! and long-lived [`serve`](crate::serve) shards share **the same stepping
//! loop** (the only one left in the workspace):
//!
//! ```text
//!   drive(model, traffic, rng, opts)        lcf serve shard i
//!   ────────────────────────────────        ─────────────────────────
//!   session.step_window(warmup)             session.step_window(W)  ┐
//!   session.begin_measurement()             barrier / snapshot      │ × k
//!   session.step_window(measure)            reconfigure             ┘
//!   session.into_stats()                    session.drain(quiet, D)
//! ```
//!
//! Windowing is *observationally* transparent: stepping `k` windows of `w`
//! slots produces bit-identical model/RNG/stats evolution to one window of
//! `k·w` slots (pinned by `tests/serve_session.rs`). Window *reports* are
//! deltas over the cumulative collector, so cross-window packets (generated
//! in window 3, delivered in window 5) are never lost or double counted.

use crate::model::SwitchModel;
use crate::stats::{Histogram, SimStats};
use crate::traffic::Traffic;
use rand::rngs::StdRng;
use std::borrow::BorrowMut;

/// Per-slot total-backlog sampler, enabled by
/// [`DriveSession::sample_occupancy`]. The histogram buckets are total
/// buffered packets (PQs + VOQs/FIFOs) observed at the *end* of each slot;
/// the running sum gives the window's time-average backlog.
struct OccupancySampler {
    range: usize,
    hist: Histogram,
    sum: u64,
}

/// What one [`DriveSession::step_window`] call observed: counter deltas
/// over the window, the window-local latency mean, and the backlog at the
/// window boundary.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// First slot of the window.
    pub start_slot: u64,
    /// Number of slots stepped.
    pub slots: u64,
    /// Packets generated during the window.
    pub generated: u64,
    /// Packets delivered during the window.
    pub delivered: u64,
    /// Packets dropped during the window.
    pub dropped: u64,
    /// Latency samples recorded during the window (delivered packets that
    /// were generated inside the measurement phase).
    pub latency_samples: u64,
    /// Mean queueing delay of this window's latency samples (0 if none).
    pub mean_latency: f64,
    /// Packets buffered anywhere in the model at the end of the window.
    pub backlog: usize,
    /// Time-average backlog over the window's slots (0 when occupancy
    /// sampling is off or the window is empty).
    pub mean_backlog: f64,
    /// Per-slot backlog histogram for this window, if
    /// [`DriveSession::sample_occupancy`] was enabled.
    pub occupancy: Option<Histogram>,
}

/// Result of [`DriveSession::drain`]: arrivals stopped, the model stepped
/// until empty or the deadline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Slot the drain started at.
    pub start_slot: u64,
    /// Slot the drain stopped at (buffer empty or deadline hit).
    pub end_slot: u64,
    /// Whether the model reached `buffered_packets() == 0`.
    pub drained: bool,
    /// Packets still buffered when the drain stopped.
    pub remaining_packets: usize,
    /// Packets delivered during the drain.
    pub delivered: u64,
}

/// A resumable simulation: model + traffic + RNG + in-flight statistics,
/// advanced window by window.
///
/// The type is generic so both ownership shapes work with zero glue:
///
/// * **Borrowed** (the [`drive`](crate::model::drive) wrapper):
///   `DriveSession<&mut dyn SwitchModel, &mut dyn Traffic, &mut StdRng>`.
/// * **Owned** (a [`serve`](crate::serve) shard):
///   `DriveSession<Box<dyn SwitchModel>, Box<dyn Traffic>, StdRng>`.
pub struct DriveSession<M: SwitchModel, T: Traffic, R: BorrowMut<StdRng>> {
    model: M,
    traffic: T,
    rng: R,
    stats: SimStats,
    next_slot: u64,
    max_latency_bucket: usize,
    occupancy: Option<OccupancySampler>,
    #[cfg(feature = "telemetry")]
    scratch: Vec<lcf_telemetry::Event>,
}

impl<M: SwitchModel, T: Traffic, R: BorrowMut<StdRng>> DriveSession<M, T, R> {
    /// Starts a session at slot 0 with a warm-up statistics collector
    /// (`measure_start = 0`, exactly like the historical warm-up phase).
    /// Call [`begin_measurement`](DriveSession::begin_measurement) when the
    /// queues have reached steady state.
    pub fn new(model: M, traffic: T, rng: R, max_latency_bucket: usize) -> Self {
        let n = model.num_ports();
        DriveSession {
            model,
            traffic,
            rng,
            stats: SimStats::new(n, 0, max_latency_bucket),
            next_slot: 0,
            max_latency_bucket,
            occupancy: None,
            #[cfg(feature = "telemetry")]
            scratch: Vec::new(),
        }
    }

    /// The next slot this session will step.
    pub fn slot(&self) -> u64 {
        self.next_slot
    }

    /// Number of ports of the underlying model.
    pub fn num_ports(&self) -> usize {
        self.model.num_ports()
    }

    /// Name of the scheduler currently driving the model.
    pub fn scheduler_name(&self) -> &'static str {
        self.model.scheduler_name()
    }

    /// Packets currently buffered anywhere in the model.
    pub fn buffered_packets(&self) -> usize {
        self.model.buffered_packets()
    }

    /// The underlying model (e.g. for telemetry collection).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The statistics collected since the last
    /// [`begin_measurement`](DriveSession::begin_measurement) (or since the
    /// session started).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consumes the session, returning the statistics collector.
    pub fn into_stats(self) -> SimStats {
        self.stats
    }

    /// Replaces the traffic generator between windows (online load change);
    /// returns the previous generator. The RNG stream is shared session
    /// state and keeps advancing from where it is.
    pub fn set_traffic(&mut self, traffic: T) -> T {
        std::mem::replace(&mut self.traffic, traffic)
    }

    /// Starts per-slot backlog sampling: every stepped slot records
    /// `buffered_packets()` into a histogram of bucket range `range`, reset
    /// at each window boundary (the samples come back in the
    /// [`WindowReport`]).
    pub fn sample_occupancy(&mut self, range: usize) {
        self.occupancy = Some(OccupancySampler {
            range,
            hist: Histogram::new(range),
            sum: 0,
        });
    }

    /// Discards the warm-up statistics and installs a fresh collector
    /// anchored at the current slot: from here on, latency samples only
    /// come from packets generated at or after this boundary. Returns the
    /// collector accumulated so far.
    pub fn begin_measurement(&mut self) -> SimStats {
        let fresh = SimStats::new(
            self.model.num_ports(),
            self.next_slot,
            self.max_latency_bucket,
        );
        std::mem::replace(&mut self.stats, fresh)
    }

    /// Enables telemetry on the model with a trace buffer of
    /// `trace_capacity` events (0 = unbounded).
    #[cfg(feature = "telemetry")]
    pub fn enable_telemetry(&mut self, trace_capacity: usize) {
        self.model.enable_telemetry(trace_capacity);
    }

    /// Advances the session by `n_slots` slots — THE stepping loop: every
    /// runner entry point, test harness and serve shard funnels through
    /// here. Returns the window's delta report.
    ///
    /// Hot-path memory contract: no per-slot allocation (the occupancy
    /// branch is hoisted out of the slot loop; the per-window report is
    /// built once after it).
    pub fn step_window(&mut self, n_slots: u64) -> WindowReport {
        let start = self.next_slot;
        let end = start + n_slots;
        let generated0 = self.stats.generated;
        let delivered0 = self.stats.delivered;
        let dropped0 = self.stats.dropped();
        let samples0 = self.stats.latency_samples();
        let latency_sum0 = self.stats.mean_latency() * samples0 as f64;

        // The sampler is taken out of the session for the duration of the
        // loop, so the per-slot body has no `Option` probe at all (per-slot
        // branch contract) and the borrow checker still allows `step_one`.
        let mut sampler = self.occupancy.take();
        if let Some(s) = sampler.as_mut() {
            for slot in start..end {
                self.step_one(slot);
                let backlog = self.model.buffered_packets() as u64;
                s.hist.add(backlog);
                s.sum += backlog;
            }
        } else {
            for slot in start..end {
                self.step_one(slot);
            }
        }
        self.occupancy = sampler;
        self.next_slot = end;

        let samples1 = self.stats.latency_samples();
        let window_samples = samples1 - samples0;
        let mean_latency = if window_samples == 0 {
            0.0
        } else {
            (self.stats.mean_latency() * samples1 as f64 - latency_sum0) / window_samples as f64
        };
        let (occupancy, mean_backlog) = match self.occupancy.as_mut() {
            Some(s) if n_slots > 0 => {
                let hist = std::mem::replace(&mut s.hist, Histogram::new(s.range));
                let mean = s.sum as f64 / n_slots as f64;
                s.sum = 0;
                (Some(hist), mean)
            }
            _ => (None, 0.0),
        };
        WindowReport {
            start_slot: start,
            slots: n_slots,
            generated: self.stats.generated - generated0,
            delivered: self.stats.delivered - delivered0,
            dropped: self.stats.dropped() - dropped0,
            latency_samples: window_samples,
            mean_latency,
            backlog: self.model.buffered_packets(),
            mean_backlog,
            occupancy,
        }
    }

    /// One slot: model step plus the scheduler-event relay (telemetry
    /// builds only).
    fn step_one(&mut self, slot: u64) {
        self.model.step(
            slot,
            &mut self.traffic,
            self.rng.borrow_mut(),
            &mut self.stats,
        );
        #[cfg(feature = "telemetry")]
        crate::model::relay_scheduler_events(&mut self.model, &mut self.scratch);
    }

    /// Graceful drain: swaps in `quiet` (a generator that produces no
    /// arrivals, e.g. [`Silence`](crate::traffic::Silence)) and steps one
    /// slot at a time until the model is empty or `deadline_slots` have
    /// elapsed.
    pub fn drain(&mut self, quiet: T, deadline_slots: u64) -> DrainReport {
        self.set_traffic(quiet);
        let start = self.next_slot;
        let delivered0 = self.stats.delivered;
        let deadline = start + deadline_slots;
        while self.model.buffered_packets() > 0 && self.next_slot < deadline {
            self.step_window(1);
        }
        let remaining = self.model.buffered_packets();
        DrainReport {
            start_slot: start,
            end_slot: self.next_slot,
            drained: remaining == 0,
            remaining_packets: remaining,
            delivered: self.stats.delivered - delivered0,
        }
    }
}
