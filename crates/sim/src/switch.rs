//! The input-queued switch model (Fig. 11 of the paper).

use crate::packet::Packet;
use crate::queues::{BoundedFifo, VoqSet};
use crate::stats::SimStats;
use crate::traffic::Traffic;
use lcf_core::matching::Matching;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_core::weighted::{WeightMatrix, WeightedScheduler};
#[cfg(feature = "telemetry")]
use lcf_telemetry::{Event, MetricsRegistry, SlotClock, TraceBuffer};
use rand::rngs::StdRng;

/// Telemetry state for the slot loop: a bounded decision trace, a metrics
/// registry and the slot clock the events are stamped from. Owned by the
/// switch while enabled; [`IqSwitch::take_telemetry`] hands it back to the
/// runner for export.
///
/// Everything here is derived from the simulation state, never fed back
/// into it — enabling telemetry cannot change a schedule (the equivalence
/// test in `tests/telemetry_equiv.rs` holds the simulator to that).
#[cfg(feature = "telemetry")]
#[derive(Debug, Default)]
pub struct SwitchTelemetry {
    /// Decision/event trace (ring buffer; oldest events evicted when full).
    pub trace: TraceBuffer,
    /// Slot-loop counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// The time base every event is stamped from.
    pub clock: SlotClock,
}

/// Input buffering discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueMode {
    /// One virtual output queue per destination (head-of-line-blocking free).
    Voq {
        /// Capacity of each VOQ in packets.
        cap: usize,
    },
    /// A single FIFO per input — the `fifo` baseline. Only the head packet's
    /// destination is visible to the scheduler.
    SingleFifo {
        /// Capacity of the FIFO in packets.
        cap: usize,
    },
}

enum InputQueues {
    Voq(Vec<VoqSet>),
    Fifo(Vec<BoundedFifo>),
}

/// What a weighted scheduler's weights mean (see
/// [`IqSwitch::new_weighted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightSource {
    /// Weight = VOQ occupancy (longest queue first).
    QueueLength,
    /// Weight = age of the head-of-line cell in slots (oldest cell first).
    HolAge,
}

enum Engine {
    Boolean(Box<dyn Scheduler + Send>),
    Weighted {
        sched: Box<dyn WeightedScheduler + Send>,
        source: WeightSource,
        weights: WeightMatrix,
    },
}

impl Engine {
    fn name(&self) -> &'static str {
        match self {
            Engine::Boolean(s) => s.name(),
            Engine::Weighted { sched, .. } => sched.name(),
        }
    }

    fn num_ports(&self) -> usize {
        match self {
            Engine::Boolean(s) => s.num_ports(),
            Engine::Weighted { sched, .. } => sched.num_ports(),
        }
    }
}

/// An input-queued crossbar switch driven by a [`Scheduler`].
///
/// Per time slot ([`IqSwitch::step`]):
///
/// 1. **Arrivals** — each packet generator may produce one packet, which
///    enters the input's packet queue (PQ); a full PQ drops it.
/// 2. **Spill** — each PQ drains head-first into the input buffer (VOQ set
///    or single FIFO) while the head packet's queue has room ("first
///    buffered in the PQ and next, if space permits, in the VOQ").
/// 3. **Request** — the request matrix is derived from buffer occupancy:
///    one bit per non-empty VOQ, or the head destination in FIFO mode.
/// 4. **Schedule & transfer** — the scheduler computes a matching; matched
///    head packets traverse the fabric and are transmitted on their output
///    link in the same slot (input, internal and output bandwidths are all
///    equal, Sec. 2).
pub struct IqSwitch {
    n: usize,
    engine: Engine,
    mode: QueueMode,
    pqs: Vec<BoundedFifo>,
    inputs: InputQueues,
    requests: RequestMatrix,
    last_matching: Matching,
    /// Per-slot arrival batch, reused across slots (hot-path memory
    /// contract: no per-slot allocation).
    arrivals: Vec<Option<usize>>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<Box<SwitchTelemetry>>,
}

/// The crossbar switch model: an alias for [`IqSwitch`] under the name the
/// [`SwitchModel`](crate::model::SwitchModel) lineup uses (crossbar vs CIOQ
/// vs output-buffered).
pub type CrossbarSwitch = IqSwitch;

impl IqSwitch {
    /// Builds a switch. The scheduler's port count must equal `n`.
    pub fn new(
        n: usize,
        scheduler: Box<dyn Scheduler + Send>,
        mode: QueueMode,
        pq_cap: usize,
    ) -> Self {
        Self::build(n, Engine::Boolean(scheduler), mode, pq_cap)
    }

    /// Builds a switch driven by a weighted scheduler; `source` selects the
    /// weight semantics. Weighted scheduling requires VOQs (the weights are
    /// per-VOQ properties).
    pub fn new_weighted(
        n: usize,
        scheduler: Box<dyn WeightedScheduler + Send>,
        source: WeightSource,
        voq_cap: usize,
        pq_cap: usize,
    ) -> Self {
        Self::build(
            n,
            Engine::Weighted {
                sched: scheduler,
                source,
                weights: WeightMatrix::new(n),
            },
            QueueMode::Voq { cap: voq_cap },
            pq_cap,
        )
    }

    fn build(n: usize, engine: Engine, mode: QueueMode, pq_cap: usize) -> Self {
        assert_eq!(engine.num_ports(), n, "scheduler port count mismatch");
        let inputs = match mode {
            QueueMode::Voq { cap } => {
                InputQueues::Voq((0..n).map(|_| VoqSet::new(n, cap)).collect())
            }
            QueueMode::SingleFifo { cap } => {
                InputQueues::Fifo((0..n).map(|_| BoundedFifo::new(cap)).collect())
            }
        };
        if matches!(engine, Engine::Weighted { .. }) {
            assert!(
                matches!(mode, QueueMode::Voq { .. }),
                "weighted scheduling requires VOQs"
            );
        }
        IqSwitch {
            n,
            engine,
            mode,
            pqs: (0..n).map(|_| BoundedFifo::new(pq_cap)).collect(),
            inputs,
            requests: RequestMatrix::new(n),
            last_matching: Matching::new(n),
            arrivals: vec![None; n],
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }

    /// Starts recording telemetry: decision traces from the scheduler plus
    /// slot-loop metrics, into a trace buffer of `trace_capacity` events
    /// (0 = unbounded). Also turns on the scheduler's own tracing hook.
    #[cfg(feature = "telemetry")]
    pub fn enable_telemetry(&mut self, trace_capacity: usize) {
        if let Engine::Boolean(s) = &mut self.engine {
            s.set_tracing(true);
        }
        self.telemetry = Some(Box::new(SwitchTelemetry {
            trace: TraceBuffer::new(trace_capacity),
            metrics: MetricsRegistry::new(),
            clock: SlotClock::new(),
        }));
    }

    /// Stops recording and hands the collected telemetry back (None if
    /// telemetry was never enabled).
    #[cfg(feature = "telemetry")]
    pub fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        if let Engine::Boolean(s) = &mut self.engine {
            s.set_tracing(false);
        }
        self.telemetry.take()
    }

    /// The telemetry collected so far, if enabled.
    #[cfg(feature = "telemetry")]
    pub fn telemetry(&self) -> Option<&SwitchTelemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable access to the live telemetry state, if enabled. The shared
    /// `drive()` loop uses this to re-stamp drained scheduler events with
    /// the slot clock.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Drains the scheduler's decision events (stamped slot 0) into `sink`.
    /// Weighted engines record no events.
    #[cfg(feature = "telemetry")]
    pub fn drain_scheduler_events(&mut self, sink: &mut dyn FnMut(Event)) {
        if let Engine::Boolean(s) = &mut self.engine {
            s.drain_events(sink);
        }
    }

    /// Replaces the boolean scheduler driving the switch (online
    /// reconfiguration between serve windows); returns the scheduler that
    /// was running. Queue contents, request matrix and matching buffers are
    /// untouched — only the decision engine changes. The queueing
    /// discipline is fixed at construction, so callers must not swap in a
    /// scheduler that expects the other discipline (the serve layer
    /// rejects `fifo` swaps for this reason).
    ///
    /// Errors on a port-count mismatch or on a weighted engine (weighted
    /// schedulers carry weight-source state that a swap cannot preserve).
    pub fn swap_scheduler(
        &mut self,
        scheduler: Box<dyn Scheduler + Send>,
    ) -> Result<Box<dyn Scheduler + Send>, String> {
        if scheduler.num_ports() != self.n {
            return Err(format!(
                "scheduler port count {} != switch port count {}",
                scheduler.num_ports(),
                self.n
            ));
        }
        match &mut self.engine {
            Engine::Boolean(current) => {
                // A live trace must keep flowing through the new engine.
                #[cfg(feature = "telemetry")]
                {
                    let mut scheduler = scheduler;
                    scheduler.set_tracing(self.telemetry.is_some());
                    return Ok(std::mem::replace(current, scheduler));
                }
                #[cfg(not(feature = "telemetry"))]
                Ok(std::mem::replace(current, scheduler))
            }
            Engine::Weighted { .. } => Err("cannot swap a weighted engine".to_string()),
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The buffering discipline in use.
    pub fn mode(&self) -> QueueMode {
        self.mode
    }

    /// Name of the scheduler driving the switch.
    pub fn scheduler_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Size of the most recent matching (diagnostics).
    pub fn last_matching_size(&self) -> usize {
        self.last_matching.size()
    }

    /// Mean number of non-empty VOQs per input — the scheduler's "choice"
    /// in the paper's sense. Sec. 6.3 explains the round-robin crossover by
    /// the RR stage "leveling the lengths of the VOQs thereby maintaining
    /// choice by avoiding the VOQs to drain"; this probe lets experiments
    /// test that explanation directly. Returns 0 in single-FIFO mode.
    pub fn mean_choice(&self) -> f64 {
        match &self.inputs {
            InputQueues::Voq(v) => {
                let total: usize = v.iter().map(|set| set.occupied_count()).sum();
                total as f64 / self.n as f64
            }
            InputQueues::Fifo(_) => 0.0,
        }
    }

    /// Standard deviation of individual VOQ lengths across the whole
    /// switch (the "leveling" the paper describes). Returns 0 in
    /// single-FIFO mode.
    pub fn voq_length_std_dev(&self) -> f64 {
        match &self.inputs {
            InputQueues::Voq(v) => {
                let lens: Vec<f64> = v
                    .iter()
                    .flat_map(|set| (0..self.n).map(move |j| set.len_for(j) as f64))
                    .collect();
                let mean = lens.iter().sum::<f64>() / lens.len() as f64;
                let var =
                    lens.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lens.len() as f64;
                var.sqrt()
            }
            InputQueues::Fifo(_) => 0.0,
        }
    }

    /// Total packets currently buffered (PQs + input buffers).
    pub fn buffered_packets(&self) -> usize {
        let pq: usize = self.pqs.iter().map(|q| q.len()).sum();
        let inner: usize = match &self.inputs {
            InputQueues::Voq(v) => v.iter().map(|s| s.total_len()).sum(),
            InputQueues::Fifo(f) => f.iter().map(|q| q.len()).sum(),
        };
        pq + inner
    }

    /// Advances the simulation by one slot.
    pub fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) -> &Matching {
        let n = self.n;
        // One telemetry probe for the whole arrival stage (per-slot-branch
        // contract): the `Option` is resolved here once; the per-input loop
        // below never re-probes it. In non-telemetry builds this compiles
        // away entirely.
        #[cfg(feature = "telemetry")]
        let mut tel = self.telemetry.as_deref_mut();
        #[cfg(feature = "telemetry")]
        if let Some(t) = tel.as_deref_mut() {
            t.clock.seek(slot);
        }

        // 1. Arrivals into the PQs, taken as one per-slot batch from the
        //    generator (one virtual call instead of n).
        traffic.arrivals_into(slot, rng, &mut self.arrivals);
        let mut generated: u64 = 0;
        let mut dropped: u64 = 0;
        for (input, dst) in self.arrivals.iter().enumerate() {
            let Some(dst) = *dst else { continue };
            generated += 1;
            stats.on_generated();
            if !self.pqs[input].push(Packet::new(input, dst, slot)) {
                dropped += 1;
                stats.on_drop_pq();
                #[cfg(feature = "telemetry")]
                if let Some(t) = tel.as_deref_mut() {
                    t.trace.push(
                        Event::new(t.clock.slot(), "drop_pq")
                            .field("input", input)
                            .field("dst", dst),
                    );
                }
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (generated, dropped);
        // Counter totals are identical to the old per-arrival increments;
        // the lazily created counters also keep their "only exists if it
        // ever fired" semantics via the > 0 guards.
        #[cfg(feature = "telemetry")]
        if let Some(t) = tel.as_deref_mut() {
            if generated > 0 {
                t.metrics.counter_add("sim.generated", generated);
            }
            if dropped > 0 {
                t.metrics.counter_add("sim.dropped_pq", dropped);
            }
        }

        // 2. Spill PQ -> input buffers, head-first while space permits. The
        //    queue-mode match is hoisted out of the loop, and inputs with an
        //    empty PQ skip the scan entirely.
        match &mut self.inputs {
            InputQueues::Voq(v) => {
                for (pq, set) in self.pqs.iter_mut().zip(v.iter_mut()) {
                    while let Some(head) = pq.head() {
                        if !set.has_room_for(head.dst_idx()) {
                            break;
                        }
                        let Some(p) = pq.pop() else {
                            break; // unreachable: `head` returned Some above
                        };
                        let pushed = set.push(p);
                        debug_assert!(pushed, "room was checked before the pop");
                    }
                }
            }
            InputQueues::Fifo(f) => {
                for (pq, fifo) in self.pqs.iter_mut().zip(f.iter_mut()) {
                    while !pq.is_empty() && !fifo.is_full() {
                        let Some(p) = pq.pop() else {
                            break; // unreachable: emptiness was checked above
                        };
                        let pushed = fifo.push(p);
                        debug_assert!(pushed, "room was checked before the pop");
                    }
                }
            }
        }

        // 3. Build the request (or weight) matrix from buffer occupancy,
        //    then schedule into the reused matching buffer (hot-path memory
        //    contract: no per-slot allocation).
        match &mut self.engine {
            Engine::Boolean(scheduler) => {
                match &self.inputs {
                    // Word-parallel ingest: each VOQ set maintains its
                    // occupancy bitmap incrementally, so a request row is a
                    // word copy instead of n probes.
                    InputQueues::Voq(v) => {
                        for (i, set) in v.iter().enumerate() {
                            self.requests.set_row_words(i, set.occupancy_words());
                        }
                    }
                    InputQueues::Fifo(f) => {
                        for (i, fifo) in f.iter().enumerate() {
                            for j in 0..n {
                                self.requests.set(i, j, false);
                            }
                            if let Some(head) = fifo.head() {
                                self.requests.set(i, head.dst_idx(), true);
                            }
                        }
                    }
                }
                scheduler.schedule_into(&self.requests, &mut self.last_matching);
                // Slot-loop invariant check at the Matching seam: every
                // matching the engine acts on must be conflict-free and
                // grant ⊆ request.
                #[cfg(all(feature = "check-invariants", debug_assertions))]
                if let Err(v) = lcf_core::check::ScheduleChecker::new()
                    .check(&self.requests, &self.last_matching)
                {
                    // lint:allow(no-panic): invariant checker aborts on a broken scheduler
                    panic!("slot loop: {v}");
                }
                #[cfg(not(all(feature = "check-invariants", debug_assertions)))]
                debug_assert!(self.last_matching.is_valid_for(&self.requests));
                // Scheduler decision events stay queued in the scheduler;
                // the shared `drive()` loop drains and re-stamps them after
                // this step returns.
            }
            Engine::Weighted {
                sched,
                source,
                weights,
            } => {
                let InputQueues::Voq(v) = &self.inputs else {
                    unreachable!("weighted engines are built with VOQs");
                };
                for (i, set) in v.iter().enumerate() {
                    for j in 0..n {
                        let w = match source {
                            WeightSource::QueueLength => set.len_for(j) as u64,
                            // Age >= 1 so a same-slot arrival still requests.
                            WeightSource::HolAge => {
                                set.head_for(j).map_or(0, |p| slot - p.generated_at + 1)
                            }
                        };
                        weights.set(i, j, w);
                    }
                }
                sched.schedule_weighted_into(weights, &mut self.last_matching);
                // Weighted twin of the boolean invariant check above:
                // conflict-free, grant ⊆ positive-weight request, maximal.
                // Allocation-free, so it can run per slot.
                #[cfg(all(feature = "check-invariants", debug_assertions))]
                if let Err(v) =
                    lcf_core::check::check_weighted_matching(weights, &self.last_matching)
                {
                    // lint:allow(no-panic): invariant checker aborts on a broken scheduler
                    panic!("slot loop (weighted): {v}");
                }
                #[cfg(not(all(feature = "check-invariants", debug_assertions)))]
                debug_assert!(self.last_matching.is_conflict_free());
            }
        }
        let matching = &self.last_matching;
        let inputs = &mut self.inputs;
        for (i, j) in matching.pairs() {
            let p = match inputs {
                InputQueues::Voq(v) => v[i].pop_for(j),
                InputQueues::Fifo(f) => f[i].pop(),
            }
            // lint:allow(no-panic): grant ⊆ request is checked above, so the granted queue is non-empty
            .expect("scheduler granted an empty queue");
            debug_assert_eq!(p.dst_idx(), j, "head packet routed to wrong output");
            stats.on_delivered(&p, slot);
        }

        // Per-slot occupancy and matching metrics. Histogram ranges cover
        // every reachable value (n matches per slot, n*n non-empty VOQs) so
        // the distributions never overflow.
        #[cfg(feature = "telemetry")]
        if self.telemetry.is_some() {
            let matched = self.last_matching.size();
            let buffered = self.buffered_packets() as f64;
            let nonempty = match &self.inputs {
                InputQueues::Voq(v) => {
                    Some(v.iter().map(|set| set.occupied_count()).sum::<usize>())
                }
                InputQueues::Fifo(_) => None,
            };
            // lint:allow(no-panic): is_some checked just above
            let t = self.telemetry.as_deref_mut().expect("checked above");
            t.metrics.counter_add("sim.delivered", matched as u64);
            t.metrics.counter_inc("sim.slots");
            t.metrics
                .histogram_record("sim.matching_size", n + 1, matched as u64);
            if let Some(nonempty) = nonempty {
                t.metrics
                    .histogram_record("sim.nonempty_voqs", n * n + 1, nonempty as u64);
            }
            t.metrics.gauge_set("sim.buffered_packets", buffered);
        }

        &self.last_matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Bernoulli, DestPattern};
    use lcf_core::registry::SchedulerKind;
    use rand::SeedableRng;

    fn mk_switch(kind: SchedulerKind, n: usize) -> IqSwitch {
        let mode = if kind.wants_fifo_queues() {
            QueueMode::SingleFifo { cap: 256 }
        } else {
            QueueMode::Voq { cap: 256 }
        };
        IqSwitch::new(n, kind.build(n, 4, 9), mode, 1000)
    }

    #[test]
    fn light_load_delivers_everything_quickly() {
        let mut sw = mk_switch(SchedulerKind::LcfCentralRr, 8);
        let mut traffic = Bernoulli::new(8, 0.2, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SimStats::new(8, 0, 1024);
        for slot in 0..20_000 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        assert!(stats.generated > 0);
        assert_eq!(stats.dropped(), 0, "no drops at 20% load");
        // Everything generated is delivered except what is still in flight.
        assert!(stats.generated - stats.delivered <= 8 * 2);
        assert!(
            stats.mean_latency() < 2.0,
            "latency {}",
            stats.mean_latency()
        );
    }

    #[test]
    fn conservation_of_packets() {
        let mut sw = mk_switch(SchedulerKind::Islip, 8);
        let mut traffic = Bernoulli::new(8, 0.9, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = SimStats::new(8, 0, 1024);
        for slot in 0..5_000 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
        assert_eq!(
            stats.generated, accounted,
            "packets must not appear or vanish"
        );
    }

    #[test]
    fn fifo_mode_exposes_only_head_destination() {
        let mut sw = mk_switch(SchedulerKind::Fifo, 4);
        let mut traffic = Bernoulli::new(4, 1.0, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = SimStats::new(4, 0, 1024);
        for slot in 0..100 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        // The FIFO scheduler asserts <=1 request per input internally
        // (debug), so surviving 100 full-load slots is the check.
        assert!(stats.delivered > 0);
    }

    #[test]
    fn output_link_never_exceeds_capacity() {
        // At most one packet per output per slot: delivered <= slots * n.
        let mut sw = mk_switch(SchedulerKind::LcfCentral, 4);
        let mut traffic = Bernoulli::new(4, 1.0, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = SimStats::new(4, 0, 1024);
        let slots = 2_000;
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        assert!(stats.delivered <= slots * 4);
        // And under full load the scheduler should keep outputs busy: the
        // delivered fraction must be well above the FIFO ceiling.
        let throughput = stats.delivered as f64 / (slots * 4) as f64;
        assert!(throughput > 0.9, "VOQ switch throughput {throughput}");
    }

    #[test]
    fn fifo_saturates_near_the_karol_limit() {
        let n = 16;
        let mut sw = mk_switch(SchedulerKind::Fifo, n);
        let mut traffic = Bernoulli::new(n, 1.0, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = SimStats::new(n, 0, 1024);
        let slots = 20_000;
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let throughput = stats.delivered as f64 / (slots as f64 * n as f64);
        // Karol et al.: 2 - sqrt(2) ≈ 0.586 for large n; allow finite-n slack.
        assert!(
            (0.55..0.68).contains(&throughput),
            "fifo throughput {throughput} not at the HOL-blocking ceiling"
        );
    }

    #[test]
    fn permutation_traffic_is_contention_free() {
        // With a fixed permutation and VOQs, every scheduler should deliver
        // every packet with zero queueing delay after the first slot.
        let n = 8;
        let mut sw = mk_switch(SchedulerKind::Wavefront, n);
        let perm: Vec<usize> = (0..n).map(|i| (i + 3) % n).collect();
        let mut traffic = Bernoulli::new(n, 1.0, DestPattern::Permutation(perm));
        let mut rng = StdRng::seed_from_u64(6);
        let mut stats = SimStats::new(n, 0, 1024);
        for slot in 0..1_000 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        assert_eq!(stats.dropped(), 0);
        assert!(
            stats.mean_latency() < 1.0,
            "latency {}",
            stats.mean_latency()
        );
    }

    #[test]
    #[should_panic(expected = "port count mismatch")]
    fn scheduler_size_mismatch_panics() {
        let _ = IqSwitch::new(
            8,
            SchedulerKind::Pim.build(4, 4, 0),
            QueueMode::Voq { cap: 16 },
            100,
        );
    }

    #[test]
    fn weighted_lqf_switch_runs_and_conserves() {
        use lcf_core::weighted::GreedyWeight;
        let n = 8;
        for source in [WeightSource::QueueLength, WeightSource::HolAge] {
            let mut sw =
                IqSwitch::new_weighted(n, Box::new(GreedyWeight::new(n, "lqf")), source, 256, 1000);
            assert_eq!(sw.scheduler_name(), "lqf");
            let mut traffic = Bernoulli::new(n, 0.9, DestPattern::Uniform);
            let mut rng = StdRng::seed_from_u64(21);
            let mut stats = SimStats::new(n, 0, 1024);
            for slot in 0..5_000 {
                sw.step(slot, &mut traffic, &mut rng, &mut stats);
            }
            let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
            assert_eq!(stats.generated, accounted, "{source:?}");
            let throughput = stats.delivered as f64 / (5_000.0 * n as f64);
            assert!(throughput > 0.85, "{source:?} throughput {throughput}");
        }
    }

    #[test]
    fn hol_age_weights_favor_old_cells() {
        // Two inputs contend for output 0; input 0's cell arrived earlier.
        use lcf_core::weighted::GreedyWeight;
        let n = 4;
        let mut sw = IqSwitch::new_weighted(
            n,
            Box::new(GreedyWeight::new(n, "ocf")),
            WeightSource::HolAge,
            16,
            16,
        );
        // Slot 0: only input 0 generates (permutation to output 0).
        let mut only0 = Bernoulli::new(n, 0.0, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SimStats::new(n, 0, 64);
        // Inject via one-slot permutation bursts: input 0 at slot 0...
        let mut gen0 = Bernoulli::new(n, 1.0, DestPattern::Permutation(vec![0, 1, 2, 3]));
        sw.step(0, &mut gen0, &mut rng, &mut stats); // all inputs to own output: all served
                                                     // Now make inputs 0 and 1 both target output 0 in different slots.
        let mut to0 = Bernoulli::new(n, 1.0, DestPattern::Permutation(vec![0, 0, 0, 0]));
        sw.step(1, &mut to0, &mut rng, &mut stats);
        sw.step(2, &mut only0, &mut rng, &mut stats);
        // At slot 2, all four cells from slot 1 contend for output 0; the
        // tie-break rotates but ages are equal. Serve a few slots: ages
        // strictly order by arrival, so everything drains FIFO-fairly.
        for slot in 3..10 {
            sw.step(slot, &mut only0, &mut rng, &mut stats);
        }
        assert_eq!(stats.dropped(), 0);
        assert_eq!(stats.generated, stats.delivered, "all contenders served");
    }

    #[test]
    #[should_panic(expected = "weighted scheduling requires VOQs")]
    fn weighted_with_fifo_mode_panics() {
        use lcf_core::weighted::GreedyWeight;
        let _ = IqSwitch::build(
            4,
            Engine::Weighted {
                sched: Box::new(GreedyWeight::new(4, "lqf")),
                source: WeightSource::QueueLength,
                weights: lcf_core::weighted::WeightMatrix::new(4),
            },
            QueueMode::SingleFifo { cap: 8 },
            100,
        );
    }
}
