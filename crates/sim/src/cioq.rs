//! Combined input/output-queued (CIOQ) switch with fabric speedup and
//! pipelined scheduling.
//!
//! Two knobs the paper's introduction motivates but does not evaluate:
//!
//! * **Speedup** — Sec. 1 notes throughput must be traded against latency
//!   and cost. A fabric running `s` times faster than the links can move
//!   `s` matchings per slot from the VOQs into (necessary) output buffers;
//!   classic theory says a speedup of 2 lets an input-queued switch emulate
//!   output queueing. EXT-10 measures where LCF lands on that curve.
//! * **Scheduling latency** — Sec. 1: "By pipelining the scheduler and
//!   overlapping scheduling and packet forwarding, packet throughput is
//!   optimized. Note that these techniques do not reduce latency." A
//!   pipeline depth of `L` slots means the matching applied in slot `t` was
//!   computed from the VOQ state of slot `t − L`; grants may find their VOQ
//!   drained and are then wasted. EXT-11 measures that cost.

use crate::packet::Packet;
use crate::queues::{BoundedFifo, VoqSet};
use crate::stats::SimStats;
#[cfg(feature = "telemetry")]
use crate::switch::SwitchTelemetry;
use crate::traffic::Traffic;
use lcf_core::matching::Matching;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
#[cfg(feature = "telemetry")]
use lcf_telemetry::{Event, MetricsRegistry, SlotClock, TraceBuffer};
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// A CIOQ switch: VOQs → fabric at speedup `s` → output buffers → link.
pub struct CioqSwitch {
    n: usize,
    scheduler: Box<dyn Scheduler + Send>,
    speedup: usize,
    sched_latency: usize,
    pqs: Vec<BoundedFifo>,
    voqs: Vec<VoqSet>,
    outputs: Vec<BoundedFifo>,
    requests: RequestMatrix,
    /// Matchings in flight through the scheduling pipeline; front is the
    /// next to apply. Holds `sched_latency` entries between steps.
    pipeline: VecDeque<Vec<Matching>>,
    /// Per-(input, output) count of packets granted but not yet pulled
    /// through the fabric. A pipelined scheduler knows its own outstanding
    /// grants (the hosts received them), so these packets are not
    /// re-requested — without this a deep pipeline would double-grant the
    /// same head packets and waste most fabric passes.
    in_flight: Vec<usize>,
    /// Grants that found an empty VOQ or a full output buffer.
    wasted_grants: u64,
    /// Recycled matching buffers (hot-path memory contract: the slot loop
    /// reuses these instead of allocating per pass). Sized at construction
    /// to cover the whole pipeline.
    free: Vec<Matching>,
    /// Recycled per-slot batch vectors for the pipeline.
    free_batches: Vec<Vec<Matching>>,
    /// Per-slot arrival batch, reused across slots.
    arrivals: Vec<Option<usize>>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<Box<SwitchTelemetry>>,
}

impl CioqSwitch {
    /// Builds the switch.
    ///
    /// * `speedup` — fabric passes per slot (≥ 1).
    /// * `sched_latency` — pipeline depth in slots (0 = the matching is
    ///   computed and applied in the same slot, as in [`IqSwitch`]).
    ///
    /// [`IqSwitch`]: crate::switch::IqSwitch
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        scheduler: Box<dyn Scheduler + Send>,
        speedup: usize,
        sched_latency: usize,
        pq_cap: usize,
        voq_cap: usize,
        outbuf_cap: usize,
    ) -> Self {
        assert_eq!(scheduler.num_ports(), n, "scheduler port count mismatch");
        assert!(speedup >= 1, "speedup must be at least 1");
        CioqSwitch {
            n,
            scheduler,
            speedup,
            sched_latency,
            pqs: (0..n).map(|_| BoundedFifo::new(pq_cap)).collect(),
            voqs: (0..n).map(|_| VoqSet::new(n, voq_cap)).collect(),
            outputs: (0..n).map(|_| BoundedFifo::new(outbuf_cap)).collect(),
            requests: RequestMatrix::new(n),
            pipeline: VecDeque::new(),
            in_flight: vec![0; n * n],
            wasted_grants: 0,
            // The pipeline holds at most `sched_latency + 1` batches of
            // `speedup` matchings; pre-size the pools so steady state never
            // allocates.
            free: (0..(sched_latency + 1) * speedup)
                .map(|_| Matching::new(n))
                .collect(),
            free_batches: (0..sched_latency + 2)
                .map(|_| Vec::with_capacity(speedup))
                .collect(),
            arrivals: vec![None; n],
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Name of the scheduler driving the fabric.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Fabric speedup.
    pub fn speedup(&self) -> usize {
        self.speedup
    }

    /// Scheduling pipeline depth in slots.
    pub fn sched_latency(&self) -> usize {
        self.sched_latency
    }

    /// Grants that arrived after their VOQ had already drained.
    pub fn wasted_grants(&self) -> u64 {
        self.wasted_grants
    }

    /// Total packets currently buffered anywhere.
    pub fn buffered_packets(&self) -> usize {
        self.pqs.iter().map(|q| q.len()).sum::<usize>()
            + self.voqs.iter().map(|v| v.total_len()).sum::<usize>()
            + self.outputs.iter().map(|q| q.len()).sum::<usize>()
    }

    fn compute_matchings(&mut self) -> Vec<Matching> {
        let n = self.n;
        let mut matchings = self.free_batches.pop().unwrap_or_default();
        matchings.clear();
        // The scheduler sees the VOQ state as of now, minus packets already
        // granted (in the pipeline or by an earlier pass of this slot) —
        // the same information a real pipelined/speedup scheduler has.
        for _ in 0..self.speedup {
            for i in 0..n {
                for j in 0..n {
                    let avail = self.voqs[i].len_for(j) > self.in_flight[i * n + j];
                    self.requests.set(i, j, avail);
                }
            }
            // lint:allow(hot-path-alloc): free is pre-sized to (sched_latency+1)*speedup at construction and recycled every slot, so this fallback is unreachable
            let mut m = self.free.pop().unwrap_or_else(|| Matching::new(n));
            self.scheduler.schedule_into(&self.requests, &mut m);
            for (i, j) in m.pairs() {
                self.in_flight[i * n + j] += 1;
            }
            matchings.push(m);
        }
        matchings
    }

    /// Starts recording telemetry: scheduler decision traces plus slot-loop
    /// metrics, into a trace buffer of `trace_capacity` events (0 =
    /// unbounded).
    #[cfg(feature = "telemetry")]
    pub fn enable_telemetry(&mut self, trace_capacity: usize) {
        self.scheduler.set_tracing(true);
        self.telemetry = Some(Box::new(SwitchTelemetry {
            trace: TraceBuffer::new(trace_capacity),
            metrics: MetricsRegistry::new(),
            clock: SlotClock::new(),
        }));
    }

    /// Stops recording and hands back the collected telemetry.
    #[cfg(feature = "telemetry")]
    pub fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        self.scheduler.set_tracing(false);
        self.telemetry.take()
    }

    /// The live telemetry state, if enabled.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Drains the scheduler's queued decision events into `sink`.
    #[cfg(feature = "telemetry")]
    pub fn drain_scheduler_events(&mut self, sink: &mut dyn FnMut(Event)) {
        self.scheduler.drain_events(sink);
    }

    /// Advances one slot.
    pub fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        let n = self.n;
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.clock.seek(slot);
        }

        // Arrivals (one per-slot batch) and PQ -> VOQ spill, identical in
        // behavior to the IQ switch.
        traffic.arrivals_into(slot, rng, &mut self.arrivals);
        for (input, dst) in self.arrivals.iter().enumerate() {
            let Some(dst) = *dst else { continue };
            stats.on_generated();
            if !self.pqs[input].push(Packet::new(input, dst, slot)) {
                stats.on_drop_pq();
            }
        }
        for (pq, voq) in self.pqs.iter_mut().zip(self.voqs.iter_mut()) {
            while let Some(head) = pq.head() {
                if !voq.has_room_for(head.dst_idx()) {
                    break;
                }
                let Some(p) = pq.pop() else {
                    break; // unreachable: `head` returned Some above
                };
                let pushed = voq.push(p);
                debug_assert!(pushed);
            }
        }

        // Compute this slot's matchings and push them into the pipeline;
        // apply the matchings that have emerged from it.
        let fresh = self.compute_matchings();
        self.pipeline.push_back(fresh);
        let ready = if self.pipeline.len() > self.sched_latency {
            self.pipeline.pop_front()
        } else {
            None // pipeline still filling
        };

        if let Some(mut matchings) = ready {
            for m in &matchings {
                for (i, j) in m.pairs() {
                    self.in_flight[i * n + j] = self.in_flight[i * n + j].saturating_sub(1);
                    // A grant is wasted only if the output buffer is full
                    // (the in-flight accounting guarantees the VOQ packet
                    // exists).
                    if self.outputs[j].is_full() {
                        self.wasted_grants += 1;
                        continue;
                    }
                    match self.voqs[i].pop_for(j) {
                        Some(p) => {
                            let pushed = self.outputs[j].push(p);
                            debug_assert!(pushed, "fullness checked above");
                        }
                        None => self.wasted_grants += 1,
                    }
                }
            }
            // Return the buffers to the pools for the next slot.
            self.free.append(&mut matchings);
            self.free_batches.push(matchings);
        }

        // Output links: one packet per output per slot.
        let mut delivered = 0u64;
        for output in 0..n {
            if let Some(p) = self.outputs[output].pop() {
                stats.on_delivered(&p, slot);
                delivered += 1;
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = delivered;

        #[cfg(feature = "telemetry")]
        if self.telemetry.is_some() {
            let buffered = self.buffered_packets() as f64;
            // lint:allow(no-panic): is_some checked just above
            let t = self.telemetry.as_deref_mut().expect("checked above");
            t.metrics.counter_add("sim.delivered", delivered);
            t.metrics.counter_inc("sim.slots");
            t.metrics.gauge_set("sim.buffered_packets", buffered);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Bernoulli, DestPattern};
    use lcf_core::registry::SchedulerKind;
    use rand::SeedableRng;

    fn mk(speedup: usize, latency: usize) -> CioqSwitch {
        let n = 8;
        CioqSwitch::new(
            n,
            SchedulerKind::LcfCentralRr.build(n, 4, 1),
            speedup,
            latency,
            1000,
            256,
            256,
        )
    }

    fn run(sw: &mut CioqSwitch, load: f64, slots: u64, seed: u64) -> SimStats {
        let n = sw.n();
        let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(seed);
        crate::model::drive(
            sw,
            &mut traffic,
            &mut rng,
            &crate::model::DriveOptions::new(0, slots, 4096),
        )
    }

    #[test]
    fn conservation_with_speedup_and_latency() {
        for (s, l) in [(1, 0), (2, 0), (1, 3), (2, 2), (4, 1)] {
            let mut sw = mk(s, l);
            let stats = run(&mut sw, 0.9, 3_000, 42);
            let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
            assert_eq!(stats.generated, accounted, "speedup {s} latency {l}");
        }
    }

    #[test]
    fn speedup_one_zero_latency_matches_iq_ballpark() {
        // CIOQ with s=1, L=0 adds one output-buffer stage to the IQ model;
        // latency should be close to (and no better than a slot below) the
        // plain IQ switch.
        let mut sw = mk(1, 0);
        let stats = run(&mut sw, 0.7, 20_000, 7);
        assert_eq!(stats.dropped(), 0);
        assert!(stats.mean_latency() < 5.0);
    }

    #[test]
    fn speedup_reduces_latency_at_high_load() {
        let mut s1 = mk(1, 0);
        let mut s2 = mk(2, 0);
        let lat1 = run(&mut s1, 0.95, 30_000, 9).mean_latency();
        let lat2 = run(&mut s2, 0.95, 30_000, 9).mean_latency();
        assert!(
            lat2 < lat1,
            "speedup 2 must beat speedup 1 at load 0.95 ({lat2} vs {lat1})"
        );
    }

    #[test]
    fn pipeline_latency_adds_delay_but_keeps_throughput() {
        let mut l0 = mk(1, 0);
        let mut l4 = mk(1, 4);
        let st0 = run(&mut l0, 0.6, 20_000, 11);
        let st4 = run(&mut l4, 0.6, 20_000, 11);
        // "these techniques do not reduce latency": depth adds ~4 slots.
        assert!(st4.mean_latency() > st0.mean_latency() + 3.0);
        // But throughput is preserved (pipelining overlaps work).
        let thr = |st: &SimStats| st.delivered as f64;
        assert!((thr(&st4) / thr(&st0) - 1.0).abs() < 0.02);
    }

    #[test]
    fn stale_grants_are_counted_not_fatal() {
        // With deep pipelining and bursty drain patterns some grants go
        // stale; the switch must absorb them.
        let mut sw = mk(2, 6);
        let stats = run(&mut sw, 0.8, 10_000, 13);
        assert!(stats.delivered > 0);
        // wasted_grants is a counter, not an error: just ensure accounting
        // held (conservation is checked in the dedicated test).
        let _ = sw.wasted_grants();
    }

    #[test]
    #[should_panic(expected = "speedup must be at least 1")]
    fn zero_speedup_panics() {
        let _ = mk(0, 0);
    }
}
