//! Long-lived sharded serve engine: windowed drive sessions, merged shard
//! telemetry, online reconfiguration.
//!
//! Batch entry points ([`run_sim`](crate::runner::run_sim) and friends) run
//! a simulation to completion and exit. `serve` instead keeps `shards`
//! independent [`DriveSession`]s alive — one worker thread per shard, seeds
//! decorrelated with [`replicate_seed`](crate::runner::replicate_seed) —
//! and advances them in **lock-step measurement windows** behind a
//! [`Barrier`]:
//!
//! ```text
//!   shard 0   warmup ─ window 0 ─║─ window 1 ─║─ … ─ drain
//!   shard 1   warmup ─ window 0 ─║─ window 1 ─║─ … ─ drain
//!   shard 2   warmup ─ window 0 ─║─ window 1 ─║─ … ─ drain
//!                               barrier      barrier
//! ```
//!
//! After each window every shard sends its [`WindowReport`] to the
//! coordinator, which merges them **in shard order** into one
//! `MetricsRegistry` snapshot per window ([`merge_window_reports`]) and
//! emits it as a JSON line. Because the merge order is fixed by shard id —
//! never by message-arrival order — and every shard is deterministic under
//! its derived seed, the emitted telemetry is byte-identical across runs
//! regardless of how the OS interleaves the worker threads (pinned by
//! `tests/serve_session.rs`).
//!
//! Between windows the engine applies a [`ControlScript`] — identical on
//! every shard — for **online reconfiguration**:
//!
//! ```text
//!   # control-script grammar (one command per line, '#' comments)
//!   at <window> scheduler <name>     # swap the boolean scheduler
//!   at <window> backend <scalar|bitset>
//!   at <window> load <fraction>      # rebuild the traffic generator
//!   at <window> drain                # stop measuring, go straight to drain
//! ```
//!
//! A command `at w` runs *before* window `w` is stepped. Shutdown is always
//! a **graceful drain**: arrivals stop ([`Silence`]) and each shard steps
//! until `buffered_packets() == 0` or the drain deadline, producing a final
//! merged [`DrainReport`] line.

use crate::config::{ModelKind, SimConfig};
use crate::runner::{build_model, build_scheduler, build_traffic, replicate_seed, SimRng};
use crate::session::{DrainReport, DriveSession, WindowReport};
use crate::traffic::Silence;
use lcf_core::bitkern::Backend;
use lcf_core::registry::SchedulerKind;
// lint:allow(telemetry-hygiene): the registry/JSON types are plain mergeable data structures; serve snapshots are emitted unconditionally, independent of per-slot trace telemetry
use lcf_telemetry::{json::Value, MetricsRegistry};
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Barrier;

/// One reconfiguration action of a [`ControlScript`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ControlCommand {
    /// Swap the boolean scheduler engine (seeded exactly like a
    /// construction-time scheduler of the shard's config).
    Scheduler(SchedulerKind),
    /// Rebuild the current scheduler on the other matching-kernel backend.
    Backend(Backend),
    /// Replace the traffic generator with one at this offered load.
    Load(f64),
    /// End the measurement phase now; go straight to the graceful drain.
    Drain,
}

/// A parsed control script: `(window, command)` pairs sorted by window
/// (file order preserved within a window).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlScript {
    commands: Vec<(u64, ControlCommand)>,
}

impl ControlScript {
    /// An empty script (no reconfiguration; measure all windows, then
    /// drain).
    pub fn empty() -> Self {
        ControlScript::default()
    }

    /// Parses the script grammar shown in the [module docs](self): one
    /// `at <window> <command>` per line, blank lines and `#` comments
    /// ignored. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut commands = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("control script line {}: {}", idx + 1, msg);
            let mut tokens = line.split_whitespace();
            if tokens.next() != Some("at") {
                return Err(err(format!(
                    "expected 'at <window> <command>', got '{line}'"
                )));
            }
            let window = tokens
                .next()
                .ok_or_else(|| err("missing window number after 'at'".to_string()))?
                .parse::<u64>()
                .map_err(|e| err(format!("bad window number: {e}")))?;
            let verb = tokens
                .next()
                .ok_or_else(|| err("missing command after window number".to_string()))?;
            let arg = tokens.next();
            if tokens.next().is_some() {
                return Err(err(format!("trailing tokens after '{verb}' command")));
            }
            let command = match (verb, arg) {
                ("drain", None) => ControlCommand::Drain,
                ("drain", Some(_)) => return Err(err("'drain' takes no argument".to_string())),
                ("scheduler", Some(name)) => match ModelKind::from_name(name) {
                    Some(ModelKind::Scheduler(kind)) => ControlCommand::Scheduler(kind),
                    _ => return Err(err(format!("unknown scheduler '{name}'"))),
                },
                ("backend", Some(name)) => match Backend::from_name(name) {
                    Some(backend) => ControlCommand::Backend(backend),
                    None => {
                        return Err(err(format!(
                            "unknown backend '{name}' (want scalar|bitset)"
                        )))
                    }
                },
                ("load", Some(value)) => ControlCommand::Load(
                    value
                        .parse::<f64>()
                        .map_err(|e| err(format!("bad load: {e}")))?,
                ),
                (verb, None) => return Err(err(format!("'{verb}' needs an argument"))),
                (verb, _) => return Err(err(format!("unknown command '{verb}'"))),
            };
            commands.push((window, command));
        }
        commands.sort_by_key(|(window, _)| *window);
        Ok(ControlScript { commands })
    }

    /// The commands scheduled to run before window `window`, in file order.
    pub fn commands_at(&self, window: u64) -> impl Iterator<Item = &ControlCommand> {
        self.commands
            .iter()
            .filter(move |(w, _)| *w == window)
            .map(|(_, c)| c)
    }

    /// All `(window, command)` pairs, sorted by window.
    pub fn commands(&self) -> &[(u64, ControlCommand)] {
        &self.commands
    }

    /// True if the script contains no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

/// Configuration of a [`serve`] run: the per-shard simulation parameters
/// plus the serve-layer knobs (shard count, window geometry, drain
/// deadline, control script).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-shard simulation parameters. `seed` is the *base* seed — shard
    /// `i` runs under [`replicate_seed`]`(base.seed, i)`, so shard 0
    /// reproduces a plain `run_sim(base)` stream exactly. `warmup_slots` is
    /// honored before the first window; `measure_slots` is ignored (the
    /// measurement length is `windows * window_slots`).
    pub base: SimConfig,
    /// Number of independent shards (worker threads).
    pub shards: usize,
    /// Slots per measurement window.
    pub window_slots: u64,
    /// Number of measurement windows (snapshots) before shutdown.
    pub windows: u64,
    /// Maximum slots the graceful drain may take per shard.
    pub drain_deadline_slots: u64,
    /// Bucket range of the per-slot backlog occupancy histograms.
    pub occupancy_range: usize,
    /// Reconfiguration commands applied between windows.
    pub script: ControlScript,
}

impl ServeConfig {
    /// A serve configuration with the default serve-layer knobs: 4 shards,
    /// 8 windows of 5 000 slots, a 50 000-slot drain deadline, occupancy
    /// range 4 096 and an empty control script.
    pub fn new(base: SimConfig) -> Self {
        ServeConfig {
            base,
            shards: 4,
            window_slots: 5_000,
            windows: 8,
            drain_deadline_slots: 50_000,
            occupancy_range: 4_096,
            script: ControlScript::empty(),
        }
    }

    /// Validates the serve-layer knobs, the base config, and — command by
    /// command — the control script, so the worker threads can treat every
    /// reconfiguration as infallible.
    pub fn validate(&self) -> Result<(), String> {
        // `base.measure_slots` is unused in serve mode (the measurement
        // length is windows * window_slots), so validate with the
        // effective value rather than rejecting e.g. `measure_slots: 0`.
        let probe = SimConfig {
            measure_slots: self.windows.saturating_mul(self.window_slots).max(1),
            ..self.base.clone()
        };
        probe.validate()?;
        if self.shards == 0 {
            return Err("serve needs at least one shard".to_string());
        }
        if self.windows == 0 {
            return Err("serve needs at least one measurement window".to_string());
        }
        if self.window_slots == 0 {
            return Err("window_slots must be positive".to_string());
        }
        if self.occupancy_range == 0 {
            return Err("occupancy_range must be positive".to_string());
        }
        for (window, command) in &self.commands_with_windows() {
            if *window >= self.windows {
                return Err(format!(
                    "control script schedules a command at window {window}, but only {} windows run",
                    self.windows
                ));
            }
            match command {
                ControlCommand::Scheduler(_) | ControlCommand::Backend(_)
                    if !matches!(self.base.model, ModelKind::Scheduler(base)
                        if !base.wants_fifo_queues()) =>
                {
                    return Err(format!(
                        "scheduler/backend swaps need a VOQ scheduler model, not '{}'",
                        self.base.model.name()
                    ));
                }
                ControlCommand::Scheduler(kind) if kind.wants_fifo_queues() => {
                    return Err(
                        "cannot swap to 'fifo': it needs single-FIFO input queues".to_string()
                    );
                }
                ControlCommand::Load(load) => {
                    let load_probe = SimConfig {
                        load: *load,
                        ..probe.clone()
                    };
                    load_probe
                        .validate()
                        .map_err(|e| format!("control script load {load}: {e}"))?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn commands_with_windows(&self) -> Vec<(u64, ControlCommand)> {
        self.script.commands().to_vec()
    }
}

/// What a completed [`serve`] run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Measurement windows actually stepped (fewer than configured when the
    /// script issued an early `drain`).
    pub windows_run: u64,
    /// One merged JSON snapshot line per window, in window order.
    pub snapshots: Vec<String>,
    /// The same per-window merged registries in structured form (what each
    /// snapshot line renders), for programmatic consumers like the
    /// `queue_evolution` bench.
    pub merged: Vec<MetricsRegistry>,
    /// Per-shard drain reports, in shard order.
    pub drain_reports: Vec<DrainReport>,
    /// True if every shard reached `buffered_packets() == 0` before its
    /// drain deadline.
    pub drained: bool,
    /// The final merged drain report as a JSON line.
    pub drain_json: String,
}

enum ShardMsg {
    Window {
        shard: usize,
        window: u64,
        report: WindowReport,
    },
    Drain {
        shard: usize,
        report: DrainReport,
    },
}

/// Merges one window's per-shard reports into a single registry snapshot.
///
/// The reports are sorted by shard id before merging, so the result is a
/// pure function of the *set* of `(shard, report)` pairs — any thread
/// interleaving (input permutation) produces the same registry, and the
/// JSON export is key-sorted on top. Counters (`serve.generated`, …) sum
/// across shards; per-shard gauges are namespaced (`serve.shard.3.backlog`)
/// so last-writer-wins never collides; occupancy histograms merge
/// sample-exactly into `serve.occupancy`.
pub fn merge_window_reports(reports: &[(usize, WindowReport)]) -> MetricsRegistry {
    let mut ordered: Vec<&(usize, WindowReport)> = reports.iter().collect();
    ordered.sort_by_key(|(shard, _)| *shard);
    let mut merged = MetricsRegistry::new();
    let mut latency_weighted = 0.0;
    let mut latency_samples = 0u64;
    for (shard, report) in ordered {
        let mut snapshot = MetricsRegistry::new();
        snapshot.counter_add("serve.generated", report.generated);
        snapshot.counter_add("serve.delivered", report.delivered);
        snapshot.counter_add("serve.dropped", report.dropped);
        snapshot.counter_add("serve.latency_samples", report.latency_samples);
        snapshot.counter_add("serve.slots", report.slots);
        snapshot.gauge_set(
            format!("serve.shard.{shard}.backlog"),
            report.backlog as f64,
        );
        snapshot.gauge_set(
            format!("serve.shard.{shard}.mean_latency"),
            report.mean_latency,
        );
        snapshot.gauge_set(
            format!("serve.shard.{shard}.mean_backlog"),
            report.mean_backlog,
        );
        if let Some(hist) = &report.occupancy {
            snapshot
                .histogram_merge("serve.occupancy", hist)
                // lint:allow(no-panic): every shard samples with the one configured occupancy range
                .expect("occupancy ranges match across shards");
        }
        let mismatched = merged.merge(&snapshot);
        debug_assert!(mismatched.is_empty());
        latency_weighted += report.mean_latency * report.latency_samples as f64;
        latency_samples += report.latency_samples;
    }
    if latency_samples > 0 {
        merged.gauge_set(
            "serve.mean_latency",
            latency_weighted / latency_samples as f64,
        );
    }
    merged
}

fn snapshot_line(window: u64, reports: &[(usize, WindowReport)]) -> (String, MetricsRegistry) {
    let merged = merge_window_reports(reports);
    let slot = reports
        .iter()
        .map(|(_, r)| r.start_slot + r.slots)
        .max()
        .unwrap_or(0);
    let line = format!(
        "{{\"window\":{window},\"slot\":{slot},\"shards\":{},\"metrics\":{}}}",
        reports.len(),
        merged.to_json()
    );
    (line, merged)
}

fn drain_line(drains: &[(usize, DrainReport)]) -> String {
    let shards: Vec<Value> = drains
        .iter()
        .map(|(shard, r)| {
            Value::Obj(vec![
                ("shard".into(), Value::U64(*shard as u64)),
                ("start_slot".into(), Value::U64(r.start_slot)),
                ("end_slot".into(), Value::U64(r.end_slot)),
                ("drained".into(), Value::Bool(r.drained)),
                ("remaining".into(), Value::U64(r.remaining_packets as u64)),
                ("delivered".into(), Value::U64(r.delivered)),
            ])
        })
        .collect();
    let drained = drains.iter().all(|(_, r)| r.drained);
    let remaining: u64 = drains.iter().map(|(_, r)| r.remaining_packets as u64).sum();
    let delivered: u64 = drains.iter().map(|(_, r)| r.delivered).sum();
    let end_slot = drains.iter().map(|(_, r)| r.end_slot).max().unwrap_or(0);
    Value::Obj(vec![(
        "drain".into(),
        Value::Obj(vec![
            ("drained".into(), Value::Bool(drained)),
            ("remaining".into(), Value::U64(remaining)),
            ("delivered".into(), Value::U64(delivered)),
            ("end_slot".into(), Value::U64(end_slot)),
            ("shards".into(), Value::Seq(shards)),
        ]),
    )])
    .to_json()
}

/// One shard's whole life: build, warm up, measure windows under the
/// barrier (applying script commands between windows), drain. Runs on a
/// worker thread; every step is deterministic under the shard seed, and
/// every fallible reconfiguration was pre-validated by
/// [`ServeConfig::validate`].
fn run_shard(cfg: &ServeConfig, shard: usize, barrier: &Barrier, tx: &mpsc::Sender<ShardMsg>) {
    let mut live_cfg = SimConfig {
        seed: replicate_seed(cfg.base.seed, shard),
        ..cfg.base.clone()
    };
    let (model, _backend) = build_model(&live_cfg);
    let traffic = build_traffic(&live_cfg);
    let rng = SimRng::seed_from_u64(live_cfg.seed);
    let mut session = DriveSession::new(model, traffic, rng, live_cfg.max_latency_bucket);
    session.sample_occupancy(cfg.occupancy_range);
    session.step_window(live_cfg.warmup_slots);
    session.begin_measurement();

    'measure: for window in 0..cfg.windows {
        for command in cfg.script.commands_at(window) {
            match command {
                ControlCommand::Drain => break 'measure,
                ControlCommand::Scheduler(kind) => {
                    live_cfg.model = ModelKind::Scheduler(*kind);
                    let (scheduler, _) = build_scheduler(&live_cfg, *kind);
                    session
                        .model_mut()
                        .swap_scheduler(scheduler)
                        // lint:allow(no-panic): ServeConfig::validate pre-checked every swap target
                        .expect("validated scheduler swap failed");
                }
                ControlCommand::Backend(backend) => {
                    live_cfg.backend = *backend;
                    let kind = match live_cfg.model {
                        ModelKind::Scheduler(kind) => kind,
                        // lint:allow(no-panic): ServeConfig::validate rejects backend swaps on non-scheduler models
                        ModelKind::OutputBuffered => unreachable!("validated backend swap"),
                    };
                    let (scheduler, _) = build_scheduler(&live_cfg, kind);
                    session
                        .model_mut()
                        .swap_scheduler(scheduler)
                        // lint:allow(no-panic): ServeConfig::validate pre-checked every swap target
                        .expect("validated scheduler swap failed");
                }
                ControlCommand::Load(load) => {
                    live_cfg.load = *load;
                    session.set_traffic(build_traffic(&live_cfg));
                }
            }
        }
        let report = session.step_window(cfg.window_slots);
        let _ = tx.send(ShardMsg::Window {
            shard,
            window,
            report,
        });
        barrier.wait();
    }

    let quiet: Box<dyn crate::traffic::Traffic> = Box::new(Silence::new(live_cfg.n));
    let report = session.drain(quiet, cfg.drain_deadline_slots);
    let _ = tx.send(ShardMsg::Drain { shard, report });
}

/// Runs the serve engine, calling `emit` with each merged JSON line (one
/// per window, then the final drain line) as soon as it is complete.
///
/// Returns the collected [`ServeOutcome`]; `Err` only for configuration
/// errors (a panicking shard propagates, like [`try_sweep`]'s workers
/// would without their catch).
///
/// [`try_sweep`]: crate::runner::try_sweep
pub fn serve_with(cfg: &ServeConfig, mut emit: impl FnMut(&str)) -> Result<ServeOutcome, String> {
    cfg.validate()?;
    let barrier = Barrier::new(cfg.shards);
    let (tx, rx) = mpsc::channel();

    let (snapshots, merged_registries, mut drains) = std::thread::scope(|scope| {
        for shard in 0..cfg.shards {
            let tx = tx.clone();
            let barrier = &barrier;
            scope.spawn(move || run_shard(cfg, shard, barrier, &tx));
        }
        drop(tx);

        // Coordinator: arrival order is nondeterministic, so buffer by
        // window and flush a window only once all shards reported it —
        // emission order and merge order are then fully deterministic.
        let mut pending: BTreeMap<u64, Vec<(usize, WindowReport)>> = BTreeMap::new();
        let mut next_window = 0u64;
        let mut snapshots = Vec::new();
        let mut merged_registries = Vec::new();
        let mut drains: Vec<(usize, DrainReport)> = Vec::new();
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Window {
                    shard,
                    window,
                    report,
                } => {
                    pending.entry(window).or_default().push((shard, report));
                    while pending
                        .get(&next_window)
                        .is_some_and(|reports| reports.len() == cfg.shards)
                    {
                        if let Some(reports) = pending.remove(&next_window) {
                            let (line, merged) = snapshot_line(next_window, &reports);
                            emit(&line);
                            snapshots.push(line);
                            merged_registries.push(merged);
                        }
                        next_window += 1;
                    }
                }
                ShardMsg::Drain { shard, report } => drains.push((shard, report)),
            }
        }
        (snapshots, merged_registries, drains)
    });

    drains.sort_by_key(|(shard, _)| *shard);
    let drain_json = drain_line(&drains);
    emit(&drain_json);
    let drained = drains.iter().all(|(_, r)| r.drained);
    Ok(ServeOutcome {
        windows_run: snapshots.len() as u64,
        snapshots,
        merged: merged_registries,
        drain_reports: drains.into_iter().map(|(_, r)| r).collect(),
        drained,
        drain_json,
    })
}

/// [`serve_with`] without a streaming sink: runs the engine and returns
/// the collected outcome.
pub fn serve(cfg: &ServeConfig) -> Result<ServeOutcome, String> {
    serve_with(cfg, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrafficKind;

    fn quick_serve_cfg() -> ServeConfig {
        let base = SimConfig {
            model: ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
            n: 4,
            load: 0.6,
            warmup_slots: 200,
            measure_slots: 0,
            traffic: TrafficKind::Bernoulli,
            seed: 0xB0B,
            max_latency_bucket: 256,
            ..SimConfig::paper_default()
        };
        ServeConfig {
            shards: 2,
            window_slots: 300,
            windows: 3,
            drain_deadline_slots: 5_000,
            occupancy_range: 512,
            ..ServeConfig::new(base)
        }
    }

    #[test]
    fn script_parses_grammar_and_reports_line_errors() {
        let script = ControlScript::parse(
            "# swap mid-run\nat 2 scheduler islip\n\nat 1 load 0.3 # lighter\nat 3 backend scalar\nat 4 drain\n",
        )
        .unwrap();
        assert_eq!(script.commands().len(), 4);
        assert_eq!(
            script.commands()[0],
            (1, ControlCommand::Load(0.3)),
            "sorted by window"
        );
        assert_eq!(
            script.commands_at(2).collect::<Vec<_>>(),
            vec![&ControlCommand::Scheduler(SchedulerKind::Islip)]
        );
        assert!(ControlScript::parse("at x scheduler islip")
            .unwrap_err()
            .contains("line 1"));
        assert!(ControlScript::parse("at 1 scheduler nope")
            .unwrap_err()
            .contains("unknown scheduler"));
        assert!(ControlScript::parse("go 1 drain")
            .unwrap_err()
            .contains("expected 'at"));
        assert!(ControlScript::parse("at 1 drain now")
            .unwrap_err()
            .contains("takes no argument"));
    }

    #[test]
    fn validate_rejects_bad_scripts() {
        let mut cfg = quick_serve_cfg();
        cfg.script = ControlScript::parse("at 9 drain").unwrap();
        assert!(cfg.validate().unwrap_err().contains("window 9"));
        cfg.script = ControlScript::parse("at 1 scheduler fifo").unwrap();
        assert!(cfg.validate().unwrap_err().contains("fifo"));
        cfg.script = ControlScript::parse("at 1 load 7.0").unwrap();
        assert!(cfg.validate().is_err());
        cfg.script = ControlScript::parse("at 1 scheduler islip").unwrap();
        cfg.base.model = ModelKind::OutputBuffered;
        assert!(cfg.validate().unwrap_err().contains("VOQ scheduler"));
    }

    #[test]
    fn merge_is_permutation_invariant() {
        let report = |shard: usize| WindowReport {
            start_slot: 200,
            slots: 300,
            generated: 100 + shard as u64,
            delivered: 90 + shard as u64,
            dropped: 0,
            latency_samples: 50,
            mean_latency: 2.0 + shard as f64,
            backlog: shard,
            mean_backlog: shard as f64,
            occupancy: None,
        };
        let forward = vec![(0, report(0)), (1, report(1)), (2, report(2))];
        let shuffled = vec![(2, report(2)), (0, report(0)), (1, report(1))];
        assert_eq!(
            merge_window_reports(&forward).to_json(),
            merge_window_reports(&shuffled).to_json()
        );
        let merged = merge_window_reports(&forward);
        assert_eq!(merged.counter("serve.generated"), 303);
        assert_eq!(merged.gauge("serve.shard.2.backlog"), Some(2.0));
    }

    #[test]
    fn serve_runs_and_drains() {
        let cfg = quick_serve_cfg();
        let outcome = serve(&cfg).unwrap();
        assert_eq!(outcome.windows_run, 3);
        assert_eq!(outcome.snapshots.len(), 3);
        assert_eq!(outcome.drain_reports.len(), 2);
        assert!(outcome.drained, "light load must drain inside the deadline");
        assert!(outcome.snapshots[0].starts_with("{\"window\":0,"));
        assert!(outcome.drain_json.contains("\"drained\":true"));
    }
}
