//! # lcf-sim — slot-based input-queued switch simulator
//!
//! Implements the simulation model of the paper's Fig. 11: packet generators
//! (`PG`) feed per-input packet queues (`PQ`), which spill into virtual
//! output queues (`VOQ`); a [scheduler](lcf_core::traits::Scheduler) connects
//! inputs to outputs through a non-blocking fabric once per time slot.
//!
//! Three switch architectures are modelled, all behind the
//! [`model::SwitchModel`] trait:
//!
//! * [`switch::IqSwitch`] (alias [`switch::CrossbarSwitch`]) with VOQs —
//!   used by all VOQ schedulers (`lcf_central`, `pim`, `islip`, …) — or
//!   with a single FIFO per input — the `fifo` baseline exhibiting
//!   head-of-line blocking,
//! * [`cioq::CioqSwitch`] — combined input/output queueing with fabric
//!   speedup and pipelined scheduling,
//! * [`outbuf::ObSwitch`] — the output-buffered reference (`outbuf`).
//!
//! One windowed slot loop, [`session::DriveSession`], runs them all: the
//! one-shot [`model::drive`] protocol is a thin warm-up + measurement
//! wrapper over it, the [`runner`] module adds config handling and parallel
//! load sweeps (one simulation per thread; each simulation is
//! single-threaded and fully deterministic under its seed), and the
//! [`serve`] module keeps sharded sessions alive across measurement
//! windows with merged telemetry and online reconfiguration.
//!
//! ```
//! use lcf_sim::prelude::*;
//!
//! let cfg = SimConfig {
//!     model: ModelKind::Scheduler(SchedulerKind::LcfCentral),
//!     load: 0.5,
//!     warmup_slots: 1_000,
//!     measure_slots: 5_000,
//!     ..SimConfig::paper_default()
//! };
//! let report = run_sim(&cfg);
//! assert!(report.mean_latency() < 5.0); // light load, tiny delay
//! assert!(report.delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod cioq;
pub mod config;
pub mod model;
pub mod outbuf;
pub mod packet;
pub mod queues;
pub mod runner;
pub mod serve;
pub mod session;
pub mod stats;
pub mod switch;
pub mod traffic;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cioq::CioqSwitch;
    pub use crate::config::{ModelKind, SimConfig};
    pub use crate::model::{drive, DriveOptions, SwitchModel};
    pub use crate::outbuf::ObSwitch;
    pub use crate::packet::Packet;
    pub use crate::runner::{run_sim, sweep, SimReport};
    pub use crate::serve::{serve, ControlScript, ServeConfig, ServeOutcome};
    pub use crate::session::{DrainReport, DriveSession, WindowReport};
    pub use crate::stats::SimStats;
    pub use crate::switch::{CrossbarSwitch, IqSwitch, QueueMode};
    pub use crate::traffic::{DestPattern, Silence, Traffic};
    pub use lcf_core::prelude::*;
}
