//! The output-buffered reference switch (`outbuf` in Fig. 12).
//!
//! In an output-buffered switch the fabric runs fast enough (write bandwidth
//! `n·b` per buffer, Sec. 2) that arriving packets move straight into their
//! output's buffer; the only queueing is for the output *link*. This is the
//! performance lower envelope every input-queued scheduler is compared
//! against — "packets are only delayed due to contention for output link
//! bandwidth" (Sec. 6.3).

use crate::packet::Packet;
use crate::queues::BoundedFifo;
use crate::stats::SimStats;
use crate::traffic::Traffic;
use rand::rngs::StdRng;

/// An output-buffered switch.
///
/// Per slot ([`ObSwitch::step`]):
///
/// 1. **Arrivals** — each generator may produce one packet into its input's
///    packet queue (PQ), exactly as in the input-queued model.
/// 2. **Fabric transfer** — every input forwards its PQ head into the
///    destination output buffer. The buffer accepts up to `n` packets per
///    slot (one from every input); only a *full* buffer blocks, in which
///    case the packet waits in the PQ.
/// 3. **Output service** — each output transmits one buffered packet per
///    slot on its link.
pub struct ObSwitch {
    n: usize,
    pqs: Vec<BoundedFifo>,
    outputs: Vec<BoundedFifo>,
    /// Per-slot arrival batch, reused across slots.
    arrivals: Vec<Option<usize>>,
}

impl ObSwitch {
    /// Builds the switch with the given per-input PQ and per-output buffer
    /// capacities.
    pub fn new(n: usize, pq_cap: usize, outbuf_cap: usize) -> Self {
        assert!(n > 0, "switch requires n > 0");
        ObSwitch {
            n,
            pqs: (0..n).map(|_| BoundedFifo::new(pq_cap)).collect(),
            outputs: (0..n).map(|_| BoundedFifo::new(outbuf_cap)).collect(),
            arrivals: vec![None; n],
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total packets currently buffered.
    pub fn buffered_packets(&self) -> usize {
        self.pqs.iter().map(|q| q.len()).sum::<usize>()
            + self.outputs.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Advances the simulation by one slot.
    pub fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        let n = self.n;

        // 1. Arrivals, taken as one per-slot batch from the generator.
        traffic.arrivals_into(slot, rng, &mut self.arrivals);
        for (input, dst) in self.arrivals.iter().enumerate() {
            let Some(dst) = *dst else { continue };
            stats.on_generated();
            if !self.pqs[input].push(Packet::new(input, dst, slot)) {
                stats.on_drop_pq();
            }
        }

        // 2. Fabric transfer: each input forwards one packet (link rate b).
        for input in 0..n {
            let Some(head) = self.pqs[input].head() else {
                continue;
            };
            let dst = head.dst_idx();
            if !self.outputs[dst].is_full() {
                let Some(p) = self.pqs[input].pop() else {
                    continue; // unreachable: `head` returned Some above
                };
                let pushed = self.outputs[dst].push(p);
                debug_assert!(pushed, "room was checked before the pop");
            }
        }

        // 3. Output link service: one packet per output per slot.
        for output in 0..n {
            if let Some(p) = self.outputs[output].pop() {
                stats.on_delivered(&p, slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Bernoulli, DestPattern};
    use rand::SeedableRng;

    #[test]
    fn single_packet_zero_delay() {
        let mut sw = ObSwitch::new(4, 100, 100);
        let mut traffic = Bernoulli::new(4, 0.0, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(0);
        let mut stats = SimStats::new(4, 0, 64);
        // Inject one packet manually via a 1-slot full-load burst.
        let mut one_shot = Bernoulli::new(4, 1.0, DestPattern::Permutation(vec![1, 2, 3, 0]));
        sw.step(0, &mut one_shot, &mut rng, &mut stats);
        assert_eq!(
            stats.delivered, 4,
            "all packets traverse in their arrival slot"
        );
        assert_eq!(stats.mean_latency(), 0.0);
        sw.step(1, &mut traffic, &mut rng, &mut stats);
        assert_eq!(stats.delivered, 4);
    }

    #[test]
    fn output_contention_queues_fairly() {
        // All four inputs persistently target output 0: offered 4.0, served
        // 1.0 per slot; delay grows but deliveries are one per slot.
        let mut sw = ObSwitch::new(4, 10, 256);
        let mut traffic = Bernoulli::new(4, 1.0, DestPattern::Permutation(vec![0, 0, 0, 0]));
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SimStats::new(4, 0, 4096);
        for slot in 0..100 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        assert_eq!(stats.delivered, 100, "exactly one departure per slot");
    }

    #[test]
    fn conservation_of_packets() {
        let mut sw = ObSwitch::new(8, 50, 64);
        let mut traffic = Bernoulli::new(8, 0.95, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = SimStats::new(8, 0, 4096);
        for slot in 0..5_000 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
        assert_eq!(stats.generated, accounted);
    }

    #[test]
    fn sustains_full_uniform_load() {
        // The whole point of output buffering: ~100% throughput at load 1.0.
        let n = 16;
        let mut sw = ObSwitch::new(n, 1000, 256);
        let mut traffic = Bernoulli::new(n, 1.0, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = SimStats::new(n, 0, 4096);
        let slots = 20_000;
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let throughput = stats.delivered as f64 / (slots as f64 * n as f64);
        assert!(throughput > 0.95, "outbuf throughput {throughput}");
    }

    #[test]
    fn full_output_buffer_backpressures_into_pq() {
        // Tiny output buffer, huge contention: packets must wait in the PQs
        // rather than vanish.
        let mut sw = ObSwitch::new(4, 20, 1);
        let mut traffic = Bernoulli::new(4, 1.0, DestPattern::Permutation(vec![0, 0, 0, 0]));
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = SimStats::new(4, 0, 4096);
        for slot in 0..30 {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let accounted = stats.delivered + stats.dropped() + sw.buffered_packets() as u64;
        assert_eq!(stats.generated, accounted);
        assert!(sw.buffered_packets() > 0);
    }
}
