//! Traffic generation: arrival processes and destination patterns.
//!
//! The paper's Fig. 12 experiment uses Bernoulli arrivals with uniformly
//! distributed destinations ("Load is the probability that a host generates
//! a packet in a given time slot. The destinations of the packets are
//! uniformly distributed."). The additional patterns and the bursty on-off
//! process support the extension experiments (EXT-3, EXT-6).

use rand::rngs::StdRng;
use rand::Rng;

/// How a newly generated packet picks its destination.
#[derive(Clone, Debug, PartialEq)]
pub enum DestPattern {
    /// Uniform over all `n` outputs — the paper's Fig. 12 workload.
    Uniform,
    /// Uniform over all outputs except the packet's own input (a host does
    /// not send to itself; Sec. 2 mentions this variant).
    UniformNonSelf,
    /// A fraction of the traffic converges on one hot output; the remainder
    /// is uniform over the other outputs.
    Hotspot {
        /// The overloaded output port.
        hot: usize,
        /// Probability that a packet targets the hot output.
        fraction: f64,
    },
    /// Input `i` sends to outputs `i` and `i+1 (mod n)` with probabilities
    /// 2/3 and 1/3 — the classic "diagonal" stress pattern for round-robin
    /// schedulers.
    Diagonal,
    /// Input `i` always sends to `perm[i]` — contention-free if `perm` is a
    /// permutation; useful for calibration tests.
    Permutation(Vec<usize>),
}

impl DestPattern {
    /// Samples a destination for a packet generated at `input`.
    pub fn sample(&self, n: usize, input: usize, rng: &mut StdRng) -> usize {
        match self {
            DestPattern::Uniform => rng.gen_range(0..n),
            DestPattern::UniformNonSelf => {
                if n == 1 {
                    0
                } else {
                    let d = rng.gen_range(0..n - 1);
                    if d >= input {
                        d + 1
                    } else {
                        d
                    }
                }
            }
            DestPattern::Hotspot { hot, fraction } => {
                if rng.gen_bool(*fraction) || n == 1 {
                    *hot
                } else {
                    let d = rng.gen_range(0..n - 1);
                    if d >= *hot {
                        d + 1
                    } else {
                        d
                    }
                }
            }
            DestPattern::Diagonal => {
                if rng.gen_bool(2.0 / 3.0) {
                    input % n
                } else {
                    (input + 1) % n
                }
            }
            DestPattern::Permutation(perm) => perm[input],
        }
    }
}

/// An arrival process: per slot and input, possibly one new packet.
pub trait Traffic {
    /// Number of switch ports the process was built for.
    fn n(&self) -> usize;

    /// Destination of the packet generated at `input` in this slot, if one
    /// is generated. Called exactly once per `(slot, input)` pair, inputs in
    /// ascending order.
    fn arrival(&mut self, slot: u64, input: usize, rng: &mut StdRng) -> Option<usize>;
}

/// Independent Bernoulli arrivals of rate `load` per input per slot.
#[derive(Clone, Debug)]
pub struct Bernoulli {
    n: usize,
    load: f64,
    pattern: DestPattern,
}

impl Bernoulli {
    /// Creates the process; `load` is the per-slot generation probability.
    pub fn new(n: usize, load: f64, pattern: DestPattern) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        Bernoulli { n, load, pattern }
    }
}

impl Traffic for Bernoulli {
    fn n(&self) -> usize {
        self.n
    }

    fn arrival(&mut self, _slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        rng.gen_bool(self.load)
            .then(|| self.pattern.sample(self.n, input, rng))
    }
}

/// Bursty on-off arrivals.
///
/// Each input alternates between ON bursts (one packet per slot, all packets
/// of a burst share one destination) and OFF gaps. Burst and gap lengths are
/// geometrically distributed with means `mean_burst` and
/// `mean_burst · (1 − load) / load`, so the long-run offered load equals
/// `load` while packets arrive back-to-back — the workload that punishes
/// schedulers relying on request diversity.
#[derive(Clone, Debug)]
pub struct OnOffBursty {
    n: usize,
    load: f64,
    mean_burst: f64,
    pattern: DestPattern,
    state: Vec<BurstState>,
}

#[derive(Clone, Copy, Debug)]
enum BurstState {
    Off,
    On { dst: usize },
}

impl OnOffBursty {
    /// Creates the process with mean burst length `mean_burst` packets.
    pub fn new(n: usize, load: f64, mean_burst: f64, pattern: DestPattern) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        assert!(mean_burst >= 1.0, "mean burst length must be >= 1");
        OnOffBursty {
            n,
            load,
            mean_burst,
            pattern,
            state: vec![BurstState::Off; n],
        }
    }

    /// Probability of leaving the ON state after each packet.
    fn p_end_burst(&self) -> f64 {
        1.0 / self.mean_burst
    }

    /// Probability of starting a burst in an OFF slot, chosen so the
    /// stationary ON fraction equals `load`.
    fn p_start_burst(&self) -> f64 {
        if self.load >= 1.0 {
            1.0
        } else {
            // mean OFF = mean ON * (1 - load) / load ; P(start) = 1 / mean OFF.
            (self.p_end_burst() * self.load / (1.0 - self.load)).min(1.0)
        }
    }
}

impl Traffic for OnOffBursty {
    fn n(&self) -> usize {
        self.n
    }

    fn arrival(&mut self, _slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        match self.state[input] {
            BurstState::Off => {
                if rng.gen_bool(self.p_start_burst()) {
                    let dst = self.pattern.sample(self.n, input, rng);
                    // The first packet of the burst arrives this slot.
                    if !rng.gen_bool(self.p_end_burst()) {
                        self.state[input] = BurstState::On { dst };
                    }
                    Some(dst)
                } else {
                    None
                }
            }
            BurstState::On { dst } => {
                if rng.gen_bool(self.p_end_burst()) {
                    self.state[input] = BurstState::Off;
                }
                Some(dst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn uniform_covers_all_outputs() {
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[DestPattern::Uniform.sample(8, 0, &mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn non_self_never_hits_own_port() {
        let mut r = rng();
        for input in 0..8 {
            for _ in 0..200 {
                assert_ne!(DestPattern::UniformNonSelf.sample(8, input, &mut r), input);
            }
        }
    }

    #[test]
    fn non_self_single_port_degenerates() {
        let mut r = rng();
        assert_eq!(DestPattern::UniformNonSelf.sample(1, 0, &mut r), 0);
    }

    #[test]
    fn hotspot_fraction_respected() {
        let mut r = rng();
        let pat = DestPattern::Hotspot {
            hot: 3,
            fraction: 0.5,
        };
        let hits = (0..4000).filter(|_| pat.sample(8, 0, &mut r) == 3).count();
        // 0.5 direct + 0 residual (3 excluded from the uniform remainder).
        let frac = hits as f64 / 4000.0;
        assert!((0.45..0.55).contains(&frac), "hot fraction was {frac}");
    }

    #[test]
    fn diagonal_only_two_destinations() {
        let mut r = rng();
        for _ in 0..500 {
            let d = DestPattern::Diagonal.sample(8, 5, &mut r);
            assert!(d == 5 || d == 6);
        }
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut r = rng();
        let pat = DestPattern::Permutation(vec![2, 0, 3, 1]);
        assert_eq!(pat.sample(4, 0, &mut r), 2);
        assert_eq!(pat.sample(4, 3, &mut r), 1);
    }

    #[test]
    fn bernoulli_load_zero_and_one() {
        let mut r = rng();
        let mut none = Bernoulli::new(4, 0.0, DestPattern::Uniform);
        let mut all = Bernoulli::new(4, 1.0, DestPattern::Uniform);
        for slot in 0..100 {
            assert!(none.arrival(slot, 0, &mut r).is_none());
            assert!(all.arrival(slot, 0, &mut r).is_some());
        }
    }

    #[test]
    fn bernoulli_rate_approximates_load() {
        let mut r = rng();
        let mut t = Bernoulli::new(4, 0.3, DestPattern::Uniform);
        let arrivals = (0..20_000)
            .filter(|&slot| t.arrival(slot, 1, &mut r).is_some())
            .count();
        let rate = arrivals as f64 / 20_000.0;
        assert!((0.28..0.32).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn bursty_rate_approximates_load() {
        let mut r = rng();
        let mut t = OnOffBursty::new(4, 0.4, 8.0, DestPattern::Uniform);
        let arrivals = (0..100_000)
            .filter(|&slot| t.arrival(slot, 0, &mut r).is_some())
            .count();
        let rate = arrivals as f64 / 100_000.0;
        assert!((0.36..0.44).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn bursty_packets_share_destination_within_burst() {
        let mut r = rng();
        let mut t = OnOffBursty::new(8, 0.5, 16.0, DestPattern::Uniform);
        // Consecutive arrivals overwhelmingly share a destination (a burst
        // boundary without an OFF gap is possible but rare), and long runs
        // of same-destination arrivals must exist.
        let mut last: Option<usize> = None;
        let (mut pairs, mut same) = (0u32, 0u32);
        let mut run_len = 0;
        let mut max_run = 0;
        for slot in 0..50_000 {
            match t.arrival(slot, 0, &mut r) {
                Some(d) => {
                    if let Some(prev) = last {
                        pairs += 1;
                        if prev == d {
                            same += 1;
                            run_len += 1;
                        } else {
                            run_len = 1;
                        }
                    } else {
                        run_len = 1;
                    }
                    max_run = max_run.max(run_len);
                    last = Some(d);
                }
                None => {
                    last = None;
                    run_len = 0;
                }
            }
        }
        assert!(max_run >= 8, "no bursts observed (max run {max_run})");
        let frac = same as f64 / pairs as f64;
        assert!(frac > 0.8, "consecutive arrivals rarely correlated: {frac}");
    }

    #[test]
    #[should_panic(expected = "load must be in [0,1]")]
    fn invalid_load_panics() {
        let _ = Bernoulli::new(4, 1.5, DestPattern::Uniform);
    }
}
