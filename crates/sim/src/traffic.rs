//! Traffic generation: arrival processes and destination patterns.
//!
//! The paper's Fig. 12 experiment uses Bernoulli arrivals with uniformly
//! distributed destinations ("Load is the probability that a host generates
//! a packet in a given time slot. The destinations of the packets are
//! uniformly distributed."). The additional patterns and the bursty on-off
//! process support the extension experiments (EXT-3, EXT-6).
//!
//! # Generator families and RNG streams
//!
//! Two families produce the same *distributions* from different RNG
//! streams:
//!
//! * **Legacy** ([`Bernoulli`], [`OnOffBursty`]): the original `gen_bool` /
//!   `gen_range` path. These are the [`paper_default`] generators — their
//!   exact RNG streams are frozen by the golden trace fixture and the
//!   determinism-contract tests, so they must never change.
//! * **Fast** ([`FastBernoulli`], [`FastBursty`]): word-granularity kernels
//!   from [`lcf_rng::bulk`] — a fixed-point threshold compare per arrival
//!   decision and precomputed alias/partition tables for destinations. Same
//!   distributions (statistically indistinguishable at any feasible
//!   horizon; quantization is 2⁻³²), different stream, ~4× less RNG work —
//!   and for power-of-two `n` with uniform destinations the gate and the
//!   destination fuse into a single keystream word per `(slot, input)`
//!   (see [`FastBernoulli`]).
//!
//! [`paper_default`]: ../config/struct.SimConfig.html#method.paper_default
//!
//! # RNG draws per `(slot, input)` — legacy family
//!
//! Each `gen_bool` and each `gen_range` consumes one `next_u64` (two
//! keystream words; `gen_range(0..2^k)` also consumes one — the
//! power-of-two mask path). Per generated packet, [`DestPattern::sample`]
//! draws:
//!
//! * `Uniform` / `UniformNonSelf` — 1 draw (`UniformNonSelf` with `n = 1`:
//!   0 draws).
//! * `Hotspot` — 1 draw for the hot/cold decision, plus 1 for the cold
//!   destination; with `n = 1` exactly 1 draw (the hot/cold decision is
//!   skipped — it could only ever return the hot port).
//! * `Diagonal` — 1 draw.
//! * `Permutation` — 0 draws.
//!
//! [`Bernoulli`] draws 1 per `(slot, input)` for the arrival decision plus
//! the pattern draws per packet. [`OnOffBursty`] draws 1 in an OFF slot
//! (burst start?), plus pattern draws and 1 more (burst length ≥ 2?) when a
//! burst starts, and 1 in an ON slot (burst end?).

use lcf_rng::bulk::{AliasTable, Bernoulli32, UniformU32};
use rand::rngs::StdRng;
use rand::Rng;

/// How a newly generated packet picks its destination.
#[derive(Clone, Debug, PartialEq)]
pub enum DestPattern {
    /// Uniform over all `n` outputs — the paper's Fig. 12 workload.
    Uniform,
    /// Uniform over all outputs except the packet's own input (a host does
    /// not send to itself; Sec. 2 mentions this variant).
    UniformNonSelf,
    /// A fraction of the traffic converges on one hot output; the remainder
    /// is uniform over the other outputs.
    Hotspot {
        /// The overloaded output port.
        hot: usize,
        /// Probability that a packet targets the hot output.
        fraction: f64,
    },
    /// Input `i` sends to outputs `i` and `i+1 (mod n)` with probabilities
    /// 2/3 and 1/3 — the classic "diagonal" stress pattern for round-robin
    /// schedulers.
    Diagonal,
    /// Input `i` always sends to `perm[i]` — contention-free if `perm` is a
    /// permutation; useful for calibration tests.
    Permutation(Vec<usize>),
}

impl DestPattern {
    /// Samples a destination for a packet generated at `input`.
    // lint:allow(rng-stream): frozen paper_default contract - Uniform/Permutation draw 1 word, Hotspot 2, Diagonal 1 gate word + 1 word on the off-diagonal branch (see module docs)
    pub fn sample(&self, n: usize, input: usize, rng: &mut StdRng) -> usize {
        match self {
            DestPattern::Uniform => rng.gen_range(0..n),
            DestPattern::UniformNonSelf => {
                if n == 1 {
                    0
                } else {
                    let d = rng.gen_range(0..n - 1);
                    if d >= input {
                        d + 1
                    } else {
                        d
                    }
                }
            }
            DestPattern::Hotspot { hot, fraction } => {
                // `n == 1` is checked first so the degenerate case draws
                // nothing: every packet targets the hot (only) port either
                // way, and consuming a draw would needlessly couple the RNG
                // stream to the hot/cold decision.
                if n == 1 || rng.gen_bool(*fraction) {
                    *hot
                } else {
                    let d = rng.gen_range(0..n - 1);
                    if d >= *hot {
                        d + 1
                    } else {
                        d
                    }
                }
            }
            DestPattern::Diagonal => {
                if rng.gen_bool(2.0 / 3.0) {
                    input % n
                } else {
                    (input + 1) % n
                }
            }
            DestPattern::Permutation(perm) => perm[input],
        }
    }
}

/// An arrival process: per slot and input, possibly one new packet.
pub trait Traffic {
    /// Number of switch ports the process was built for.
    fn n(&self) -> usize;

    /// Destination of the packet generated at `input` in this slot, if one
    /// is generated. Called exactly once per `(slot, input)` pair, inputs in
    /// ascending order.
    fn arrival(&mut self, slot: u64, input: usize, rng: &mut StdRng) -> Option<usize>;

    /// Writes one slot's arrivals for all inputs into `out` (`out[input]`
    /// is the new packet's destination, if any). One virtual call per slot
    /// instead of `n` — the slot loop's batch entry point.
    ///
    /// The default implementation delegates to [`Traffic::arrival`] input
    /// by input, so every legacy generator consumes its RNG stream exactly
    /// as before (the golden-trace contract). Fast generators override
    /// this with a monomorphic loop.
    ///
    /// # Panics
    /// Implementations may assume and assert `out.len() == self.n()`.
    fn arrivals_into(&mut self, slot: u64, rng: &mut StdRng, out: &mut [Option<usize>]) {
        debug_assert_eq!(out.len(), self.n());
        for (input, slot_out) in out.iter_mut().enumerate() {
            *slot_out = self.arrival(slot, input, rng);
        }
    }
}

/// Forwarding impl so a borrowed generator (`&mut dyn Traffic`) can sit in
/// a [`DriveSession`](crate::session::DriveSession) exactly like an owned
/// one. `arrivals_into` forwards explicitly — the fast generators override
/// it, and falling back to the per-input default here would change their
/// RNG stream.
impl<T: Traffic + ?Sized> Traffic for &mut T {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn arrival(&mut self, slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        (**self).arrival(slot, input, rng)
    }

    fn arrivals_into(&mut self, slot: u64, rng: &mut StdRng, out: &mut [Option<usize>]) {
        (**self).arrivals_into(slot, rng, out);
    }
}

/// Forwarding impl so an owned boxed generator (`Box<dyn Traffic>`) can sit
/// in a [`DriveSession`](crate::session::DriveSession) (serve shards own
/// their generators).
impl<T: Traffic + ?Sized> Traffic for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn arrival(&mut self, slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        (**self).arrival(slot, input, rng)
    }

    fn arrivals_into(&mut self, slot: u64, rng: &mut StdRng, out: &mut [Option<usize>]) {
        (**self).arrivals_into(slot, rng, out);
    }
}

/// A generator that never produces a packet. Swapped in by
/// [`DriveSession::drain`](crate::session::DriveSession::drain) so a model
/// can be stepped until its buffers empty: arrivals stop, the RNG stream is
/// untouched (zero draws per slot).
#[derive(Clone, Copy, Debug)]
pub struct Silence {
    n: usize,
}

impl Silence {
    /// Creates a silent generator for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        Silence { n }
    }
}

impl Traffic for Silence {
    fn n(&self) -> usize {
        self.n
    }

    fn arrival(&mut self, _slot: u64, _input: usize, _rng: &mut StdRng) -> Option<usize> {
        None
    }

    fn arrivals_into(&mut self, _slot: u64, _rng: &mut StdRng, out: &mut [Option<usize>]) {
        debug_assert_eq!(out.len(), self.n);
        out.fill(None);
    }
}

/// Independent Bernoulli arrivals of rate `load` per input per slot.
#[derive(Clone, Debug)]
pub struct Bernoulli {
    n: usize,
    load: f64,
    pattern: DestPattern,
}

impl Bernoulli {
    /// Creates the process; `load` is the per-slot generation probability.
    pub fn new(n: usize, load: f64, pattern: DestPattern) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        Bernoulli { n, load, pattern }
    }
}

impl Traffic for Bernoulli {
    fn n(&self) -> usize {
        self.n
    }

    // lint:allow(rng-stream): frozen paper_default contract - 1 gate word per (slot, input), plus the pattern draw only on arrival
    fn arrival(&mut self, _slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        rng.gen_bool(self.load)
            .then(|| self.pattern.sample(self.n, input, rng))
    }
}

/// Bursty on-off arrivals.
///
/// Each input alternates between ON bursts (one packet per slot, all packets
/// of a burst share one destination) and OFF gaps. Burst and gap lengths are
/// geometrically distributed with means `mean_burst` and
/// `mean_burst · (1 − load) / load`, so the long-run offered load equals
/// `load` while packets arrive back-to-back — the workload that punishes
/// schedulers relying on request diversity.
#[derive(Clone, Debug)]
pub struct OnOffBursty {
    n: usize,
    load: f64,
    mean_burst: f64,
    pattern: DestPattern,
    state: Vec<BurstState>,
}

#[derive(Clone, Copy, Debug)]
enum BurstState {
    Off,
    On { dst: usize },
}

impl OnOffBursty {
    /// Creates the process with mean burst length `mean_burst` packets.
    pub fn new(n: usize, load: f64, mean_burst: f64, pattern: DestPattern) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        assert!(mean_burst >= 1.0, "mean burst length must be >= 1");
        OnOffBursty {
            n,
            load,
            mean_burst,
            pattern,
            state: vec![BurstState::Off; n],
        }
    }

    /// Probability of leaving the ON state after each packet.
    fn p_end_burst(&self) -> f64 {
        1.0 / self.mean_burst
    }

    /// Probability of starting a burst in an OFF slot, chosen so the
    /// stationary ON fraction equals `load`.
    fn p_start_burst(&self) -> f64 {
        if self.load >= 1.0 {
            1.0
        } else {
            // mean OFF = mean ON * (1 - load) / load ; P(start) = 1 / mean OFF.
            (self.p_end_burst() * self.load / (1.0 - self.load)).min(1.0)
        }
    }
}

impl Traffic for OnOffBursty {
    fn n(&self) -> usize {
        self.n
    }

    // lint:allow(rng-stream): frozen paper_default contract - 1 state-transition word per (slot, input), plus 1 destination draw when a burst starts (see module docs)
    fn arrival(&mut self, _slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        match self.state[input] {
            BurstState::Off => {
                if rng.gen_bool(self.p_start_burst()) {
                    let dst = self.pattern.sample(self.n, input, rng);
                    // The first packet of the burst arrives this slot.
                    if !rng.gen_bool(self.p_end_burst()) {
                        self.state[input] = BurstState::On { dst };
                    }
                    Some(dst)
                } else {
                    None
                }
            }
            BurstState::On { dst } => {
                if rng.gen_bool(self.p_end_burst()) {
                    self.state[input] = BurstState::Off;
                }
                Some(dst)
            }
        }
    }
}

/// A destination sampler compiled from a [`DestPattern`]: all division and
/// branching hoisted to construction, one or two keystream words per packet.
///
/// The sampled distribution matches [`DestPattern::sample`] exactly (up to
/// the 2⁻³² fixed-point quantization of the bulk kernels); only the RNG
/// stream differs.
#[derive(Clone, Debug)]
enum FastDest {
    /// Uniform over `0..n`: one bounded draw.
    Uniform(UniformU32),
    /// Uniform over `0..n-1`, shifted past the excluded port when the
    /// excluded port is below the draw. `None` bound means `n == 1`.
    NonSelf(Option<UniformU32>),
    /// Hot port with the configured fraction, uniform elsewhere — one alias
    /// table draw (two words).
    Hotspot(AliasTable),
    /// `input` with probability 2/3 else `input + 1 (mod n)`: one
    /// fixed-point threshold word.
    Diagonal(Bernoulli32),
    /// Fixed map, zero words.
    Permutation(Vec<usize>),
}

impl FastDest {
    fn compile(n: usize, pattern: &DestPattern) -> Self {
        match pattern {
            // lint:allow(truncating-cast): port counts fit u32 by construction
            DestPattern::Uniform => FastDest::Uniform(UniformU32::new(n as u32)),
            DestPattern::UniformNonSelf => FastDest::NonSelf(if n == 1 {
                None
            } else {
                // lint:allow(truncating-cast): port counts fit u32 by construction
                Some(UniformU32::new(n as u32 - 1))
            }),
            DestPattern::Hotspot { hot, fraction } => {
                assert!(*hot < n, "hot port out of range");
                assert!(
                    (0.0..=1.0).contains(fraction),
                    "hotspot fraction must be in [0,1]"
                );
                // Same distribution as the legacy two-stage draw: `fraction`
                // on the hot port, the remainder uniform over the others.
                let mut weights = vec![
                    if n == 1 {
                        0.0
                    } else {
                        (1.0 - fraction) / (n - 1) as f64
                    };
                    n
                ];
                weights[*hot] = if n == 1 { 1.0 } else { *fraction };
                FastDest::Hotspot(AliasTable::new(&weights))
            }
            DestPattern::Diagonal => FastDest::Diagonal(Bernoulli32::new(2.0 / 3.0)),
            DestPattern::Permutation(perm) => FastDest::Permutation(perm.clone()),
        }
    }

    #[inline]
    // lint:allow(rng-stream): mirrors DestPattern::sample word-for-word - Uniform/Permutation 1 word plus Lemire rejections, Hotspot 2, Diagonal 1+1 (equivalence enforced by tests)
    fn sample(&self, n: usize, input: usize, rng: &mut StdRng) -> usize {
        match self {
            FastDest::Uniform(u) => u.sample(|| rng.next_u32()) as usize,
            FastDest::NonSelf(u) => match u {
                None => 0,
                Some(u) => {
                    let d = u.sample(|| rng.next_u32()) as usize;
                    if d >= input {
                        d + 1
                    } else {
                        d
                    }
                }
            },
            FastDest::Hotspot(t) => t.sample(|| rng.next_u32()),
            FastDest::Diagonal(b) => {
                if b.hit(rng.next_u32()) {
                    input % n
                } else {
                    (input + 1) % n
                }
            }
            FastDest::Permutation(perm) => perm[input],
        }
    }
}

/// Independent Bernoulli arrivals via the word-granularity fast path: the
/// same arrival and destination distributions as [`Bernoulli`], a different
/// (still deterministic, seed-reproducible) RNG stream.
///
/// Per `(slot, input)`: one keystream word for the arrival decision, plus
/// the [`FastDest`] words per generated packet — about a quarter of the
/// legacy path's RNG traffic at high load, with no f64 arithmetic or
/// division anywhere. For power-of-two `n` with uniform destinations (the
/// paper's Fig. 12 workload) the gate and the destination fuse into a
/// *single* word per `(slot, input)`: the gate threshold is rounded to the
/// nearest multiple of `n`, so the accepted words `[0, threshold)` contain
/// `threshold / n` complete runs of every low-bit pattern — the low
/// `log2(n)` bits of an accepted word are exactly uniform over `0..n` and
/// independent of the gate decision. Rounding moves the load by at most
/// `n·2⁻³³` (< 4·10⁻⁹ at n = 32), far below sampling noise at any feasible
/// horizon.
#[derive(Clone, Debug)]
pub struct FastBernoulli {
    n: usize,
    kernel: FastArrival,
}

/// The compiled per-input arrival kernel of [`FastBernoulli`].
#[derive(Clone, Debug)]
enum FastArrival {
    /// One gate word, plus destination words per generated packet.
    Split { gate: Bernoulli32, dest: FastDest },
    /// One word total: `word < threshold` gates the arrival and
    /// `word & mask` is the destination (`threshold` is a multiple of
    /// `mask + 1`, which keeps both distributions exact — see the type
    /// docs). `always` covers load 1.0, where every word is accepted and
    /// the low bits are trivially uniform.
    FusedUniform {
        threshold: u32,
        always: bool,
        mask: u32,
    },
}

impl FastBernoulli {
    /// Creates the process; `load` is the per-slot generation probability.
    pub fn new(n: usize, load: f64, pattern: DestPattern) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        let gate = Bernoulli32::new(load);
        let kernel = if n.is_power_of_two() && pattern == DestPattern::Uniform {
            let n64 = n as u64;
            // Nearest multiple of n; clamp below 2³² (the u32 compare must
            // stay meaningful — `always` alone covers load 1.0).
            let rounded = ((gate.threshold() as u64 + n64 / 2) / n64 * n64).min((1 << 32) - n64);
            FastArrival::FusedUniform {
                // lint:allow(truncating-cast): clamped below 2^32 above
                threshold: rounded as u32,
                always: gate.is_always(),
                // lint:allow(truncating-cast): port counts fit u32 by construction
                mask: n as u32 - 1,
            }
        } else {
            FastArrival::Split {
                gate,
                dest: FastDest::compile(n, &pattern),
            }
        };
        FastBernoulli { n, kernel }
    }
}

impl Traffic for FastBernoulli {
    fn n(&self) -> usize {
        self.n
    }

    // lint:allow(rng-stream): documented fast-kernel contract - Split draws 1 gate word plus dest words on arrival; Fused draws exactly 1 word per (slot, input)
    fn arrival(&mut self, _slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        match &self.kernel {
            FastArrival::Split { gate, dest } => gate
                .hit(rng.next_u32())
                .then(|| dest.sample(self.n, input, rng)),
            FastArrival::FusedUniform {
                threshold,
                always,
                mask,
            } => {
                let w = rng.next_u32();
                (*always || w < *threshold).then(|| (w & mask) as usize)
            }
        }
    }

    // lint:allow(rng-stream): documented fast-kernel contract - same per-input word counts as arrival, batched over all n inputs in input order
    fn arrivals_into(&mut self, _slot: u64, rng: &mut StdRng, out: &mut [Option<usize>]) {
        assert_eq!(out.len(), self.n);
        match &self.kernel {
            FastArrival::Split { gate, dest } => {
                for (input, slot_out) in out.iter_mut().enumerate() {
                    *slot_out = gate
                        .hit(rng.next_u32())
                        .then(|| dest.sample(self.n, input, rng));
                }
            }
            FastArrival::FusedUniform {
                threshold,
                always,
                mask,
            } => {
                for slot_out in out.iter_mut() {
                    let w = rng.next_u32();
                    *slot_out = (*always || w < *threshold).then(|| (w & mask) as usize);
                }
            }
        }
    }
}

/// Bursty on-off arrivals via the word-granularity fast path: the same
/// burst/gap process as [`OnOffBursty`] (geometric burst and gap lengths,
/// long-run load `load`), a different RNG stream.
#[derive(Clone, Debug)]
pub struct FastBursty {
    n: usize,
    start: Bernoulli32,
    end: Bernoulli32,
    dest: FastDest,
    state: Vec<BurstState>,
}

impl FastBursty {
    /// Creates the process with mean burst length `mean_burst` packets.
    pub fn new(n: usize, load: f64, mean_burst: f64, pattern: DestPattern) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        assert!(mean_burst >= 1.0, "mean burst length must be >= 1");
        let p_end = 1.0 / mean_burst;
        let p_start = if load >= 1.0 {
            1.0
        } else {
            (p_end * load / (1.0 - load)).min(1.0)
        };
        FastBursty {
            n,
            start: Bernoulli32::new(p_start),
            end: Bernoulli32::new(p_end),
            dest: FastDest::compile(n, &pattern),
            state: vec![BurstState::Off; n],
        }
    }
}

impl Traffic for FastBursty {
    fn n(&self) -> usize {
        self.n
    }

    // lint:allow(rng-stream): documented fast-kernel contract - 1 state word per (slot, input), plus dest words only when a burst starts
    fn arrival(&mut self, _slot: u64, input: usize, rng: &mut StdRng) -> Option<usize> {
        match self.state[input] {
            BurstState::Off => {
                if self.start.hit(rng.next_u32()) {
                    let dst = self.dest.sample(self.n, input, rng);
                    if !self.end.hit(rng.next_u32()) {
                        self.state[input] = BurstState::On { dst };
                    }
                    Some(dst)
                } else {
                    None
                }
            }
            BurstState::On { dst } => {
                if self.end.hit(rng.next_u32()) {
                    self.state[input] = BurstState::Off;
                }
                Some(dst)
            }
        }
    }

    fn arrivals_into(&mut self, slot: u64, rng: &mut StdRng, out: &mut [Option<usize>]) {
        assert_eq!(out.len(), self.n);
        for (input, slot_out) in out.iter_mut().enumerate() {
            *slot_out = self.arrival(slot, input, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn uniform_covers_all_outputs() {
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[DestPattern::Uniform.sample(8, 0, &mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn non_self_never_hits_own_port() {
        let mut r = rng();
        for input in 0..8 {
            for _ in 0..200 {
                assert_ne!(DestPattern::UniformNonSelf.sample(8, input, &mut r), input);
            }
        }
    }

    #[test]
    fn non_self_single_port_degenerates() {
        let mut r = rng();
        assert_eq!(DestPattern::UniformNonSelf.sample(1, 0, &mut r), 0);
    }

    #[test]
    fn hotspot_fraction_respected() {
        let mut r = rng();
        let pat = DestPattern::Hotspot {
            hot: 3,
            fraction: 0.5,
        };
        let hits = (0..4000).filter(|_| pat.sample(8, 0, &mut r) == 3).count();
        // 0.5 direct + 0 residual (3 excluded from the uniform remainder).
        let frac = hits as f64 / 4000.0;
        assert!((0.45..0.55).contains(&frac), "hot fraction was {frac}");
    }

    #[test]
    fn diagonal_only_two_destinations() {
        let mut r = rng();
        for _ in 0..500 {
            let d = DestPattern::Diagonal.sample(8, 5, &mut r);
            assert!(d == 5 || d == 6);
        }
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut r = rng();
        let pat = DestPattern::Permutation(vec![2, 0, 3, 1]);
        assert_eq!(pat.sample(4, 0, &mut r), 2);
        assert_eq!(pat.sample(4, 3, &mut r), 1);
    }

    #[test]
    fn bernoulli_load_zero_and_one() {
        let mut r = rng();
        let mut none = Bernoulli::new(4, 0.0, DestPattern::Uniform);
        let mut all = Bernoulli::new(4, 1.0, DestPattern::Uniform);
        for slot in 0..100 {
            assert!(none.arrival(slot, 0, &mut r).is_none());
            assert!(all.arrival(slot, 0, &mut r).is_some());
        }
    }

    #[test]
    fn bernoulli_rate_approximates_load() {
        let mut r = rng();
        let mut t = Bernoulli::new(4, 0.3, DestPattern::Uniform);
        let arrivals = (0..20_000)
            .filter(|&slot| t.arrival(slot, 1, &mut r).is_some())
            .count();
        let rate = arrivals as f64 / 20_000.0;
        assert!((0.28..0.32).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn bursty_rate_approximates_load() {
        let mut r = rng();
        let mut t = OnOffBursty::new(4, 0.4, 8.0, DestPattern::Uniform);
        let arrivals = (0..100_000)
            .filter(|&slot| t.arrival(slot, 0, &mut r).is_some())
            .count();
        let rate = arrivals as f64 / 100_000.0;
        assert!((0.36..0.44).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn bursty_packets_share_destination_within_burst() {
        let mut r = rng();
        let mut t = OnOffBursty::new(8, 0.5, 16.0, DestPattern::Uniform);
        // Consecutive arrivals overwhelmingly share a destination (a burst
        // boundary without an OFF gap is possible but rare), and long runs
        // of same-destination arrivals must exist.
        let mut last: Option<usize> = None;
        let (mut pairs, mut same) = (0u32, 0u32);
        let mut run_len = 0;
        let mut max_run = 0;
        for slot in 0..50_000 {
            match t.arrival(slot, 0, &mut r) {
                Some(d) => {
                    if let Some(prev) = last {
                        pairs += 1;
                        if prev == d {
                            same += 1;
                            run_len += 1;
                        } else {
                            run_len = 1;
                        }
                    } else {
                        run_len = 1;
                    }
                    max_run = max_run.max(run_len);
                    last = Some(d);
                }
                None => {
                    last = None;
                    run_len = 0;
                }
            }
        }
        assert!(max_run >= 8, "no bursts observed (max run {max_run})");
        let frac = same as f64 / pairs as f64;
        assert!(frac > 0.8, "consecutive arrivals rarely correlated: {frac}");
    }

    #[test]
    #[should_panic(expected = "load must be in [0,1]")]
    fn invalid_load_panics() {
        let _ = Bernoulli::new(4, 1.5, DestPattern::Uniform);
    }

    #[test]
    fn hotspot_single_port_draws_nothing() {
        // The degenerate n == 1 case must not consume a draw: two RNGs, one
        // used for a sample, must stay stream-identical.
        let mut a = rng();
        let mut b = rng();
        let pat = DestPattern::Hotspot {
            hot: 0,
            fraction: 0.5,
        };
        assert_eq!(pat.sample(1, 0, &mut a), 0);
        assert_eq!(a, b, "degenerate hotspot consumed an RNG draw");
        let _ = b.next_u32();
        assert_ne!(a, b);
    }

    #[test]
    fn default_arrivals_into_matches_per_input_calls() {
        // The batch entry point must consume the RNG stream exactly like n
        // per-input calls, or the golden trace would silently shift.
        let mut batch_rng = rng();
        let mut single_rng = rng();
        let mut batch_gen = Bernoulli::new(8, 0.7, DestPattern::Uniform);
        let mut single_gen = batch_gen.clone();
        let mut batch = [None; 8];
        for slot in 0..200 {
            batch_gen.arrivals_into(slot, &mut batch_rng, &mut batch);
            for (input, &got) in batch.iter().enumerate() {
                assert_eq!(got, single_gen.arrival(slot, input, &mut single_rng));
            }
        }
        assert_eq!(batch_rng, single_rng);
    }

    #[test]
    fn fast_bernoulli_rate_across_loads() {
        for load in [0.01, 0.5, 0.99, 0.995] {
            let mut r = rng();
            let mut t = FastBernoulli::new(4, load, DestPattern::Uniform);
            let slots = 100_000u64;
            let hits = (0..slots)
                .filter(|&slot| t.arrival(slot, 1, &mut r).is_some())
                .count() as f64;
            let rate = hits / slots as f64;
            let sigma = (load * (1.0 - load) / slots as f64).sqrt();
            assert!(
                (rate - load).abs() < 6.0 * sigma + 1e-9,
                "load {load}: rate {rate}"
            );
        }
    }

    #[test]
    fn fast_dest_patterns_match_legacy_distributions() {
        let n = 8;
        let draws = 40_000u64;
        // Hotspot: the hot port's rate must equal the configured fraction.
        let mut r = rng();
        let mut t = FastBernoulli::new(
            n,
            1.0,
            DestPattern::Hotspot {
                hot: 3,
                fraction: 0.5,
            },
        );
        let hot_hits = (0..draws)
            .filter(|&s| t.arrival(s, 0, &mut r) == Some(3))
            .count() as f64;
        let frac = hot_hits / draws as f64;
        assert!((0.48..0.52).contains(&frac), "hot fraction was {frac}");

        // NonSelf never targets the input's own port.
        let mut t = FastBernoulli::new(n, 1.0, DestPattern::UniformNonSelf);
        for input in 0..n {
            for slot in 0..200 {
                assert_ne!(t.arrival(slot, input, &mut r), Some(input));
            }
        }

        // Diagonal: only i and i+1, with the 2/3 : 1/3 split.
        let mut t = FastBernoulli::new(n, 1.0, DestPattern::Diagonal);
        let mut on_diag = 0u64;
        for slot in 0..draws {
            let d = t.arrival(slot, 5, &mut r).unwrap();
            assert!(d == 5 || d == 6);
            if d == 5 {
                on_diag += 1;
            }
        }
        let frac = on_diag as f64 / draws as f64;
        assert!((0.65..0.69).contains(&frac), "diagonal split was {frac}");

        // Permutation: deterministic, no RNG consumption for the destination.
        let mut t = FastBernoulli::new(4, 1.0, DestPattern::Permutation(vec![2, 0, 3, 1]));
        assert_eq!(t.arrival(0, 0, &mut r), Some(2));
        assert_eq!(t.arrival(0, 3, &mut r), Some(1));

        // Uniform covers every output.
        let mut t = FastBernoulli::new(n, 1.0, DestPattern::Uniform);
        let mut seen = [false; 8];
        for slot in 0..2000 {
            seen[t.arrival(slot, 0, &mut r).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fast_bursty_rate_and_burst_structure() {
        let mut r = rng();
        let mut t = FastBursty::new(4, 0.4, 8.0, DestPattern::Uniform);
        let slots = 100_000u64;
        let mut arrivals = 0u64;
        let (mut pairs, mut same) = (0u64, 0u64);
        let mut last: Option<usize> = None;
        for slot in 0..slots {
            match t.arrival(slot, 0, &mut r) {
                Some(d) => {
                    arrivals += 1;
                    if let Some(prev) = last {
                        pairs += 1;
                        if prev == d {
                            same += 1;
                        }
                    }
                    last = Some(d);
                }
                None => last = None,
            }
        }
        let rate = arrivals as f64 / slots as f64;
        assert!((0.36..0.44).contains(&rate), "rate was {rate}");
        let frac = same as f64 / pairs as f64;
        assert!(frac > 0.8, "bursts not correlated: {frac}");
    }

    #[test]
    fn fused_uniform_rate_and_destination_uniformity() {
        // Power-of-two n + Uniform takes the fused single-word kernel; the
        // arrival rate and the conditional destination distribution must
        // both survive the threshold rounding.
        let n = 32usize;
        let load = 0.99;
        let mut r = rng();
        let mut t = FastBernoulli::new(n, load, DestPattern::Uniform);
        let mut out = vec![None; n];
        let slots = 50_000u64;
        let mut counts = vec![0u64; n];
        let mut arrivals = 0u64;
        for slot in 0..slots {
            t.arrivals_into(slot, &mut r, &mut out);
            for d in out.iter().flatten() {
                counts[*d] += 1;
                arrivals += 1;
            }
        }
        let draws = slots * n as u64;
        let rate = arrivals as f64 / draws as f64;
        let sigma = (load * (1.0 - load) / draws as f64).sqrt();
        assert!((rate - load).abs() < 6.0 * sigma, "rate was {rate}");
        // Each destination expects arrivals/n; allow 6σ of binomial noise.
        let expect = arrivals as f64 / n as f64;
        let dest_sigma = (arrivals as f64 * (1.0 / n as f64) * (1.0 - 1.0 / n as f64)).sqrt();
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * dest_sigma,
                "dest {d}: {c} vs expected {expect:.0}"
            );
        }
    }

    #[test]
    fn fused_uniform_consumes_one_word_per_input() {
        // The whole point of the fusion: exactly n keystream words per slot,
        // regardless of how many arrivals the slot produces.
        let n = 16usize;
        let mut a = rng();
        let mut b = rng();
        let mut t = FastBernoulli::new(n, 0.99, DestPattern::Uniform);
        let mut out = vec![None; n];
        for slot in 0..100 {
            t.arrivals_into(slot, &mut a, &mut out);
            for _ in 0..n {
                let _ = b.next_u32();
            }
            assert_eq!(a, b, "word count diverged at slot {slot}");
        }
    }

    #[test]
    fn non_power_of_two_uniform_takes_the_split_path() {
        // n = 12 cannot fuse; the split kernel must still realize the load.
        let mut r = rng();
        let mut t = FastBernoulli::new(12, 0.9, DestPattern::Uniform);
        let slots = 50_000u64;
        let hits = (0..slots)
            .filter(|&slot| t.arrival(slot, 3, &mut r).is_some())
            .count() as f64;
        let rate = hits / slots as f64;
        let sigma = (0.9 * 0.1 / slots as f64).sqrt();
        assert!((rate - 0.9).abs() < 6.0 * sigma, "rate was {rate}");
        let mut seen = [false; 12];
        for slot in 0..4000 {
            if let Some(d) = t.arrival(slot, 3, &mut r) {
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "split uniform missed an output");
    }

    #[test]
    fn fast_generators_are_deterministic() {
        let run = || {
            let mut r = StdRng::seed_from_u64(0xFA57);
            let mut t = FastBernoulli::new(8, 0.9, DestPattern::Uniform);
            let mut out = [None; 8];
            let mut acc = Vec::new();
            for slot in 0..500 {
                t.arrivals_into(slot, &mut r, &mut out);
                acc.extend_from_slice(&out);
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
