//! The fixed-size packet (cell) forwarded by the switch.

/// A fixed-size packet.
///
/// The paper's switch forwards fixed-size packets in aligned time slots
/// (Sec. 2), so the only payload the simulator needs is routing and timing
/// metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Input port (initiator) the packet entered at.
    pub src: u32,
    /// Output port (target) the packet is destined for.
    pub dst: u32,
    /// Slot in which the packet generator produced the packet.
    pub generated_at: u64,
}

impl Packet {
    /// Creates a packet.
    ///
    /// # Panics
    /// Panics if a port index exceeds `u32::MAX` — ports are switch-port
    /// numbers, orders of magnitude below that.
    pub fn new(src: usize, dst: usize, generated_at: u64) -> Self {
        // lint:allow(no-panic): an out-of-range port is a construction bug at the call site
        let src = u32::try_from(src).expect("src port exceeds u32::MAX");
        // lint:allow(no-panic): an out-of-range port is a construction bug at the call site
        let dst = u32::try_from(dst).expect("dst port exceeds u32::MAX");
        Packet {
            src,
            dst,
            generated_at,
        }
    }

    /// Destination as a `usize` index.
    #[inline]
    pub fn dst_idx(&self) -> usize {
        self.dst as usize
    }

    /// Source as a `usize` index.
    #[inline]
    pub fn src_idx(&self) -> usize {
        self.src as usize
    }

    /// Queueing delay if the packet departs in `slot`, in packet time slots.
    #[inline]
    pub fn delay_at(&self, slot: u64) -> u64 {
        slot.saturating_sub(self.generated_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indices() {
        let p = Packet::new(3, 11, 42);
        assert_eq!(p.src_idx(), 3);
        assert_eq!(p.dst_idx(), 11);
        assert_eq!(p.generated_at, 42);
    }

    #[test]
    fn delay_measurement() {
        let p = Packet::new(0, 1, 10);
        assert_eq!(p.delay_at(10), 0);
        assert_eq!(p.delay_at(17), 7);
        // Defensive: a departure "before" generation clamps to zero.
        assert_eq!(p.delay_at(5), 0);
    }

    #[test]
    fn packet_is_small() {
        // Queue memory is dominated by packets; keep them at 16 bytes.
        assert_eq!(std::mem::size_of::<Packet>(), 16);
    }
}
