//! Simulation configuration.

use crate::traffic::DestPattern;
use lcf_core::bitkern::Backend;
use lcf_core::registry::SchedulerKind;

/// Which switch architecture / scheduler a simulation models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Input-queued switch driven by the given scheduler. `fifo` implies the
    /// single-FIFO queue mode; everything else uses VOQs.
    Scheduler(SchedulerKind),
    /// Output-buffered switch (`outbuf` in Fig. 12) — no scheduler at all.
    OutputBuffered,
}

impl ModelKind {
    /// The curve label used in the paper's Fig. 12 legend.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Scheduler(kind) => kind.name(),
            ModelKind::OutputBuffered => "outbuf",
        }
    }

    /// Parses a Fig. 12 legend name.
    pub fn from_name(name: &str) -> Option<ModelKind> {
        if name == "outbuf" {
            Some(ModelKind::OutputBuffered)
        } else {
            SchedulerKind::from_name(name).map(ModelKind::Scheduler)
        }
    }

    /// The nine curves of Fig. 12, in legend order.
    pub fn figure12_lineup() -> Vec<ModelKind> {
        vec![
            ModelKind::Scheduler(SchedulerKind::LcfCentral),
            ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
            ModelKind::Scheduler(SchedulerKind::LcfDistRr),
            ModelKind::Scheduler(SchedulerKind::LcfDist),
            ModelKind::Scheduler(SchedulerKind::Pim),
            ModelKind::Scheduler(SchedulerKind::Islip),
            ModelKind::Scheduler(SchedulerKind::Wavefront),
            ModelKind::Scheduler(SchedulerKind::Fifo),
            ModelKind::OutputBuffered,
        ]
    }
}

/// The arrival process.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficKind {
    /// Independent Bernoulli arrivals (the paper's workload). The legacy
    /// generator whose RNG stream the golden trace fixture freezes.
    Bernoulli,
    /// On-off bursty arrivals with the given mean burst length (legacy
    /// generator, frozen stream).
    Bursty {
        /// Mean number of back-to-back packets per burst.
        mean_burst: f64,
    },
    /// Bernoulli arrivals via the word-granularity fast kernels
    /// ([`crate::traffic::FastBernoulli`]): same distribution as
    /// [`TrafficKind::Bernoulli`], a different RNG stream, ~4× less RNG
    /// work — the heavy-traffic workhorse.
    FastBernoulli,
    /// On-off bursty arrivals via the fast kernels
    /// ([`crate::traffic::FastBursty`]): same process as
    /// [`TrafficKind::Bursty`], different stream.
    FastBursty {
        /// Mean number of back-to-back packets per burst.
        mean_burst: f64,
    },
}

impl TrafficKind {
    /// Whether this is one of the fast word-granularity generators (as
    /// opposed to the legacy, golden-trace-frozen family).
    pub fn is_fast(&self) -> bool {
        matches!(
            self,
            TrafficKind::FastBernoulli | TrafficKind::FastBursty { .. }
        )
    }
}

/// Full description of one simulation run.
///
/// [`SimConfig::paper_default`] reproduces the parameters of the paper's
/// Fig. 12 experiment: a 16-port switch, 256-entry VOQs, a 1000-entry PQ per
/// input, 4 iterations for the iterative schedulers and 256-entry output
/// buffers for `outbuf`.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Switch architecture / scheduler under test.
    pub model: ModelKind,
    /// Number of switch ports.
    pub n: usize,
    /// Offered load per input in packets/slot (probability of generation).
    pub load: f64,
    /// Destination distribution.
    pub pattern: DestPattern,
    /// Arrival process.
    pub traffic: TrafficKind,
    /// Packet queue capacity per input (PQ in Fig. 11).
    pub pq_cap: usize,
    /// Capacity of each virtual output queue (or of the single input FIFO
    /// in `fifo` mode).
    pub voq_cap: usize,
    /// Capacity of each output buffer (`outbuf` model only).
    pub outbuf_cap: usize,
    /// Iteration budget for `pim`, `lcf_dist`, `lcf_dist_rr`.
    pub iterations: usize,
    /// Iteration budget for `islip`. The paper pins the other iterative
    /// schedulers to 4 and is silent on iSLIP, but its observation that
    /// "islip and wfront seem to be similar in performance" only reproduces
    /// with a multi-iteration iSLIP, so the default is also 4. (With 1
    /// iteration iSLIP's non-maximal matchings push its curve far above
    /// wfront.)
    pub islip_iterations: usize,
    /// Slots simulated before measurement starts (queue warm-up).
    pub warmup_slots: u64,
    /// Slots over which statistics are collected.
    pub measure_slots: u64,
    /// RNG seed; a run is fully deterministic given its config.
    pub seed: u64,
    /// Latency histogram range (values above land in the overflow bucket).
    pub max_latency_bucket: usize,
    /// Matching-kernel backend for the schedulers that have a word-parallel
    /// fast path. Both backends produce bit-identical runs; `Scalar` exists
    /// as the reference implementation and for differential testing.
    pub backend: Backend,
}

impl SimConfig {
    /// The Fig. 12 parameter set (Sec. 6.3 of the paper).
    pub fn paper_default() -> Self {
        SimConfig {
            model: ModelKind::Scheduler(SchedulerKind::LcfCentral),
            n: 16,
            load: 0.5,
            pattern: DestPattern::Uniform,
            traffic: TrafficKind::Bernoulli,
            pq_cap: 1000,
            voq_cap: 256,
            outbuf_cap: 256,
            iterations: 4,
            islip_iterations: 4,
            warmup_slots: 20_000,
            measure_slots: 100_000,
            seed: 0x1C_F2002,
            max_latency_bucket: 4096,
            backend: Backend::default(),
        }
    }

    /// Iteration budget for the scheduler this config selects.
    pub fn iterations_for_model(&self) -> usize {
        match self.model {
            ModelKind::Scheduler(SchedulerKind::Islip) => self.islip_iterations,
            _ => self.iterations,
        }
    }

    /// Validates parameter ranges; called by the runner before building.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.load) {
            return Err(format!("load {} outside [0,1]", self.load));
        }
        if self.pq_cap == 0 || self.voq_cap == 0 || self.outbuf_cap == 0 {
            return Err("queue capacities must be positive".into());
        }
        if self.iterations == 0 || self.islip_iterations == 0 {
            return Err("iteration budgets must be positive".into());
        }
        if self.measure_slots == 0 {
            return Err("measure_slots must be positive".into());
        }
        if let TrafficKind::Bursty { mean_burst } | TrafficKind::FastBursty { mean_burst } =
            &self.traffic
        {
            // NaN must fail too, hence not `< 1.0` alone.
            if *mean_burst < 1.0 || mean_burst.is_nan() {
                return Err(format!("mean burst length {mean_burst} must be >= 1"));
            }
        }
        if let DestPattern::Permutation(p) = &self.pattern {
            if p.len() != self.n || p.iter().any(|&d| d >= self.n) {
                return Err("permutation pattern malformed".into());
            }
        }
        if let DestPattern::Hotspot { hot, fraction } = &self.pattern {
            if *hot >= self.n || !(0.0..=1.0).contains(fraction) {
                return Err("hotspot pattern malformed".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6_3() {
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.n, 16);
        assert_eq!(cfg.pq_cap, 1000);
        assert_eq!(cfg.voq_cap, 256);
        assert_eq!(cfg.outbuf_cap, 256);
        assert_eq!(cfg.iterations, 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn paper_default_keeps_the_legacy_generator() {
        // The golden trace fixture (`tests/fixtures/golden_trace_n4.jsonl`)
        // and `golden_determinism_contract` freeze the legacy Bernoulli RNG
        // stream. Switching `paper_default` to a fast generator would
        // silently re-bless both — that must be an explicit, reviewed
        // change, so the default is pinned here.
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.traffic, TrafficKind::Bernoulli);
        assert!(!cfg.traffic.is_fast());
        assert!(TrafficKind::FastBernoulli.is_fast());
        assert!(TrafficKind::FastBursty { mean_burst: 4.0 }.is_fast());
        assert!(!TrafficKind::Bursty { mean_burst: 4.0 }.is_fast());
    }

    #[test]
    fn model_names_roundtrip() {
        for model in ModelKind::figure12_lineup() {
            assert_eq!(ModelKind::from_name(model.name()), Some(model));
        }
        assert_eq!(ModelKind::from_name("nonsense"), None);
    }

    #[test]
    fn figure12_lineup_has_nine_curves() {
        assert_eq!(ModelKind::figure12_lineup().len(), 9);
    }

    #[test]
    fn islip_gets_its_own_iteration_budget() {
        let mut cfg = SimConfig::paper_default();
        cfg.model = ModelKind::Scheduler(SchedulerKind::Islip);
        cfg.islip_iterations = 1;
        assert_eq!(cfg.iterations_for_model(), 1);
        cfg.model = ModelKind::Scheduler(SchedulerKind::Pim);
        assert_eq!(cfg.iterations_for_model(), 4);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = SimConfig::paper_default();
        cfg.load = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.pattern = DestPattern::Permutation(vec![0, 1]); // wrong length
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.pattern = DestPattern::Hotspot {
            hot: 99,
            fraction: 0.5,
        };
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_default();
        cfg.measure_slots = 0;
        assert!(cfg.validate().is_err());
    }
}
