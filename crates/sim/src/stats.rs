//! Measurement plumbing: latency accumulators, histograms and fairness.
//!
//! The latency histogram is the shared [`lcf_telemetry::Histogram`] —
//! overflow-explicit and mergeable — re-exported here so existing call
//! sites keep working.

// Only the event/metrics machinery is feature-gated; hist is not.
// lint:allow(telemetry-hygiene): hist is a plain mergeable data structure used unconditionally by SimReport
pub use lcf_telemetry::hist::{CdfPoint, Histogram, Quantile, RangeMismatch};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Per-flow FIFO ordering checker.
///
/// A correct input-queued switch must deliver packets of the same
/// `(input, output)` flow in generation order — VOQs and PQs are FIFOs, so
/// any reordering means a queueing bug. Feed every delivery to
/// [`check`](FlowOrderChecker::check); it returns `false` (and remembers)
/// on the first violation.
#[derive(Clone, Debug)]
pub struct FlowOrderChecker {
    n: usize,
    last_generated: Vec<Option<u64>>,
    violations: u64,
}

impl FlowOrderChecker {
    /// Creates a checker for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        FlowOrderChecker {
            n,
            last_generated: vec![None; n * n],
            violations: 0,
        }
    }

    /// Records a delivery; returns `true` if per-flow order still holds.
    pub fn check(&mut self, p: &crate::packet::Packet) -> bool {
        let idx = p.src_idx() * self.n + p.dst_idx();
        let ok = self.last_generated[idx].is_none_or(|prev| p.generated_at >= prev);
        if !ok {
            self.violations += 1;
        }
        self.last_generated[idx] = Some(p.generated_at);
        ok
    }

    /// Number of out-of-order deliveries observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

/// Per-(input, output) delivery counts for fairness analysis.
#[derive(Clone, Debug)]
pub struct ServiceMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ServiceMatrix {
    /// Creates an `n × n` zeroed count matrix.
    pub fn new(n: usize) -> Self {
        ServiceMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Records a delivery from `input` to `output`.
    pub fn record(&mut self, input: usize, output: usize) {
        self.counts[input * self.n + output] += 1;
    }

    /// Deliveries from `input` to `output`.
    pub fn get(&self, input: usize, output: usize) -> u64 {
        self.counts[input * self.n + output]
    }

    /// Total deliveries.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total deliveries per input port.
    pub fn per_input(&self) -> Vec<u64> {
        (0..self.n)
            .map(|i| self.counts[i * self.n..(i + 1) * self.n].iter().sum())
            .collect()
    }

    /// Jain's fairness index over the per-input totals: 1 is perfectly fair,
    /// `1/n` is maximally unfair. Only meaningful when inputs offer equal
    /// load.
    pub fn jain_index(&self) -> f64 {
        let per_input = self.per_input();
        let sum: f64 = per_input.iter().map(|&x| x as f64).sum();
        if sum == 0.0 {
            return 1.0;
        }
        let sum_sq: f64 = per_input.iter().map(|&x| (x as f64) * (x as f64)).sum();
        sum * sum / (self.n as f64 * sum_sq)
    }

    /// The smallest per-pair service fraction among pairs that received any
    /// service demand, expressed as a fraction of `slots`. Used to check
    /// the paper's `b/n²` lower bound (only pairs with persistent demand
    /// should be passed in — the caller decides which pairs to inspect).
    pub fn min_service_fraction(&self, slots: u64, pairs: &[(usize, usize)]) -> f64 {
        pairs
            .iter()
            .map(|&(i, j)| self.get(i, j) as f64 / slots as f64)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Per-run statistics collector threaded through the switch models.
///
/// Latency samples are only recorded for packets *generated at or after*
/// `measure_start`, so queue contents carried over from the warm-up window
/// cannot bias the delay distribution; counters (generated / dropped /
/// delivered) always count, which lets the runner compute throughput over
/// the measurement window alone by using a fresh collector.
#[derive(Clone, Debug)]
pub struct SimStats {
    measure_start: u64,
    /// Packets produced by the generators.
    pub generated: u64,
    /// Packets dropped because the packet queue (PQ) was full.
    pub dropped_pq: u64,
    /// Packets dropped because a VOQ / input FIFO / output buffer was full.
    pub dropped_queue: u64,
    /// Packets transmitted on an output link.
    pub delivered: u64,
    latency: Welford,
    histogram: Histogram,
    service: ServiceMatrix,
}

impl SimStats {
    /// Creates a collector for an `n`-port switch. Latency is recorded for
    /// packets generated at or after `measure_start`.
    pub fn new(n: usize, measure_start: u64, max_latency_bucket: usize) -> Self {
        SimStats {
            measure_start,
            generated: 0,
            dropped_pq: 0,
            dropped_queue: 0,
            delivered: 0,
            latency: Welford::new(),
            histogram: Histogram::new(max_latency_bucket),
            service: ServiceMatrix::new(n),
        }
    }

    /// Records a generated packet.
    pub fn on_generated(&mut self) {
        self.generated += 1;
    }

    /// Records a packet dropped at the PQ.
    pub fn on_drop_pq(&mut self) {
        self.dropped_pq += 1;
    }

    /// Records a packet dropped at a VOQ / FIFO / output buffer.
    pub fn on_drop_queue(&mut self) {
        self.dropped_queue += 1;
    }

    /// Records a packet leaving on its output link in `slot`.
    pub fn on_delivered(&mut self, p: &crate::packet::Packet, slot: u64) {
        self.delivered += 1;
        self.service.record(p.src_idx(), p.dst_idx());
        if p.generated_at >= self.measure_start {
            let d = p.delay_at(slot);
            self.latency.add(d as f64);
            self.histogram.add(d);
        }
    }

    /// Mean queueing delay in slots over measured packets.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Standard deviation of the queueing delay.
    pub fn latency_std_dev(&self) -> f64 {
        self.latency.std_dev()
    }

    /// Number of latency samples.
    pub fn latency_samples(&self) -> u64 {
        self.latency.count()
    }

    /// Latency quantile (`0.5` = median, `0.99` = p99) as a scalar; when
    /// the quantile falls among overflowed samples this is the bucket range
    /// — a *lower bound*. Use [`latency_quantile_marked`] to tell the two
    /// cases apart.
    ///
    /// [`latency_quantile_marked`]: SimStats::latency_quantile_marked
    pub fn latency_quantile(&self, q: f64) -> u64 {
        self.histogram.quantile_lower_bound(q)
    }

    /// Latency quantile with explicit overflow marking (see
    /// [`Quantile`]).
    pub fn latency_quantile_marked(&self, q: f64) -> Quantile {
        self.histogram.quantile(q)
    }

    /// The empirical latency CDF; the final point carries `overflow: true`
    /// if any sample exceeded the bucket range (see [`Histogram::cdf`]).
    pub fn latency_cdf(&self) -> Vec<CdfPoint> {
        self.histogram.cdf()
    }

    /// The underlying latency histogram (e.g. for merging across runs).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Per-pair delivery counts.
    pub fn service(&self) -> &ServiceMatrix {
        &self.service
    }

    /// Total packets lost anywhere.
    pub fn dropped(&self) -> u64 {
        self.dropped_pq + self.dropped_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of the classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_single_sample() {
        let mut w = Welford::new();
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
    }

    // Histogram behavior proper is tested in lcf-telemetry (unit tests and
    // property tests); here we pin the SimStats-facing contract.
    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(100);
        for v in 1..=100u64 {
            h.add(v - 1); // values 0..=99
        }
        assert_eq!(h.quantile_lower_bound(0.0), 0);
        assert_eq!(h.quantile_lower_bound(0.5), 49);
        assert_eq!(h.quantile_lower_bound(1.0), 99);
        assert_eq!(h.count(), 100);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_overflow_is_marked() {
        let mut h = Histogram::new(4);
        h.add(1);
        h.add(1000);
        assert_eq!(h.overflow(), 1);
        let q = h.quantile(1.0);
        assert!(q.is_overflow(), "overflowed quantile must say so");
        assert_eq!(q.value(), 4, "range reported as lower bound");
    }

    #[test]
    fn histogram_cdf_points() {
        let mut h = Histogram::new(10);
        h.add(1);
        h.add(1);
        h.add(3);
        h.add(99); // overflow
        let cdf = h.cdf();
        let shape: Vec<(u64, f64, bool)> = cdf
            .iter()
            .map(|p| (p.value, p.fraction, p.overflow))
            .collect();
        assert_eq!(
            shape,
            vec![(1, 0.5, false), (3, 0.75, false), (10, 1.0, true)],
            "final point is the overflow marker, not an observed value"
        );
    }

    #[test]
    fn sim_stats_quantile_read_outs_agree() {
        use crate::packet::Packet;
        let mut st = SimStats::new(2, 0, 4);
        st.on_delivered(&Packet::new(0, 1, 0), 2); // delay 2
        st.on_delivered(&Packet::new(0, 1, 0), 100); // delay 100: overflow
        assert_eq!(st.latency_quantile(0.5), 2);
        assert_eq!(st.latency_quantile(1.0), 4, "lower bound for overflow");
        assert!(st.latency_quantile_marked(1.0).is_overflow());
        assert_eq!(st.latency_histogram().overflow(), 1);
    }

    #[test]
    fn service_matrix_counts() {
        let mut s = ServiceMatrix::new(3);
        s.record(0, 1);
        s.record(0, 1);
        s.record(2, 0);
        assert_eq!(s.get(0, 1), 2);
        assert_eq!(s.get(1, 1), 0);
        assert_eq!(s.total(), 3);
        assert_eq!(s.per_input(), vec![2, 0, 1]);
    }

    #[test]
    fn jain_index_bounds() {
        let mut fair = ServiceMatrix::new(4);
        for i in 0..4 {
            fair.record(i, 0);
        }
        assert!((fair.jain_index() - 1.0).abs() < 1e-12);

        let mut unfair = ServiceMatrix::new(4);
        for _ in 0..100 {
            unfair.record(2, 0);
        }
        assert!((unfair.jain_index() - 0.25).abs() < 1e-12);

        let empty = ServiceMatrix::new(4);
        assert_eq!(empty.jain_index(), 1.0);
    }

    #[test]
    fn min_service_fraction() {
        let mut s = ServiceMatrix::new(4);
        for _ in 0..10 {
            s.record(0, 0);
        }
        s.record(1, 1);
        let f = s.min_service_fraction(100, &[(0, 0), (1, 1)]);
        assert!((f - 0.01).abs() < 1e-12);
    }

    #[test]
    fn sim_stats_ignores_warmup_packets_for_latency() {
        use crate::packet::Packet;
        let mut st = SimStats::new(4, 100, 64);
        let warm = Packet::new(0, 1, 50);
        let measured = Packet::new(0, 1, 150);
        st.on_delivered(&warm, 60);
        st.on_delivered(&measured, 153);
        assert_eq!(st.delivered, 2, "deliveries always count");
        assert_eq!(
            st.latency_samples(),
            1,
            "warm-up packet excluded from latency"
        );
        assert_eq!(st.mean_latency(), 3.0);
    }

    #[test]
    fn flow_order_checker() {
        use crate::packet::Packet;
        let mut c = FlowOrderChecker::new(4);
        assert!(c.check(&Packet::new(0, 1, 5)));
        assert!(c.check(&Packet::new(0, 1, 7)));
        assert!(
            c.check(&Packet::new(0, 2, 1)),
            "different flow is independent"
        );
        assert!(
            !c.check(&Packet::new(0, 1, 6)),
            "regression must be flagged"
        );
        assert_eq!(c.violations(), 1);
    }

    #[test]
    fn sim_stats_counters() {
        let mut st = SimStats::new(2, 0, 16);
        st.on_generated();
        st.on_generated();
        st.on_drop_pq();
        st.on_drop_queue();
        assert_eq!(st.generated, 2);
        assert_eq!(st.dropped(), 2);
    }
}
