//! The [`SwitchModel`] trait and the shared [`drive`] slot loop.
//!
//! Every switch architecture in this crate — the input-queued crossbar
//! ([`IqSwitch`] / [`CrossbarSwitch`]), the CIOQ switch with speedup and
//! pipelining ([`CioqSwitch`]) and the output-buffered reference
//! ([`ObSwitch`]) — advances one time slot at a time under the same
//! warm-up/measure protocol. Before this trait existed the protocol was
//! duplicated four times (`run_sim`, `run_sim_with_stats`, `run_sim_traced`
//! and ad-hoc test loops); now there is exactly one [`drive`] function and
//! the models only implement [`SwitchModel::step`].
//!
//! ```text
//!                 ┌───────────────────────────────┐
//!                 │  drive(model, traffic, rng)   │
//!                 │  warm-up ──► measure ──► stats│
//!                 └──────┬─────────────┬──────────┘
//!                        │ step()      │ drain + re-stamp events
//!        ┌───────────────┼─────────────┼───────────────┐
//!        ▼               ▼             ▼               ▼
//!  CrossbarSwitch   CioqSwitch     ObSwitch      (future models)
//!  (IqSwitch)       speedup s,     no scheduler
//!  VOQ / FIFO       pipeline L
//! ```
//!
//! Telemetry flows one way: [`drive`] drains each model's scheduler events
//! after every step, re-stamps them with the model's slot clock and pushes
//! them into the model's trace buffer. Models therefore never re-stamp
//! events themselves — a traced CIOQ or output-buffered path cannot forget
//! the stamping, because it never does it.
//!
//! [`IqSwitch`]: crate::switch::IqSwitch
//! [`CrossbarSwitch`]: crate::switch::CrossbarSwitch
//! [`CioqSwitch`]: crate::cioq::CioqSwitch
//! [`ObSwitch`]: crate::outbuf::ObSwitch

use crate::cioq::CioqSwitch;
use crate::outbuf::ObSwitch;
use crate::stats::SimStats;
use crate::switch::IqSwitch;
#[cfg(feature = "telemetry")]
use crate::switch::SwitchTelemetry;
use crate::traffic::Traffic;
use rand::rngs::StdRng;

/// A slot-stepped switch architecture the shared [`drive`] loop can run.
///
/// The contract mirrors the scheduler hot-path memory contract
/// ([`Scheduler::schedule_into`](lcf_core::traits::Scheduler::schedule_into)):
/// [`step`](SwitchModel::step) must not allocate per slot — all queues,
/// request matrices and matching buffers are sized at construction and
/// reused. The repo's `hot-path-alloc` lint checks `step` bodies
/// mechanically.
pub trait SwitchModel {
    /// Number of ports.
    fn num_ports(&self) -> usize;

    /// Name of the scheduler driving the model (Fig. 12 legend name), or a
    /// fixed description for scheduler-less architectures.
    fn scheduler_name(&self) -> &'static str;

    /// Advances the model by one slot: arrivals, buffering, scheduling (if
    /// any) and output-link service, recording into `stats`.
    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    );

    /// Total packets currently buffered anywhere in the model.
    fn buffered_packets(&self) -> usize;

    /// Starts recording telemetry into a trace buffer of `trace_capacity`
    /// events (0 = unbounded). Default: ignored — models without telemetry
    /// record nothing.
    #[cfg(feature = "telemetry")]
    fn enable_telemetry(&mut self, _trace_capacity: usize) {}

    /// Stops recording and hands back the collected telemetry (None if
    /// telemetry was never enabled or the model has none).
    #[cfg(feature = "telemetry")]
    fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        None
    }

    /// The live telemetry state, if enabled. [`drive`] uses this to re-stamp
    /// drained scheduler events with the model's slot clock.
    #[cfg(feature = "telemetry")]
    fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        None
    }

    /// Drains the underlying scheduler's decision events (stamped slot 0 —
    /// schedulers have no time base) into `sink`. Default: no events.
    #[cfg(feature = "telemetry")]
    fn drain_scheduler_events(&mut self, _sink: &mut dyn FnMut(lcf_telemetry::Event)) {}

    /// Replaces the scheduler driving the model (online reconfiguration
    /// between serve windows). Queue contents are preserved; the queueing
    /// discipline is fixed at construction. Default: unsupported.
    fn swap_scheduler(
        &mut self,
        scheduler: Box<dyn lcf_core::traits::Scheduler + Send>,
    ) -> Result<(), String> {
        let _ = scheduler;
        Err(format!(
            "{} does not support scheduler swap",
            self.scheduler_name()
        ))
    }
}

/// Forwarding impl so a borrowed model (`&mut dyn SwitchModel`) can sit in
/// a [`DriveSession`](crate::session::DriveSession) exactly like an owned
/// one.
impl<M: SwitchModel + ?Sized> SwitchModel for &mut M {
    fn num_ports(&self) -> usize {
        (**self).num_ports()
    }

    fn scheduler_name(&self) -> &'static str {
        (**self).scheduler_name()
    }

    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        (**self).step(slot, traffic, rng, stats);
    }

    fn buffered_packets(&self) -> usize {
        (**self).buffered_packets()
    }

    #[cfg(feature = "telemetry")]
    fn enable_telemetry(&mut self, trace_capacity: usize) {
        (**self).enable_telemetry(trace_capacity);
    }

    #[cfg(feature = "telemetry")]
    fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        (**self).take_telemetry()
    }

    #[cfg(feature = "telemetry")]
    fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        (**self).telemetry_mut()
    }

    #[cfg(feature = "telemetry")]
    fn drain_scheduler_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        (**self).drain_scheduler_events(sink);
    }

    fn swap_scheduler(
        &mut self,
        scheduler: Box<dyn lcf_core::traits::Scheduler + Send>,
    ) -> Result<(), String> {
        (**self).swap_scheduler(scheduler)
    }
}

/// Forwarding impl so an owned boxed model (`Box<dyn SwitchModel>`) can sit
/// in a [`DriveSession`](crate::session::DriveSession) (serve shards own
/// their models).
impl<M: SwitchModel + ?Sized> SwitchModel for Box<M> {
    fn num_ports(&self) -> usize {
        (**self).num_ports()
    }

    fn scheduler_name(&self) -> &'static str {
        (**self).scheduler_name()
    }

    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        (**self).step(slot, traffic, rng, stats);
    }

    fn buffered_packets(&self) -> usize {
        (**self).buffered_packets()
    }

    #[cfg(feature = "telemetry")]
    fn enable_telemetry(&mut self, trace_capacity: usize) {
        (**self).enable_telemetry(trace_capacity);
    }

    #[cfg(feature = "telemetry")]
    fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        (**self).take_telemetry()
    }

    #[cfg(feature = "telemetry")]
    fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        (**self).telemetry_mut()
    }

    #[cfg(feature = "telemetry")]
    fn drain_scheduler_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        (**self).drain_scheduler_events(sink);
    }

    fn swap_scheduler(
        &mut self,
        scheduler: Box<dyn lcf_core::traits::Scheduler + Send>,
    ) -> Result<(), String> {
        (**self).swap_scheduler(scheduler)
    }
}

/// Parameters of one [`drive`] run.
#[derive(Clone, Debug)]
pub struct DriveOptions {
    /// Slots run with a throwaway stats collector so queues reach steady
    /// state before measurement.
    pub warmup_slots: u64,
    /// Slots in the measurement window.
    pub measure_slots: u64,
    /// Upper bound of the latency histogram in slots.
    pub max_latency_bucket: usize,
    /// `Some(cap)` enables telemetry for the measurement window with a trace
    /// buffer of `cap` events (0 = unbounded). Ignored when the `telemetry`
    /// feature is off.
    pub trace_capacity: Option<usize>,
}

impl DriveOptions {
    /// Untraced run: `warmup_slots` warm-up, `measure_slots` measured.
    pub fn new(warmup_slots: u64, measure_slots: u64, max_latency_bucket: usize) -> Self {
        DriveOptions {
            warmup_slots,
            measure_slots,
            max_latency_bucket,
            trace_capacity: None,
        }
    }

    /// Enables telemetry over the measurement window (builder style).
    pub fn traced(mut self, trace_capacity: usize) -> Self {
        self.trace_capacity = Some(trace_capacity);
        self
    }
}

/// The single warm-up/measure slot loop shared by every switch model and
/// every runner entry point (`run_sim`, `run_sim_with_stats`,
/// `run_sim_traced`, tests and benches).
///
/// Protocol:
///
/// 1. **Warm-up** — `warmup_slots` steps against a throwaway stats
///    collector, so the measurement below starts from steady-state queues.
/// 2. **Telemetry on** (traced runs only) — enabled *after* warm-up, so the
///    trace describes exactly the slots the returned statistics do.
/// 3. **Measure** — `measure_slots` steps into a fresh [`SimStats`] whose
///    latency samples only come from packets generated inside the window.
///
/// After every step the model's scheduler events are drained, re-stamped
/// with the current slot and appended to the model's trace (telemetry
/// builds only). Collect the trace afterwards with
/// [`SwitchModel::take_telemetry`].
///
/// Returns the measurement-window statistics.
pub fn drive(
    model: &mut dyn SwitchModel,
    traffic: &mut dyn Traffic,
    rng: &mut StdRng,
    opts: &DriveOptions,
) -> SimStats {
    #[cfg(not(feature = "telemetry"))]
    let _ = opts.trace_capacity;

    let mut session =
        crate::session::DriveSession::new(model, traffic, rng, opts.max_latency_bucket);
    session.step_window(opts.warmup_slots);
    #[cfg(feature = "telemetry")]
    if let Some(cap) = opts.trace_capacity {
        session.enable_telemetry(cap);
    }
    session.begin_measurement();
    session.step_window(opts.measure_slots);
    session.into_stats()
}

/// Moves the scheduler's decision events into the model's trace, re-stamped
/// with the model's slot clock. The scratch buffer is owned by the
/// [`DriveSession`](crate::session::DriveSession) and reused across slots;
/// schedulers record events only while tracing, so this is a no-op for
/// untraced runs.
#[cfg(feature = "telemetry")]
pub(crate) fn relay_scheduler_events(
    model: &mut dyn SwitchModel,
    scratch: &mut Vec<lcf_telemetry::Event>,
) {
    model.drain_scheduler_events(&mut |e| scratch.push(e));
    if let Some(t) = model.telemetry_mut() {
        for mut e in scratch.drain(..) {
            e.slot = t.clock.slot();
            t.trace.push(e);
        }
    } else {
        scratch.clear();
    }
}

impl SwitchModel for IqSwitch {
    fn num_ports(&self) -> usize {
        self.n()
    }

    fn scheduler_name(&self) -> &'static str {
        IqSwitch::scheduler_name(self)
    }

    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        IqSwitch::step(self, slot, traffic, rng, stats);
    }

    fn buffered_packets(&self) -> usize {
        IqSwitch::buffered_packets(self)
    }

    #[cfg(feature = "telemetry")]
    fn enable_telemetry(&mut self, trace_capacity: usize) {
        IqSwitch::enable_telemetry(self, trace_capacity);
    }

    #[cfg(feature = "telemetry")]
    fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        IqSwitch::take_telemetry(self)
    }

    #[cfg(feature = "telemetry")]
    fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        IqSwitch::telemetry_mut(self)
    }

    #[cfg(feature = "telemetry")]
    fn drain_scheduler_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        IqSwitch::drain_scheduler_events(self, sink);
    }

    fn swap_scheduler(
        &mut self,
        scheduler: Box<dyn lcf_core::traits::Scheduler + Send>,
    ) -> Result<(), String> {
        IqSwitch::swap_scheduler(self, scheduler).map(|_| ())
    }
}

impl SwitchModel for CioqSwitch {
    fn num_ports(&self) -> usize {
        self.n()
    }

    fn scheduler_name(&self) -> &'static str {
        CioqSwitch::scheduler_name(self)
    }

    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        CioqSwitch::step(self, slot, traffic, rng, stats);
    }

    fn buffered_packets(&self) -> usize {
        CioqSwitch::buffered_packets(self)
    }

    #[cfg(feature = "telemetry")]
    fn enable_telemetry(&mut self, trace_capacity: usize) {
        CioqSwitch::enable_telemetry(self, trace_capacity);
    }

    #[cfg(feature = "telemetry")]
    fn take_telemetry(&mut self) -> Option<Box<SwitchTelemetry>> {
        CioqSwitch::take_telemetry(self)
    }

    #[cfg(feature = "telemetry")]
    fn telemetry_mut(&mut self) -> Option<&mut SwitchTelemetry> {
        CioqSwitch::telemetry_mut(self)
    }

    #[cfg(feature = "telemetry")]
    fn drain_scheduler_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        CioqSwitch::drain_scheduler_events(self, sink);
    }
}

impl SwitchModel for ObSwitch {
    fn num_ports(&self) -> usize {
        self.n()
    }

    fn scheduler_name(&self) -> &'static str {
        "n/a (no scheduler)"
    }

    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        ObSwitch::step(self, slot, traffic, rng, stats);
    }

    fn buffered_packets(&self) -> usize {
        ObSwitch::buffered_packets(self)
    }

    // Telemetry hooks keep their no-op defaults: the output-buffered model
    // has no scheduler to trace, and its traced runs report empty telemetry
    // by contract (see tests/telemetry_equiv.rs).
}
