//! Experiment driver: warm-up, measurement and parallel load sweeps.

use crate::config::{ModelKind, SimConfig, TrafficKind};
use crate::model::{drive, DriveOptions, SwitchModel};
use crate::outbuf::ObSwitch;
use crate::stats::SimStats;
use crate::switch::{IqSwitch, QueueMode, WeightSource};
use crate::traffic::{Bernoulli, FastBernoulli, FastBursty, OnOffBursty, Traffic};
use lcf_core::registry::{BackendChoice, SchedulerKind, WeightedKind};
use rand::SeedableRng;

/// The simulation RNG, pinned by name: ChaCha with 8 rounds, seeded via
/// SplitMix64 key expansion ([`lcf_rng::ChaChaRng::from_u64_seed`]). The
/// algorithm is frozen by golden-output tests in `lcf-rng`, so a
/// [`SimReport::seed`] reproduces a run bit-identically across releases and
/// platforms. (`rand::rngs::StdRng` is an alias for this same type in the
/// in-tree `rand`, but naming the concrete generator here is the contract.)
pub type SimRng = lcf_rng::ChaCha8Rng;

/// Results of one simulation run.
///
/// `PartialEq` is part of the telemetry contract: the equivalence test
/// compares a traced and an untraced run of the same config field for
/// field, so observability provably never changes a result.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Fig. 12 legend name of the model simulated.
    pub model: String,
    /// Offered load the run was configured with.
    pub load: f64,
    /// Number of switch ports.
    pub n: usize,
    /// Slots in the measurement window.
    pub slots: u64,
    /// Packets generated during measurement.
    pub generated: u64,
    /// Packets delivered during measurement.
    pub delivered: u64,
    /// Packets dropped (PQ and inner queues) during measurement.
    pub dropped: u64,
    /// Mean queueing delay in slots (packets generated during measurement).
    pub mean_latency_slots: f64,
    /// Standard deviation of the queueing delay.
    pub latency_std_dev: f64,
    /// Median queueing delay.
    pub p50_latency: u64,
    /// 99th-percentile queueing delay.
    pub p99_latency: u64,
    /// Delivered throughput as a fraction of aggregate link capacity.
    pub throughput: f64,
    /// Jain fairness index over per-input deliveries.
    pub jain_index: f64,
    /// Seed the run used.
    pub seed: u64,
    /// Human-readable description of the matching-kernel backend that
    /// actually ran (from [`lcf_core::registry::BackendChoice`]).
    /// `"n/a (no scheduler)"` for the output-buffered model.
    pub backend: String,
}

impl SimReport {
    /// Mean queueing delay in slots.
    pub fn mean_latency(&self) -> f64 {
        self.mean_latency_slots
    }

    /// Loss rate over generated packets.
    pub fn loss_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.dropped as f64 / self.generated as f64
        }
    }
}

/// Builds the [`SwitchModel`] plus the backend description for the report.
/// In checked debug builds the scheduler is wrapped in a
/// [`CheckedScheduler`](lcf_core::check::CheckedScheduler) that validates
/// every matching in the slot loop (and shadows bitset kernels with their
/// scalar twin); release builds run the bare scheduler.
pub(crate) fn build_model(cfg: &SimConfig) -> (Box<dyn SwitchModel>, String) {
    match cfg.model {
        ModelKind::OutputBuffered => (
            Box::new(ObSwitch::new(cfg.n, cfg.pq_cap, cfg.outbuf_cap)),
            "n/a (no scheduler)".to_string(),
        ),
        ModelKind::Scheduler(kind) => {
            let (scheduler, choice) = build_scheduler(cfg, kind);
            let mode = if kind == SchedulerKind::Fifo {
                QueueMode::SingleFifo { cap: cfg.voq_cap }
            } else {
                QueueMode::Voq { cap: cfg.voq_cap }
            };
            (
                Box::new(IqSwitch::new(cfg.n, scheduler, mode, cfg.pq_cap)),
                choice,
            )
        }
    }
}

/// Builds the boolean scheduler for `kind` exactly the way [`build_model`]
/// does (same `seed ^ 0x5EED` derivation, same checked-build gating) — the
/// serve layer uses this for online scheduler swaps, so a swapped-in
/// scheduler is indistinguishable from one built at construction.
pub(crate) fn build_scheduler(
    cfg: &SimConfig,
    kind: SchedulerKind,
) -> (Box<dyn lcf_core::traits::Scheduler + Send>, String) {
    let (iterations, seed) = (cfg.iterations_for_model(), cfg.seed ^ 0x5EED);
    #[cfg(all(feature = "check-invariants", debug_assertions))]
    let (scheduler, choice) = kind.build_checked(cfg.n, iterations, seed, cfg.backend);
    #[cfg(not(all(feature = "check-invariants", debug_assertions)))]
    let (scheduler, choice) = kind.build_with_backend(cfg.n, iterations, seed, cfg.backend);
    (scheduler, choice.to_string())
}

pub(crate) fn build_traffic(cfg: &SimConfig) -> Box<dyn Traffic> {
    match &cfg.traffic {
        TrafficKind::Bernoulli => Box::new(Bernoulli::new(cfg.n, cfg.load, cfg.pattern.clone())),
        TrafficKind::Bursty { mean_burst } => Box::new(OnOffBursty::new(
            cfg.n,
            cfg.load,
            *mean_burst,
            cfg.pattern.clone(),
        )),
        TrafficKind::FastBernoulli => {
            Box::new(FastBernoulli::new(cfg.n, cfg.load, cfg.pattern.clone()))
        }
        TrafficKind::FastBursty { mean_burst } => Box::new(FastBursty::new(
            cfg.n,
            cfg.load,
            *mean_burst,
            cfg.pattern.clone(),
        )),
    }
}

/// Runs one simulation: `warmup_slots` to fill the queues, then
/// `measure_slots` with statistics collection.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run_sim(cfg: &SimConfig) -> SimReport {
    let (report, _) = run_sim_with_stats(cfg);
    report
}

/// Like [`run_sim`] but also returns the raw [`SimStats`] collector (needed
/// by the fairness experiment, which inspects per-pair service counts).
pub fn run_sim_with_stats(cfg: &SimConfig) -> (SimReport, SimStats) {
    // lint:allow(no-panic): documented precondition (# Panics above); try_sweep contains it
    cfg.validate().expect("invalid simulation config");
    let (mut model, backend) = build_model(cfg);
    let mut traffic = build_traffic(cfg);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let opts = DriveOptions::new(cfg.warmup_slots, cfg.measure_slots, cfg.max_latency_bucket);
    let stats = drive(model.as_mut(), traffic.as_mut(), &mut rng, &opts);
    let report = make_report(cfg.model.name(), cfg, &stats, backend);
    (report, stats)
}

/// Builds the weighted-path switch for `kind`: queue-length or
/// head-of-line-age weights per [`WeightedKind::age_weighted`], with the
/// scheduler wrapped in a
/// [`CheckedWeightedScheduler`](lcf_core::check::CheckedWeightedScheduler)
/// in checked debug builds (validity + weight-bound oracle per slot).
fn build_weighted_switch(cfg: &SimConfig, kind: WeightedKind) -> IqSwitch {
    #[cfg(all(feature = "check-invariants", debug_assertions))]
    let scheduler = kind.build_checked(cfg.n);
    #[cfg(not(all(feature = "check-invariants", debug_assertions)))]
    let scheduler = kind.build(cfg.n);
    let source = if kind.age_weighted() {
        WeightSource::HolAge
    } else {
        WeightSource::QueueLength
    };
    IqSwitch::new_weighted(cfg.n, scheduler, source, cfg.voq_cap, cfg.pq_cap)
}

/// Runs one simulation of a *weighted* scheduler. The configuration's
/// `model` field is ignored — the scheduler comes from `kind` (the
/// weighted schedulers live outside the Fig. 12 [`ModelKind`] lineup);
/// every other parameter (ports, load, traffic, seeds, queue capacities)
/// has identical semantics to [`run_sim`].
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run_sim_weighted(cfg: &SimConfig, kind: WeightedKind) -> SimReport {
    // lint:allow(no-panic): documented precondition (# Panics above)
    cfg.validate().expect("invalid simulation config");
    let mut switch = build_weighted_switch(cfg, kind);
    let mut traffic = build_traffic(cfg);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let opts = DriveOptions::new(cfg.warmup_slots, cfg.measure_slots, cfg.max_latency_bucket);
    let stats = drive(&mut switch, traffic.as_mut(), &mut rng, &opts);
    make_report(
        kind.name(),
        cfg,
        &stats,
        BackendChoice::NoKernel.to_string(),
    )
}

fn make_report(model: &str, cfg: &SimConfig, stats: &SimStats, backend: String) -> SimReport {
    SimReport {
        model: model.to_string(),
        load: cfg.load,
        n: cfg.n,
        slots: cfg.measure_slots,
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped(),
        mean_latency_slots: stats.mean_latency(),
        latency_std_dev: stats.latency_std_dev(),
        p50_latency: stats.latency_quantile(0.5),
        p99_latency: stats.latency_quantile(0.99),
        throughput: stats.delivered as f64 / (cfg.measure_slots as f64 * cfg.n as f64),
        jain_index: stats.service().jain_index(),
        seed: cfg.seed,
        backend,
    }
}

/// Like [`run_sim`], but collects telemetry over the **measurement window**:
/// scheduler decision events and slot-loop metrics go into a
/// [`SwitchTelemetry`] capped at `trace_capacity` events (0 = unbounded).
///
/// Tracing is enabled only after warm-up, so the trace describes exactly
/// the slots the report's statistics do. The report itself is identical to
/// the untraced one — telemetry is read-only by contract (see
/// `tests/telemetry_equiv.rs`).
///
/// The output-buffered model has no scheduler to trace; it returns its
/// report with an empty telemetry object.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
#[cfg(feature = "telemetry")]
pub fn run_sim_traced(
    cfg: &SimConfig,
    trace_capacity: usize,
) -> (SimReport, Box<crate::switch::SwitchTelemetry>) {
    // lint:allow(no-panic): documented precondition (# Panics above)
    cfg.validate().expect("invalid simulation config");
    let (mut model, backend) = build_model(cfg);
    let mut traffic = build_traffic(cfg);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let opts = DriveOptions::new(cfg.warmup_slots, cfg.measure_slots, cfg.max_latency_bucket)
        .traced(trace_capacity);
    let stats = drive(model.as_mut(), traffic.as_mut(), &mut rng, &opts);
    let telemetry = model.take_telemetry().unwrap_or_default();
    (
        make_report(cfg.model.name(), cfg, &stats, backend),
        telemetry,
    )
}

/// A simulation in a [`try_sweep`] batch that panicked instead of producing
/// a report.
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Index of the failing configuration in the input slice.
    pub index: usize,
    /// Panic payload rendered as text (`String`/`&str` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config #{} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for SweepError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs many simulations in parallel (one OS thread per hardware thread;
/// each simulation is single-threaded and deterministic). Results come back
/// in input order.
///
/// A panic in one configuration is contained to that configuration: the
/// remaining simulations still run to completion, and the failure comes back
/// as `Err(SweepError)` in that slot.
pub fn try_sweep(configs: &[SimConfig]) -> Vec<Result<SimReport, SweepError>> {
    parallel_indexed(configs.len(), |idx| run_sim(&configs[idx]))
}

/// Runs `f(0..count)` across a scoped thread pool, containing panics per
/// index; results come back in index order.
fn parallel_indexed<T, F>(count: usize, f: F) -> Vec<Result<T, SweepError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(count.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Result<T, SweepError>>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                // AssertUnwindSafe: the closure only reads shared immutable
                // state and builds all mutable state fresh per run, so no
                // broken invariant can leak out.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(idx)))
                    .map_err(|payload| SweepError {
                        index: idx,
                        message: panic_message(payload),
                    });
                // A poisoned slot only means a sibling worker panicked while
                // holding this uncontended lock — the data is still ours.
                *results[idx]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| {
                    Err(SweepError {
                        index,
                        message: "worker recorded no outcome".to_string(),
                    })
                })
        })
        .collect()
}

/// Like [`try_sweep`], but every configuration runs traced: each slot keeps
/// its report **and** its [`SwitchTelemetry`](crate::switch::SwitchTelemetry),
/// and the batch comes back with one merged
/// [`MetricsRegistry`](lcf_telemetry::MetricsRegistry): slot-loop counters
/// summed, same-shape histograms merged, and per-config progress recorded
/// under `sweep.*` keys (`sweep.configs_ok`, `sweep.configs_failed`,
/// `sweep.config.<i>.{load,throughput,mean_latency}`).
///
/// Same-name histograms from configs with *different* port counts cannot be
/// merged (their value ranges differ); those keep the first run's shape and
/// the conflict count is surfaced as `sweep.histogram_range_mismatches`.
#[cfg(feature = "telemetry")]
#[allow(clippy::type_complexity)]
pub fn try_sweep_traced(
    configs: &[SimConfig],
    trace_capacity: usize,
) -> (
    Vec<Result<(SimReport, Box<crate::switch::SwitchTelemetry>), SweepError>>,
    lcf_telemetry::MetricsRegistry,
) {
    let outcomes = parallel_indexed(configs.len(), |idx| {
        run_sim_traced(&configs[idx], trace_capacity)
    });
    let mut merged = lcf_telemetry::MetricsRegistry::new();
    for (idx, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok((report, telemetry)) => {
                merged.counter_inc("sweep.configs_ok");
                merged.gauge_set(format!("sweep.config.{idx}.load"), report.load);
                merged.gauge_set(format!("sweep.config.{idx}.throughput"), report.throughput);
                merged.gauge_set(
                    format!("sweep.config.{idx}.mean_latency"),
                    report.mean_latency_slots,
                );
                let mismatched = merged.merge(&telemetry.metrics);
                merged.counter_add("sweep.histogram_range_mismatches", mismatched.len() as u64);
            }
            Err(_) => merged.counter_inc("sweep.configs_failed"),
        }
    }
    (outcomes, merged)
}

/// Like [`try_sweep`], but panics *after the whole batch finishes* if any
/// configuration failed. Callers that can tolerate partial results should
/// use [`try_sweep`] directly.
pub fn sweep(configs: &[SimConfig]) -> Vec<SimReport> {
    let mut reports = Vec::with_capacity(configs.len());
    let mut errors = Vec::new();
    for outcome in try_sweep(configs) {
        match outcome {
            Ok(report) => reports.push(report),
            Err(e) => errors.push(e.to_string()),
        }
    }
    assert!(
        errors.is_empty(),
        "sweep: {} of {} configs panicked: {}",
        errors.len(),
        configs.len(),
        errors.join("; ")
    );
    reports
}

/// Two-sided 95% Student-t critical values for 1..=30 degrees of freedom;
/// beyond that the normal approximation (1.96) is within 0.9%.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T95[df - 1],
        _ => 1.96,
    }
}

/// Sample mean with a 95% confidence interval across replications.
#[derive(Clone, Debug, PartialEq)]
pub struct MeanCi {
    /// Sample mean across replications.
    pub mean: f64,
    /// Sample standard deviation (n−1 divisor) across replications.
    pub std_dev: f64,
    /// 95% confidence half-width `t₀.₀₂₅,R₋₁ · s / √R`. Infinite for a
    /// single replication (one sample pins no interval).
    pub half_width: f64,
}

impl MeanCi {
    fn from_samples(samples: &[f64]) -> MeanCi {
        let mut w = crate::stats::Welford::new();
        for &x in samples {
            w.add(x);
        }
        let r = samples.len();
        let half_width = if r < 2 {
            f64::INFINITY
        } else {
            t95(r - 1) * w.std_dev() / (r as f64).sqrt()
        };
        MeanCi {
            mean: w.mean(),
            std_dev: w.std_dev(),
            half_width,
        }
    }

    /// Lower edge of the 95% interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge of the 95% interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the two 95% intervals overlap — the coarse statistical
    /// equivalence check used by the fast-vs-legacy generator tests.
    pub fn overlaps(&self, other: &MeanCi) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

/// Aggregate of `R` independent replications of one configuration
/// (same parameters, per-replicate seeds derived from the base seed).
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicatedReport {
    /// Fig. 12 legend name of the model simulated.
    pub model: String,
    /// Offered load of every replication.
    pub load: f64,
    /// Number of switch ports.
    pub n: usize,
    /// Number of independent replications run.
    pub replications: usize,
    /// Measurement slots per replication.
    pub slots_per_replication: u64,
    /// Base seed the per-replicate seeds were derived from.
    pub base_seed: u64,
    /// Mean queueing delay in slots.
    pub mean_latency: MeanCi,
    /// 99th-percentile queueing delay (mean of per-replicate p99s).
    pub p99_latency: MeanCi,
    /// Delivered throughput as a fraction of aggregate link capacity.
    pub throughput: MeanCi,
    /// Time-average packets resident in the switch, via Little's law
    /// (`L = λ·W` with λ the delivered rate in packets/slot).
    pub mean_queue_len: MeanCi,
    /// Fraction of generated packets dropped.
    pub loss_rate: MeanCi,
    /// The per-replicate reports, in replicate order (replicate 0 uses the
    /// base seed itself, so it reproduces `run_sim(cfg)` exactly).
    pub reports: Vec<SimReport>,
}

/// Seed for replicate `index` of a base seed: the golden-ratio Weyl step
/// keeps the raw seeds distinct (odd multiplier ⇒ injective mod 2⁶⁴), and
/// [`SimRng`]'s SplitMix64 key expansion decorrelates the streams.
/// Replicate 0 is the base seed itself.
pub fn replicate_seed(base: u64, index: usize) -> u64 {
    base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `replications` independent copies of `cfg` — identical parameters,
/// per-replicate seeds from [`replicate_seed`] — across the same scoped
/// thread pool as [`try_sweep`], and merges them into mean / 95% CI
/// estimates. Deterministic given `(cfg.seed, replications)`: growing `R`
/// appends replicates without changing earlier ones.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`], if
/// `replications == 0`, or if any replicate panics.
pub fn run_replicated(cfg: &SimConfig, replications: usize) -> ReplicatedReport {
    run_replicated_with(cfg, replications, cfg.model.name(), &run_sim)
}

/// [`run_replicated`] for the weighted schedulers: `R` independent copies
/// of [`run_sim_weighted`] merged into mean / 95% CI estimates, with the
/// same per-replicate seed derivation and determinism contract. The
/// configuration's `model` field is ignored (the scheduler comes from
/// `kind`).
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`], if
/// `replications == 0`, or if any replicate panics.
pub fn run_replicated_weighted(
    cfg: &SimConfig,
    kind: WeightedKind,
    replications: usize,
) -> ReplicatedReport {
    run_replicated_with(cfg, replications, kind.name(), &|rep_cfg| {
        run_sim_weighted(rep_cfg, kind)
    })
}

/// Shared replication engine: runs `replications` copies of `cfg` through
/// `run` (seeds from [`replicate_seed`]) on the scoped thread pool and
/// aggregates the reports under `model`.
fn run_replicated_with(
    cfg: &SimConfig,
    replications: usize,
    model: &str,
    run: &(dyn Fn(&SimConfig) -> SimReport + Sync),
) -> ReplicatedReport {
    // lint:allow(no-panic): documented preconditions (# Panics on the public wrappers)
    assert!(replications > 0, "replications must be positive");
    // lint:allow(no-panic): documented precondition (# Panics on the public wrappers)
    cfg.validate().expect("invalid simulation config");
    let reports: Vec<SimReport> = parallel_indexed(replications, |idx| {
        let rep_cfg = SimConfig {
            seed: replicate_seed(cfg.seed, idx),
            ..cfg.clone()
        };
        run(&rep_cfg)
    })
    .into_iter()
    // lint:allow(no-panic): a panicking replicate is unrecoverable (# Panics on the public wrappers)
    .map(|outcome| outcome.unwrap_or_else(|e| panic!("replication panicked: {e}")))
    .collect();

    let metric = |f: &dyn Fn(&SimReport) -> f64| {
        MeanCi::from_samples(&reports.iter().map(f).collect::<Vec<f64>>())
    };
    ReplicatedReport {
        model: model.to_string(),
        load: cfg.load,
        n: cfg.n,
        replications,
        slots_per_replication: cfg.measure_slots,
        base_seed: cfg.seed,
        mean_latency: metric(&|r| r.mean_latency_slots),
        p99_latency: metric(&|r| r.p99_latency as f64),
        throughput: metric(&|r| r.throughput),
        mean_queue_len: metric(&|r| r.delivered as f64 / r.slots as f64 * r.mean_latency_slots),
        loss_rate: metric(&|r| r.loss_rate()),
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::DestPattern;

    fn quick_cfg(model: ModelKind, load: f64) -> SimConfig {
        SimConfig {
            model,
            load,
            n: 8,
            warmup_slots: 2_000,
            measure_slots: 10_000,
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn run_sim_produces_sane_report() {
        let cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.6);
        let r = run_sim(&cfg);
        assert_eq!(r.model, "lcf_central");
        assert_eq!(r.n, 8);
        assert!(r.generated > 0);
        assert!(r.delivered > 0);
        assert!(r.throughput > 0.5 && r.throughput < 0.7);
        assert!(r.mean_latency() > 0.0);
        assert!(r.p99_latency >= r.p50_latency);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::Pim), 0.7);
        let a = run_sim(&cfg);
        let b = run_sim(&cfg);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_latency_slots, b.mean_latency_slots);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::Pim), 0.7);
        let a = run_sim(&cfg);
        cfg.seed += 1;
        let b = run_sim(&cfg);
        assert_ne!(
            (a.delivered, a.mean_latency_slots),
            (b.delivered, b.mean_latency_slots)
        );
    }

    #[test]
    fn outbuf_beats_fifo_at_high_load() {
        let ob = run_sim(&quick_cfg(ModelKind::OutputBuffered, 0.9));
        let fifo = run_sim(&quick_cfg(ModelKind::Scheduler(SchedulerKind::Fifo), 0.9));
        assert!(
            ob.mean_latency() < fifo.mean_latency(),
            "outbuf {} vs fifo {}",
            ob.mean_latency(),
            fifo.mean_latency()
        );
        assert!(ob.throughput > fifo.throughput);
    }

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        let configs: Vec<SimConfig> = [0.2, 0.5, 0.8]
            .iter()
            .map(|&load| quick_cfg(ModelKind::Scheduler(SchedulerKind::Islip), load))
            .collect();
        let reports = sweep(&configs);
        assert_eq!(reports.len(), 3);
        for (cfg, rep) in configs.iter().zip(&reports) {
            assert_eq!(cfg.load, rep.load);
        }
        // Latency grows with load.
        assert!(reports[0].mean_latency() <= reports[2].mean_latency());
    }

    #[test]
    fn try_sweep_isolates_panicking_configs() {
        let good = quick_cfg(ModelKind::Scheduler(SchedulerKind::Islip), 0.3);
        let mut bad = quick_cfg(ModelKind::Scheduler(SchedulerKind::Islip), 0.3);
        bad.load = 2.0; // fails SimConfig::validate → panics inside run_sim
        let outcomes = try_sweep(&[good.clone(), bad, good]);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok());
        assert!(
            outcomes[2].is_ok(),
            "siblings of a panicking config must run"
        );
        let err = outcomes[1].as_ref().expect_err("bad config must fail");
        assert_eq!(err.index, 1);
        assert!(
            err.message.contains("invalid simulation config"),
            "unexpected panic message: {}",
            err.message
        );
    }

    #[test]
    fn golden_determinism_contract() {
        // Freezes the whole seed → ChaCha8 stream → traffic → scheduler →
        // stats pipeline (see [`SimRng`]). If these exact counts change, the
        // reproducibility contract broke: a published `SimReport::seed` no
        // longer regenerates its run. Fix the regression — do not re-bless
        // the numbers — unless the release notes declare a stream break.
        let cfg = SimConfig {
            model: ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
            n: 8,
            load: 0.7,
            warmup_slots: 500,
            measure_slots: 4_000,
            seed: 0xD5EED,
            ..SimConfig::paper_default()
        };
        let r = run_sim(&cfg);
        assert_eq!(
            (r.generated, r.delivered, r.dropped),
            (22_289, 22_291, 0),
            "golden counts"
        );
        assert_eq!((r.p50_latency, r.p99_latency), (0, 11), "golden latencies");

        // And the RNG-consuming scheduler path (PIM draws from its own
        // ChaCha8 stream seeded with `seed ^ 0x5EED`).
        let pim = run_sim(&SimConfig {
            model: ModelKind::Scheduler(SchedulerKind::Pim),
            ..cfg
        });
        assert_eq!(
            (pim.generated, pim.delivered, pim.p99_latency),
            (22_289, 22_288, 13),
            "golden PIM counts"
        );
    }

    #[test]
    fn kernel_backends_produce_identical_reports() {
        use lcf_core::bitkern::Backend;
        for kind in [
            SchedulerKind::LcfCentral,
            SchedulerKind::LcfCentralRr,
            SchedulerKind::Pim,
            SchedulerKind::Islip,
            SchedulerKind::Wavefront,
        ] {
            let mut cfg = quick_cfg(ModelKind::Scheduler(kind), 0.8);
            cfg.measure_slots = 5_000;
            cfg.backend = Backend::Scalar;
            let a = run_sim(&cfg);
            cfg.backend = Backend::Bitset;
            let b = run_sim(&cfg);
            assert_eq!(
                (a.generated, a.delivered, a.dropped),
                (b.generated, b.delivered, b.dropped),
                "{kind}: backends diverged on counts"
            );
            assert_eq!(
                (a.mean_latency_slots, a.p50_latency, a.p99_latency),
                (b.mean_latency_slots, b.p50_latency, b.p99_latency),
                "{kind}: backends diverged on latency"
            );
            assert_eq!(a.jain_index, b.jain_index, "{kind}: fairness diverged");
        }
    }

    #[test]
    fn report_surfaces_backend_choice() {
        use lcf_core::bitkern::Backend;
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentralRr), 0.3);
        cfg.measure_slots = 500;
        cfg.warmup_slots = 100;
        assert_eq!(run_sim(&cfg).backend, "bitset");
        cfg.backend = Backend::Scalar;
        assert_eq!(run_sim(&cfg).backend, "scalar");
        // Past the word width the multi-word kernels keep serving the
        // bitset request — no scalar fallback, silent or otherwise.
        cfg.backend = Backend::Bitset;
        cfg.n = 70;
        let r = run_sim(&cfg);
        assert_eq!(r.backend, "bitset", "n = 70 must stay bit-parallel");
        // Schedulers without a kernel and outbuf report their own story.
        cfg.n = 8;
        cfg.model = ModelKind::Scheduler(SchedulerKind::MaxSize);
        assert!(run_sim(&cfg).backend.contains("no word-parallel kernel"));
        cfg.model = ModelKind::OutputBuffered;
        assert!(run_sim(&cfg).backend.contains("no scheduler"));
    }

    #[test]
    fn bursty_traffic_runs() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentralRr), 0.5);
        cfg.traffic = TrafficKind::Bursty { mean_burst: 8.0 };
        cfg.pattern = DestPattern::Uniform;
        let r = run_sim(&cfg);
        assert!(r.delivered > 0);
        // Bursts should hurt latency relative to Bernoulli at equal load.
        let bernoulli = run_sim(&quick_cfg(
            ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
            0.5,
        ));
        assert!(r.mean_latency() > bernoulli.mean_latency());
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut cfg = quick_cfg(ModelKind::OutputBuffered, 0.5);
        cfg.load = 2.0;
        let _ = run_sim(&cfg);
    }

    #[test]
    fn fast_traffic_kinds_run() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.6);
        cfg.traffic = TrafficKind::FastBernoulli;
        let r = run_sim(&cfg);
        assert!(r.throughput > 0.5 && r.throughput < 0.7, "{}", r.throughput);

        cfg.traffic = TrafficKind::FastBursty { mean_burst: 8.0 };
        let bursty = run_sim(&cfg);
        assert!(bursty.delivered > 0);
        assert!(
            bursty.mean_latency() > r.mean_latency(),
            "bursts must hurt latency at equal load"
        );
    }

    #[test]
    fn replicate_seeds_are_distinct_and_anchored() {
        let base = 0xABCD_EF01;
        assert_eq!(replicate_seed(base, 0), base, "replicate 0 is the base run");
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|i| replicate_seed(base, i)).collect();
        assert_eq!(seeds.len(), 64, "per-replicate seeds must not collide");
    }

    #[test]
    fn run_replicated_is_deterministic_and_anchored() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.7);
        cfg.measure_slots = 5_000;
        cfg.traffic = TrafficKind::FastBernoulli;
        let a = run_replicated(&cfg, 4);
        let b = run_replicated(&cfg, 4);
        assert_eq!(a, b, "same (seed, R) must reproduce bit-identically");
        assert_eq!(a.replications, 4);
        assert_eq!(a.reports.len(), 4);
        assert_eq!(
            a.reports[0],
            run_sim(&cfg),
            "replicate 0 runs the base seed"
        );
        // Growing R appends replicates without disturbing earlier ones.
        let c = run_replicated(&cfg, 6);
        assert_eq!(&c.reports[..4], &a.reports[..]);
    }

    #[test]
    fn replication_cis_shrink_with_r() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::Islip), 0.8);
        cfg.measure_slots = 4_000;
        cfg.warmup_slots = 1_000;
        cfg.traffic = TrafficKind::FastBernoulli;
        let single = run_replicated(&cfg, 1);
        assert!(
            single.mean_latency.half_width.is_infinite(),
            "one sample pins no interval"
        );
        let small = run_replicated(&cfg, 4);
        let large = run_replicated(&cfg, 24);
        assert!(
            large.mean_latency.half_width < small.mean_latency.half_width,
            "CI must shrink: R=4 ±{} vs R=24 ±{}",
            small.mean_latency.half_width,
            large.mean_latency.half_width
        );
        assert!(large.mean_latency.half_width.is_finite());
        assert!(large.mean_latency.half_width > 0.0);
        // The interval brackets the point estimate.
        assert!(large.mean_latency.lo() < large.mean_latency.mean);
        assert!(large.mean_latency.hi() > large.mean_latency.mean);
    }

    #[test]
    fn fast_bernoulli_statistically_equivalent_to_legacy() {
        // The satellite contract: at n = 16 the fast generator's delay and
        // throughput estimates agree with the legacy generator's within
        // replication confidence intervals — same process, different RNG
        // stream.
        let cfg = SimConfig {
            model: ModelKind::Scheduler(SchedulerKind::LcfCentral),
            load: 0.7,
            warmup_slots: 1_000,
            measure_slots: 8_000,
            ..SimConfig::paper_default()
        };
        assert_eq!(cfg.n, 16);
        let legacy = run_replicated(&cfg, 6);
        let fast = run_replicated(
            &SimConfig {
                traffic: TrafficKind::FastBernoulli,
                ..cfg
            },
            6,
        );
        assert!(
            legacy.mean_latency.overlaps(&fast.mean_latency),
            "latency CIs disjoint: legacy {:?} vs fast {:?}",
            legacy.mean_latency,
            fast.mean_latency
        );
        assert!(
            legacy.throughput.overlaps(&fast.throughput),
            "throughput CIs disjoint: legacy {:?} vs fast {:?}",
            legacy.throughput,
            fast.throughput
        );
        // Both estimate the configured offered load (stable regime, no loss).
        for rep in [&legacy, &fast] {
            assert!(
                (rep.throughput.mean - 0.7).abs() < 0.01,
                "throughput {} off offered load",
                rep.throughput.mean
            );
            assert_eq!(rep.loss_rate.mean, 0.0);
        }
    }

    #[test]
    fn run_sim_weighted_covers_every_kind() {
        // The weighted path drives every registry kind through the full
        // slot loop — in debug builds this also exercises the
        // CheckedWeightedScheduler (validity + weight-bound oracle) and
        // the slot-loop weighted invariant check on every slot.
        for kind in WeightedKind::ALL {
            let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.7);
            cfg.measure_slots = 2_000;
            cfg.warmup_slots = 500;
            let r = run_sim_weighted(&cfg, kind);
            assert_eq!(r.model, kind.name());
            assert_eq!(r.n, 8);
            assert!(r.delivered > 0, "{kind}");
            assert!(r.throughput > 0.6, "{kind}: throughput {}", r.throughput);
            assert!(r.backend.contains("no word-parallel kernel"));
        }
    }

    #[test]
    fn run_sim_weighted_is_deterministic() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.8);
        cfg.measure_slots = 2_000;
        let a = run_sim_weighted(&cfg, WeightedKind::Mwm);
        let b = run_sim_weighted(&cfg, WeightedKind::Mwm);
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        cfg.seed += 1;
        let c = run_sim_weighted(&cfg, WeightedKind::Mwm);
        assert_ne!(
            (a.delivered, a.mean_latency_slots),
            (c.delivered, c.mean_latency_slots)
        );
    }

    #[test]
    fn run_replicated_weighted_is_deterministic_and_anchored() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.7);
        cfg.measure_slots = 1_500;
        cfg.warmup_slots = 300;
        cfg.traffic = TrafficKind::FastBernoulli;
        let a = run_replicated_weighted(&cfg, WeightedKind::NwGreedy, 3);
        let b = run_replicated_weighted(&cfg, WeightedKind::NwGreedy, 3);
        assert_eq!(a, b, "same (seed, R) must reproduce bit-identically");
        assert_eq!(a.model, "nwgreedy");
        assert_eq!(
            a.reports[0],
            run_sim_weighted(&cfg, WeightedKind::NwGreedy),
            "replicate 0 runs the base seed"
        );
        // Growing R appends replicates without disturbing earlier ones.
        let c = run_replicated_weighted(&cfg, WeightedKind::NwGreedy, 5);
        assert_eq!(&c.reports[..3], &a.reports[..]);
    }

    #[test]
    fn little_law_queue_length_is_consistent() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.9);
        cfg.traffic = TrafficKind::FastBernoulli;
        let rep = run_replicated(&cfg, 3);
        // L = λ·W with λ ≈ n·load packets/slot switch-wide.
        let expected = cfg.n as f64 * cfg.load * rep.mean_latency.mean;
        assert!(
            (rep.mean_queue_len.mean - expected).abs() / expected.max(1.0) < 0.1,
            "queue length {} vs Little's-law {}",
            rep.mean_queue_len.mean,
            expected
        );
    }
}
