//! Experiment driver: warm-up, measurement and parallel load sweeps.

use crate::config::{ModelKind, SimConfig, TrafficKind};
use crate::outbuf::ObSwitch;
use crate::stats::SimStats;
use crate::switch::{IqSwitch, QueueMode};
use crate::traffic::{Bernoulli, OnOffBursty, Traffic};
use lcf_core::registry::SchedulerKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Fig. 12 legend name of the model simulated.
    pub model: String,
    /// Offered load the run was configured with.
    pub load: f64,
    /// Number of switch ports.
    pub n: usize,
    /// Slots in the measurement window.
    pub slots: u64,
    /// Packets generated during measurement.
    pub generated: u64,
    /// Packets delivered during measurement.
    pub delivered: u64,
    /// Packets dropped (PQ and inner queues) during measurement.
    pub dropped: u64,
    /// Mean queueing delay in slots (packets generated during measurement).
    pub mean_latency_slots: f64,
    /// Standard deviation of the queueing delay.
    pub latency_std_dev: f64,
    /// Median queueing delay.
    pub p50_latency: u64,
    /// 99th-percentile queueing delay.
    pub p99_latency: u64,
    /// Delivered throughput as a fraction of aggregate link capacity.
    pub throughput: f64,
    /// Jain fairness index over per-input deliveries.
    pub jain_index: f64,
    /// Seed the run used.
    pub seed: u64,
}

impl SimReport {
    /// Mean queueing delay in slots.
    pub fn mean_latency(&self) -> f64 {
        self.mean_latency_slots
    }

    /// Loss rate over generated packets.
    pub fn loss_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.dropped as f64 / self.generated as f64
        }
    }
}

enum Model {
    Iq(IqSwitch),
    Ob(ObSwitch),
}

impl Model {
    fn step(
        &mut self,
        slot: u64,
        traffic: &mut dyn Traffic,
        rng: &mut StdRng,
        stats: &mut SimStats,
    ) {
        match self {
            Model::Iq(sw) => {
                sw.step(slot, traffic, rng, stats);
            }
            Model::Ob(sw) => sw.step(slot, traffic, rng, stats),
        }
    }
}

fn build_model(cfg: &SimConfig) -> Model {
    match cfg.model {
        ModelKind::OutputBuffered => Model::Ob(ObSwitch::new(cfg.n, cfg.pq_cap, cfg.outbuf_cap)),
        ModelKind::Scheduler(kind) => {
            let scheduler = kind.build(cfg.n, cfg.iterations_for_model(), cfg.seed ^ 0x5EED);
            let mode = if kind == SchedulerKind::Fifo {
                QueueMode::SingleFifo { cap: cfg.voq_cap }
            } else {
                QueueMode::Voq { cap: cfg.voq_cap }
            };
            Model::Iq(IqSwitch::new(cfg.n, scheduler, mode, cfg.pq_cap))
        }
    }
}

fn build_traffic(cfg: &SimConfig) -> Box<dyn Traffic> {
    match &cfg.traffic {
        TrafficKind::Bernoulli => Box::new(Bernoulli::new(cfg.n, cfg.load, cfg.pattern.clone())),
        TrafficKind::Bursty { mean_burst } => Box::new(OnOffBursty::new(
            cfg.n,
            cfg.load,
            *mean_burst,
            cfg.pattern.clone(),
        )),
    }
}

/// Runs one simulation: `warmup_slots` to fill the queues, then
/// `measure_slots` with statistics collection.
///
/// # Panics
/// Panics if the configuration fails [`SimConfig::validate`].
pub fn run_sim(cfg: &SimConfig) -> SimReport {
    let (report, _) = run_sim_with_stats(cfg);
    report
}

/// Like [`run_sim`] but also returns the raw [`SimStats`] collector (needed
/// by the fairness experiment, which inspects per-pair service counts).
pub fn run_sim_with_stats(cfg: &SimConfig) -> (SimReport, SimStats) {
    cfg.validate().expect("invalid simulation config");
    let mut model = build_model(cfg);
    let mut traffic = build_traffic(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Warm-up: run with a throwaway collector so queues reach steady state.
    let mut warm_stats = SimStats::new(cfg.n, 0, cfg.max_latency_bucket);
    for slot in 0..cfg.warmup_slots {
        model.step(slot, traffic.as_mut(), &mut rng, &mut warm_stats);
    }

    // Measurement window with a fresh collector. Latency samples only come
    // from packets generated inside the window.
    let start = cfg.warmup_slots;
    let end = start + cfg.measure_slots;
    let mut stats = SimStats::new(cfg.n, start, cfg.max_latency_bucket);
    for slot in start..end {
        model.step(slot, traffic.as_mut(), &mut rng, &mut stats);
    }

    let report = SimReport {
        model: cfg.model.name().to_string(),
        load: cfg.load,
        n: cfg.n,
        slots: cfg.measure_slots,
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped(),
        mean_latency_slots: stats.mean_latency(),
        latency_std_dev: stats.latency_std_dev(),
        p50_latency: stats.latency_quantile(0.5),
        p99_latency: stats.latency_quantile(0.99),
        throughput: stats.delivered as f64 / (cfg.measure_slots as f64 * cfg.n as f64),
        jain_index: stats.service().jain_index(),
        seed: cfg.seed,
    };
    (report, stats)
}

/// Runs many simulations in parallel (one OS thread per hardware thread;
/// each simulation is single-threaded and deterministic). Results come back
/// in input order.
pub fn sweep(configs: &[SimConfig]) -> Vec<SimReport> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(configs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<SimReport>>> = configs
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= configs.len() {
                    break;
                }
                let report = run_sim(&configs[idx]);
                *results[idx].lock() = Some(report);
            });
        }
    })
    .expect("simulation worker panicked");

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every config produces a report"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::DestPattern;

    fn quick_cfg(model: ModelKind, load: f64) -> SimConfig {
        SimConfig {
            model,
            load,
            n: 8,
            warmup_slots: 2_000,
            measure_slots: 10_000,
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn run_sim_produces_sane_report() {
        let cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentral), 0.6);
        let r = run_sim(&cfg);
        assert_eq!(r.model, "lcf_central");
        assert_eq!(r.n, 8);
        assert!(r.generated > 0);
        assert!(r.delivered > 0);
        assert!(r.throughput > 0.5 && r.throughput < 0.7);
        assert!(r.mean_latency() > 0.0);
        assert!(r.p99_latency >= r.p50_latency);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::Pim), 0.7);
        let a = run_sim(&cfg);
        let b = run_sim(&cfg);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.mean_latency_slots, b.mean_latency_slots);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::Pim), 0.7);
        let a = run_sim(&cfg);
        cfg.seed += 1;
        let b = run_sim(&cfg);
        assert_ne!(
            (a.delivered, a.mean_latency_slots),
            (b.delivered, b.mean_latency_slots)
        );
    }

    #[test]
    fn outbuf_beats_fifo_at_high_load() {
        let ob = run_sim(&quick_cfg(ModelKind::OutputBuffered, 0.9));
        let fifo = run_sim(&quick_cfg(ModelKind::Scheduler(SchedulerKind::Fifo), 0.9));
        assert!(
            ob.mean_latency() < fifo.mean_latency(),
            "outbuf {} vs fifo {}",
            ob.mean_latency(),
            fifo.mean_latency()
        );
        assert!(ob.throughput > fifo.throughput);
    }

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        let configs: Vec<SimConfig> = [0.2, 0.5, 0.8]
            .iter()
            .map(|&load| quick_cfg(ModelKind::Scheduler(SchedulerKind::Islip), load))
            .collect();
        let reports = sweep(&configs);
        assert_eq!(reports.len(), 3);
        for (cfg, rep) in configs.iter().zip(&reports) {
            assert_eq!(cfg.load, rep.load);
        }
        // Latency grows with load.
        assert!(reports[0].mean_latency() <= reports[2].mean_latency());
    }

    #[test]
    fn bursty_traffic_runs() {
        let mut cfg = quick_cfg(ModelKind::Scheduler(SchedulerKind::LcfCentralRr), 0.5);
        cfg.traffic = TrafficKind::Bursty { mean_burst: 8.0 };
        cfg.pattern = DestPattern::Uniform;
        let r = run_sim(&cfg);
        assert!(r.delivered > 0);
        // Bursts should hurt latency relative to Bernoulli at equal load.
        let bernoulli = run_sim(&quick_cfg(
            ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
            0.5,
        ));
        assert!(r.mean_latency() > bernoulli.mean_latency());
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut cfg = quick_cfg(ModelKind::OutputBuffered, 0.5);
        cfg.load = 2.0;
        let _ = run_sim(&cfg);
    }
}
