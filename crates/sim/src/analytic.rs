//! Closed-form queueing results (Karol, Hluchyj & Morgan 1987 — the
//! paper's reference \[8\]) used to validate the simulator against theory.
//!
//! For uniform i.i.d. Bernoulli arrivals:
//!
//! * an **output-buffered** switch's mean waiting time is the discrete
//!   M/D/1-like expression `W = ((n−1)/n) · p / (2(1−p))` — an exact
//!   result, so the simulator's `outbuf` curve must land on it;
//! * a **FIFO input-buffered** switch saturates at `2 − √2 ≈ 0.586` as
//!   `n → ∞`, with known finite-`n` values — the ceiling the `fifo` curve
//!   must hit.
//!
//! The tests in this module run the simulator against both results; the
//! agreement is the strongest evidence the Fig. 11 model is implemented
//! correctly.

/// Mean queueing delay (in slots) of an output-buffered switch under
/// uniform Bernoulli load `p` per input (Karol et al., Eq. for output
/// queueing with infinite buffers).
///
/// # Panics
/// Panics for `p >= 1` (the queue is unstable) or `p < 0`.
pub fn outbuf_mean_delay(n: usize, p: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!((0.0..1.0).contains(&p), "load must be in [0, 1)");
    ((n - 1) as f64 / n as f64) * p / (2.0 * (1.0 - p))
}

/// Saturation throughput of FIFO input queueing under uniform traffic,
/// `n → ∞` limit: `2 − √2`.
pub fn fifo_saturation_limit() -> f64 {
    2.0 - 2.0f64.sqrt()
}

/// Finite-`n` FIFO saturation throughput (Karol et al., Table I). Exact
/// for the tabulated sizes, the asymptotic limit beyond.
pub fn fifo_saturation(n: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    match n {
        1 => 1.0,
        2 => 0.7500,
        3 => 0.6825,
        4 => 0.6553,
        5 => 0.6399,
        6 => 0.6302,
        7 => 0.6234,
        8 => 0.6184,
        _ => fifo_saturation_limit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelKind, SimConfig};
    use crate::runner::run_sim;
    use lcf_core::registry::SchedulerKind;

    #[test]
    fn outbuf_formula_values() {
        // n -> infinity at p = 0.9: 4.5 slots; n = 16 scales by 15/16.
        assert!((outbuf_mean_delay(16, 0.9) - 4.21875).abs() < 1e-9);
        assert_eq!(outbuf_mean_delay(1, 0.9), 0.0, "1-port switch never queues");
        assert!((outbuf_mean_delay(16, 0.5) - 0.46875).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn unstable_load_rejected() {
        let _ = outbuf_mean_delay(16, 1.0);
    }

    #[test]
    fn saturation_values() {
        assert!((fifo_saturation_limit() - 0.5857864376).abs() < 1e-9);
        assert_eq!(fifo_saturation(1), 1.0);
        assert!(fifo_saturation(4) > fifo_saturation(8));
        assert_eq!(fifo_saturation(100), fifo_saturation_limit());
    }

    /// The simulator's output-buffered switch must reproduce the exact
    /// M/D/1 delay across the load range (the strongest end-to-end check
    /// of the arrival, queueing and service logic).
    #[test]
    fn simulated_outbuf_matches_theory() {
        for &load in &[0.3, 0.5, 0.7, 0.9] {
            let cfg = SimConfig {
                model: ModelKind::OutputBuffered,
                load,
                warmup_slots: 20_000,
                measure_slots: 80_000,
                ..SimConfig::paper_default()
            };
            let measured = run_sim(&cfg).mean_latency();
            let theory = outbuf_mean_delay(cfg.n, load);
            let rel = (measured - theory).abs() / theory.max(0.1);
            assert!(
                rel < 0.05,
                "load {load}: measured {measured:.3} vs theory {theory:.3} ({rel:.3} rel err)"
            );
        }
    }

    /// The simulated FIFO switch saturates at the theoretical ceiling.
    #[test]
    fn simulated_fifo_hits_karol_ceiling() {
        let cfg = SimConfig {
            model: ModelKind::Scheduler(SchedulerKind::Fifo),
            n: 8,
            load: 1.0,
            warmup_slots: 20_000,
            measure_slots: 80_000,
            ..SimConfig::paper_default()
        };
        let measured = run_sim(&cfg).throughput;
        let theory = fifo_saturation(8);
        assert!(
            (measured - theory).abs() < 0.02,
            "measured {measured:.4} vs Karol {theory:.4}"
        );
    }
}
