//! Bounded FIFO queues: packet queues (PQ), virtual output queues (VOQ) and
//! output buffers are all instances of [`BoundedFifo`].

use crate::packet::Packet;
use std::collections::VecDeque;

/// A bounded FIFO of packets.
///
/// All queues in the Fig. 11 model are FIFO memories with a fixed capacity;
/// a full queue rejects (drops) arrivals, which the simulator accounts for.
///
/// ```
/// use lcf_sim::packet::Packet;
/// use lcf_sim::queues::BoundedFifo;
///
/// let mut q = BoundedFifo::new(2);
/// assert!(q.push(Packet::new(0, 1, 10)));
/// assert!(q.push(Packet::new(0, 1, 11)));
/// assert!(!q.push(Packet::new(0, 1, 12)), "full queue drops");
/// assert_eq!(q.pop().unwrap().generated_at, 10);
/// ```
#[derive(Clone, Debug)]
pub struct BoundedFifo {
    cap: usize,
    q: VecDeque<Packet>,
}

impl BoundedFifo {
    /// Creates a queue holding at most `cap` packets.
    ///
    /// # Panics
    /// Panics if `cap == 0` — every queue in the model holds at least one
    /// packet.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        BoundedFifo {
            cap,
            q: VecDeque::new(),
        }
    }

    /// Capacity.
    #[inline]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of queued packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if no packets are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// True if at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.cap
    }

    /// Attempts to enqueue; returns `false` (dropping the packet) when full.
    #[must_use = "a false return means the packet was dropped"]
    pub fn push(&mut self, p: Packet) -> bool {
        if self.is_full() {
            false
        } else {
            self.q.push_back(p);
            true
        }
    }

    /// Dequeues the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        self.q.pop_front()
    }

    /// Peeks at the head packet.
    pub fn head(&self) -> Option<&Packet> {
        self.q.front()
    }
}

/// The set of `n` virtual output queues of one input port.
///
/// Packets are sorted by destination on arrival at the input buffer
/// (Sec. 2); each destination has its own bounded FIFO so packets for
/// different targets never block each other.
#[derive(Clone, Debug)]
pub struct VoqSet {
    queues: Vec<BoundedFifo>,
    // Occupancy bitmap, 64 destinations per word: bit (dst % 64) of word
    // (dst / 64) is set iff the VOQ for dst is non-empty. Maintained on
    // push/pop so the simulator can build the scheduler's request row with
    // one word copy instead of n probes.
    occupancy: Vec<u64>,
}

impl VoqSet {
    /// Creates `n` VOQs of `cap_each` packets each.
    pub fn new(n: usize, cap_each: usize) -> Self {
        assert!(n > 0, "VOQ set requires n > 0");
        VoqSet {
            queues: (0..n).map(|_| BoundedFifo::new(cap_each)).collect(),
            occupancy: vec![0; n.div_ceil(64)],
        }
    }

    /// Number of VOQs (= switch ports).
    pub fn n(&self) -> usize {
        self.queues.len()
    }

    /// Attempts to enqueue a packet into the VOQ of its destination.
    #[must_use = "a false return means the packet was dropped"]
    pub fn push(&mut self, p: Packet) -> bool {
        let dst = p.dst_idx();
        let pushed = self.queues[dst].push(p);
        if pushed {
            self.occupancy[dst / 64] |= 1u64 << (dst % 64);
        }
        pushed
    }

    /// True if the VOQ for destination `dst` has room.
    pub fn has_room_for(&self, dst: usize) -> bool {
        !self.queues[dst].is_full()
    }

    /// True if the VOQ for destination `dst` holds at least one packet —
    /// this is the request bit the scheduler sees.
    pub fn has_packet_for(&self, dst: usize) -> bool {
        !self.queues[dst].is_empty()
    }

    /// Dequeues the head packet destined for `dst`.
    pub fn pop_for(&mut self, dst: usize) -> Option<Packet> {
        let p = self.queues[dst].pop();
        if self.queues[dst].is_empty() {
            self.occupancy[dst / 64] &= !(1u64 << (dst % 64));
        }
        p
    }

    /// Peeks at the head packet destined for `dst` (for age-based
    /// schedulers).
    pub fn head_for(&self, dst: usize) -> Option<&Packet> {
        self.queues[dst].head()
    }

    /// Total packets queued across all VOQs.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Occupancy of the VOQ for destination `dst`.
    pub fn len_for(&self, dst: usize) -> usize {
        self.queues[dst].len()
    }

    /// The occupancy bitmap, 64 destinations per word: bit `dst % 64` of
    /// word `dst / 64` is set iff [`VoqSet::has_packet_for`]`(dst)`. This is
    /// exactly the request row the scheduler sees, in the packed layout of
    /// `lcf_core::bitmat::BitMatrix::set_row_words`.
    #[inline]
    pub fn occupancy_words(&self) -> &[u64] {
        &self.occupancy
    }

    /// Number of non-empty VOQs (the paper's "choice" of this input).
    #[inline]
    pub fn occupied_count(&self) -> usize {
        self.occupancy.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(dst: usize) -> Packet {
        Packet::new(0, dst, 0)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedFifo::new(4);
        for t in 0..3 {
            assert!(q.push(Packet::new(0, 0, t)));
        }
        assert_eq!(q.pop().unwrap().generated_at, 0);
        assert_eq!(q.pop().unwrap().generated_at, 1);
        assert_eq!(q.pop().unwrap().generated_at, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut q = BoundedFifo::new(2);
        assert!(q.push(pkt(0)));
        assert!(q.push(pkt(0)));
        assert!(q.is_full());
        assert!(!q.push(pkt(0)), "third push must be rejected");
        assert_eq!(q.len(), 2);
        q.pop();
        assert!(!q.is_full());
        assert!(q.push(pkt(0)));
    }

    #[test]
    fn head_does_not_consume() {
        let mut q = BoundedFifo::new(2);
        assert!(q.push(Packet::new(1, 2, 7)));
        assert_eq!(q.head().unwrap().generated_at, 7);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedFifo::new(0);
    }

    #[test]
    fn voq_routes_by_destination() {
        let mut v = VoqSet::new(4, 2);
        assert!(v.push(pkt(1)));
        assert!(v.push(pkt(3)));
        assert!(v.has_packet_for(1));
        assert!(!v.has_packet_for(0));
        assert_eq!(v.total_len(), 2);
        assert_eq!(v.pop_for(3).unwrap().dst_idx(), 3);
        assert!(!v.has_packet_for(3));
    }

    #[test]
    fn voq_per_destination_capacity() {
        let mut v = VoqSet::new(4, 1);
        assert!(v.push(pkt(2)));
        assert!(!v.push(pkt(2)), "VOQ 2 full");
        assert!(v.push(pkt(0)), "other VOQs unaffected");
        assert!(!v.has_room_for(2));
        assert!(v.has_room_for(1));
    }

    #[test]
    fn occupancy_words_track_push_and_pop() {
        let mut v = VoqSet::new(70, 2);
        assert_eq!(v.occupancy_words(), &[0, 0]);
        assert!(v.push(pkt(3)));
        assert!(v.push(pkt(3)));
        assert!(v.push(pkt(65)));
        assert_eq!(v.occupancy_words(), &[1 << 3, 1 << 1]);
        assert_eq!(v.occupied_count(), 2);
        // Popping clears the bit only when the queue empties.
        assert!(v.pop_for(3).is_some());
        assert_eq!(v.occupancy_words(), &[1 << 3, 1 << 1], "one packet left");
        assert!(v.pop_for(3).is_some());
        assert_eq!(v.occupancy_words(), &[0, 1 << 1]);
        assert!(v.pop_for(65).is_some());
        assert_eq!(v.occupied_count(), 0);
    }

    #[test]
    fn occupancy_unchanged_by_rejected_push() {
        let mut v = VoqSet::new(4, 1);
        assert!(v.push(pkt(2)));
        assert!(!v.push(pkt(2)), "VOQ 2 full");
        assert_eq!(v.occupancy_words(), &[1 << 2]);
        // Popping a never-filled destination is a no-op on the bitmap.
        assert!(v.pop_for(0).is_none());
        assert_eq!(v.occupancy_words(), &[1 << 2]);
    }

    #[test]
    fn occupancy_matches_has_packet_for() {
        let mut v = VoqSet::new(6, 3);
        for dst in [5, 0, 5, 2] {
            assert!(v.push(pkt(dst)));
        }
        v.pop_for(2);
        for dst in 0..6 {
            assert_eq!(
                v.occupancy_words()[0] >> dst & 1 == 1,
                v.has_packet_for(dst),
                "bit {dst}"
            );
        }
    }

    #[test]
    fn voq_lengths() {
        let mut v = VoqSet::new(3, 8);
        for _ in 0..5 {
            assert!(v.push(pkt(1)));
        }
        assert_eq!(v.len_for(1), 5);
        assert_eq!(v.len_for(0), 0);
        assert_eq!(v.total_len(), 5);
    }
}
