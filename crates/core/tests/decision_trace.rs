//! The paper's worked example (Fig. 3), verified *by decision reasons*.
//!
//! The central-LCF tests elsewhere pin down who gets matched to whom; these
//! tests pin down **why** — the precedence the paper describes in Sec. 4:
//! the rotating round-robin position wins outright, otherwise the requester
//! with the fewest outstanding requests, with ties broken by the rotating
//! priority chain starting at the diagonal requester.

#![cfg(feature = "telemetry")]

use lcf_core::bitkern::Backend;
use lcf_core::lcf::RrPolicy;
use lcf_core::prelude::*;
use lcf_core::telemetry::GrantReason;

/// The 4×4 request pattern of Fig. 3 (I = 1, J = 0 after one advance).
fn figure3_requests() -> RequestMatrix {
    RequestMatrix::from_pairs(
        4,
        [
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 2),
            (1, 3),
            (2, 0),
            (2, 2),
            (2, 3),
            (3, 1),
        ],
    )
}

fn traced_figure3() -> CentralLcf {
    let mut sched = CentralLcf::with_round_robin(4);
    sched.advance_pointer(); // Fig. 3 starts from I = 1, J = 0
    sched.set_tracing(true);
    sched
}

#[test]
fn figure3_grant_reasons_follow_the_paper() {
    let mut sched = traced_figure3();
    let m = sched.schedule(&figure3_requests());
    assert_eq!(m.size(), 4);

    let d = sched.last_decisions();
    assert_eq!(d.len(), 4, "one decision per scheduled output");

    // T0 -> I1: the round-robin position [I1, T0] wins outright, even
    // though I2 also requests T0. Precedence, not counts.
    assert_eq!((d[0].resource, d[0].winner), (0, 1));
    assert_eq!(d[0].reason, GrantReason::RrPosition);
    assert_eq!(d[0].winner_nrq, 3, "the RR winner had MORE choices (3)");
    assert_eq!(d[0].losers, vec![(2, 3)]);

    // T1 -> I3: least choice first. I3's single outstanding request beats
    // I0's two.
    assert_eq!((d[1].resource, d[1].winner), (1, 3));
    assert_eq!(d[1].reason, GrantReason::MinCount);
    assert_eq!(d[1].winner_nrq, 1);
    assert_eq!(d[1].losers, vec![(0, 2)]);

    // T2 -> I0: I0 is down to one outstanding request (T1 was taken by
    // I3), beating I2's two.
    assert_eq!((d[2].resource, d[2].winner), (2, 0));
    assert_eq!(d[2].reason, GrantReason::MinCount);
    assert_eq!(d[2].winner_nrq, 1);
    assert_eq!(d[2].losers, vec![(2, 2)]);

    // T3 -> I2: the only requester left.
    assert_eq!((d[3].resource, d[3].winner), (3, 2));
    assert_eq!(d[3].reason, GrantReason::OnlyChoice);
    assert!(d[3].losers.is_empty());
}

#[test]
fn tie_is_broken_by_rotating_chain_and_reported_as_such() {
    // Pure LCF, pointer at origin: I0 and I1 both have two outstanding
    // requests and both want T0. The chain starts at the diagonal requester
    // (I0), so I0 wins — and the decision must say the win was a tie-break,
    // not a count win.
    let requests = RequestMatrix::from_pairs(4, [(0, 0), (0, 1), (1, 0), (1, 2)]);
    let mut sched = CentralLcf::pure(4);
    sched.set_tracing(true);
    let m = sched.schedule(&requests);
    assert_eq!(m.output_for(0), Some(0));
    let d = sched.last_decisions();
    assert_eq!((d[0].resource, d[0].winner), (0, 0));
    assert_eq!(d[0].reason, GrantReason::TieBreak);
    assert_eq!(d[0].losers, vec![(1, 2)]);
}

#[test]
fn priority_diagonal_pre_pass_is_reported() {
    let mut sched = CentralLcf::with_policy(4, RrPolicy::PriorityDiagonal);
    sched.set_tracing(true);
    let m = sched.schedule(&RequestMatrix::full(4));
    assert_eq!(m.size(), 4);
    let d = sched.last_decisions();
    assert!(
        d.iter().all(|d| d.reason == GrantReason::PriorityDiagonal),
        "full matrix: the whole diagonal is granted in the pre-pass"
    );
}

#[test]
fn tracing_never_changes_the_schedule() {
    // Traced scalar, untraced scalar and untraced bitset must produce the
    // same matchings on the same request stream.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x7E1E);
    let mut traced = CentralLcf::with_round_robin(16).with_backend(Backend::Bitset);
    traced.set_tracing(true);
    let mut scalar = CentralLcf::with_round_robin(16).with_backend(Backend::Scalar);
    let mut bitset = CentralLcf::with_round_robin(16).with_backend(Backend::Bitset);
    for _ in 0..200 {
        let requests = RequestMatrix::random(16, 0.3, &mut rng);
        let m = traced.schedule(&requests);
        assert_eq!(m, scalar.schedule(&requests));
        assert_eq!(m, bitset.schedule(&requests));
    }
}

#[test]
fn drained_events_match_decisions_and_clear() {
    let mut sched = traced_figure3();
    sched.schedule(&figure3_requests());
    let mut lines = Vec::new();
    sched.drain_events(&mut |e| lines.push(e.to_json()));
    assert_eq!(lines.len(), 4);
    assert_eq!(
        lines[0],
        r#"{"slot":0,"kind":"grant","output":0,"input":1,"reason":"rr_position","nrq":3,"losers":[[2,3]]}"#
    );
    // Draining empties the buffer.
    let mut again = 0;
    sched.drain_events(&mut |_| again += 1);
    assert_eq!(again, 0);
}

#[test]
fn iterative_steps_reconstruct_figure9() {
    // Fig. 9 (distributed LCF): iteration 0 matches (I0,T2), (I1,T0),
    // (I3,T1); iteration 1 matches (I2,T3). The traced step sets must tell
    // exactly that story.
    let requests = RequestMatrix::from_pairs(
        4,
        [
            (0, 2),
            (1, 0),
            (1, 2),
            (1, 3),
            (2, 1),
            (2, 2),
            (2, 3),
            (3, 1),
            (3, 3),
        ],
    );
    let mut sched = DistributedLcf::pure(4, 2);
    sched.set_tracing(true);
    let m = sched.schedule(&requests);
    assert_eq!(m.size(), 4);
    let steps = &sched.last_trace().steps;
    assert_eq!(steps.len(), 2);
    assert_eq!(steps[0].requests.len(), 9, "all nine requests go out first");
    assert_eq!(steps[0].accepts, vec![(0, 2), (1, 0), (3, 1)]);
    assert_eq!(steps[1].accepts, vec![(2, 3)]);
    // Iteration 1 only involves the leftover ports.
    assert!(steps[1].requests.iter().all(|&(i, _)| i == 2));
}

#[test]
fn untraced_schedulers_record_nothing() {
    let mut sched = CentralLcf::with_round_robin(4);
    sched.schedule(&figure3_requests());
    assert!(sched.last_decisions().is_empty());
    let mut events = 0;
    sched.drain_events(&mut |_| events += 1);
    assert_eq!(events, 0);
}
