//! Differential tests of the word-parallel matching kernels: for every
//! scheduler that has a bitset fast path, the `Backend::Bitset` and
//! `Backend::Scalar` implementations must produce *bit-identical* schedules
//! — same matchings, same pointer/RNG state evolution — on any request
//! sequence, for any port count up to the 64-bit word width.

use lcf_core::bitkern::Backend;
use lcf_core::islip::Islip;
use lcf_core::lcf::{CentralLcf, RrPolicy};
use lcf_core::pim::Pim;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_core::wavefront::Wavefront;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALL_POLICIES: [RrPolicy; 6] = [
    RrPolicy::None,
    RrPolicy::SinglePosition,
    RrPolicy::Row,
    RrPolicy::Column,
    RrPolicy::Diagonal,
    RrPolicy::PriorityDiagonal,
];

/// A sequence of request matrices drawn from a seeded RNG; the schedulers
/// are stateful (pointers, RNG streams), so equivalence must hold across
/// consecutive slots, not just on a single matrix.
fn matrix_sequence(n: usize, seed: u64, slots: usize, density: f64) -> Vec<RequestMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..slots)
        .map(|_| RequestMatrix::random(n, density, &mut rng))
        .collect()
}

/// Runs the same slot sequence through a scalar and a bitset instance of one
/// scheduler and asserts grant-for-grant identical matchings.
fn assert_equivalent(
    mut scalar: Box<dyn Scheduler + Send>,
    mut bitset: Box<dyn Scheduler + Send>,
    matrices: &[RequestMatrix],
    label: &str,
) {
    for (slot, requests) in matrices.iter().enumerate() {
        let a: Vec<_> = scalar.schedule(requests).pairs().collect();
        let b: Vec<_> = bitset.schedule(requests).pairs().collect();
        assert_eq!(a, b, "{label} diverged at slot {slot}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CentralLcf: every fairness policy, any n in the word, any density.
    #[test]
    fn central_lcf_bitset_matches_scalar(
        n in 1usize..=64,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let matrices = matrix_sequence(n, seed, 4, density);
        for policy in ALL_POLICIES {
            assert_equivalent(
                Box::new(CentralLcf::with_policy(n, policy).with_backend(Backend::Scalar)),
                Box::new(CentralLcf::with_policy(n, policy).with_backend(Backend::Bitset)),
                &matrices,
                &format!("lcf_central policy {policy:?} n={n}"),
            );
        }
    }

    /// iSLIP: pointer updates feed back into later slots, so any divergence
    /// compounds — run enough slots to expose it.
    #[test]
    fn islip_bitset_matches_scalar(
        n in 1usize..=64,
        iterations in 1usize..=4,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let matrices = matrix_sequence(n, seed, 6, density);
        assert_equivalent(
            Box::new(Islip::new(n, iterations).with_backend(Backend::Scalar)),
            Box::new(Islip::new(n, iterations).with_backend(Backend::Bitset)),
            &matrices,
            &format!("islip n={n} iters={iterations}"),
        );
    }

    /// PIM: both kernels must consume the RNG stream identically (same
    /// ascending port order, same `gen_range` bounds), so a shared seed
    /// keeps them aligned across slots.
    #[test]
    fn pim_bitset_matches_scalar(
        n in 1usize..=64,
        iterations in 1usize..=4,
        seed in any::<u64>(),
        pim_seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let matrices = matrix_sequence(n, seed, 6, density);
        assert_equivalent(
            Box::new(Pim::new(n, iterations, pim_seed).with_backend(Backend::Scalar)),
            Box::new(Pim::new(n, iterations, pim_seed).with_backend(Backend::Bitset)),
            &matrices,
            &format!("pim n={n} iters={iterations}"),
        );
    }

    /// Wavefront: the rotating starting diagonal is the only state.
    #[test]
    fn wavefront_bitset_matches_scalar(
        n in 1usize..=64,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        // More slots than ports would be ideal, but n + 2 covers a full
        // offset rotation for small n and stays cheap for n = 64.
        let matrices = matrix_sequence(n, seed, (n + 2).min(8), density);
        assert_equivalent(
            Box::new(Wavefront::new(n).with_backend(Backend::Scalar)),
            Box::new(Wavefront::new(n).with_backend(Backend::Bitset)),
            &matrices,
            &format!("wfront n={n}"),
        );
    }

    /// The registry's backend plumbing: `build_with_backend` must hand the
    /// chosen backend to every scheduler that supports one, and the two
    /// backends must agree through the trait-object interface too.
    #[test]
    fn registry_backends_agree(
        seed in any::<u64>(),
        sched_seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let n = 16;
        let matrices = matrix_sequence(n, seed, 4, density);
        for kind in [
            SchedulerKind::LcfCentral,
            SchedulerKind::LcfCentralRr,
            SchedulerKind::Pim,
            SchedulerKind::Islip,
            SchedulerKind::Wavefront,
        ] {
            assert_equivalent(
                kind.build_with_backend(n, 4, sched_seed, Backend::Scalar).0,
                kind.build_with_backend(n, 4, sched_seed, Backend::Bitset).0,
                &matrices,
                kind.name(),
            );
        }
    }
}

/// Past the word width the bitset backend must transparently fall back to
/// the scalar kernel instead of truncating rows.
#[test]
fn bitset_backend_falls_back_above_word_width() {
    let n = 80;
    assert!(!Backend::Bitset.word_parallel(n));
    let mut rng = StdRng::seed_from_u64(9);
    let requests = RequestMatrix::random(n, 0.3, &mut rng);
    let mut a = CentralLcf::pure(n).with_backend(Backend::Scalar);
    let mut b = CentralLcf::pure(n).with_backend(Backend::Bitset);
    assert_eq!(
        a.schedule(&requests).pairs().collect::<Vec<_>>(),
        b.schedule(&requests).pairs().collect::<Vec<_>>()
    );
}
