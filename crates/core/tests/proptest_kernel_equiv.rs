//! Differential tests of the word-parallel matching kernels: for every
//! scheduler that has a bitset fast path, the `Backend::Bitset` and
//! `Backend::Scalar` implementations must produce *bit-identical* schedules
//! — same matchings, same pointer/RNG state evolution — on any request
//! sequence, at any port count. Port counts within one word are covered by
//! the proptests; the multi-word path (n > 64) by the deterministic
//! `large_n_*` tests below, which sweep n ∈ {65, 128, 192, 256} across word
//! boundaries.

use lcf_core::bitkern::Backend;
use lcf_core::islip::Islip;
use lcf_core::lcf::{CentralLcf, RrPolicy};
use lcf_core::matching::Matching;
use lcf_core::pim::Pim;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_core::wavefront::Wavefront;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALL_POLICIES: [RrPolicy; 6] = [
    RrPolicy::None,
    RrPolicy::SinglePosition,
    RrPolicy::Row,
    RrPolicy::Column,
    RrPolicy::Diagonal,
    RrPolicy::PriorityDiagonal,
];

/// A sequence of request matrices drawn from a seeded RNG; the schedulers
/// are stateful (pointers, RNG streams), so equivalence must hold across
/// consecutive slots, not just on a single matrix.
fn matrix_sequence(n: usize, seed: u64, slots: usize, density: f64) -> Vec<RequestMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..slots)
        .map(|_| RequestMatrix::random(n, density, &mut rng))
        .collect()
}

/// Runs the same slot sequence through a scalar and a bitset instance of one
/// scheduler and asserts grant-for-grant identical matchings.
fn assert_equivalent(
    mut scalar: Box<dyn Scheduler + Send>,
    mut bitset: Box<dyn Scheduler + Send>,
    matrices: &[RequestMatrix],
    label: &str,
) {
    for (slot, requests) in matrices.iter().enumerate() {
        let a: Vec<_> = scalar.schedule(requests).pairs().collect();
        let b: Vec<_> = bitset.schedule(requests).pairs().collect();
        assert_eq!(a, b, "{label} diverged at slot {slot}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CentralLcf: every fairness policy, any n in the word, any density.
    #[test]
    fn central_lcf_bitset_matches_scalar(
        n in 1usize..=64,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let matrices = matrix_sequence(n, seed, 4, density);
        for policy in ALL_POLICIES {
            assert_equivalent(
                Box::new(CentralLcf::with_policy(n, policy).with_backend(Backend::Scalar)),
                Box::new(CentralLcf::with_policy(n, policy).with_backend(Backend::Bitset)),
                &matrices,
                &format!("lcf_central policy {policy:?} n={n}"),
            );
        }
    }

    /// iSLIP: pointer updates feed back into later slots, so any divergence
    /// compounds — run enough slots to expose it.
    #[test]
    fn islip_bitset_matches_scalar(
        n in 1usize..=64,
        iterations in 1usize..=4,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let matrices = matrix_sequence(n, seed, 6, density);
        assert_equivalent(
            Box::new(Islip::new(n, iterations).with_backend(Backend::Scalar)),
            Box::new(Islip::new(n, iterations).with_backend(Backend::Bitset)),
            &matrices,
            &format!("islip n={n} iters={iterations}"),
        );
    }

    /// PIM: both kernels must consume the RNG stream identically (same
    /// ascending port order, same `gen_range` bounds), so a shared seed
    /// keeps them aligned across slots.
    #[test]
    fn pim_bitset_matches_scalar(
        n in 1usize..=64,
        iterations in 1usize..=4,
        seed in any::<u64>(),
        pim_seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let matrices = matrix_sequence(n, seed, 6, density);
        assert_equivalent(
            Box::new(Pim::new(n, iterations, pim_seed).with_backend(Backend::Scalar)),
            Box::new(Pim::new(n, iterations, pim_seed).with_backend(Backend::Bitset)),
            &matrices,
            &format!("pim n={n} iters={iterations}"),
        );
    }

    /// Wavefront: the rotating starting diagonal is the only state.
    #[test]
    fn wavefront_bitset_matches_scalar(
        n in 1usize..=64,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        // More slots than ports would be ideal, but n + 2 covers a full
        // offset rotation for small n and stays cheap for n = 64.
        let matrices = matrix_sequence(n, seed, (n + 2).min(8), density);
        assert_equivalent(
            Box::new(Wavefront::new(n).with_backend(Backend::Scalar)),
            Box::new(Wavefront::new(n).with_backend(Backend::Bitset)),
            &matrices,
            &format!("wfront n={n}"),
        );
    }

    /// The registry's backend plumbing: `build_with_backend` must hand the
    /// chosen backend to every scheduler that supports one, and the two
    /// backends must agree through the trait-object interface too.
    #[test]
    fn registry_backends_agree(
        seed in any::<u64>(),
        sched_seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let n = 16;
        let matrices = matrix_sequence(n, seed, 4, density);
        for kind in [
            SchedulerKind::LcfCentral,
            SchedulerKind::LcfCentralRr,
            SchedulerKind::Pim,
            SchedulerKind::Islip,
            SchedulerKind::Wavefront,
        ] {
            assert_equivalent(
                kind.build_with_backend(n, 4, sched_seed, Backend::Scalar).0,
                kind.build_with_backend(n, 4, sched_seed, Backend::Bitset).0,
                &matrices,
                kind.name(),
            );
        }
    }
}

/// Past the word width the bitset backend stays word-parallel (no scalar
/// fallback) and still agrees with the scalar reference.
#[test]
fn bitset_backend_stays_word_parallel_above_word_width() {
    let n = 80;
    assert!(Backend::Bitset.word_parallel());
    let mut rng = StdRng::seed_from_u64(9);
    let requests = RequestMatrix::random(n, 0.3, &mut rng);
    let mut a = CentralLcf::pure(n).with_backend(Backend::Scalar);
    let mut b = CentralLcf::pure(n).with_backend(Backend::Bitset);
    assert_eq!(
        a.schedule(&requests).pairs().collect::<Vec<_>>(),
        b.schedule(&requests).pairs().collect::<Vec<_>>()
    );
}

/// Multi-word port counts for the deterministic large-n sweeps: one bit over
/// a word boundary, exactly two words, a three-word interior count, and
/// exactly four words.
const LARGE_NS: [usize; 4] = [65, 128, 192, 256];

/// Densities bracketing sparse and contended request matrices.
const LARGE_DENSITIES: [f64; 2] = [0.25, 0.75];

/// Like `assert_equivalent`, but drives the allocation-free `schedule_into`
/// entry point with output buffers that are deliberately dirty before the
/// first slot and reused (still dirty) across slots — the kernels must
/// reset them fully, not rely on zeroed state.
fn assert_equivalent_into(
    scalar: &mut dyn Scheduler,
    bitset: &mut dyn Scheduler,
    n: usize,
    matrices: &[RequestMatrix],
    label: &str,
) {
    let mut out_a = Matching::new(n);
    let mut out_b = Matching::new(n);
    for i in 0..n {
        out_a.connect(i, (i + 1) % n);
        out_b.connect(i, n - 1 - i);
    }
    for (slot, requests) in matrices.iter().enumerate() {
        scalar.schedule_into(requests, &mut out_a);
        bitset.schedule_into(requests, &mut out_b);
        let a: Vec<_> = out_a.pairs().collect();
        let b: Vec<_> = out_b.pairs().collect();
        assert_eq!(a, b, "{label} diverged at slot {slot}");
    }
}

/// CentralLcf above the word width: every fairness policy, multi-word masks.
#[test]
fn large_n_central_lcf_bitset_matches_scalar() {
    for n in LARGE_NS {
        for density in LARGE_DENSITIES {
            let matrices = matrix_sequence(n, 0xC0FFEE ^ n as u64, 3, density);
            for policy in ALL_POLICIES {
                assert_equivalent_into(
                    &mut CentralLcf::with_policy(n, policy).with_backend(Backend::Scalar),
                    &mut CentralLcf::with_policy(n, policy).with_backend(Backend::Bitset),
                    n,
                    &matrices,
                    &format!("lcf_central policy {policy:?} n={n} d={density}"),
                );
            }
        }
    }
}

/// iSLIP above the word width: pointer feedback across slots.
#[test]
fn large_n_islip_bitset_matches_scalar() {
    for n in LARGE_NS {
        for density in LARGE_DENSITIES {
            let matrices = matrix_sequence(n, 0xBEEF ^ n as u64, 4, density);
            assert_equivalent_into(
                &mut Islip::new(n, 4).with_backend(Backend::Scalar),
                &mut Islip::new(n, 4).with_backend(Backend::Bitset),
                n,
                &matrices,
                &format!("islip n={n} d={density}"),
            );
        }
    }
}

/// PIM above the word width: the RNG stream must stay aligned across the
/// multi-word popcount/k-th-bit selection.
#[test]
fn large_n_pim_bitset_matches_scalar() {
    for n in LARGE_NS {
        for density in LARGE_DENSITIES {
            let matrices = matrix_sequence(n, 0xD00D ^ n as u64, 4, density);
            assert_equivalent_into(
                &mut Pim::new(n, 4, 42).with_backend(Backend::Scalar),
                &mut Pim::new(n, 4, 42).with_backend(Backend::Bitset),
                n,
                &matrices,
                &format!("pim n={n} d={density}"),
            );
        }
    }
}

/// Wavefront above the word width: rotating offset over multi-word diagonals.
#[test]
fn large_n_wavefront_bitset_matches_scalar() {
    for n in LARGE_NS {
        for density in LARGE_DENSITIES {
            let matrices = matrix_sequence(n, 0xFACE ^ n as u64, 4, density);
            assert_equivalent_into(
                &mut Wavefront::new(n).with_backend(Backend::Scalar),
                &mut Wavefront::new(n).with_backend(Backend::Bitset),
                n,
                &matrices,
                &format!("wfront n={n} d={density}"),
            );
        }
    }
}

/// The registry surface above the word width: bitset requests must be
/// honored (`AsRequested`, never a fallback) and agree with scalar through
/// the trait-object interface.
#[test]
fn large_n_registry_backends_agree_and_report_as_requested() {
    use lcf_core::registry::BackendChoice;
    for n in LARGE_NS {
        let matrices = matrix_sequence(n, 0xABBA ^ n as u64, 3, 0.5);
        for kind in [
            SchedulerKind::LcfCentral,
            SchedulerKind::LcfCentralRr,
            SchedulerKind::Pim,
            SchedulerKind::Islip,
            SchedulerKind::Wavefront,
        ] {
            let (mut scalar, _) = kind.build_with_backend(n, 4, 7, Backend::Scalar);
            let (mut bitset, choice) = kind.build_with_backend(n, 4, 7, Backend::Bitset);
            assert_eq!(
                choice,
                BackendChoice::AsRequested(Backend::Bitset),
                "{kind} must run bit-parallel at n = {n}"
            );
            assert_equivalent_into(
                scalar.as_mut(),
                bitset.as_mut(),
                n,
                &matrices,
                &format!("{kind} n={n}"),
            );
        }
    }
}
