//! Property-based tests over all schedulers: every matching a scheduler
//! emits, on any request matrix, must satisfy the scheduler contract.

use lcf_core::maxsize::MaxSizeMatcher;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use proptest::prelude::*;

/// Strategy: an arbitrary request matrix of side `n` (bit per cell).
fn request_matrix(n: usize) -> impl Strategy<Value = RequestMatrix> {
    proptest::collection::vec(any::<bool>(), n * n)
        .prop_map(move |bits| RequestMatrix::from_fn(n, |i, j| bits[i * n + j]))
}

/// Strategy: a request matrix with at most one request per row (the FIFO
/// scheduler's precondition).
fn hol_matrix(n: usize) -> impl Strategy<Value = RequestMatrix> {
    proptest::collection::vec(proptest::option::of(0..n), n).prop_map(move |heads| {
        let pairs: Vec<(usize, usize)> = heads
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.map(|j| (i, j)))
            .collect();
        RequestMatrix::from_pairs(n, pairs)
    })
}

/// Kinds that produce maximal matchings when given `n` iterations.
const MAXIMAL_KINDS: [SchedulerKind; 9] = [
    SchedulerKind::LcfCentral,
    SchedulerKind::LcfCentralRr,
    SchedulerKind::LcfDist,
    SchedulerKind::LcfDistRr,
    SchedulerKind::Pim,
    SchedulerKind::Islip,
    SchedulerKind::Wavefront,
    SchedulerKind::MaxSize,
    SchedulerKind::MaxWeight,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Validity: only requested pairs are connected, without conflicts —
    /// for every scheduler, over multiple consecutive slots (state evolves).
    #[test]
    fn all_schedulers_emit_valid_matchings(
        matrices in proptest::collection::vec(request_matrix(9), 1..5),
        seed in any::<u64>(),
    ) {
        for kind in MAXIMAL_KINDS {
            let mut sched = kind.build(9, 4, seed);
            for requests in &matrices {
                let m = sched.schedule(requests);
                prop_assert!(m.is_valid_for(requests), "{kind} produced invalid matching");
            }
        }
    }

    /// Maximality: with an n-iteration budget, every scheduler's matching
    /// is maximal (no unmatched input still requests an unmatched output).
    #[test]
    fn maximality_with_full_iteration_budget(
        requests in request_matrix(8),
        seed in any::<u64>(),
    ) {
        for kind in MAXIMAL_KINDS {
            let mut sched = kind.build(8, 8, seed);
            let m = sched.schedule(&requests);
            prop_assert!(m.is_maximal_for(&requests), "{kind} left an augmentable pair");
        }
    }

    /// Upper bound: no scheduler ever beats the Hopcroft–Karp maximum.
    #[test]
    fn never_exceeds_maximum_matching(
        requests in request_matrix(10),
        seed in any::<u64>(),
    ) {
        let mut oracle = MaxSizeMatcher::new(10);
        let max = oracle.max_matching_size(&requests);
        for kind in MAXIMAL_KINDS {
            let mut sched = kind.build(10, 4, seed);
            prop_assert!(sched.schedule(&requests).size() <= max);
        }
    }

    /// Hopcroft–Karp really is maximum: a maximal matching is at most a
    /// factor 2 smaller, and the maximum is at least as large as any other
    /// scheduler's result.
    #[test]
    fn hopcroft_karp_dominates_and_halves(
        requests in request_matrix(10),
        seed in any::<u64>(),
    ) {
        let mut oracle = MaxSizeMatcher::new(10);
        let max = oracle.max_matching_size(&requests);
        // Maximal matching (greedy LCF) is a 2-approximation of maximum.
        let mut lcf = SchedulerKind::LcfCentral.build(10, 4, seed);
        let got = lcf.schedule(&requests).size();
        prop_assert!(2 * got >= max, "maximal matching must be >= max/2 ({got} vs {max})");
    }

    /// The FIFO scheduler handles every head-of-line pattern and matches
    /// every input whose head output is uncontended.
    #[test]
    fn fifo_scheduler_contract(requests in hol_matrix(8)) {
        let mut sched = SchedulerKind::Fifo.build(8, 1, 0);
        let m = sched.schedule(&requests);
        prop_assert!(m.is_valid_for(&requests));
        prop_assert!(m.is_maximal_for(&requests));
        // Exactly one grant per requested output.
        for j in 0..8 {
            let contenders = requests.ngt(j);
            let granted = usize::from(m.output_matched(j));
            prop_assert_eq!(granted, usize::from(contenders > 0));
        }
    }

    /// Determinism: rebuilding a scheduler with the same seed and replaying
    /// the same inputs yields identical matchings (the reproducibility
    /// contract every experiment relies on).
    #[test]
    fn schedulers_are_deterministic(
        matrices in proptest::collection::vec(request_matrix(8), 1..4),
        seed in any::<u64>(),
    ) {
        for kind in MAXIMAL_KINDS {
            let mut a = kind.build(8, 4, seed);
            let mut b = kind.build(8, 4, seed);
            for requests in &matrices {
                let ma: Vec<_> = a.schedule(requests).pairs().collect();
                let mb: Vec<_> = b.schedule(requests).pairs().collect();
                prop_assert_eq!(ma, mb, "{} diverged", kind.name());
            }
        }
    }

    /// The central LCF priority rule: on a fresh scheduler, a requester
    /// with a single choice is never displaced by a multi-choice requester
    /// unless the round-robin position interferes.
    #[test]
    fn pure_lcf_single_choice_requesters_win(
        competitors in proptest::collection::vec(0usize..6, 0..6),
    ) {
        // Requester 0 requests only target 0; requesters 1.. request target
        // 0 plus extra targets (always >= 2 requests).
        let mut pairs = vec![(0usize, 0usize)];
        for (idx, &extra) in competitors.iter().enumerate() {
            let i = idx + 1;
            pairs.push((i, 0));
            pairs.push((i, 1 + (extra % 5)));
        }
        let requests = RequestMatrix::from_pairs(7, pairs);
        let mut sched = lcf_core::lcf::CentralLcf::pure(7);
        let m = sched.schedule(&requests);
        prop_assert_eq!(m.output_for(0), Some(0), "single-choice requester lost target 0");
    }
}
