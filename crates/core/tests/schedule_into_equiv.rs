//! Equivalence of the zero-allocation primary API with the legacy shim:
//! for every registry scheduler, both kernel backends and every CentralLcf
//! fairness policy, `schedule_into` writing into a **dirty reused buffer**
//! must produce exactly the matching the allocating `schedule()` shim does,
//! slot for slot over a stateful 100-slot sequence.
//!
//! This is the contract that lets the slot loop reuse one `Matching` for the
//! whole run (the hot-path memory contract in `Scheduler::schedule_into`
//! docs): a stale previous-slot matching in the output buffer must never
//! leak into the next schedule.

use lcf_core::bitkern::Backend;
use lcf_core::lcf::{CentralLcf, RrPolicy};
use lcf_core::matching::Matching;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLOTS: usize = 100;

const ALL_POLICIES: [RrPolicy; 6] = [
    RrPolicy::None,
    RrPolicy::SinglePosition,
    RrPolicy::Row,
    RrPolicy::Column,
    RrPolicy::Diagonal,
    RrPolicy::PriorityDiagonal,
];

fn matrix_sequence(n: usize, seed: u64, slots: usize, density: f64) -> Vec<RequestMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..slots)
        .map(|_| RequestMatrix::random(n, density, &mut rng))
        .collect()
}

/// Restricts a matrix to the FIFO scheduler's precondition: at most one
/// (head-of-line) request per input — the first set bit of each row wins.
fn fifo_legal(m: &RequestMatrix) -> RequestMatrix {
    let n = m.n();
    RequestMatrix::from_fn(n, |i, j| m.get(i, j) && (0..j).all(|k| !m.get(i, k)))
}

/// Drives two identically-seeded instances of one scheduler through the same
/// slot sequence: one via the allocating `schedule()` shim, one via
/// `schedule_into` writing over a deliberately dirty, initially wrong-sized
/// buffer that is never cleared between slots.
fn assert_into_matches_legacy(
    mut legacy: Box<dyn Scheduler + Send>,
    mut into: Box<dyn Scheduler + Send>,
    matrices: &[RequestMatrix],
    label: &str,
) {
    // Wrong size (1 port) and pre-connected: `schedule_into` must reset it.
    let mut out = Matching::new(1);
    out.connect(0, 0);
    for (slot, requests) in matrices.iter().enumerate() {
        let fresh = legacy.schedule(requests);
        into.schedule_into(requests, &mut out);
        assert_eq!(
            fresh, out,
            "{label}: schedule_into diverged from schedule() at slot {slot}"
        );
        // `out` is intentionally left dirty with this slot's matching.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every registry scheduler, both backends, through the trait-object
    /// interface the simulator uses.
    #[test]
    fn registry_schedule_into_matches_schedule(
        seed in any::<u64>(),
        sched_seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let n = 16;
        let matrices = matrix_sequence(n, seed, SLOTS, density);
        for kind in SchedulerKind::ALL {
            // FIFO's precondition is one head-of-line request per input.
            let slot_matrices: Vec<RequestMatrix> = if kind == SchedulerKind::Fifo {
                matrices.iter().map(fifo_legal).collect()
            } else {
                matrices.clone()
            };
            for backend in [Backend::Scalar, Backend::Bitset] {
                assert_into_matches_legacy(
                    kind.build_with_backend(n, 4, sched_seed, backend).0,
                    kind.build_with_backend(n, 4, sched_seed, backend).0,
                    &slot_matrices,
                    &format!("{} ({backend:?})", kind.name()),
                );
            }
        }
    }

    /// CentralLcf under every fairness policy (the policies rotate pointers
    /// differently, so buffer reuse must be policy-independent).
    #[test]
    fn central_lcf_policies_schedule_into_matches_schedule(
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        let n = 16;
        let matrices = matrix_sequence(n, seed, SLOTS, density);
        for policy in ALL_POLICIES {
            for backend in [Backend::Scalar, Backend::Bitset] {
                assert_into_matches_legacy(
                    Box::new(CentralLcf::with_policy(n, policy).with_backend(backend)),
                    Box::new(CentralLcf::with_policy(n, policy).with_backend(backend)),
                    &matrices,
                    &format!("lcf_central policy {policy:?} ({backend:?})"),
                );
            }
        }
    }
}

/// The `Box<S>` blanket impl must forward `schedule_into` (not fall back to
/// the default shim) so boxed schedulers stay allocation-free too.
#[test]
fn boxed_scheduler_forwards_schedule_into() {
    let n = 8;
    let matrices = matrix_sequence(n, 7, 10, 0.5);
    let mut boxed: Box<CentralLcf> = Box::new(CentralLcf::pure(n));
    let mut plain = CentralLcf::pure(n);
    let mut out = Matching::new(1);
    for requests in &matrices {
        boxed.schedule_into(requests, &mut out);
        assert_eq!(plain.schedule(requests), out);
    }
}
