//! Deeper semantic tests for the individual schedulers — the rules that
//! distinguish the algorithms, beyond the common matching contract.

use lcf_core::islip::Islip;
use lcf_core::lcf::{CentralLcf, DistributedLcf};
use lcf_core::pim::Pim;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_core::wavefront::Wavefront;

/// iSLIP's anti-starvation rule: pointers move only on accepts that happen
/// in the *first* iteration. A match made in iteration 2 must leave the
/// pointers where they were.
#[test]
fn islip_pointers_frozen_for_later_iterations() {
    // n = 3. Inputs 0 and 1 request output 0; input 1 also requests
    // output 1. Iteration 1: outputs 0 and 1 both grant via pointer 0 ->
    // output 0 grants input 0, output 1 grants input 1; both accept.
    // Now craft a second slot where a match can only happen in iteration 2.
    let mut s = Islip::new(3, 2);
    let requests = RequestMatrix::from_pairs(3, [(0, 0), (1, 0), (1, 1)]);
    let m = s.schedule(&requests);
    assert_eq!(m.output_for(0), Some(0));
    assert_eq!(m.output_for(1), Some(1));
    // Both matches happened in iteration 1, so pointers moved:
    assert_eq!(s.grant_pointer(0), 1);
    assert_eq!(s.grant_pointer(1), 2);

    // Next: inputs 0,1 both request only output 2. Output 2's pointer is
    // at 0 -> grants input 0; input 0 accepts (iteration 1, pointer moves
    // to 1). Input 1 matches output 2? No — output 2 taken. Use a case
    // where iteration 2 produces a match: input 0 requests {2}, input 1
    // requests {2, 0}. Iter 1: output 2 grants input 0 (ptr at 1 -> first
    // requester at/after 1 is 1!). Let's just verify empirically that a
    // pure iteration-2 match leaves its pointers alone.
    let mut s = Islip::new(3, 2);
    // Slot: input 0 -> {0, 1}, input 1 -> {0}.
    // Iter 1: output 0 grants input 0 (ptr 0); output 1 grants input 0 too.
    // Input 0 accepts output 0 (accept ptr 0). Input 1 unmatched.
    // Iter 2: output 0 taken; input 1's only request gone? It requested
    // only 0 -> no match. Extend: input 1 -> {0, 1}.
    // Iter 2: output 1 re-grants among unmatched: input 1. Input 1 accepts.
    // That match is iteration 2: pointers for output 1 / input 1 must NOT
    // move.
    let requests = RequestMatrix::from_pairs(3, [(0, 0), (0, 1), (1, 0), (1, 1)]);
    let m = s.schedule(&requests);
    assert_eq!(m.output_for(0), Some(0), "iteration 1 match");
    assert_eq!(m.output_for(1), Some(1), "iteration 2 match");
    assert_eq!(s.grant_pointer(0), 1, "iteration-1 pointer slips");
    assert_eq!(s.grant_pointer(1), 0, "iteration-2 pointer frozen");
    assert_eq!(s.accept_pointer(1), 0, "iteration-2 accept pointer frozen");
}

/// PIM's grants are uniform among contenders: over many slots, three
/// equal contenders each win about a third of the time.
#[test]
fn pim_grant_distribution_is_uniform() {
    let n = 4;
    let mut pim = Pim::new(n, 1, 42);
    let requests = RequestMatrix::from_pairs(n, [(0, 0), (1, 0), (2, 0)]);
    let trials = 6_000;
    let mut wins = [0u32; 3];
    for _ in 0..trials {
        if let Some(i) = pim.schedule(&requests).input_for(0) {
            wins[i] += 1;
        }
    }
    let expected = trials as f64 / 3.0;
    for (i, &w) in wins.iter().enumerate() {
        let dev = (w as f64 - expected).abs() / expected;
        assert!(dev < 0.1, "input {i} won {w} of {trials} (dev {dev:.3})");
    }
}

/// Wavefront fairness: with persistent all-ones requests, every input is
/// matched every slot (perfect matchings), and over n cycles each (i, j)
/// diagonal leads exactly once.
#[test]
fn wavefront_leading_diagonal_rotates() {
    let n = 4;
    let mut s = Wavefront::new(n);
    let requests = RequestMatrix::full(n);
    // Slot k: leading diagonal is k mod n, so cell (0, k mod n) is matched.
    for k in 0..2 * n {
        let m = s.schedule(&requests);
        assert_eq!(m.size(), n);
        assert_eq!(
            m.output_for(0),
            Some(k % n),
            "input 0 must follow the rotating diagonal"
        );
    }
}

/// The central LCF priority recalculation: NRQ counts only *unscheduled*
/// resources. Requester A starts with 2 requests but one of its targets is
/// consumed first, so its effective priority rises to 1 and it beats a
/// static-2 competitor.
#[test]
fn central_lcf_recalculates_priorities_between_resources() {
    // Resources scheduled in order T0, T1, T2 (fresh scheduler, J = 0).
    // T0: only I2 requests it (nrq 1 after tie with nobody) -> granted.
    //     I0 also requested T0, so I0's count drops 2 -> 1.
    // T1: I0 (now 1) vs I1 (2): I0 wins despite both having started at 2.
    let requests = RequestMatrix::from_pairs(4, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0)]);
    let mut sched = CentralLcf::pure(4);
    let m = sched.schedule(&requests);
    assert_eq!(m.output_for(2), Some(0), "single-choice I2 takes T0");
    assert_eq!(m.output_for(0), Some(1), "I0's recalculated NRQ wins T1");
    assert_eq!(m.output_for(1), Some(2), "I1 falls through to T2");
}

/// Pure distributed LCF starves a middle requester *deterministically*:
/// I1 requests {T0, T1} but loses both every cycle to single-request
/// competitors (the exact failure mode the paper's round-robin stage
/// exists to fix) — and the `_rr` variant indeed fixes it.
#[test]
fn distributed_lcf_starvation_and_rescue() {
    let requests = RequestMatrix::from_pairs(3, [(0, 0), (1, 0), (1, 1), (2, 1)]);

    let mut pure = DistributedLcf::pure(3, 3);
    let mut i1_grants = 0;
    for _ in 0..27 {
        let m = pure.schedule(&requests);
        assert_eq!(m.output_for(0), Some(0), "I0 always wins T0 (nrq 1 vs 2)");
        assert_eq!(m.output_for(2), Some(1), "I2 always wins T1 (nrq 1 vs 2)");
        if m.output_for(1).is_some() {
            i1_grants += 1;
        }
    }
    assert_eq!(
        i1_grants, 0,
        "pure distributed LCF starves the 2-choice requester"
    );

    let mut rr = DistributedLcf::with_round_robin(3, 3);
    let mut i1_grants = 0;
    for _ in 0..27 {
        // 3 cycles of 9 = three full round-robin periods.
        if rr.schedule(&requests).output_for(1).is_some() {
            i1_grants += 1;
        }
    }
    assert!(
        i1_grants >= 3,
        "the RR position must serve the starved requester at least once per n^2 cycles ({i1_grants})"
    );
}

/// Iterative completion: a matching that needs a second iteration (an
/// initiator holding two grants rejects one, which re-grants next round)
/// converges, and the trace records the two productive iterations.
#[test]
fn distributed_lcf_second_iteration_completes_the_matching() {
    // I3 requests T2 and T3 and wins both grants in iteration 0 (lowest
    // counts); it accepts T3 (lower NGT), and T2 goes to I2 in iteration 1.
    let requests = RequestMatrix::from_pairs(
        4,
        [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (3, 2),
            (3, 3),
        ],
    );
    let mut sched = DistributedLcf::pure(4, 4);
    let m = sched.schedule(&requests);
    assert_eq!(m.size(), 4, "all four targets end up matched");
    let trace = sched.last_trace();
    assert!(
        trace.new_matches.len() >= 2 && trace.new_matches[1] >= 1,
        "iteration 2 must contribute: {:?}",
        trace.new_matches
    );
}

/// Head-to-head matching size on sparse asymmetric patterns: central LCF
/// must match the maximum found by Hopcroft–Karp on the paper's Fig. 3
/// pattern family (single-choice rows resolve first).
#[test]
fn lcf_matches_maximum_on_staircase_patterns() {
    use lcf_core::maxsize::MaxSizeMatcher;
    // Staircase: requester i requests outputs {0..=i} — greedy by least
    // choice resolves it perfectly in one pass.
    for n in [3usize, 5, 8, 12] {
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in 0..=i {
                pairs.push((i, j));
            }
        }
        let requests = RequestMatrix::from_pairs(n, pairs);
        let mut lcf = CentralLcf::pure(n);
        let mut oracle = MaxSizeMatcher::new(n);
        assert_eq!(
            lcf.schedule(&requests).size(),
            oracle.max_matching_size(&requests),
            "n = {n}"
        );
    }
}
