//! Oracle checks for the maximum-weight reference tier.
//!
//! The Hungarian matcher ([`MaxWeightMatcher`]) is the yardstick every other
//! scheduler is measured against, so *it* needs an independent ground truth.
//! This suite provides two: recursive permutation enumeration (`n ≤ 3`,
//! where **all** `2^(n²)` request patterns are covered under several weight
//! assignments) and an `O(n·2ⁿ)` bitmask dynamic program (`n = 4..8`,
//! randomized dense sweeps). On top of the exact oracle the suite proves the
//! ordering the registry promises: no scheduler — boolean or weighted —
//! ever beats the Hungarian weight, `GreedyWeight` stays within Avis's ½
//! bound, `NodeWeightedGreedy` satisfies the Gupta–Sanghavi–Shroff chain,
//! and `MaxSizeMatcher` cardinality equals MWM size under unit weights.
//!
//! All scratch [`Matching`] buffers are deliberately reused dirty across
//! calls, mirroring the slot loop's memory discipline.

use lcf_core::bitkern::Backend;
use lcf_core::lcf::{CentralLcf, RrPolicy};
use lcf_core::mwm::node_induced_weights;
use lcf_core::prelude::*;
use lcf_core::weighted::matching_weight;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BACKENDS: [Backend; 2] = [Backend::Scalar, Backend::Bitset];

const POLICIES: [RrPolicy; 6] = [
    RrPolicy::None,
    RrPolicy::SinglePosition,
    RrPolicy::Row,
    RrPolicy::Column,
    RrPolicy::Diagonal,
    RrPolicy::PriorityDiagonal,
];

/// Decodes matrix number `bits` (bit `i * n + j` ⇒ request `(i, j)`),
/// matching the encoding of `exhaustive_model.rs`.
fn matrix_from_bits(n: usize, bits: u32) -> RequestMatrix {
    RequestMatrix::from_fn(n, |i, j| bits >> (i * n + j) & 1 == 1)
}

/// Weight assignments layered over a request pattern. Non-requested pairs
/// always weigh zero; requested pairs get a deterministic positive weight.
fn weight_assignments(requests: &RequestMatrix) -> Vec<WeightMatrix> {
    let n = requests.n();
    let builders: [&dyn Fn(usize, usize) -> u64; 4] = [
        // Unit weights: MWM degenerates to maximum-size matching.
        &|_, _| 1,
        // Distinct small weights: breaks every tie, exposes ordering bugs.
        &|i, j| (i * n + j + 1) as u64,
        // Reverse ramp: the greedy-optimal order flips.
        &|i, j| (n * n - (i * n + j)) as u64,
        // Huge weights: exercises the i128 potentials / u128 sums.
        &|i, j| u64::MAX - (i * n + j) as u64,
    ];
    builders
        .iter()
        .map(|f| {
            let mut w = WeightMatrix::new(n);
            for i in 0..n {
                for j in 0..n {
                    if requests.get(i, j) {
                        w.set(i, j, f(i, j));
                    }
                }
            }
            w
        })
        .collect()
}

/// Ground truth #1: recursive enumeration of every input→output assignment.
/// Exponential, so only for tiny `n`. Weights are zero off the request
/// pattern, hence maximizing over full permutations equals maximizing over
/// matchings.
fn brute_force_recursive(w: &WeightMatrix, row: usize, used: &mut [bool]) -> u128 {
    let n = w.n();
    if row == n {
        return 0;
    }
    // Leaving `row` unmatched is always an option.
    let mut best = brute_force_recursive(w, row + 1, used);
    for col in 0..n {
        if !used[col] && w.get(row, col) > 0 {
            used[col] = true;
            let rest = brute_force_recursive(w, row + 1, used);
            used[col] = false;
            best = best.max(rest + u128::from(w.get(row, col)));
        }
    }
    best
}

/// Ground truth #2: `O(n·2ⁿ)` assignment DP over column bitmasks.
/// `dp[mask]` is the best weight assigning rows `0..popcount(mask)` into the
/// column set `mask`. Every row is assigned, but since off-pattern pairs
/// weigh zero and there are always `n` columns for `n` rows, a zero-weight
/// column acts as a skip — so partial matchings are covered.
fn brute_force_bitmask_dp(w: &WeightMatrix) -> u128 {
    let n = w.n();
    assert!(n <= 16, "DP oracle is exponential in n");
    let full = 1usize << n;
    let mut dp = vec![0u128; full];
    for mask in 0..full {
        let row = mask.count_ones() as usize;
        if row >= n {
            continue;
        }
        for col in 0..n {
            if mask >> col & 1 == 0 {
                let gain = u128::from(w.get(row, col));
                let next = mask | 1 << col;
                dp[next] = dp[next].max(dp[mask] + gain);
            }
        }
    }
    // Weights are non-negative, so the optimum is reached at some full
    // assignment; folding over every mask is equivalent and simpler.
    dp.into_iter().max().unwrap_or(0)
}

/// The bitmask DP must agree with the recursive oracle wherever both run —
/// otherwise the larger-`n` sweeps would test MWM against a broken ruler.
#[test]
fn oracles_agree_with_each_other() {
    for n in 1..=3usize {
        let cells = (n * n) as u32;
        for bits in 0..1u32 << cells {
            let requests = matrix_from_bits(n, bits);
            for w in weight_assignments(&requests) {
                let mut used = vec![false; n];
                let recursive = brute_force_recursive(&w, 0, &mut used);
                assert_eq!(
                    recursive,
                    brute_force_bitmask_dp(&w),
                    "oracles disagree on n={n} matrix {bits:#b}"
                );
            }
        }
    }
}

/// Tentpole acceptance: the Hungarian matcher is *exactly* optimal on every
/// request pattern at `n ≤ 3` under several weight assignments, and its
/// emitted matching achieves the optimal weight it reports.
#[test]
fn mwm_is_optimal_for_all_small_patterns() {
    for n in 1..=3usize {
        let cells = (n * n) as u32;
        let mut mwm = MaxWeightMatcher::new(n);
        let mut out = Matching::new(n); // reused dirty on purpose
        for bits in 0..1u32 << cells {
            let requests = matrix_from_bits(n, bits);
            for w in weight_assignments(&requests) {
                let mut used = vec![false; n];
                let truth = brute_force_recursive(&w, 0, &mut used);
                let reported = mwm.max_matching_weight(&w);
                assert_eq!(
                    reported, truth,
                    "n={n} matrix {bits:#b}: Hungarian reported {reported}, brute force {truth}"
                );
                mwm.schedule_weighted_into(&w, &mut out);
                assert!(out.is_conflict_free());
                assert!(out.is_valid_for(&requests), "n={n} matrix {bits:#b}");
                assert_eq!(
                    matching_weight(&w, &out),
                    truth,
                    "n={n} matrix {bits:#b}: emitted matching misses the optimum"
                );
            }
        }
    }
}

/// Randomized dense sweeps for `n = 4..8` against the bitmask DP: one
/// stateful matcher per `n`, driven through seeded weight sequences.
#[test]
fn mwm_matches_bitmask_dp_for_larger_n() {
    const ROUNDS: usize = 30;
    let mut rng = StdRng::seed_from_u64(0x0CF9_2002);
    for n in 4..=8usize {
        let mut mwm = MaxWeightMatcher::new(n);
        let mut out = Matching::new(n);
        for density in [0.35, 0.75, 1.0] {
            for round in 0..ROUNDS {
                let requests = RequestMatrix::random(n, density, &mut rng);
                let mut w = WeightMatrix::new(n);
                for i in 0..n {
                    for j in 0..n {
                        if requests.get(i, j) {
                            w.set(i, j, rng.gen_range(1..1u64 << 40));
                        }
                    }
                }
                let truth = brute_force_bitmask_dp(&w);
                assert_eq!(
                    mwm.max_matching_weight(&w),
                    truth,
                    "n={n} density={density} round={round}"
                );
                mwm.schedule_weighted_into(&w, &mut out);
                assert_eq!(
                    matching_weight(&w, &out),
                    truth,
                    "n={n} density={density} round={round}: emitted weight off"
                );
            }
        }
    }
}

/// Seeded weighted instances shared by the ordering proofs below: a request
/// pattern plus positive weights on requested pairs.
fn random_instances(n: usize, rounds: usize, seed: u64) -> Vec<(RequestMatrix, WeightMatrix)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let requests = RequestMatrix::random(n, 0.6, &mut rng);
        let mut w = WeightMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if requests.get(i, j) {
                    w.set(i, j, rng.gen_range(1..10_000u64));
                }
            }
        }
        out.push((requests, w));
    }
    out
}

/// No registry scheduler ever beats the Hungarian weight: every
/// `SchedulerKind` × both backends, stateful across a seeded sequence, with
/// the matching weighed under the same matrix the oracle solves.
#[test]
fn no_registry_scheduler_beats_mwm() {
    const ROUNDS: usize = 25;
    for n in [4usize, 8] {
        let instances = random_instances(n, ROUNDS, 0x5EED_0009 + n as u64);
        let mut mwm = MaxWeightMatcher::new(n);
        for kind in SchedulerKind::ALL {
            for backend in BACKENDS {
                let (mut sched, _) = kind.build_with_backend(n, 4, 0xBEE, backend);
                let mut out = Matching::new(n);
                for (round, (requests, w)) in instances.iter().enumerate() {
                    if kind.wants_fifo_queues() && (0..n).any(|i| requests.nrq(i) > 1) {
                        continue;
                    }
                    sched.schedule_into(requests, &mut out);
                    let achieved = matching_weight(w, &out);
                    let optimal = mwm.max_matching_weight(w);
                    assert!(
                        achieved <= optimal,
                        "{kind} {backend:?} n={n} round={round}: \
                         {achieved} beats the \"optimal\" {optimal}"
                    );
                }
            }
        }
    }
}

/// Same ordering for `CentralLcf` under every round-robin policy — pointer
/// state advances across rounds, so rotation cannot sneak past the oracle.
#[test]
fn no_lcf_policy_beats_mwm() {
    const ROUNDS: usize = 25;
    let n = 6usize;
    let instances = random_instances(n, ROUNDS, 0xC0FF_EE06);
    let mut mwm = MaxWeightMatcher::new(n);
    for policy in POLICIES {
        for backend in BACKENDS {
            let mut sched = CentralLcf::with_policy(n, policy).with_backend(backend);
            let mut out = Matching::new(n);
            for (round, (requests, w)) in instances.iter().enumerate() {
                sched.schedule_into(requests, &mut out);
                assert!(
                    matching_weight(w, &out) <= mwm.max_matching_weight(w),
                    "{policy:?} {backend:?} round={round}"
                );
            }
        }
    }
}

/// Weighted-tier ordering: every `WeightedKind` obeys its declared
/// guarantee against the Hungarian optimum, on dirty reused buffers.
///
/// * `mwm` achieves the optimum exactly;
/// * `lqf` / `ocf` (greedy by weight) stay within Avis's ½ bound;
/// * `nwgreedy` satisfies the Gupta–Sanghavi–Shroff chain: its matching
///   weighed under `ŵ = π + ρ` is at least half the `ŵ`-optimum, which in
///   turn dominates the true optimum.
#[test]
fn weighted_schedulers_obey_their_guarantees() {
    const ROUNDS: usize = 25;
    for n in [4usize, 8] {
        let instances = random_instances(n, ROUNDS, 0xA11_0CF + n as u64);
        let mut mwm = MaxWeightMatcher::new(n);
        for kind in WeightedKind::ALL {
            let mut sched = kind.build(n);
            let mut out = Matching::new(n);
            for (round, (_, w)) in instances.iter().enumerate() {
                sched.schedule_weighted_into(w, &mut out);
                let achieved = matching_weight(w, &out);
                let optimal = mwm.max_matching_weight(w);
                assert!(achieved <= optimal, "{kind} n={n} round={round}");
                match kind.guarantee() {
                    WeightGuarantee::Exact => assert_eq!(
                        achieved, optimal,
                        "{kind} n={n} round={round}: claims exactness"
                    ),
                    WeightGuarantee::HalfOfOptimal => assert!(
                        achieved * 2 >= optimal,
                        "{kind} n={n} round={round}: {achieved} < half of {optimal}"
                    ),
                    WeightGuarantee::Heuristic => {
                        let induced = node_induced_weights(w);
                        let under_induced = matching_weight(&induced, &out);
                        assert!(
                            under_induced * 2 >= mwm.max_matching_weight(&induced),
                            "{kind} n={n} round={round}: GSS ½ bound under ŵ broken"
                        );
                        assert!(
                            under_induced >= optimal,
                            "{kind} n={n} round={round}: ŵ-score below the w-optimum"
                        );
                    }
                }
            }
        }
    }
}

/// Under all-ones weights, maximum weight *is* maximum cardinality: the
/// Hopcroft–Karp `MaxSizeMatcher` and the Hungarian matcher must agree on
/// size, pattern by pattern (exhaustive at `n ≤ 3`, randomized at `n = 6`).
#[test]
fn maxsize_cardinality_equals_mwm_under_unit_weights() {
    for n in 1..=3usize {
        let cells = (n * n) as u32;
        let mut maxsize = MaxSizeMatcher::new(n);
        let mut mwm = MaxWeightMatcher::new(n);
        for bits in 0..1u32 << cells {
            let requests = matrix_from_bits(n, bits);
            let mut unit = WeightMatrix::new(n);
            for i in 0..n {
                for j in 0..n {
                    if requests.get(i, j) {
                        unit.set(i, j, 1);
                    }
                }
            }
            assert_eq!(
                maxsize.max_matching_size(&requests) as u128,
                mwm.max_matching_weight(&unit),
                "n={n} matrix {bits:#b}"
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(0xCAFE_0121);
    let n = 6;
    let mut maxsize = MaxSizeMatcher::new(n);
    let mut mwm = MaxWeightMatcher::new(n);
    for round in 0..60 {
        let requests = RequestMatrix::random(n, 0.4, &mut rng);
        let mut unit = WeightMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if requests.get(i, j) {
                    unit.set(i, j, 1);
                }
            }
        }
        assert_eq!(
            maxsize.max_matching_size(&requests) as u128,
            mwm.max_matching_weight(&unit),
            "round={round}"
        );
    }
}

/// Regression for the trait contract: `schedule_weighted_into` (reused
/// dirty buffer) and the allocating `schedule_weighted` shim agree slot by
/// slot over a 100-slot run with evolving weights. Twin instances step in
/// lockstep so stateful tie-break pointers advance identically.
#[test]
fn into_and_allocating_shim_agree_over_stateful_runs() {
    const SLOTS: usize = 100;
    let n = 8usize;
    for kind in WeightedKind::ALL {
        let mut via_into = kind.build(n);
        let mut via_shim = kind.build(n);
        let mut rng = StdRng::seed_from_u64(0xD157_0123);
        let mut w = WeightMatrix::new(n);
        let mut reused = Matching::from_pairs(n, [(0, 3), (3, 0)]); // starts dirty
        for slot in 0..SLOTS {
            // Evolve weights like a queue: random arrivals, served pairs drain.
            for i in 0..n {
                if rng.gen_bool(0.7) {
                    let j = rng.gen_range(0..n);
                    w.set(i, j, w.get(i, j) + rng.gen_range(1..100u64));
                }
            }
            via_into.schedule_weighted_into(&w, &mut reused);
            let allocated = via_shim.schedule_weighted(&w);
            assert_eq!(reused, allocated, "{kind} slot={slot}: paths diverged");
            for (i, j) in allocated.pairs() {
                w.set(i, j, w.get(i, j).saturating_sub(w.get(i, j) / 2 + 1));
            }
        }
    }
}

/// Strategy: an arbitrary weight matrix of side `n`. Zero cells are
/// non-requests; weights span enough range to break greedy tie-luck.
fn weight_matrix(n: usize) -> impl Strategy<Value = WeightMatrix> {
    proptest::collection::vec(0..10_000u64, n * n).prop_map(move |cells| {
        WeightMatrix::from_triples(
            n,
            cells
                .iter()
                .enumerate()
                .map(|(idx, &w)| (idx / n, idx % n, w)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MWM weight dominates every registry scheduler's matching weight on
    /// an arbitrary matrix, and the emitted matching realizes exactly the
    /// weight the solver reports.
    #[test]
    fn prop_mwm_dominates_every_scheduler(w in weight_matrix(7), seed in any::<u64>()) {
        let n = 7;
        let mut mwm = MaxWeightMatcher::new(n);
        let optimal = mwm.max_matching_weight(&w);
        let mut out = Matching::from_pairs(n, [(1, 1)]); // dirty
        mwm.schedule_weighted_into(&w, &mut out);
        prop_assert_eq!(matching_weight(&w, &out), optimal);
        let requests = w.to_requests();
        for kind in SchedulerKind::ALL {
            if kind.wants_fifo_queues() && (0..n).any(|i| requests.nrq(i) > 1) {
                continue;
            }
            let mut sched = kind.build(n, 4, seed);
            sched.schedule_into(&requests, &mut out);
            prop_assert!(
                matching_weight(&w, &out) <= optimal,
                "{} beat the optimum", kind
            );
        }
        for kind in WeightedKind::ALL {
            let mut sched = kind.build(n);
            sched.schedule_weighted_into(&w, &mut out);
            prop_assert!(
                matching_weight(&w, &out) <= optimal,
                "{} beat the optimum", kind
            );
        }
    }

    /// Avis's ½ bound for greedy-by-weight, on arbitrary matrices.
    #[test]
    fn prop_greedy_weight_is_half_approx(w in weight_matrix(8)) {
        let n = 8;
        let mut mwm = MaxWeightMatcher::new(n);
        let mut greedy = GreedyWeight::new(n, "lqf");
        let mut out = Matching::new(n);
        greedy.schedule_weighted_into(&w, &mut out);
        prop_assert!(matching_weight(&w, &out) * 2 >= mwm.max_matching_weight(&w));
    }

    /// Unit weights reduce MWM to maximum size, for arbitrary patterns.
    #[test]
    fn prop_unit_weight_mwm_is_maxsize(w in weight_matrix(8)) {
        let n = 8;
        let requests = w.to_requests();
        let mut unit = WeightMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if requests.get(i, j) {
                    unit.set(i, j, 1);
                }
            }
        }
        let mut maxsize = MaxSizeMatcher::new(n);
        let mut mwm = MaxWeightMatcher::new(n);
        prop_assert_eq!(
            maxsize.max_matching_size(&requests) as u128,
            mwm.max_matching_weight(&unit)
        );
    }
}
