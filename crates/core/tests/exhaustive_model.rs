//! Exhaustive small-`n` model checking of every registered scheduler.
//!
//! For `n ≤ 3` the request-matrix space is small enough (`2^(n²) ≤ 512`) to
//! enumerate *completely*: every scheduler × kernel backend is run over every
//! possible matrix and validated against the [`ScheduleChecker`] invariants
//! (permutation validity, grant ⊆ request, maximality where guaranteed).
//! [`CentralLcf`] is additionally checked from **every** round-robin pointer
//! state against the Fig. 2 precedence rules, and the paper's `b/n²`
//! bandwidth floor is verified over full rotation periods. For `n = 4..8`,
//! where enumeration is out of reach, randomized dense sweeps run the same
//! invariants over seeded matrix sequences (stateful, so pointer/RNG state
//! is exercised too).

use lcf_core::bitkern::Backend;
use lcf_core::check::{check_central_precedence, ScheduleChecker};
use lcf_core::lcf::{CentralLcf, RrPolicy};
use lcf_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BACKENDS: [Backend; 2] = [Backend::Scalar, Backend::Bitset];

const POLICIES: [RrPolicy; 6] = [
    RrPolicy::None,
    RrPolicy::SinglePosition,
    RrPolicy::Row,
    RrPolicy::Column,
    RrPolicy::Diagonal,
    RrPolicy::PriorityDiagonal,
];

/// Decodes matrix number `bits` (bit `i * n + j` ⇒ request `(i, j)`).
fn matrix_from_bits(n: usize, bits: u32) -> RequestMatrix {
    RequestMatrix::from_fn(n, |i, j| bits >> (i * n + j) & 1 == 1)
}

/// True if no input requests more than one output (the `fifo` scheduler's
/// head-of-line precondition).
fn at_most_one_per_row(m: &RequestMatrix) -> bool {
    (0..m.n()).all(|i| m.nrq(i) <= 1)
}

/// Every scheduler × backend over every request matrix for n ≤ 3, fresh
/// instance per matrix, full invariant check.
#[test]
fn exhaustive_all_schedulers_small_n() {
    for n in 1..=3usize {
        let cells = (n * n) as u32;
        for kind in SchedulerKind::ALL {
            let checker = ScheduleChecker::new().require_maximal(kind.guarantees_maximal());
            for backend in BACKENDS {
                for bits in 0..1u32 << cells {
                    let requests = matrix_from_bits(n, bits);
                    if kind.wants_fifo_queues() && !at_most_one_per_row(&requests) {
                        continue;
                    }
                    let (mut sched, _) = kind.build_with_backend(n, 4, 0xE7, backend);
                    let matching = sched.schedule(&requests);
                    if let Err(v) = checker.check(&requests, &matching) {
                        panic!("{kind} n={n} {backend:?} matrix {bits:#b}: {v}");
                    }
                }
            }
        }
    }
}

/// CentralLcf × every policy × both backends × every pointer state × every
/// matrix: the Fig. 2 round-robin precedence rules hold unconditionally.
#[test]
fn exhaustive_central_precedence_all_pointer_states() {
    let checker = ScheduleChecker::new().require_maximal(true);
    for n in 1..=3usize {
        let cells = (n * n) as u32;
        for policy in POLICIES {
            for backend in BACKENDS {
                for state in 0..n * n {
                    for bits in 0..1u32 << cells {
                        let requests = matrix_from_bits(n, bits);
                        let mut sched = CentralLcf::with_policy(n, policy).with_backend(backend);
                        for _ in 0..state {
                            sched.advance_pointer();
                        }
                        let (i_off, j_off) = sched.pointer();
                        let matching = sched.schedule(&requests);
                        if let Err(v) = checker.check(&requests, &matching) {
                            panic!(
                                "{policy:?} n={n} {backend:?} state={state} matrix {bits:#b}: {v}"
                            );
                        }
                        if let Err(v) =
                            check_central_precedence(policy, i_off, j_off, &requests, &matching)
                        {
                            panic!(
                                "{policy:?} n={n} {backend:?} state={state} matrix {bits:#b}: {v}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Scalar and bitset kernels stay bit-identical through *stateful* runs: one
/// instance each, driven through every matrix in sequence so round-robin
/// pointers and RNG streams advance together.
#[test]
fn exhaustive_twin_backend_sequences() {
    let n = 3usize;
    let cells = (n * n) as u32;
    for kind in SchedulerKind::ALL {
        if !kind.has_kernel() {
            continue;
        }
        let (mut scalar, _) = kind.build_with_backend(n, 4, 0x5EED, Backend::Scalar);
        let (mut bitset, _) = kind.build_with_backend(n, 4, 0x5EED, Backend::Bitset);
        for bits in 0..1u32 << cells {
            let requests = matrix_from_bits(n, bits);
            let a = scalar.schedule(&requests);
            let b = bitset.schedule(&requests);
            assert_eq!(a, b, "{kind} diverged on matrix {bits:#b} (n={n})");
        }
    }
}

/// The paper's bandwidth floor over one full rotation period (n² slots),
/// under the adversarial load of Sec. 4: every other input requests every
/// output, while input `i` requests only output `j`. The rotating position
/// must still serve `(i, j)`:
///
/// * `Diagonal` (the paper's `lcf_central_rr`) and `SinglePosition` — at
///   least one grant per period, the `b/n²` floor;
/// * `PriorityDiagonal` — at least `n` grants per period, the `b/n` floor.
#[test]
fn fairness_floor_over_full_rotation() {
    for n in [2usize, 3, 4] {
        let period = n * n;
        for (policy, min_grants) in [
            (RrPolicy::SinglePosition, 1usize),
            (RrPolicy::Diagonal, 1),
            (RrPolicy::PriorityDiagonal, n),
        ] {
            for backend in BACKENDS {
                for i in 0..n {
                    for j in 0..n {
                        let requests =
                            RequestMatrix::from_fn(n, |r, c| if r == i { c == j } else { true });
                        let mut sched = CentralLcf::with_policy(n, policy).with_backend(backend);
                        let mut grants = 0usize;
                        for _ in 0..period {
                            let m = sched.schedule(&requests);
                            if m.output_for(i) == Some(j) {
                                grants += 1;
                            }
                        }
                        assert!(
                            grants >= min_grants,
                            "{policy:?} n={n} {backend:?}: pair ({i}, {j}) got {grants} grants \
                             in a {period}-slot period, floor is {min_grants}"
                        );
                    }
                }
            }
        }
    }
}

/// Randomized dense sweeps for n = 4..8: the same invariants (validity,
/// maximality where guaranteed, twin-backend agreement) over seeded matrix
/// sequences against stateful scheduler instances.
#[test]
fn randomized_dense_sweeps_larger_n() {
    const ROUNDS: usize = 40;
    let mut rng = StdRng::seed_from_u64(0x10CF_2002);
    for n in 4..=8usize {
        for density in [0.5, 0.95] {
            // One shared matrix sequence per (n, density) so every scheduler
            // sees identical input.
            let matrices: Vec<RequestMatrix> = (0..ROUNDS)
                .map(|_| RequestMatrix::random(n, density, &mut rng))
                .collect();
            for kind in SchedulerKind::ALL {
                if kind.wants_fifo_queues() {
                    continue; // dense rows violate the fifo precondition
                }
                let checker = ScheduleChecker::new().require_maximal(kind.guarantees_maximal());
                let (mut scalar, _) = kind.build_with_backend(n, 4, 0xFA1, Backend::Scalar);
                let (mut bitset, _) = kind.build_with_backend(n, 4, 0xFA1, Backend::Bitset);
                for (idx, requests) in matrices.iter().enumerate() {
                    let a = scalar.schedule(requests);
                    if let Err(v) = checker.check(requests, &a) {
                        panic!("{kind} n={n} density={density} round {idx}: {v}");
                    }
                    if kind.has_kernel() {
                        let b = bitset.schedule(requests);
                        assert_eq!(
                            a, b,
                            "{kind} n={n} density={density} round {idx}: backends diverged"
                        );
                    }
                }
            }
        }
    }
}

/// The checker itself must reject a deliberately broken matching — guards
/// against the model check silently passing everything.
#[test]
fn model_check_is_not_vacuous() {
    let requests = RequestMatrix::from_pairs(3, [(0, 0), (1, 1)]);
    let empty = Matching::new(3);
    assert!(
        ScheduleChecker::new()
            .require_maximal(true)
            .check(&requests, &empty)
            .is_err(),
        "empty matching under live requests must fail maximality"
    );
    let bogus = Matching::from_pairs(3, [(2, 2)]);
    assert!(
        ScheduleChecker::new().check(&requests, &bogus).is_err(),
        "unrequested grant must fail validity"
    );
}
