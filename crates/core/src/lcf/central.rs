//! The central LCF scheduler — a faithful implementation of Fig. 2.

use crate::arbiter::DiagonalPointer;
use crate::bitkern::{self, Backend};
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;

/// How much round-robin protection the central LCF scheduler applies.
///
/// Sec. 3 of the paper describes a *fairness dial*: the guaranteed fraction
/// of a target's bandwidth per requester/resource pair "can be easily
/// changed to decrease or increase this fraction in the range 0..b/n. The
/// lower bound of this range is given by a pure LCF scheduler and the upper
/// bound is given by a scheduler that uses a diagonal of round-robin
/// positions all of which are scheduled before any other position is
/// considered. [...] Variations of the round-robin scheduler are possible
/// in that a single position, a row or column are covered every scheduling
/// cycle."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RrPolicy {
    /// No round-robin protection: pure LCF. Guarantee: 0.
    None,
    /// One rotating matrix position `[I, J]` is favored per cycle.
    /// Guarantee: `b/n³`-ish (one position in `n²`, checked at one of `n`
    /// resource steps) — the cheapest protection.
    SinglePosition,
    /// The whole row of requester `I` is favored: `I` wins the first
    /// resource it requests each cycle, before LCF runs on that resource.
    Row,
    /// The whole column of resource `J` is favored: resource `J` is granted
    /// by the rotating priority chain alone, ignoring request counts.
    Column,
    /// The Fig. 2 default: a rotating diagonal, one position per resource
    /// step, each checked just before its resource is LCF-scheduled.
    /// Guarantee: `b/n²`.
    Diagonal,
    /// The paper's upper bound: the entire diagonal is granted *before any
    /// other position is considered*. Guarantee: `b/n` per pair, at the
    /// largest throughput cost.
    PriorityDiagonal,
}

/// The central Least Choice First scheduler (paper Sec. 3, Fig. 2).
///
/// Resources (output ports) are scheduled sequentially. For each resource:
///
/// 1. *(round-robin flavor only)* If the request at the rotating diagonal
///    position is set, it is granted outright — this is what provides the
///    `b/n²` bandwidth guarantee.
/// 2. Otherwise the requester with the smallest number of outstanding
///    requests (NRQ) wins; ties are broken by a rotating priority chain
///    starting at the diagonal position.
///
/// After a grant, the winner's remaining requests are withdrawn and the NRQ
/// counts of everyone else requesting the just-scheduled resource are
/// decremented, so priorities always reflect only *unscheduled* resources.
///
/// The `I`/`J` offsets advance per Fig. 2 (`I := (I+1) mod n; if I = 0 then
/// J := (J+1) mod n`), so the scheduling order of resources and the
/// round-robin diagonal both rotate, and every matrix position is the
/// round-robin position once per `n²` cycles.
///
/// # Example — the worked 4×4 schedule of Fig. 3
///
/// ```
/// use lcf_core::prelude::*;
///
/// let requests = RequestMatrix::from_pairs(4, [
///     (0, 1), (0, 2),
///     (1, 0), (1, 2), (1, 3),
///     (2, 0), (2, 2), (2, 3),
///     (3, 1),
/// ]);
/// let mut sched = CentralLcf::with_round_robin(4);
/// sched.advance_pointer(); // Fig. 3 starts from I = 1, J = 0
/// let m = sched.schedule(&requests);
/// assert_eq!(m.output_for(1), Some(0)); // [I1, T0] — round-robin position
/// assert_eq!(m.output_for(3), Some(1)); // [I3, T1] — NRQ 1 beats NRQ 2
/// assert_eq!(m.output_for(0), Some(2)); // [I0, T2]
/// assert_eq!(m.output_for(2), Some(3)); // [I2, T3]
/// ```
#[derive(Clone, Debug)]
pub struct CentralLcf {
    n: usize,
    pointer: DiagonalPointer,
    policy: RrPolicy,
    backend: Backend,
    // Workhorse state, reused across slots to keep scheduling allocation-free.
    work: RequestMatrix,
    nrq: Vec<usize>,
    // Word-parallel scratch (bitset backend): the *original* request matrix
    // as flat `n × words_for(n)` row masks and its transpose as column
    // masks — neither is mutated during a schedule; grants are tracked in
    // the `free` (unmatched requesters) and `remaining` (unscheduled
    // resources) masks instead, with `cand` holding the per-resource
    // candidate set.
    rows: Vec<u64>,
    cols: Vec<u64>,
    free: Vec<u64>,
    remaining: Vec<u64>,
    cand: Vec<u64>,
    // Single-word fast path (n <= 64): the NRQ table as packed 16-bit
    // lanes, consumed by the word-parallel min kernel, plus the
    // construction-time rotation-position table it scans against.
    keys16: Vec<u64>,
    rot16: Vec<u64>,
    #[cfg(feature = "telemetry")]
    tracing: bool,
    #[cfg(feature = "telemetry")]
    decisions: Vec<crate::telemetry::GrantDecision>,
}

impl CentralLcf {
    /// Pure LCF without the round-robin position (`lcf_central` in Fig. 12).
    ///
    /// Maximizes throughput but provides no starvation protection: the only
    /// rotation is the tie-break priority chain, and a requester can lose
    /// the NRQ comparison forever (the paper's fairness lower bound for this
    /// variant is 0).
    pub fn pure(n: usize) -> Self {
        Self::with_policy(n, RrPolicy::None)
    }

    /// LCF with the rotating round-robin diagonal (`lcf_central_rr`), the
    /// Fig. 2 pseudocode verbatim.
    pub fn with_round_robin(n: usize) -> Self {
        Self::with_policy(n, RrPolicy::Diagonal)
    }

    /// LCF with an explicit fairness policy (the Sec. 3 variations).
    pub fn with_policy(n: usize, policy: RrPolicy) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        CentralLcf {
            n,
            pointer: DiagonalPointer::new(n),
            policy,
            backend: Backend::default(),
            work: RequestMatrix::new(n),
            nrq: vec![0; n],
            rows: Vec::with_capacity(n * bitkern::words_for(n)),
            cols: Vec::with_capacity(n * bitkern::words_for(n)),
            free: Vec::with_capacity(bitkern::words_for(n)),
            remaining: Vec::with_capacity(bitkern::words_for(n)),
            cand: Vec::with_capacity(bitkern::words_for(n)),
            keys16: Vec::with_capacity(if n <= 64 { bitkern::lane16_words(n) } else { 0 }),
            rot16: if n <= 64 {
                bitkern::lane16_rot_table(n)
            } else {
                Vec::new()
            },
            #[cfg(feature = "telemetry")]
            tracing: false,
            #[cfg(feature = "telemetry")]
            decisions: Vec::new(),
        }
    }

    /// The grant decisions of the most recent [`schedule`](Scheduler::schedule)
    /// call, in output-scheduling order. Empty unless tracing was enabled
    /// via [`Scheduler::set_tracing`].
    #[cfg(feature = "telemetry")]
    pub fn last_decisions(&self) -> &[crate::telemetry::GrantDecision] {
        &self.decisions
    }

    /// Selects the matching-kernel implementation (builder style). Both
    /// backends produce bit-identical schedules; see [`Backend`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured kernel backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured fairness policy.
    pub fn policy(&self) -> RrPolicy {
        self.policy
    }

    /// Whether any round-robin protection is enabled.
    pub fn round_robin_enabled(&self) -> bool {
        self.policy != RrPolicy::None
    }

    /// Current `(I, J)` round-robin offsets.
    pub fn pointer(&self) -> (usize, usize) {
        (self.pointer.i, self.pointer.j)
    }

    /// Manually advances the `I`/`J` offsets by one cycle, e.g. to reproduce
    /// a specific paper example. `schedule` advances them automatically.
    pub fn advance_pointer(&mut self) {
        self.pointer.advance();
    }
}

impl Scheduler for CentralLcf {
    fn name(&self) -> &'static str {
        match self.policy {
            RrPolicy::None => "lcf_central",
            RrPolicy::Diagonal => "lcf_central_rr",
            RrPolicy::SinglePosition => "lcf_central_rr1",
            RrPolicy::Row => "lcf_central_rr_row",
            RrPolicy::Column => "lcf_central_rr_col",
            RrPolicy::PriorityDiagonal => "lcf_central_rr_prio",
        }
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        // While tracing, always take the scalar reference kernel: it is
        // bit-identical to the word-parallel kernel by contract, and it is
        // where the per-grant decision recording lives.
        #[cfg(feature = "telemetry")]
        let word_parallel = !self.tracing && self.backend.word_parallel();
        #[cfg(not(feature = "telemetry"))]
        let word_parallel = self.backend.word_parallel();
        if word_parallel {
            self.schedule_bitset(requests, out)
        } else {
            self.schedule_scalar(requests, out)
        }
        // Self-check the round-robin precedence rule against the pre-advance
        // pointer in checked debug builds.
        #[cfg(all(feature = "check-invariants", debug_assertions))]
        if let Err(v) = crate::check::check_central_precedence(
            self.policy,
            self.pointer.i,
            self.pointer.j,
            requests,
            out,
        ) {
            // lint:allow(no-panic): invariant self-check aborts on a broken kernel
            panic!("{}: {v}", self.name());
        }
        self.pointer.advance();
    }

    fn reset(&mut self) {
        self.pointer = DiagonalPointer::new(self.n);
        #[cfg(feature = "telemetry")]
        self.decisions.clear();
    }

    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        if !enabled {
            self.decisions.clear();
        }
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        for decision in self.decisions.drain(..) {
            sink(decision.to_event());
        }
    }
}

impl CentralLcf {
    /// The scalar reference kernel: Fig. 2 transliterated, one index probe
    /// per matrix cell. Writes the schedule into the caller's (possibly
    /// dirty) buffer.
    fn schedule_scalar(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        let (i_off, j_off) = (self.pointer.i, self.pointer.j);

        // Fig. 2 initialization: S[req] := -1; compute NRQ.
        out.reset(n);
        self.work.copy_from(requests);
        for req in 0..n {
            self.nrq[req] = self.work.nrq(req);
        }
        #[cfg(feature = "telemetry")]
        self.decisions.clear();

        // Grant bookkeeping shared by the pre-pass and the main loop.
        let grant = |schedule: &mut Matching,
                     work: &mut RequestMatrix,
                     nrq: &mut [usize],
                     gnt: usize,
                     resource: usize| {
            schedule.connect(gnt, resource);
            // Withdraw the winner's remaining requests and recompute the
            // outstanding-request counts for this resource's requesters.
            work.clear_requester(gnt);
            nrq[gnt] = 0;
            for req in work.col_ones(resource) {
                nrq[req] -= 1;
            }
        };

        // PriorityDiagonal: the whole diagonal is scheduled before any
        // other position is considered (the paper's b/n upper bound).
        if self.policy == RrPolicy::PriorityDiagonal {
            for res in 0..n {
                let (di, dj) = self.pointer.diagonal_position(res);
                if self.work.get(di, dj) && !out.output_matched(dj) {
                    #[cfg(feature = "telemetry")]
                    if self.tracing {
                        self.record_decision(
                            dj,
                            di,
                            crate::telemetry::GrantReason::PriorityDiagonal,
                        );
                    }
                    grant(out, &mut self.work, &mut self.nrq, di, dj);
                }
            }
        }

        // Allocate resources one after the other.
        for res in 0..n {
            let resource = (res + j_off) % n;
            if out.output_matched(resource) {
                continue; // taken by the priority diagonal
            }
            let diag_req = (i_off + res) % n;

            // Round-robin fast path, per policy.
            let mut gnt: Option<usize> = match self.policy {
                RrPolicy::Diagonal if self.work.get(diag_req, resource) => Some(diag_req),
                // Only position [I, J] is protected; it is examined at the
                // step that schedules resource J (res = 0).
                RrPolicy::SinglePosition if res == 0 && self.work.get(i_off, resource) => {
                    Some(i_off)
                }
                // Requester I's whole row is protected: I wins any resource
                // it still requests, until its first grant clears the row.
                RrPolicy::Row if self.work.get(i_off, resource) => Some(i_off),
                // Resource J's whole column is protected: it is granted by
                // the rotating chain alone, ignoring request counts.
                RrPolicy::Column if res == 0 => {
                    crate::arbiter::select_rotating(n, diag_req, |req| self.work.get(req, resource))
                }
                _ => None,
            };
            #[cfg(feature = "telemetry")]
            let fast_path = gnt.is_some();

            if gnt.is_none() {
                // Find the requester with the smallest number of requests;
                // the scan starts at the diagonal requester, so ties are
                // broken by the rotating priority chain.
                let mut min = n + 1;
                for k in 0..n {
                    let req = (k + i_off + res) % n;
                    if self.work.get(req, resource) && self.nrq[req] < min {
                        gnt = Some(req);
                        min = self.nrq[req];
                    }
                }
            }

            if let Some(gnt) = gnt {
                #[cfg(feature = "telemetry")]
                if self.tracing {
                    let reason = self.classify(resource, gnt, fast_path);
                    self.record_decision(resource, gnt, reason);
                }
                grant(out, &mut self.work, &mut self.nrq, gnt, resource);
            }
        }
    }

    /// Why `winner` won `resource` — classified against the *current* work
    /// matrix and NRQ counts, i.e. before the grant is applied.
    #[cfg(feature = "telemetry")]
    fn classify(
        &self,
        resource: usize,
        winner: usize,
        fast_path: bool,
    ) -> crate::telemetry::GrantReason {
        use crate::telemetry::GrantReason;
        if fast_path {
            return if self.policy == RrPolicy::Column {
                GrantReason::ColumnChain
            } else {
                GrantReason::RrPosition
            };
        }
        let min = self.nrq[winner];
        let mut rivals = 0usize;
        let mut tied = false;
        for req in self.work.col_ones(resource) {
            if req == winner {
                continue;
            }
            rivals += 1;
            if self.nrq[req] <= min {
                tied = true;
            }
        }
        if rivals == 0 {
            GrantReason::OnlyChoice
        } else if tied {
            GrantReason::TieBreak
        } else {
            GrantReason::MinCount
        }
    }

    /// Records one grant decision with the losing requesters' counts.
    #[cfg(feature = "telemetry")]
    fn record_decision(
        &mut self,
        resource: usize,
        winner: usize,
        reason: crate::telemetry::GrantReason,
    ) {
        let losers: Vec<(usize, usize)> = self
            .work
            .col_ones(resource)
            .filter(|&req| req != winner)
            .map(|req| (req, self.nrq[req]))
            .collect();
        self.decisions.push(crate::telemetry::GrantDecision {
            resource,
            winner,
            winner_nrq: self.nrq[winner],
            reason,
            losers,
        });
    }

    /// The word-parallel kernel: the same Fig. 2 algorithm on multi-word
    /// row masks (`words_for(n)` words per requester, bit `j % 64` of word
    /// `j / 64`) plus the transposed column masks. Produces grant-for-grant
    /// identical schedules to [`CentralLcf::schedule_scalar`].
    ///
    /// Unlike the scalar reference (and the earlier bitset kernel), the
    /// row/column masks are *never mutated*: a grant only clears one bit in
    /// `free` (unmatched requesters) and one in `remaining` (unscheduled
    /// resources). The live requesters of a resource are
    /// `cols[resource] & free` — exactly the set the old per-bit row
    /// withdrawal maintained, because withdrawal removed precisely the
    /// matched requesters' bits. The NRQ key is evaluated lazily per
    /// candidate as `popcount(rows[req] & remaining)`, which equals the
    /// maintained count: NRQ decrements happened only for *granted*
    /// resources (a resource processed without a grant has no unmatched
    /// requester, so it never contributes to a later candidate's count),
    /// and `remaining` excludes exactly the granted resources. Enumeration
    /// order (rotating from the diagonal requester) and the strict-minimum
    /// tie-break are unchanged, so every grant is identical. This turns the
    /// two `O(set bits)` per-grant update loops into two `clear_bit` calls,
    /// which is what makes dense heavy-traffic matrices cheap.
    fn schedule_bitset(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        let w = bitkern::words_for(n);
        if w == 1 {
            return self.schedule_bitset_word(requests, out);
        }
        let (i_off, j_off) = (self.pointer.i, self.pointer.j);

        out.reset(n);
        bitkern::load_rows(requests.bits(), &mut self.rows);
        bitkern::col_masks(&self.rows, n, &mut self.cols);
        self.free.clear();
        self.free.resize(w, 0);
        bitkern::mask_fill(&mut self.free, n);
        self.remaining.clear();
        self.remaining.resize(w, 0);
        bitkern::mask_fill(&mut self.remaining, n);
        self.cand.clear();
        self.cand.resize(w, 0);

        if self.policy == RrPolicy::PriorityDiagonal {
            for res in 0..n {
                let (di, dj) = self.pointer.diagonal_position(res);
                if bitkern::test_bit(&self.rows[di * w..(di + 1) * w], dj)
                    && bitkern::test_bit(&self.free, di)
                    && !out.output_matched(dj)
                {
                    out.connect(di, dj);
                    bitkern::clear_bit(&mut self.free, di);
                    bitkern::clear_bit(&mut self.remaining, dj);
                }
            }
        }

        for res in 0..n {
            let resource = (res + j_off) % n;
            if out.output_matched(resource) {
                continue;
            }
            let diag_req = (i_off + res) % n;

            // Live requesters of this resource: the original column masked
            // to the still-unmatched inputs.
            for wi in 0..w {
                self.cand[wi] = self.cols[resource * w + wi] & self.free[wi];
            }

            let gnt: Option<usize> = match self.policy {
                RrPolicy::Diagonal if bitkern::test_bit(&self.cand, diag_req) => Some(diag_req),
                RrPolicy::SinglePosition if res == 0 && bitkern::test_bit(&self.cand, i_off) => {
                    Some(i_off)
                }
                RrPolicy::Row if bitkern::test_bit(&self.cand, i_off) => Some(i_off),
                RrPolicy::Column if res == 0 => bitkern::rotating_first(&self.cand, n, diag_req),
                // Smallest NRQ among the live requesters; the rotating
                // enumeration from the diagonal requester breaks ties
                // exactly like the scalar scan.
                _ => bitkern::min_overlap_rotating(
                    &self.cand,
                    n,
                    diag_req,
                    &self.rows,
                    &self.remaining,
                ),
            };

            if let Some(gnt) = gnt {
                out.connect(gnt, resource);
                bitkern::clear_bit(&mut self.free, gnt);
                bitkern::clear_bit(&mut self.remaining, resource);
            }
        }
    }

    /// Single-word specialization of [`CentralLcf::schedule_bitset`]
    /// (`n <= 64`): every mask is one `u64` and the NRQ table lives in
    /// packed 16-bit lanes, maintained by a word-parallel decrement on each
    /// grant and scanned by [`bitkern::min_lane16_rotating`] — no
    /// per-candidate loop runs anywhere in the schedule, so even a fully
    /// dense heavy-traffic matrix costs `O(n · n/4)` word operations
    /// instead of `Θ(n²/2)` per-bit probes. The maintained lane counts
    /// track the scalar algorithm exactly: a grant decrements precisely the
    /// live requesters of the granted resource (the old per-bit NRQ
    /// update), and matched requesters' stale lanes are masked out of every
    /// later scan by the `free` mask.
    fn schedule_bitset_word(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        let (i_off, j_off) = (self.pointer.i, self.pointer.j);

        out.reset(n);
        bitkern::load_rows(requests.bits(), &mut self.rows);
        bitkern::col_masks(&self.rows, n, &mut self.cols);
        bitkern::lane16_pack_popcounts(&self.rows, n, &mut self.keys16);
        let mut free: u64 = bitkern::mask_n(n);

        if self.policy == RrPolicy::PriorityDiagonal {
            for res in 0..n {
                let (di, dj) = self.pointer.diagonal_position(res);
                if self.rows[di] >> dj & 1 == 1 && free >> di & 1 == 1 && !out.output_matched(dj) {
                    let colfree = self.cols[dj] & free;
                    out.connect(di, dj);
                    free &= !(1u64 << di);
                    bitkern::lane16_decrement(&mut self.keys16, colfree);
                }
            }
        }

        for res in 0..n {
            let resource = (res + j_off) % n;
            if out.output_matched(resource) {
                continue;
            }
            let diag_req = (i_off + res) % n;
            // Live requesters of this resource: the original column masked
            // to the still-unmatched inputs.
            let cand = self.cols[resource] & free;

            let gnt: Option<usize> = match self.policy {
                RrPolicy::Diagonal if cand >> diag_req & 1 == 1 => Some(diag_req),
                RrPolicy::SinglePosition if res == 0 && cand >> i_off & 1 == 1 => Some(i_off),
                RrPolicy::Row if cand >> i_off & 1 == 1 => Some(i_off),
                RrPolicy::Column if res == 0 => bitkern::rotating_first(&[cand], n, diag_req),
                // Smallest NRQ among the live requesters, ties broken in
                // rotating order from the diagonal requester — one packed
                // lane-min instead of a per-candidate scan. A winner from
                // the scan is always granted, so the fused kernel applies
                // this resource's NRQ decrement in the same pass over the
                // lane words.
                _ => {
                    if let Some(gnt) = bitkern::min_lane16_rotating_grant(
                        cand,
                        n,
                        diag_req,
                        &mut self.keys16,
                        &self.rot16,
                    ) {
                        out.connect(gnt, resource);
                        free &= !(1u64 << gnt);
                    }
                    continue;
                }
            };

            if let Some(gnt) = gnt {
                out.connect(gnt, resource);
                free &= !(1u64 << gnt);
                bitkern::lane16_decrement(&mut self.keys16, cand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The request matrix of Fig. 3 (also used by Fig. 9 for the distributed
    /// scheduler).
    fn figure3_requests() -> RequestMatrix {
        RequestMatrix::from_pairs(
            4,
            [
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 0),
                (2, 2),
                (2, 3),
                (3, 1),
            ],
        )
    }

    #[test]
    fn paper_figure3_full_trace() {
        // Fig. 3 shows I = 1, J = 0 (diagonal [I1,T0], [I2,T1], [I3,T2], [I0,T3]).
        let mut sched = CentralLcf::with_round_robin(4);
        sched.advance_pointer();
        assert_eq!(sched.pointer(), (1, 0));
        let m = sched.schedule(&figure3_requests());
        // The grants listed in the paper's walkthrough.
        assert_eq!(
            m.output_for(1),
            Some(0),
            "T0 -> I1 via round-robin position"
        );
        assert_eq!(m.output_for(3), Some(1), "T1 -> I3 (NRQ 1 beats I0's 2)");
        assert_eq!(m.output_for(0), Some(2), "T2 -> I0 (NRQ 1 beats I2's 2)");
        assert_eq!(m.output_for(2), Some(3), "T3 -> I2 (only choice)");
        assert_eq!(m.size(), 4);
        assert!(m.is_valid_for(&figure3_requests()));
        assert!(m.is_maximal_for(&figure3_requests()));
    }

    #[test]
    fn pure_lcf_also_finds_full_matching_on_figure3() {
        let mut sched = CentralLcf::pure(4);
        sched.advance_pointer();
        let m = sched.schedule(&figure3_requests());
        assert_eq!(m.size(), 4);
        assert!(m.is_valid_for(&figure3_requests()));
    }

    #[test]
    fn empty_requests_give_empty_matching() {
        let mut sched = CentralLcf::with_round_robin(8);
        let m = sched.schedule(&RequestMatrix::new(8));
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn full_requests_give_full_matching() {
        let mut sched = CentralLcf::with_round_robin(8);
        for _ in 0..20 {
            let m = sched.schedule(&RequestMatrix::full(8));
            assert_eq!(m.size(), 8, "full request matrix must saturate");
        }
    }

    #[test]
    fn single_request_is_granted() {
        let mut sched = CentralLcf::pure(5);
        let requests = RequestMatrix::from_pairs(5, [(2, 4)]);
        let m = sched.schedule(&requests);
        assert_eq!(m.output_for(2), Some(4));
        assert_eq!(m.size(), 1);
    }

    const ALL_POLICIES: [RrPolicy; 6] = [
        RrPolicy::None,
        RrPolicy::SinglePosition,
        RrPolicy::Row,
        RrPolicy::Column,
        RrPolicy::Diagonal,
        RrPolicy::PriorityDiagonal,
    ];

    #[test]
    fn matching_is_always_valid_and_maximal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0xFACE);
        for policy in ALL_POLICIES {
            let mut sched = CentralLcf::with_policy(16, policy);
            for _ in 0..200 {
                let requests = RequestMatrix::random(16, 0.3, &mut rng);
                let m = sched.schedule(&requests);
                assert!(m.is_valid_for(&requests), "{policy:?}");
                assert!(
                    m.is_maximal_for(&requests),
                    "{policy:?}: central LCF is greedy-maximal"
                );
            }
        }
    }

    #[test]
    fn policy_names_are_distinct() {
        let mut names: Vec<&str> = ALL_POLICIES
            .iter()
            .map(|&p| CentralLcf::with_policy(4, p).name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_POLICIES.len());
    }

    #[test]
    fn priority_diagonal_grants_whole_diagonal_first() {
        // Every requester requests everything; the entire diagonal must be
        // granted as-is, giving the identity-shifted permutation.
        let mut sched = CentralLcf::with_policy(4, RrPolicy::PriorityDiagonal);
        sched.advance_pointer(); // I = 1, J = 0
        let m = sched.schedule(&RequestMatrix::full(4));
        // Diagonal positions at (I=1, J=0): (1,0), (2,1), (3,2), (0,3).
        assert_eq!(m.output_for(1), Some(0));
        assert_eq!(m.output_for(2), Some(1));
        assert_eq!(m.output_for(3), Some(2));
        assert_eq!(m.output_for(0), Some(3));
    }

    #[test]
    fn priority_diagonal_gives_b_over_n_guarantee() {
        // Pair (2, 3) competes against all-ones background: it must be
        // served at least once every n cycles... the diagonal passes
        // through (2, 3) once per n cycles of I with J aligned; over n^2
        // cycles that is n visits.
        let n = 4;
        let mut sched = CentralLcf::with_policy(n, RrPolicy::PriorityDiagonal);
        let mut requests = RequestMatrix::full(n);
        requests.clear_requester(2);
        requests.set(2, 3, true);
        let mut grants = 0;
        let cycles = n * n;
        for _ in 0..cycles {
            if sched.schedule(&requests).output_for(2) == Some(3) {
                grants += 1;
            }
        }
        assert!(
            grants >= cycles / n,
            "b/n guarantee: expected >= {} grants, got {grants}",
            cycles / n
        );
    }

    #[test]
    fn row_policy_protects_favored_requester() {
        // Requester I=1 (after one advance) has a huge NRQ but must win one
        // of its resources while its row is favored.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1), (1, 2), (2, 1)]);
        let mut sched = CentralLcf::with_policy(4, RrPolicy::Row);
        sched.advance_pointer(); // I = 1
        let m = sched.schedule(&requests);
        assert!(m.output_for(1).is_some(), "favored row must be served");
    }

    #[test]
    fn column_policy_serves_resource_by_chain_order() {
        // Resource J=0 is column-protected: the rotating chain from the
        // diagonal requester wins regardless of NRQ. With I=1, requester 1
        // (NRQ 3) beats requester 0 (NRQ 1) on resource 0.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1), (1, 2)]);
        let mut sched = CentralLcf::with_policy(4, RrPolicy::Column);
        sched.advance_pointer(); // I = 1, J = 0
        let m = sched.schedule(&requests);
        assert_eq!(
            m.output_for(1),
            Some(0),
            "chain order ignores NRQ in the column"
        );
    }

    #[test]
    fn single_position_policy_matches_distributed_rr_semantics() {
        // Only [I, J] is protected. With I=1, J=0: requester 1 wins
        // resource 0 despite NRQ; nothing else is protected.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1), (1, 2)]);
        let mut sched = CentralLcf::with_policy(4, RrPolicy::SinglePosition);
        sched.advance_pointer();
        let m = sched.schedule(&requests);
        assert_eq!(m.output_for(1), Some(0));
    }

    #[test]
    fn pointer_advances_every_cycle() {
        let mut sched = CentralLcf::with_round_robin(4);
        let empty = RequestMatrix::new(4);
        for _ in 0..4 {
            sched.schedule(&empty);
        }
        // After n cycles I wrapped and J advanced.
        assert_eq!(sched.pointer(), (0, 1));
    }

    #[test]
    fn round_robin_position_beats_lcf_priority() {
        // Requester 0 has 1 request (highest LCF priority), requester 1 has 2,
        // but [I=1, T0] is the round-robin position, so requester 1 must win T0.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1)]);
        let mut sched = CentralLcf::with_round_robin(4);
        sched.advance_pointer(); // I = 1, J = 0
        let m = sched.schedule(&requests);
        assert_eq!(
            m.output_for(1),
            Some(0),
            "RR position wins despite higher NRQ"
        );
        assert_eq!(m.output_for(0), None, "loser's only request was taken");
    }

    #[test]
    fn pure_lcf_grants_fewest_choices_first() {
        // Same pattern, no round-robin: requester 0 (NRQ 1) wins T0 and
        // requester 1 is diverted to T1 — one more connection in total.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1)]);
        let mut sched = CentralLcf::pure(4);
        sched.advance_pointer();
        let m = sched.schedule(&requests);
        assert_eq!(m.output_for(0), Some(0));
        assert_eq!(m.output_for(1), Some(1));
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn reset_restores_origin() {
        let mut sched = CentralLcf::with_round_robin(4);
        let empty = RequestMatrix::new(4);
        for _ in 0..7 {
            sched.schedule(&empty);
        }
        assert_ne!(sched.pointer(), (0, 0));
        sched.reset();
        assert_eq!(sched.pointer(), (0, 0));
    }

    #[test]
    fn every_position_is_rr_position_once_per_n_squared_cycles() {
        // Feed only request (2, 3) and count grants over n^2 cycles with an
        // adversarial competitor that always requests everything: the RR
        // diagonal must hand (2, 3) at least one slot per n^2 (paper's b/n^2
        // bound).
        let n = 4;
        let mut sched = CentralLcf::with_round_robin(n);
        let mut requests = RequestMatrix::full(n);
        requests.clear_requester(2);
        requests.set(2, 3, true);
        let mut grants_to_2_3 = 0;
        for _ in 0..n * n {
            let m = sched.schedule(&requests);
            if m.output_for(2) == Some(3) {
                grants_to_2_3 += 1;
            }
        }
        assert!(grants_to_2_3 >= 1, "b/n^2 lower bound violated");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let mut sched = CentralLcf::pure(4);
        let _ = sched.schedule(&RequestMatrix::new(5));
    }
}
