//! The Least Choice First schedulers — the paper's contribution.
//!
//! Both variants implement the same idea: requesters with *fewer* outstanding
//! requests have *fewer* choices, so they are matched first; requesters with
//! many choices can still be accommodated afterwards. This greedy order
//! empirically maximizes matching size (Sec. 3 of the paper).
//!
//! * [`CentralLcf`] — the sequential algorithm of Fig. 2, `O(n)` time with
//!   global knowledge. Intended for narrow switches.
//! * [`DistributedLcf`] — the iterative request/grant/accept algorithm of
//!   Sec. 5, `O(log² n)` expected iterations with per-port knowledge only.
//!   Intended for wide switches.
//!
//! Each comes in a *pure* flavor (maximum throughput, no starvation
//! protection) and a *round-robin* flavor (`*_rr` in the paper's plots) that
//! pre-grants one rotating matrix position per cycle, giving a hard bandwidth
//! lower bound of `b/n²` per requester/resource pair.

mod central;
mod distributed;

pub use central::{CentralLcf, RrPolicy};
pub use distributed::{DistributedLcf, IterationTrace};
