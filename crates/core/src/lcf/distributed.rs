//! The distributed LCF scheduler — the iterative algorithm of Sec. 5.

use crate::arbiter::{min_rotating, DiagonalPointer};
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;

/// Per-cycle convergence record of the last [`DistributedLcf::schedule`] call.
///
/// Used by the EXT-2 experiment (iterations needed vs `n`): the paper argues
/// the distributed scheduler converges in `O(log² n)` iterations like PIM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IterationTrace {
    /// Number of *new* matches made in each executed iteration.
    pub new_matches: Vec<usize>,
    /// The 1-based iteration after which no further matches were possible
    /// (the algorithm had converged), if it converged within the budget.
    pub converged_after: Option<usize>,
    /// The round-robin pre-grant of this cycle, if the scheduler made one
    /// (only populated while tracing).
    #[cfg(feature = "telemetry")]
    pub pre_grant: Option<(usize, usize)>,
    /// Full request/grant/accept sets per iteration (only populated while
    /// tracing — see [`Scheduler::set_tracing`]).
    #[cfg(feature = "telemetry")]
    pub steps: Vec<crate::telemetry::IterationStep>,
}

impl IterationTrace {
    /// Total matches made across all iterations (excluding a round-robin
    /// pre-grant).
    pub fn total_matches(&self) -> usize {
        self.new_matches.iter().sum()
    }

    /// Resets the trace for a new scheduling cycle.
    pub(crate) fn begin_cycle(&mut self) {
        self.new_matches.clear();
        self.converged_after = None;
        #[cfg(feature = "telemetry")]
        {
            self.pre_grant = None;
            self.steps.clear();
        }
    }

    /// Emits the trace as events (a `pre_grant` event, then one `iteration`
    /// event per recorded step), stamped with slot 0.
    #[cfg(feature = "telemetry")]
    pub(crate) fn drain_into(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        if let Some((i, j)) = self.pre_grant.take() {
            sink(
                lcf_telemetry::Event::new(0, "pre_grant")
                    .field("input", i)
                    .field("output", j),
            );
        }
        for (iter, step) in self.steps.drain(..).enumerate() {
            sink(step.to_event(iter));
        }
    }
}

/// The distributed Least Choice First scheduler (paper Sec. 5).
///
/// Like PIM, each scheduling cycle runs a fixed number of three-step
/// iterations over the *unmatched* ports only:
///
/// * **Request** — each unmatched initiator sends a request to every
///   unmatched target it has a packet for, tagged with NRQ, the number of
///   requests it is sending.
/// * **Grant** — each unmatched target receiving requests grants the one
///   with the *lowest* NRQ (fewest choices first); ties fall to a rotating
///   round-robin chain. The grant is tagged with NGT, the number of requests
///   the target received.
/// * **Accept** — each unmatched initiator receiving grants accepts the one
///   with the *lowest* NGT; ties again fall to a rotating chain.
///
/// Unlike PIM's coin flips, the count-based priorities concentrate grants on
/// the ports with the least choice, which is what lets the distributed LCF
/// scheduler out-match PIM at equal iteration budgets.
///
/// The round-robin flavor (`lcf_dist_rr`) additionally pre-grants a single
/// rotating matrix position before the iterations start, which restores a
/// hard fairness bound at a small cost in matching size.
#[derive(Clone, Debug)]
pub struct DistributedLcf {
    n: usize,
    iterations: usize,
    round_robin: bool,
    pointer: DiagonalPointer,
    /// Per-target tie-break offset over requesters. Initialized staggered
    /// (target `j` starts at requester `j`) and rotated by one every cycle —
    /// the software analogue of the hardware's rotating PRIO shift registers.
    /// The stagger keeps equal-priority targets from all granting the same
    /// requester (which would serialize the iterations on symmetric loads).
    grant_tb: Vec<usize>,
    /// Per-initiator tie-break offset over targets, same scheme.
    accept_tb: Vec<usize>,
    // Scratch buffers reused across slots.
    nrq: Vec<usize>,
    ngt: Vec<usize>,
    grant_of_target: Vec<Option<usize>>,
    trace: IterationTrace,
    #[cfg(feature = "telemetry")]
    tracing: bool,
}

impl DistributedLcf {
    /// Pure distributed LCF (`lcf_dist`), `iterations` per cycle (the paper's
    /// Fig. 12 uses 4).
    pub fn pure(n: usize, iterations: usize) -> Self {
        Self::build(n, iterations, false)
    }

    /// Distributed LCF with a single rotating round-robin position per cycle
    /// (`lcf_dist_rr`).
    pub fn with_round_robin(n: usize, iterations: usize) -> Self {
        Self::build(n, iterations, true)
    }

    fn build(n: usize, iterations: usize, round_robin: bool) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        assert!(iterations > 0, "at least one iteration required");
        DistributedLcf {
            n,
            iterations,
            round_robin,
            pointer: DiagonalPointer::new(n),
            grant_tb: (0..n).collect(),
            accept_tb: (0..n).collect(),
            nrq: vec![0; n],
            ngt: vec![0; n],
            grant_of_target: vec![None; n],
            trace: IterationTrace::default(),
            #[cfg(feature = "telemetry")]
            tracing: false,
        }
    }

    /// The configured iteration budget.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the round-robin pre-grant is enabled.
    pub fn round_robin_enabled(&self) -> bool {
        self.round_robin
    }

    /// Current `(I, J)` round-robin offsets.
    pub fn pointer(&self) -> (usize, usize) {
        (self.pointer.i, self.pointer.j)
    }

    /// Convergence record of the most recent `schedule` call.
    pub fn last_trace(&self) -> &IterationTrace {
        &self.trace
    }
}

impl Scheduler for DistributedLcf {
    fn name(&self) -> &'static str {
        if self.round_robin {
            "lcf_dist_rr"
        } else {
            "lcf_dist"
        }
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        let n = self.n;
        let (i_off, j_off) = (self.pointer.i, self.pointer.j);
        out.reset(n);
        let matching = out;
        self.trace.begin_cycle();

        // Round-robin position: one matrix element per cycle is scheduled
        // before regular LCF iterations take place (Sec. 5).
        if self.round_robin && requests.get(i_off, j_off) {
            matching.connect(i_off, j_off);
            #[cfg(feature = "telemetry")]
            if self.tracing {
                self.trace.pre_grant = Some((i_off, j_off));
            }
        }

        for iter in 0..self.iterations {
            #[cfg(feature = "telemetry")]
            let mut step = self.tracing.then(crate::telemetry::IterationStep::default);
            // --- Request step -------------------------------------------
            // NRQ counts only requests an unmatched initiator can still act
            // on, i.e. those aimed at unmatched targets (matched targets
            // ignore incoming requests, so they represent no choice).
            for i in 0..n {
                self.nrq[i] = if matching.input_matched(i) {
                    0
                } else {
                    requests
                        .row_ones(i)
                        .filter(|&j| !matching.output_matched(j))
                        .count()
                };
            }

            #[cfg(feature = "telemetry")]
            if let Some(step) = step.as_mut() {
                for i in 0..n {
                    if matching.input_matched(i) {
                        continue;
                    }
                    for j in requests.row_ones(i) {
                        if !matching.output_matched(j) {
                            step.requests.push((i, j));
                        }
                    }
                }
            }

            // --- Grant step ----------------------------------------------
            for j in 0..n {
                self.grant_of_target[j] = None;
                self.ngt[j] = 0;
                if matching.output_matched(j) {
                    continue;
                }
                self.ngt[j] = requests
                    .col_ones(j)
                    .filter(|&i| !matching.input_matched(i))
                    .count();
                if self.ngt[j] == 0 {
                    continue;
                }
                // Lowest NRQ wins; ties broken by this target's rotating
                // priority chain.
                self.grant_of_target[j] = min_rotating(n, self.grant_tb[j], |i| {
                    (!matching.input_matched(i) && requests.get(i, j)).then_some(self.nrq[i])
                });
            }

            #[cfg(feature = "telemetry")]
            if let Some(step) = step.as_mut() {
                for j in 0..n {
                    if let Some(i) = self.grant_of_target[j] {
                        step.grants.push((i, j));
                    }
                }
            }

            // --- Accept step ----------------------------------------------
            let mut new_matches = 0;
            for i in 0..n {
                if matching.input_matched(i) {
                    continue;
                }
                // Lowest NGT wins; ties broken by this initiator's rotating
                // priority chain.
                let accepted = min_rotating(n, self.accept_tb[i], |j| {
                    (self.grant_of_target[j] == Some(i)).then_some(self.ngt[j])
                });
                if let Some(j) = accepted {
                    matching.connect(i, j);
                    new_matches += 1;
                    #[cfg(feature = "telemetry")]
                    if let Some(step) = step.as_mut() {
                        step.accepts.push((i, j));
                    }
                }
            }

            #[cfg(feature = "telemetry")]
            if let Some(step) = step.take() {
                self.trace.steps.push(step);
            }
            self.trace.new_matches.push(new_matches);
            if new_matches == 0 {
                self.trace.converged_after = Some(iter + 1);
                break;
            }
        }

        self.pointer.advance();
        for tb in self.grant_tb.iter_mut().chain(self.accept_tb.iter_mut()) {
            *tb = (*tb + 1) % n;
        }
    }

    fn reset(&mut self) {
        self.pointer = DiagonalPointer::new(self.n);
        self.grant_tb = (0..self.n).collect();
        self.accept_tb = (0..self.n).collect();
        self.trace = IterationTrace::default();
    }

    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        self.trace.drain_into(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4×4 example of Fig. 9: NRQ column reads 1, 3, 3, 2 and NGT column
    /// reads 1, 2, 3, 3 for iteration 0.
    fn figure9_requests() -> RequestMatrix {
        RequestMatrix::from_pairs(
            4,
            [
                (0, 2), // I0: {T2}             NRQ 1
                (1, 0),
                (1, 2),
                (1, 3), // I1: {T0, T2, T3}     NRQ 3
                (2, 1),
                (2, 2),
                (2, 3), // I2: {T1, T2, T3}     NRQ 3
                (3, 1),
                (3, 3), // I3: {T1, T3}         NRQ 2
            ],
        )
    }

    #[test]
    fn figure9_nrq_and_ngt_columns() {
        let r = figure9_requests();
        assert_eq!(
            (0..4).map(|i| r.nrq(i)).collect::<Vec<_>>(),
            vec![1, 3, 3, 2]
        );
        assert_eq!(
            (0..4).map(|j| r.ngt(j)).collect::<Vec<_>>(),
            vec![1, 2, 3, 3]
        );
    }

    #[test]
    fn paper_figure9_trace() {
        // Two iterations suffice for the full matching, exactly as in Fig. 9:
        // iteration 0 matches (I0,T2) [T2 grants I0, its lowest-NRQ request],
        // (I1,T0), and (I3,T1) [I3 holds grants from T1 (NGT 2) and T3
        // (NGT 3) and accepts T1]; iteration 1 matches the leftover (I2,T3).
        let mut sched = DistributedLcf::pure(4, 2);
        let m = sched.schedule(&figure9_requests());
        assert_eq!(m.output_for(0), Some(2));
        assert_eq!(m.output_for(1), Some(0));
        assert_eq!(m.output_for(3), Some(1));
        assert_eq!(m.output_for(2), Some(3));
        assert_eq!(m.size(), 4);
        assert_eq!(sched.last_trace().new_matches, vec![3, 1]);
    }

    #[test]
    fn single_iteration_stops_early() {
        let mut sched = DistributedLcf::pure(4, 1);
        let m = sched.schedule(&figure9_requests());
        assert_eq!(m.size(), 3, "iteration 0 of Fig. 9 makes three matches");
        assert!(!m.output_matched(3));
    }

    #[test]
    fn converges_and_reports_it() {
        let mut sched = DistributedLcf::pure(4, 8);
        let m = sched.schedule(&figure9_requests());
        assert_eq!(m.size(), 4);
        // Iterations: 3 matches, 1 match, then a 0-match probe -> converged.
        assert_eq!(sched.last_trace().converged_after, Some(3));
        assert_eq!(sched.last_trace().total_matches(), 4);
    }

    #[test]
    fn empty_requests() {
        let mut sched = DistributedLcf::with_round_robin(6, 4);
        let m = sched.schedule(&RequestMatrix::new(6));
        assert_eq!(m.size(), 0);
        assert_eq!(sched.last_trace().converged_after, Some(1));
    }

    #[test]
    fn full_requests_saturate() {
        let mut sched = DistributedLcf::pure(8, 4);
        for _ in 0..10 {
            let m = sched.schedule(&RequestMatrix::full(8));
            assert_eq!(m.size(), 8);
        }
    }

    #[test]
    fn round_robin_position_pre_granted() {
        // Requester 1 has huge NRQ; pure LCF would give T0 to requester 0.
        // With (I,J) = (1,0) as the round-robin position, I1 must get T0.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1), (1, 2), (1, 3)]);
        let mut sched = DistributedLcf::with_round_robin(4, 4);
        // Advance pointer to (1, 0).
        sched.pointer.advance();
        let m = sched.schedule(&requests);
        assert_eq!(m.output_for(1), Some(0));
        assert_eq!(
            m.output_for(0),
            None,
            "I0's only request was pre-granted away"
        );
    }

    #[test]
    fn matchings_valid_and_maximal_with_enough_iterations() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0xD157);
        for &rr in &[false, true] {
            let mut sched = DistributedLcf::build(16, 16, rr); // n iterations => maximal
            for _ in 0..100 {
                let requests = RequestMatrix::random(16, 0.25, &mut rng);
                let m = sched.schedule(&requests);
                assert!(m.is_valid_for(&requests));
                assert!(
                    m.is_maximal_for(&requests),
                    "with an n-iteration budget the iterative matcher is maximal"
                );
            }
        }
    }

    #[test]
    fn grant_goes_to_lowest_nrq() {
        // T0 requested by I0 (NRQ 2) and I1 (NRQ 1): I1 must win the grant.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (0, 1), (1, 0)]);
        let mut sched = DistributedLcf::pure(4, 4);
        let m = sched.schedule(&requests);
        assert_eq!(m.output_for(1), Some(0));
        assert_eq!(m.output_for(0), Some(1));
    }

    #[test]
    fn accept_goes_to_lowest_ngt() {
        // I0 requests T0 and T1. T0 is also requested by I1 and I2 (NGT 3),
        // T1 only by I0 (NGT 1). All three of I0's competitors have higher
        // NRQ, so I0 receives both grants and must accept T1 (lower NGT).
        let requests = RequestMatrix::from_pairs(
            4,
            [
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 0),
                (2, 2),
                (2, 3),
            ],
        );
        let mut sched = DistributedLcf::pure(4, 1);
        let m = sched.schedule(&requests);
        assert_eq!(m.output_for(0), Some(1), "lower-NGT grant must be accepted");
    }

    #[test]
    fn reset_clears_pointer() {
        let mut sched = DistributedLcf::with_round_robin(4, 4);
        sched.schedule(&RequestMatrix::new(4));
        assert_ne!(sched.pointer(), (0, 0));
        sched.reset();
        assert_eq!(sched.pointer(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = DistributedLcf::pure(4, 0);
    }
}
