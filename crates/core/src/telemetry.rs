//! Decision-trace records emitted by the schedulers (feature `telemetry`).
//!
//! The paper's central argument is *why* each grant happens — the
//! round-robin position takes precedence, then the requester with the
//! fewest outstanding requests, then the rotating tie-break chain. This
//! module gives those reasons a concrete, testable shape:
//!
//! * [`GrantDecision`] / [`GrantReason`] — one record per output granted by
//!   the sequential central scheduler ([`CentralLcf`]), including the
//!   losing requesters and their outstanding-request counts.
//! * [`IterationStep`] — the request/grant/accept sets of one iteration of
//!   an iterative scheduler (distributed LCF, PIM, iSLIP), carried on
//!   [`IterationTrace`](crate::lcf::IterationTrace).
//!
//! Both convert to [`lcf_telemetry::Event`]s (stamped with slot 0 — the
//! simulator re-stamps events with the real slot when it drains them), so
//! the same records power the golden-trace fixtures, the Fig. 3
//! worked-example test and the `trace` CLI subcommand.
//!
//! [`CentralLcf`]: crate::lcf::CentralLcf

use lcf_telemetry::{Event, Value};

/// Why the central LCF scheduler granted an output to a requester.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantReason {
    /// The rotating round-robin position held a request: it wins outright,
    /// before any count is compared (Fig. 2 step 1; also the
    /// `SinglePosition` and `Row` policy fast paths).
    RrPosition,
    /// The position was granted in the `PriorityDiagonal` pre-pass, before
    /// any non-diagonal position was considered.
    PriorityDiagonal,
    /// A `Column`-policy grant: the rotating priority chain picked the
    /// winner, ignoring request counts.
    ColumnChain,
    /// The winner was the only requester of this output.
    OnlyChoice,
    /// The winner had strictly the fewest outstanding requests (NRQ) among
    /// the output's requesters — the least-choice-first rule proper.
    MinCount,
    /// Two or more requesters shared the minimum count; the rotating
    /// priority chain starting at the diagonal requester broke the tie.
    TieBreak,
}

impl GrantReason {
    /// The stable string used in trace events and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            GrantReason::RrPosition => "rr_position",
            GrantReason::PriorityDiagonal => "priority_diagonal",
            GrantReason::ColumnChain => "column_chain",
            GrantReason::OnlyChoice => "only_choice",
            GrantReason::MinCount => "min_count",
            GrantReason::TieBreak => "tie_break",
        }
    }
}

/// One output-port grant decision of the central LCF scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrantDecision {
    /// The output port (resource) being scheduled.
    pub resource: usize,
    /// The input port (requester) that won the grant.
    pub winner: usize,
    /// The winner's outstanding-request count at decision time.
    pub winner_nrq: usize,
    /// Why the winner won.
    pub reason: GrantReason,
    /// The requesters that lost this output, with their outstanding-request
    /// counts at decision time.
    pub losers: Vec<(usize, usize)>,
}

impl GrantDecision {
    /// The decision as a trace event (kind `grant`, slot 0 — the caller
    /// re-stamps the slot).
    pub fn to_event(&self) -> Event {
        let losers: Vec<Value> = self
            .losers
            .iter()
            .map(|&(req, nrq)| Value::Seq(vec![Value::U64(req as u64), Value::U64(nrq as u64)]))
            .collect();
        Event::new(0, "grant")
            .field("output", self.resource)
            .field("input", self.winner)
            .field("reason", self.reason.as_str())
            .field("nrq", self.winner_nrq)
            .field("losers", Value::Seq(losers))
    }
}

/// The request/grant/accept sets of one iteration of an iterative
/// scheduler (distributed LCF, PIM or iSLIP), as `(input, output)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IterationStep {
    /// Requests sent this iteration: every (unmatched input, unmatched
    /// output) pair still backed by a queued packet.
    pub requests: Vec<(usize, usize)>,
    /// Grants offered this iteration (one per granting output).
    pub grants: Vec<(usize, usize)>,
    /// Grants accepted this iteration — the new matches.
    pub accepts: Vec<(usize, usize)>,
}

impl IterationStep {
    /// The step as a trace event (kind `iteration`, slot 0 — the caller
    /// re-stamps the slot). `iter` is the 0-based iteration index.
    pub fn to_event(&self, iter: usize) -> Event {
        fn pairs(set: &[(usize, usize)]) -> Value {
            Value::Seq(
                set.iter()
                    .map(|&(i, j)| Value::Seq(vec![Value::U64(i as u64), Value::U64(j as u64)]))
                    .collect(),
            )
        }
        Event::new(0, "iteration")
            .field("iter", iter)
            .field("requests", pairs(&self.requests))
            .field("grants", pairs(&self.grants))
            .field("accepts", pairs(&self.accepts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_event_shape() {
        let d = GrantDecision {
            resource: 1,
            winner: 3,
            winner_nrq: 1,
            reason: GrantReason::MinCount,
            losers: vec![(0, 2)],
        };
        assert_eq!(
            d.to_event().to_json(),
            r#"{"slot":0,"kind":"grant","output":1,"input":3,"reason":"min_count","nrq":1,"losers":[[0,2]]}"#
        );
    }

    #[test]
    fn iteration_event_shape() {
        let s = IterationStep {
            requests: vec![(0, 2), (1, 0)],
            grants: vec![(0, 2)],
            accepts: vec![(0, 2)],
        };
        assert_eq!(
            s.to_event(0).to_json(),
            r#"{"slot":0,"kind":"iteration","iter":0,"requests":[[0,2],[1,0]],"grants":[[0,2]],"accepts":[[0,2]]}"#
        );
    }

    #[test]
    fn reason_strings_are_distinct() {
        let all = [
            GrantReason::RrPosition,
            GrantReason::PriorityDiagonal,
            GrantReason::ColumnChain,
            GrantReason::OnlyChoice,
            GrantReason::MinCount,
            GrantReason::TieBreak,
        ];
        let mut names: Vec<&str> = all.iter().map(|r| r.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
