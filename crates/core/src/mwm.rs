//! Maximum-weight matching — the reference tier above the heuristics.
//!
//! The paper positions LCF between the fast iterative heuristics (PIM,
//! iSLIP) and the "too slow for hardware" optimal matchings. This module
//! supplies that upper end of the taxonomy:
//!
//! * [`MaxWeightMatcher`] — **exact** maximum-weight matching over a
//!   [`WeightMatrix`], via the Hungarian algorithm in its shortest-
//!   augmenting-path-with-potentials form (Jonker–Volgenant style),
//!   `O(n³)`. With queue lengths as weights this is the MWM scheduler
//!   that the Tassiulas/McKeown line of work proves throughput-optimal;
//!   with all-ones weights it degenerates to maximum-*size* matching and
//!   must agree with [`MaxSizeMatcher`](crate::maxsize::MaxSizeMatcher)
//!   on cardinality (a property the oracle tests pin).
//! * [`NodeWeightedGreedy`] — the node-weighted greedy approximation of
//!   Gupta/Sanghavi/Shroff: score every edge by the sum of its endpoints'
//!   node weights `π_i + ρ_j` (each node weight the max incident edge
//!   weight) and match greedily by score. Greedy-by-score is a classic
//!   ½-approximation *for the scored graph*: the matching's score is at
//!   least half the maximum-score matching, and since
//!   `π_i + ρ_j ≥ 2·w(i,j)` on every edge the scored optimum dominates
//!   the raw-weight optimum — the chain the oracle proptests assert.
//!
//! Both types implement [`WeightedScheduler`] under the hot-path memory
//! contract: all scratch is constructor-sized and
//! [`schedule_weighted_into`](WeightedScheduler::schedule_weighted_into)
//! never allocates. [`MaxWeightMatcher`] additionally implements the
//! boolean [`Scheduler`](crate::traits::Scheduler) surface (unit weights),
//! so it slots into the registry, the simulator and the exhaustive model
//! checks exactly like the other reference matcher.

use crate::arbiter::DiagonalPointer;
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;
use crate::weighted::{WeightMatrix, WeightedScheduler};

/// "Infinite" reduced cost for the potential updates. A quarter of the
/// i128 range keeps every subtraction far from overflow even after n
/// accumulated deltas of magnitude ≤ 2⁶⁴.
const INF: i128 = i128::MAX / 4;

/// Exact maximum-weight bipartite matcher (Hungarian algorithm with
/// potentials, `O(n³)`).
///
/// The solver works on the complete bipartite graph with cost
/// `-weight(i, j)` (zero for absent requests) and finds a minimum-cost
/// perfect assignment; since all weights are non-negative, dropping the
/// zero-weight pairs from that assignment yields a maximum-weight matching
/// of the request graph. Internal arithmetic is `i128`, so the full `u64`
/// weight range is handled without overflow.
///
/// ```
/// use lcf_core::mwm::MaxWeightMatcher;
/// use lcf_core::weighted::{WeightMatrix, WeightedScheduler};
///
/// // Greedy takes (0,0,10) and strands 9+9 = 18; the exact matcher doesn't.
/// let w = WeightMatrix::from_triples(2, [(0, 0, 10), (1, 0, 9), (0, 1, 9)]);
/// let mut mwm = MaxWeightMatcher::new(2);
/// let m = mwm.schedule_weighted(&w);
/// assert_eq!(m.output_for(0), Some(1));
/// assert_eq!(m.output_for(1), Some(0));
/// assert_eq!(mwm.max_matching_weight(&w), 18);
/// ```
#[derive(Clone, Debug)]
pub struct MaxWeightMatcher {
    n: usize,
    // Hungarian scratch, constructor-sized (n + 1 entries each; index 0 is
    // the algorithm's sentinel row/column).
    u: Vec<i128>,
    v: Vec<i128>,
    // matched_row[j] = row assigned to column j (1-based; 0 = unassigned).
    matched_row: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<i128>,
    used: Vec<bool>,
}

impl MaxWeightMatcher {
    /// Creates a matcher for `n` ports. All scratch buffers are sized here,
    /// once — the scheduling methods never allocate.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        MaxWeightMatcher {
            n,
            u: vec![0; n + 1],
            v: vec![0; n + 1],
            matched_row: vec![0; n + 1],
            way: vec![0; n + 1],
            minv: vec![0; n + 1],
            used: vec![false; n + 1],
        }
    }

    /// The port count this matcher was built for.
    pub fn num_ports(&self) -> usize {
        self.n
    }

    /// The registry name (`"mwm"`). Inherent so the double
    /// `Scheduler`/`WeightedScheduler` implementation stays unambiguous at
    /// call sites.
    pub fn name(&self) -> &'static str {
        "mwm"
    }

    /// Runs the assignment solver against `weight_of`, leaving the optimal
    /// column → row assignment in `self.matched_row`. 1-based rows/columns
    /// internally; `weight_of` is 0-based.
    fn solve<F: Fn(usize, usize) -> u64>(&mut self, weight_of: &F) {
        let n = self.n;
        self.u.fill(0);
        self.v.fill(0);
        self.matched_row.fill(0);
        // Minimization over cost(i, j) = -weight(i-1, j-1): a minimum-cost
        // perfect assignment on the zero-padded complete graph is a
        // maximum-weight matching once zero-weight pairs are dropped.
        let cost = |i: usize, j: usize| -> i128 { -(weight_of(i - 1, j - 1) as i128) };
        for i in 1..=n {
            self.matched_row[0] = i;
            let mut j0 = 0usize;
            self.minv.fill(INF);
            self.used.fill(false);
            // Dijkstra-style search for the shortest augmenting path from
            // row i, over reduced costs kept non-negative by the potentials.
            loop {
                self.used[j0] = true;
                let i0 = self.matched_row[j0];
                let mut delta = INF;
                let mut j1 = 0usize;
                for j in 1..=n {
                    if self.used[j] {
                        continue;
                    }
                    let cur = cost(i0, j) - self.u[i0] - self.v[j];
                    if cur < self.minv[j] {
                        self.minv[j] = cur;
                        self.way[j] = j0;
                    }
                    if self.minv[j] < delta {
                        delta = self.minv[j];
                        j1 = j;
                    }
                }
                for j in 0..=n {
                    if self.used[j] {
                        self.u[self.matched_row[j]] += delta;
                        self.v[j] -= delta;
                    } else {
                        self.minv[j] -= delta;
                    }
                }
                j0 = j1;
                if self.matched_row[j0] == 0 {
                    break;
                }
            }
            // Unroll the augmenting path recorded in `way`.
            loop {
                let j1 = self.way[j0];
                self.matched_row[j0] = self.matched_row[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }
    }

    /// The total weight of a maximum-weight matching of `weights`, without
    /// materializing the matching. `u128` so adversarial `u64` weights
    /// cannot overflow the sum. This is the optimality oracle the checked
    /// wrapper and the proptests compare every scheduler against.
    pub fn max_matching_weight(&mut self, weights: &WeightMatrix) -> u128 {
        assert_eq!(weights.n(), self.n, "weight matrix size mismatch");
        let weight_of = |i: usize, j: usize| weights.get(i, j);
        self.solve(&weight_of);
        let mut total: u128 = 0;
        for j in 1..=self.n {
            let i = self.matched_row[j];
            if i != 0 {
                total += u128::from(weights.get(i - 1, j - 1));
            }
        }
        total
    }

    /// Writes the solved assignment into `out`, skipping zero-weight pairs.
    fn emit<F: Fn(usize, usize) -> u64>(&self, weight_of: &F, out: &mut Matching) {
        out.reset(self.n);
        for j in 1..=self.n {
            let i = self.matched_row[j];
            if i != 0 && weight_of(i - 1, j - 1) > 0 {
                out.connect(i - 1, j - 1);
            }
        }
    }
}

impl WeightedScheduler for MaxWeightMatcher {
    fn name(&self) -> &'static str {
        "mwm"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_weighted_into(&mut self, weights: &WeightMatrix, out: &mut Matching) {
        assert_eq!(weights.n(), self.n, "weight matrix size mismatch");
        let weight_of = |i: usize, j: usize| weights.get(i, j);
        self.solve(&weight_of);
        self.emit(&weight_of, out);
    }
}

impl Scheduler for MaxWeightMatcher {
    fn name(&self) -> &'static str {
        "mwm"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        // Unit weights: maximum weight degenerates to maximum size, so the
        // boolean facade is a maximum-size matcher (the oracle tests hold
        // it to Hopcroft–Karp's cardinality).
        let weight_of = |i: usize, j: usize| u64::from(requests.get(i, j));
        self.solve(&weight_of);
        self.emit(&weight_of, out);
    }
}

/// The node-induced weight matrix `ŵ(i, j) = π_i + ρ_j` over the requested
/// pairs of `w`, where `π_i = max_j w(i, j)` and `ρ_j = max_i w(i, j)`
/// (Gupta/Sanghavi/Shroff). Since `ŵ(i, j) ≥ 2·w(i, j)` on every edge, a
/// ½-approximation under `ŵ` dominates the raw-weight optimum — the bound
/// the oracle proptests assert for [`NodeWeightedGreedy`].
///
/// Allocates a fresh matrix; this is an analysis/test helper, not a
/// hot-path method. Saturating adds keep adversarial `u64` weights safe.
pub fn node_induced_weights(w: &WeightMatrix) -> WeightMatrix {
    let n = w.n();
    let mut out = WeightMatrix::new(n);
    for i in 0..n {
        let pi = (0..n).map(|j| w.get(i, j)).max().unwrap_or(0);
        for j in 0..n {
            if w.get(i, j) > 0 {
                let rho = (0..n).map(|r| w.get(r, j)).max().unwrap_or(0);
                out.set(i, j, pi.saturating_add(rho));
            }
        }
    }
    out
}

/// Node-weighted greedy matching (Gupta/Sanghavi/Shroff).
///
/// Each input carries `π_i = max_j w(i, j)` and each output
/// `ρ_j = max_i w(i, j)`; requested edges are matched greedily by the
/// score `π_i + ρ_j`, heaviest first, ties broken by the same rotating
/// diagonal offset the other greedy schedulers use. The point of the
/// construction: node weights are *local* (an input only needs its own
/// queue state, an output only its column), so the scheduler is
/// distributable, yet its matching provably achieves at least half of the
/// maximum node-induced score and therefore at least the raw-weight
/// optimum's value under `ŵ` — see [`node_induced_weights`].
///
/// ```
/// use lcf_core::mwm::NodeWeightedGreedy;
/// use lcf_core::weighted::{WeightMatrix, WeightedScheduler};
///
/// let w = WeightMatrix::from_triples(4, [(0, 0, 2), (1, 0, 9), (0, 1, 1)]);
/// let mut nwg = NodeWeightedGreedy::new(4);
/// let m = nwg.schedule_weighted(&w);
/// assert_eq!(m.input_for(0), Some(1), "the 9-weight edge dominates both its nodes");
/// ```
#[derive(Clone, Debug)]
pub struct NodeWeightedGreedy {
    n: usize,
    pointer: DiagonalPointer,
    // Scratch, reused across slots.
    pi: Vec<u64>,
    rho: Vec<u64>,
    order: Vec<(usize, usize)>,
}

impl NodeWeightedGreedy {
    /// Creates a node-weighted greedy matcher for `n` ports.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        NodeWeightedGreedy {
            n,
            pointer: DiagonalPointer::new(n),
            pi: vec![0; n],
            rho: vec![0; n],
            order: Vec::with_capacity(n * n),
        }
    }
}

impl WeightedScheduler for NodeWeightedGreedy {
    fn name(&self) -> &'static str {
        "nwgreedy"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_weighted_into(&mut self, weights: &WeightMatrix, out: &mut Matching) {
        assert_eq!(weights.n(), self.n, "weight matrix size mismatch");
        let n = self.n;
        // Node weights: row and column maxima.
        self.pi.fill(0);
        self.rho.fill(0);
        self.order.clear();
        for i in 0..n {
            for j in 0..n {
                let w = weights.get(i, j);
                if w > 0 {
                    self.pi[i] = self.pi[i].max(w);
                    self.rho[j] = self.rho[j].max(w);
                    self.order.push((i, j));
                }
            }
        }
        // Heaviest score π_i + ρ_j first; ties by rotating rank (stable
        // and fair). Saturating adds keep adversarial u64 weights safe.
        let (pi_off, pj_off) = (self.pointer.i, self.pointer.j);
        let tie_rank = |i: usize, j: usize| ((i + n - pi_off) % n) * n + ((j + n - pj_off) % n);
        let (pi, rho) = (&self.pi, &self.rho);
        self.order.sort_by(|&(ai, aj), &(bi, bj)| {
            let sa = pi[ai].saturating_add(rho[aj]);
            let sb = pi[bi].saturating_add(rho[bj]);
            sb.cmp(&sa)
                .then_with(|| tie_rank(ai, aj).cmp(&tie_rank(bi, bj)))
        });

        out.reset(n);
        for &(i, j) in &self.order {
            if !out.input_matched(i) && !out.output_matched(j) {
                out.connect(i, j);
            }
        }
        self.pointer.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxsize::MaxSizeMatcher;
    use crate::weighted::GreedyWeight;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(rng: &mut StdRng, n: usize, density: f64, max_w: u64) -> WeightMatrix {
        let mut w = WeightMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if rng.gen_bool(density) {
                    w.set(i, j, rng.gen_range(1..=max_w));
                }
            }
        }
        w
    }

    fn matching_weight(w: &WeightMatrix, m: &Matching) -> u128 {
        m.pairs().map(|(i, j)| u128::from(w.get(i, j))).sum()
    }

    #[test]
    fn exact_on_the_greedy_trap() {
        // Greedy locks onto the single heaviest edge and loses 18 vs 10.
        let w = WeightMatrix::from_triples(2, [(0, 0, 10), (1, 0, 9), (0, 1, 9)]);
        let mut mwm = MaxWeightMatcher::new(2);
        let m = mwm.schedule_weighted(&w);
        assert_eq!(matching_weight(&w, &m), 18);
        assert_eq!(mwm.max_matching_weight(&w), 18);
        let mut greedy = GreedyWeight::new(2, "lqf");
        let g = greedy.schedule_weighted(&w);
        assert_eq!(matching_weight(&w, &g), 10, "greedy takes the trap");
    }

    #[test]
    fn beats_or_ties_greedy_everywhere() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mwm = MaxWeightMatcher::new(6);
        let mut greedy = GreedyWeight::new(6, "lqf");
        for _ in 0..200 {
            let w = random_weights(&mut rng, 6, 0.4, 50);
            let opt = mwm.max_matching_weight(&w);
            let g = greedy.schedule_weighted(&w);
            assert!(matching_weight(&w, &g) <= opt);
            // And the classic greedy ½ bound holds.
            assert!(2 * matching_weight(&w, &g) >= opt);
        }
    }

    #[test]
    fn matching_is_valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut mwm = MaxWeightMatcher::new(8);
        let mut out = Matching::new(8);
        for _ in 0..100 {
            let w = random_weights(&mut rng, 8, 0.3, 100);
            // Dirty-buffer contract: `out` carries the previous matching in.
            mwm.schedule_weighted_into(&w, &mut out);
            let reqs = w.to_requests();
            assert!(out.is_valid_for(&reqs));
            // Positive weights make any non-maximal matching improvable, so
            // the optimum is maximal.
            assert!(out.is_maximal_for(&reqs));
            assert_eq!(matching_weight(&w, &out), mwm.max_matching_weight(&w));
        }
    }

    #[test]
    fn unit_weights_agree_with_hopcroft_karp() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut mwm = MaxWeightMatcher::new(7);
        let mut hk = MaxSizeMatcher::new(7);
        for _ in 0..100 {
            let reqs = crate::request::RequestMatrix::from_fn(7, |_, _| rng.gen_bool(0.35));
            let m = Scheduler::schedule(&mut mwm, &reqs);
            assert!(m.is_valid_for(&reqs));
            assert_eq!(m.size(), hk.max_matching_size(&reqs), "cardinality");
        }
    }

    #[test]
    fn huge_weights_do_not_overflow() {
        let w = WeightMatrix::from_triples(
            3,
            [
                (0, 0, u64::MAX),
                (1, 1, u64::MAX),
                (2, 2, u64::MAX),
                (0, 1, u64::MAX - 1),
            ],
        );
        let mut mwm = MaxWeightMatcher::new(3);
        assert_eq!(mwm.max_matching_weight(&w), 3 * u128::from(u64::MAX));
    }

    #[test]
    fn empty_weights_empty_matching() {
        let mut mwm = MaxWeightMatcher::new(4);
        assert_eq!(mwm.schedule_weighted(&WeightMatrix::new(4)).size(), 0);
        let mut nwg = NodeWeightedGreedy::new(4);
        assert_eq!(nwg.schedule_weighted(&WeightMatrix::new(4)).size(), 0);
    }

    #[test]
    fn node_weighted_greedy_is_valid_maximal_and_bounded() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut nwg = NodeWeightedGreedy::new(8);
        let mut induced_mwm = MaxWeightMatcher::new(8);
        let mut out = Matching::new(8);
        for _ in 0..100 {
            let w = random_weights(&mut rng, 8, 0.3, 100);
            nwg.schedule_weighted_into(&w, &mut out);
            let reqs = w.to_requests();
            assert!(out.is_valid_for(&reqs));
            assert!(out.is_maximal_for(&reqs));
            // The GSS chain: score(M) ≥ ½·opt(ŵ) ≥ opt(w).
            let induced = node_induced_weights(&w);
            let score = matching_weight(&induced, &out);
            let induced_opt = induced_mwm.max_matching_weight(&induced);
            assert!(2 * score >= induced_opt, "½ bound under ŵ");
            let mut raw_mwm = MaxWeightMatcher::new(8);
            assert!(score >= raw_mwm.max_matching_weight(&w), "ŵ dominates w");
        }
    }

    #[test]
    fn node_induced_weights_double_every_edge() {
        let mut rng = StdRng::seed_from_u64(15);
        let w = random_weights(&mut rng, 6, 0.5, 40);
        let induced = node_induced_weights(&w);
        for i in 0..6 {
            for j in 0..6 {
                if w.get(i, j) > 0 {
                    assert!(induced.get(i, j) >= 2 * w.get(i, j), "ŵ ≥ 2w at ({i},{j})");
                } else {
                    assert_eq!(induced.get(i, j), 0, "no request, no score");
                }
            }
        }
    }

    #[test]
    fn nwgreedy_ties_rotate() {
        let w = WeightMatrix::from_triples(4, [(0, 0, 3), (1, 0, 3)]);
        let mut nwg = NodeWeightedGreedy::new(4);
        let mut wins = [0usize; 2];
        for _ in 0..16 {
            let m = nwg.schedule_weighted(&w);
            wins[m.input_for(0).unwrap()] += 1;
        }
        assert!(
            wins[0] > 0 && wins[1] > 0,
            "tie-break must rotate: {wins:?}"
        );
    }

    #[test]
    fn names_and_ports() {
        let mwm = MaxWeightMatcher::new(5);
        assert_eq!(mwm.name(), "mwm");
        assert_eq!(mwm.num_ports(), 5);
        let nwg = NodeWeightedGreedy::new(5);
        assert_eq!(WeightedScheduler::name(&nwg), "nwgreedy");
        assert_eq!(WeightedScheduler::num_ports(&nwg), 5);
    }
}
