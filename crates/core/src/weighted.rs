//! Weighted schedulers: longest-queue-first and oldest-cell-first.
//!
//! The LCF rule uses only the *pattern* of requests (one bit per VOQ). The
//! classic alternatives from the literature the paper cites (\[5\], \[9\]) use
//! *weights*: iLQF grants the longest VOQ, iOCF the oldest head-of-line
//! cell. They optimize stability/age rather than instantaneous matching
//! size, which makes them the natural contrast class for the LCF claim —
//! the EXT-14 experiment runs them head-to-head.

use crate::arbiter::DiagonalPointer;
use crate::matching::Matching;

/// An `n × n` weight matrix: `get(i, j) > 0` means input `i` requests
/// output `j` with the given weight (queue length, cell age, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightMatrix {
    n: usize,
    w: Vec<u64>,
}

impl WeightMatrix {
    /// Creates an all-zero (no requests) matrix.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "WeightMatrix requires n > 0");
        WeightMatrix {
            n,
            w: vec![0; n * n],
        }
    }

    /// Builds from `(input, output, weight)` triples.
    pub fn from_triples(n: usize, triples: impl IntoIterator<Item = (usize, usize, u64)>) -> Self {
        let mut m = WeightMatrix::new(n);
        for (i, j, w) in triples {
            m.set(i, j, w);
        }
        m
    }

    /// Number of ports.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight of request `(i, j)`; 0 means no request.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.w[i * self.n + j]
    }

    /// Sets the weight of request `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, weight: u64) {
        assert!(i < self.n && j < self.n, "index out of range");
        self.w[i * self.n + j] = weight;
    }

    /// Clears all weights.
    pub fn clear(&mut self) {
        self.w.fill(0);
    }

    /// The boolean request pattern underlying the weights.
    pub fn to_requests(&self) -> crate::request::RequestMatrix {
        crate::request::RequestMatrix::from_fn(self.n, |i, j| self.get(i, j) > 0)
    }
}

/// A scheduler consuming weighted requests.
///
/// Mirrors the [`Scheduler`](crate::traits::Scheduler) hot-path memory
/// contract: [`schedule_weighted_into`](WeightedScheduler::schedule_weighted_into)
/// is the allocation-free primary method writing into a caller-owned,
/// possibly dirty buffer; [`schedule_weighted`](WeightedScheduler::schedule_weighted)
/// is a convenience shim that allocates per call.
pub trait WeightedScheduler {
    /// Identifier for experiment output.
    fn name(&self) -> &'static str;

    /// Number of ports.
    fn num_ports(&self) -> usize;

    /// Computes a matching for the slot into `out` (resetting it first —
    /// the buffer may be dirty); only positive-weight pairs may be
    /// connected. Must not allocate.
    fn schedule_weighted_into(&mut self, weights: &WeightMatrix, out: &mut Matching);

    /// Computes a matching for the slot; only positive-weight pairs may be
    /// connected. Allocates a fresh buffer per call — keep it out of
    /// per-slot loops.
    fn schedule_weighted(&mut self, weights: &WeightMatrix) -> Matching {
        let mut out = Matching::new(self.num_ports());
        self.schedule_weighted_into(weights, &mut out);
        out
    }
}

/// Total weight of a matching under `weights`. `u128` so adversarial `u64`
/// weights cannot overflow the sum. Allocation-free — safe to call from
/// slot-loop invariant checks.
pub fn matching_weight(weights: &WeightMatrix, matching: &Matching) -> u128 {
    matching
        .pairs()
        .map(|(i, j)| u128::from(weights.get(i, j)))
        .sum()
}

/// What a weighted scheduler promises about the total weight of its
/// matchings, relative to the exact maximum-weight matching of the same
/// matrix. The checked wrapper
/// ([`CheckedWeightedScheduler`](crate::check::CheckedWeightedScheduler))
/// enforces the promise slot by slot against the Hungarian oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightGuarantee {
    /// The matching's weight equals the optimum (the reference matcher).
    Exact,
    /// At least half the optimum (edge-greedy: heaviest-edge-first is a
    /// classic ½-approximation — Avis 1983).
    HalfOfOptimal,
    /// No raw-weight bound; the scheduler's guarantee lives in a derived
    /// metric instead (e.g. [`NodeWeightedGreedy`](crate::mwm::NodeWeightedGreedy)
    /// bounds the node-induced score, not the raw weight).
    Heuristic,
}

/// Central greedy maximum-weight matching: repeatedly grant the heaviest
/// remaining `(input, output)` pair. With queue lengths as weights this is
/// **LQF** (longest queue first); with head-of-line ages it is **OCF**
/// (oldest cell first). Greedy gives a ½-approximation of the true maximum
/// weight matching at `O(n² log n)` cost — the practical variant the
/// literature simulates.
///
/// Ties are broken by a rotating diagonal offset (same machinery as the
/// LCF scheduler) so symmetric workloads don't freeze onto fixed winners.
///
/// ```
/// use lcf_core::weighted::{GreedyWeight, WeightMatrix, WeightedScheduler};
///
/// // Input 1's queue to output 0 is longer: LQF serves it first.
/// let weights = WeightMatrix::from_triples(4, [(0, 0, 2), (1, 0, 9), (0, 1, 1)]);
/// let mut lqf = GreedyWeight::new(4, "lqf");
/// let m = lqf.schedule_weighted(&weights);
/// assert_eq!(m.input_for(0), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct GreedyWeight {
    name: &'static str,
    n: usize,
    pointer: DiagonalPointer,
    // Scratch, reused across slots.
    order: Vec<(usize, usize)>,
}

impl GreedyWeight {
    /// Creates a greedy weighted matcher with the given display name
    /// (`"lqf"` / `"ocf"` by convention — the weight semantics live in the
    /// caller that fills the [`WeightMatrix`]).
    pub fn new(n: usize, name: &'static str) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        GreedyWeight {
            name,
            n,
            pointer: DiagonalPointer::new(n),
            order: Vec::with_capacity(n * n),
        }
    }
}

impl WeightedScheduler for GreedyWeight {
    fn name(&self) -> &'static str {
        self.name
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_weighted_into(&mut self, weights: &WeightMatrix, out: &mut Matching) {
        assert_eq!(weights.n(), self.n, "weight matrix size mismatch");
        let n = self.n;
        self.order.clear();
        for i in 0..n {
            for j in 0..n {
                if weights.get(i, j) > 0 {
                    self.order.push((i, j));
                }
            }
        }
        // Heaviest first; ties by rotating rank (stable and fair).
        let (pi, pj) = (self.pointer.i, self.pointer.j);
        let tie_rank = |i: usize, j: usize| ((i + n - pi) % n) * n + ((j + n - pj) % n);
        self.order.sort_by(|&(ai, aj), &(bi, bj)| {
            weights
                .get(bi, bj)
                .cmp(&weights.get(ai, aj))
                .then_with(|| tie_rank(ai, aj).cmp(&tie_rank(bi, bj)))
        });

        out.reset(n);
        for &(i, j) in &self.order {
            if !out.input_matched(i) && !out.output_matched(j) {
                out.connect(i, j);
            }
        }
        self.pointer.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_matrix_basics() {
        let mut m = WeightMatrix::new(4);
        m.set(1, 2, 7);
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.get(2, 1), 0);
        let reqs = m.to_requests();
        assert!(reqs.get(1, 2));
        assert!(!reqs.get(0, 0));
        m.clear();
        assert_eq!(m.get(1, 2), 0);
    }

    #[test]
    fn heaviest_pair_wins() {
        let weights = WeightMatrix::from_triples(4, [(0, 0, 5), (1, 0, 9), (0, 1, 1)]);
        let mut lqf = GreedyWeight::new(4, "lqf");
        let m = lqf.schedule_weighted(&weights);
        assert_eq!(m.input_for(0), Some(1), "weight 9 beats weight 5");
        assert_eq!(
            m.output_for(0),
            Some(1),
            "loser diverts to its other request"
        );
    }

    #[test]
    fn greedy_is_half_approximation_here() {
        // Greedy takes (0,0,10) and strands (1,0,9)+(0,1,9) = 18 > 10;
        // it still must produce a maximal matching.
        let weights = WeightMatrix::from_triples(2, [(0, 0, 10), (1, 0, 9), (0, 1, 9)]);
        let mut lqf = GreedyWeight::new(2, "lqf");
        let m = lqf.schedule_weighted(&weights);
        assert_eq!(m.output_for(0), Some(0));
        assert_eq!(m.size(), 1, "taking (0,0) blocks both weight-9 pairs");
    }

    #[test]
    fn validity_against_pattern() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut lqf = GreedyWeight::new(8, "lqf");
        for _ in 0..100 {
            let mut weights = WeightMatrix::new(8);
            for i in 0..8 {
                for j in 0..8 {
                    if rng.gen_bool(0.3) {
                        weights.set(i, j, rng.gen_range(1..100));
                    }
                }
            }
            let m = lqf.schedule_weighted(&weights);
            assert!(m.is_valid_for(&weights.to_requests()));
            assert!(m.is_maximal_for(&weights.to_requests()));
        }
    }

    #[test]
    fn ties_rotate() {
        // Two equal-weight contenders for output 0: over n^2 cycles each
        // must win at least once.
        let weights = WeightMatrix::from_triples(4, [(0, 0, 3), (1, 0, 3)]);
        let mut lqf = GreedyWeight::new(4, "lqf");
        let mut wins = [0usize; 2];
        for _ in 0..16 {
            let m = lqf.schedule_weighted(&weights);
            wins[m.input_for(0).unwrap()] += 1;
        }
        assert!(
            wins[0] > 0 && wins[1] > 0,
            "tie-break must rotate: {wins:?}"
        );
    }

    #[test]
    fn empty_weights() {
        let mut lqf = GreedyWeight::new(4, "lqf");
        assert_eq!(lqf.schedule_weighted(&WeightMatrix::new(4)).size(), 0);
    }
}
