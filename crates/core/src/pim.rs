//! PIM — Parallel Iterative Matching (Anderson, Owicki, Saxe, Thacker).
//!
//! The baseline the distributed LCF scheduler is derived from: the same
//! request/grant/accept iteration structure, but grants and accepts are
//! chosen *uniformly at random* instead of by least-choice priority.

use crate::bitkern::{self, Backend};
use crate::lcf::IterationTrace;
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Parallel Iterative Matcher.
///
/// Each iteration:
/// 1. every unmatched input requests all unmatched outputs it has cells for;
/// 2. every unmatched output grants one request uniformly at random;
/// 3. every unmatched input accepts one grant uniformly at random.
///
/// Converges to a maximal matching in `O(log n)` iterations with high
/// probability; the paper (and ours) runs it with a fixed budget of 4.
#[derive(Clone, Debug)]
pub struct Pim {
    n: usize,
    iterations: usize,
    backend: Backend,
    rng: StdRng,
    seed: u64,
    // Scratch, reused across slots.
    grant_of_target: Vec<Option<usize>>,
    candidates: Vec<usize>,
    trace: IterationTrace,
    #[cfg(feature = "telemetry")]
    tracing: bool,
    // Word-parallel scratch (bitset backend): flat `n × words_for(n)`
    // masks plus per-port candidate and unmatched scratch masks.
    rows: Vec<u64>,
    cols: Vec<u64>,
    grant_mask: Vec<u64>,
    unmatched_in: Vec<u64>,
    unmatched_out: Vec<u64>,
    cand: Vec<u64>,
}

impl Pim {
    /// Creates a PIM scheduler with the given iteration budget and RNG seed.
    pub fn new(n: usize, iterations: usize, seed: u64) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        assert!(iterations > 0, "at least one iteration required");
        let w = bitkern::words_for(n);
        Pim {
            n,
            iterations,
            backend: Backend::default(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            grant_of_target: vec![None; n],
            candidates: Vec::with_capacity(n),
            trace: IterationTrace::default(),
            #[cfg(feature = "telemetry")]
            tracing: false,
            rows: Vec::with_capacity(n * w),
            cols: Vec::with_capacity(n * w),
            grant_mask: vec![0; n * w],
            unmatched_in: vec![0; w],
            unmatched_out: vec![0; w],
            cand: vec![0; w],
        }
    }

    /// Selects the matching-kernel implementation (builder style). Both
    /// backends consume the RNG identically and produce bit-identical
    /// matchings; see [`Backend`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured kernel backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured iteration budget.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Convergence record of the most recent `schedule` call (same shape
    /// as [`DistributedLcf::last_trace`](crate::lcf::DistributedLcf::last_trace)).
    pub fn last_trace(&self) -> &IterationTrace {
        &self.trace
    }
}

impl Scheduler for Pim {
    fn name(&self) -> &'static str {
        "pim"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        // While tracing, take the scalar reference kernel: both kernels
        // consume the RNG identically and produce bit-identical matchings,
        // and the scalar kernel is where step recording lives.
        #[cfg(feature = "telemetry")]
        let word_parallel = !self.tracing && self.backend.word_parallel();
        #[cfg(not(feature = "telemetry"))]
        let word_parallel = self.backend.word_parallel();
        if word_parallel {
            self.schedule_bitset(requests, out);
        } else {
            self.schedule_scalar(requests, out);
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        self.trace.drain_into(sink);
    }
}

impl Pim {
    /// The scalar reference kernel: candidate lists gathered per port.
    fn schedule_scalar(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        out.reset(n);
        let matching = out;
        self.trace.begin_cycle();

        for iter in 0..self.iterations {
            #[cfg(feature = "telemetry")]
            let mut step = self.tracing.then(crate::telemetry::IterationStep::default);
            #[cfg(feature = "telemetry")]
            if let Some(step) = step.as_mut() {
                for i in 0..n {
                    if matching.input_matched(i) {
                        continue;
                    }
                    for j in requests.row_ones(i) {
                        if !matching.output_matched(j) {
                            step.requests.push((i, j));
                        }
                    }
                }
            }
            // Grant: each unmatched output picks uniformly among the
            // unmatched inputs requesting it.
            for j in 0..n {
                self.grant_of_target[j] = None;
                if matching.output_matched(j) {
                    continue;
                }
                self.candidates.clear();
                self.candidates
                    .extend(requests.col_ones(j).filter(|&i| !matching.input_matched(i)));
                if !self.candidates.is_empty() {
                    let pick = self.rng.gen_range(0..self.candidates.len());
                    self.grant_of_target[j] = Some(self.candidates[pick]);
                }
            }

            #[cfg(feature = "telemetry")]
            if let Some(step) = step.as_mut() {
                for j in 0..n {
                    if let Some(i) = self.grant_of_target[j] {
                        step.grants.push((i, j));
                    }
                }
            }

            // Accept: each input holding grants picks uniformly among them.
            let mut new_matches = 0;
            for i in 0..n {
                if matching.input_matched(i) {
                    continue;
                }
                self.candidates.clear();
                self.candidates
                    .extend((0..n).filter(|&j| self.grant_of_target[j] == Some(i)));
                if !self.candidates.is_empty() {
                    let pick = self.rng.gen_range(0..self.candidates.len());
                    let j = self.candidates[pick];
                    matching.connect(i, j);
                    new_matches += 1;
                    #[cfg(feature = "telemetry")]
                    if let Some(step) = step.as_mut() {
                        step.accepts.push((i, j));
                    }
                }
            }
            #[cfg(feature = "telemetry")]
            if let Some(step) = step.take() {
                self.trace.steps.push(step);
            }
            self.trace.new_matches.push(new_matches);
            if new_matches == 0 {
                self.trace.converged_after = Some(iter + 1);
                break;
            }
        }
    }

    /// The word-parallel kernel: the uniform pick over a candidate list
    /// becomes a popcount plus a k-th-set-bit select on the multi-word
    /// candidate mask. The ports are visited in the same ascending order
    /// with the same `gen_range` bounds as the scalar kernel, so the RNG
    /// stream is consumed identically and the matchings are bit-identical
    /// to [`Pim::schedule_scalar`].
    fn schedule_bitset(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        let w = bitkern::words_for(n);
        out.reset(n);
        let matching = out;
        self.trace.begin_cycle();
        bitkern::load_rows(requests.bits(), &mut self.rows);
        bitkern::col_masks(&self.rows, n, &mut self.cols);
        bitkern::mask_fill(&mut self.unmatched_in, n);
        bitkern::mask_fill(&mut self.unmatched_out, n);

        for iter in 0..self.iterations {
            // Grant: each unmatched output picks uniformly among the
            // unmatched inputs requesting it (k-th set bit of the mask,
            // ascending — the mask order matches the scalar candidate list).
            // Word-copy walking visits outputs in ascending order.
            self.grant_mask.fill(0);
            for wi in 0..w {
                let mut outs = self.unmatched_out[wi];
                while outs != 0 {
                    let j = wi * bitkern::WORD_BITS + outs.trailing_zeros() as usize;
                    outs &= outs - 1;
                    for (k, c) in self.cand.iter_mut().enumerate() {
                        *c = self.cols[j * w + k] & self.unmatched_in[k];
                    }
                    let count = bitkern::popcount(&self.cand);
                    if count > 0 {
                        let pick = self.rng.gen_range(0..count);
                        let i = bitkern::kth_set_bit(&self.cand, pick);
                        bitkern::set_bit(&mut self.grant_mask[i * w..(i + 1) * w], j);
                    }
                }
            }

            // Accept: each input holding grants picks uniformly among them.
            // The per-word snapshot stays valid: inputs are cleared from
            // `unmatched_in` only when they accept, at most once each.
            let mut new_matches = 0;
            for wi in 0..w {
                let mut ins = self.unmatched_in[wi];
                while ins != 0 {
                    let i = wi * bitkern::WORD_BITS + ins.trailing_zeros() as usize;
                    ins &= ins - 1;
                    let grants = &self.grant_mask[i * w..(i + 1) * w];
                    let count = bitkern::popcount(grants);
                    if count > 0 {
                        let pick = self.rng.gen_range(0..count);
                        let j = bitkern::kth_set_bit(grants, pick);
                        matching.connect(i, j);
                        bitkern::clear_bit(&mut self.unmatched_in, i);
                        bitkern::clear_bit(&mut self.unmatched_out, j);
                        new_matches += 1;
                    }
                }
            }
            self.trace.new_matches.push(new_matches);
            if new_matches == 0 {
                self.trace.converged_after = Some(iter + 1);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_requests() {
        let mut pim = Pim::new(4, 4, 1);
        assert_eq!(pim.schedule(&RequestMatrix::new(4)).size(), 0);
    }

    #[test]
    fn single_request_granted() {
        let mut pim = Pim::new(4, 4, 1);
        let requests = RequestMatrix::from_pairs(4, [(1, 2)]);
        let m = pim.schedule(&requests);
        assert_eq!(m.output_for(1), Some(2));
    }

    #[test]
    fn full_requests_saturate() {
        // With n iterations PIM reaches a maximal matching; on the full
        // matrix a maximal matching is perfect.
        let mut pim = Pim::new(8, 8, 42);
        for _ in 0..20 {
            assert_eq!(pim.schedule(&RequestMatrix::full(8)).size(), 8);
        }
    }

    #[test]
    fn matchings_always_valid() {
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut pim = Pim::new(16, 4, 7);
        for _ in 0..200 {
            let requests = RequestMatrix::random(16, 0.3, &mut rng);
            let m = pim.schedule(&requests);
            assert!(m.is_valid_for(&requests));
        }
    }

    #[test]
    fn maximal_with_n_iterations() {
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut pim = Pim::new(12, 12, 5);
        for _ in 0..100 {
            let requests = RequestMatrix::random(12, 0.4, &mut rng);
            let m = pim.schedule(&requests);
            assert!(m.is_maximal_for(&requests));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let requests = RequestMatrix::full(8);
        let mut a = Pim::new(8, 4, 1234);
        let mut b = Pim::new(8, 4, 1234);
        for _ in 0..10 {
            assert_eq!(
                a.schedule(&requests).pairs().collect::<Vec<_>>(),
                b.schedule(&requests).pairs().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn reset_reseeds() {
        let requests = RequestMatrix::full(8);
        let mut pim = Pim::new(8, 4, 77);
        let first: Vec<_> = pim.schedule(&requests).pairs().collect();
        pim.schedule(&requests);
        pim.reset();
        let again: Vec<_> = pim.schedule(&requests).pairs().collect();
        assert_eq!(first, again);
    }

    #[test]
    fn randomness_varies_across_slots() {
        // On the full matrix PIM should not produce the same permutation
        // every slot (that's the whole point of the coin flips).
        let requests = RequestMatrix::full(8);
        let mut pim = Pim::new(8, 4, 2);
        let first: Vec<_> = pim.schedule(&requests).pairs().collect();
        let distinct =
            (0..20).any(|_| pim.schedule(&requests).pairs().collect::<Vec<_>>() != first);
        assert!(
            distinct,
            "20 identical PIM matchings in a row is implausible"
        );
    }
}
