//! Conflict-free input/output matchings — the output of a scheduler.

use crate::request::RequestMatrix;

/// A (partial) matching between `n` input ports and `n` output ports.
///
/// Corresponds to the schedule array `S` of the paper's Fig. 2 pseudocode:
/// `S[i]` holds the output granted to input `i`, or nothing. A matching as
/// constructed through [`Matching::connect`] is conflict-free by construction
/// (connecting an already-used input or output panics).
///
/// ```
/// use lcf_core::matching::Matching;
///
/// let mut m = Matching::new(4);
/// m.connect(0, 2);
/// m.connect(3, 1);
/// assert_eq!(m.size(), 2);
/// assert_eq!(m.output_for(0), Some(2));
/// assert_eq!(m.input_for(1), Some(3));
/// assert!(m.is_conflict_free());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Matching {
    input_to_output: Vec<Option<usize>>,
    output_to_input: Vec<Option<usize>>,
}

impl Matching {
    /// Creates an empty matching over `n` ports.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Matching requires n > 0");
        Matching {
            input_to_output: vec![None; n],
            output_to_input: vec![None; n],
        }
    }

    /// Builds a matching from `(input, output)` pairs.
    ///
    /// # Panics
    /// Panics on conflicting or out-of-range pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut m = Matching::new(n);
        for (i, j) in pairs {
            m.connect(i, j);
        }
        m
    }

    /// Number of ports.
    #[inline]
    pub fn n(&self) -> usize {
        self.input_to_output.len()
    }

    /// Disconnects every pair, keeping the port count and the allocations.
    /// This is what makes a [`Matching`] reusable as a `schedule_into`
    /// output buffer: clearing is a pair of `memset`s, not an allocation.
    pub fn clear(&mut self) {
        self.input_to_output.fill(None);
        self.output_to_input.fill(None);
    }

    /// Clears the matching and resizes it to `n` ports, reusing the
    /// existing allocations where capacity permits. A dirty buffer of any
    /// prior size becomes an empty matching over `n` ports.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn reset(&mut self, n: usize) {
        assert!(n > 0, "Matching requires n > 0");
        self.input_to_output.clear();
        self.input_to_output.resize(n, None);
        self.output_to_input.clear();
        self.output_to_input.resize(n, None);
    }

    /// Connects input `input` to output `output`.
    ///
    /// # Panics
    /// Panics if either endpoint is already matched or out of range.
    pub fn connect(&mut self, input: usize, output: usize) {
        assert!(
            input < self.n() && output < self.n(),
            "port index out of range"
        );
        assert!(
            self.input_to_output[input].is_none(),
            "input {input} already matched"
        );
        assert!(
            self.output_to_input[output].is_none(),
            "output {output} already matched"
        );
        self.input_to_output[input] = Some(output);
        self.output_to_input[output] = Some(input);
    }

    /// The output matched to `input`, if any.
    #[inline]
    pub fn output_for(&self, input: usize) -> Option<usize> {
        self.input_to_output[input]
    }

    /// The input matched to `output`, if any.
    #[inline]
    pub fn input_for(&self, output: usize) -> Option<usize> {
        self.output_to_input[output]
    }

    /// True if `input` is matched.
    #[inline]
    pub fn input_matched(&self, input: usize) -> bool {
        self.input_to_output[input].is_some()
    }

    /// True if `output` is matched.
    #[inline]
    pub fn output_matched(&self, output: usize) -> bool {
        self.output_to_input[output].is_some()
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.input_to_output.iter().flatten().count()
    }

    /// Iterates over matched `(input, output)` pairs in input order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.input_to_output
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.map(|j| (i, j)))
    }

    /// Checks internal consistency: the two direction maps agree and no port
    /// appears twice. Always true for matchings built through [`connect`],
    /// asserted in debug-mode tests and property tests.
    ///
    /// [`connect`]: Matching::connect
    pub fn is_conflict_free(&self) -> bool {
        for (i, &o) in self.input_to_output.iter().enumerate() {
            if let Some(j) = o {
                if self.output_to_input[j] != Some(i) {
                    return false;
                }
            }
        }
        for (j, &inp) in self.output_to_input.iter().enumerate() {
            if let Some(i) = inp {
                if self.input_to_output[i] != Some(j) {
                    return false;
                }
            }
        }
        true
    }

    /// True if every matched pair corresponds to an actual request in `requests`
    /// (a scheduler must never grant a connection nobody asked for).
    pub fn is_valid_for(&self, requests: &RequestMatrix) -> bool {
        self.n() == requests.n()
            && self.is_conflict_free()
            && self.pairs().all(|(i, j)| requests.get(i, j))
    }

    /// True if the matching is *maximal* with respect to `requests`: no
    /// unmatched input still requests an unmatched output. All schedulers in
    /// this crate except single-iteration iterative ones produce maximal
    /// matchings on every cycle.
    pub fn is_maximal_for(&self, requests: &RequestMatrix) -> bool {
        for i in 0..self.n() {
            if self.input_matched(i) {
                continue;
            }
            for j in requests.row_ones(i) {
                if !self.output_matched(j) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching() {
        let m = Matching::new(4);
        assert_eq!(m.size(), 0);
        assert!(m.is_conflict_free());
        assert_eq!(m.pairs().count(), 0);
    }

    #[test]
    fn connect_and_query() {
        let mut m = Matching::new(4);
        m.connect(1, 3);
        m.connect(2, 0);
        assert_eq!(m.size(), 2);
        assert_eq!(m.output_for(1), Some(3));
        assert_eq!(m.input_for(3), Some(1));
        assert_eq!(m.output_for(0), None);
        assert!(m.input_matched(2));
        assert!(!m.output_matched(1));
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(1, 3), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "input 0 already matched")]
    fn double_input_panics() {
        let mut m = Matching::new(3);
        m.connect(0, 1);
        m.connect(0, 2);
    }

    #[test]
    #[should_panic(expected = "output 1 already matched")]
    fn double_output_panics() {
        let mut m = Matching::new(3);
        m.connect(0, 1);
        m.connect(2, 1);
    }

    #[test]
    fn validity_against_requests() {
        let requests = RequestMatrix::from_pairs(3, [(0, 1), (1, 2)]);
        let good = Matching::from_pairs(3, [(0, 1), (1, 2)]);
        assert!(good.is_valid_for(&requests));
        let ungranted = Matching::from_pairs(3, [(0, 2)]);
        assert!(!ungranted.is_valid_for(&requests));
    }

    #[test]
    fn maximality() {
        let requests = RequestMatrix::from_pairs(3, [(0, 0), (1, 0), (2, 2)]);
        // (1,0) and (2,2): input 0 requests only output 0 which is taken -> maximal.
        let maximal = Matching::from_pairs(3, [(1, 0), (2, 2)]);
        assert!(maximal.is_maximal_for(&requests));
        // only (1,0): input 2 could still reach free output 2 -> not maximal.
        let not_maximal = Matching::from_pairs(3, [(1, 0)]);
        assert!(!not_maximal.is_maximal_for(&requests));
    }

    #[test]
    fn full_permutation_is_maximal_for_full_requests() {
        let requests = RequestMatrix::full(5);
        let m = Matching::from_pairs(5, (0..5).map(|i| (i, (i + 2) % 5)));
        assert_eq!(m.size(), 5);
        assert!(m.is_valid_for(&requests));
        assert!(m.is_maximal_for(&requests));
    }

    #[test]
    fn size_mismatch_is_invalid() {
        let requests = RequestMatrix::full(4);
        let m = Matching::new(3);
        assert!(!m.is_valid_for(&requests));
    }

    #[test]
    fn clear_disconnects_everything_and_keeps_n() {
        let mut m = Matching::from_pairs(4, [(0, 2), (3, 1)]);
        m.clear();
        assert_eq!(m.n(), 4);
        assert_eq!(m.size(), 0);
        assert!(!m.input_matched(0) && !m.output_matched(2));
        assert_eq!(m, Matching::new(4), "cleared buffer equals a fresh one");
    }

    #[test]
    fn reset_resizes_a_dirty_buffer() {
        let mut m = Matching::from_pairs(3, [(0, 1), (2, 2)]);
        m.reset(5);
        assert_eq!(m.n(), 5);
        assert_eq!(m, Matching::new(5));
        m.connect(4, 0);
        m.reset(2);
        assert_eq!(m, Matching::new(2));
    }

    #[test]
    #[should_panic(expected = "Matching requires n > 0")]
    fn reset_to_zero_panics() {
        Matching::new(2).reset(0);
    }
}
