//! # lcf-core — switch schedulers for input-queued crossbars
//!
//! This crate implements the **Least Choice First (LCF)** scheduling method of
//! Gura & Eberle (IPPS 2002) together with the baseline schedulers the paper
//! evaluates against. A scheduler solves one instance of the *switch
//! scheduling problem*: given an `n × n` boolean request matrix `R` (row `i`,
//! column `j` set iff input port `i` has at least one packet queued for output
//! port `j`), produce a conflict-free bipartite matching between input and
//! output ports for the next time slot.
//!
//! ## Schedulers
//!
//! | Type | Paper name | Idea |
//! |---|---|---|
//! | [`CentralLcf`](lcf::CentralLcf) | `lcf_central` / `lcf_central_rr` | schedule outputs sequentially, grant the requester with the *fewest* outstanding requests |
//! | [`DistributedLcf`](lcf::DistributedLcf) | `lcf_dist` / `lcf_dist_rr` | PIM-style iterative request/grant/accept prioritized by request/grant counts |
//! | [`Pim`](pim::Pim) | `pim` | random iterative matching (Anderson et al.) |
//! | [`Islip`](islip::Islip) | `islip` | rotating-pointer iterative matching (McKeown) |
//! | [`Wavefront`](wavefront::Wavefront) | `wfront` | wrapped wavefront arbiter (Tamir & Chi) |
//! | [`FifoRr`](fifo_rr::FifoRr) | `fifo` | single FIFO per input, round-robin conflict resolution |
//! | [`MaxSizeMatcher`](maxsize::MaxSizeMatcher) | `maxsize` | Hopcroft–Karp maximum-size matching (reference upper bound) |
//! | [`MaxWeightMatcher`](mwm::MaxWeightMatcher) | `mwm` | Hungarian exact maximum-weight matching (reference optimum) |
//! | [`NodeWeightedGreedy`](mwm::NodeWeightedGreedy) | `nwgreedy` | node-weighted greedy MWM approximation (Gupta/Sanghavi/Shroff) |
//! | [`GreedyWeight`](weighted::GreedyWeight) | `lqf` / `ocf` | edge-greedy weighted matching (½-approximation of MWM) |
//!
//! ## Quick example
//!
//! ```
//! use lcf_core::prelude::*;
//!
//! // The 4x4 request pattern of Fig. 3 in the paper.
//! let requests = RequestMatrix::from_pairs(4, [
//!     (0, 1), (0, 2),
//!     (1, 0), (1, 2), (1, 3),
//!     (2, 0), (2, 2), (2, 3),
//!     (3, 1),
//! ]);
//! let mut sched = CentralLcf::with_round_robin(4);
//! sched.advance_pointer(); // start from the Fig. 3 round-robin diagonal
//! let matching = sched.schedule(&requests);
//! assert!(matching.is_valid_for(&requests));
//! assert_eq!(matching.size(), 4); // LCF finds the full matching here
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod bitkern;
pub mod bitmat;
#[cfg(feature = "check-invariants")]
pub mod check;
pub mod fifo_rr;
pub mod islip;
pub mod lcf;
pub mod matching;
pub mod maxsize;
pub mod multicast;
pub mod mwm;
pub mod pim;
pub mod registry;
pub mod request;
#[cfg(feature = "telemetry")]
pub mod telemetry;
pub mod traits;
pub mod wavefront;
pub mod weighted;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::bitkern::Backend;
    pub use crate::bitmat::BitMatrix;
    #[cfg(feature = "check-invariants")]
    pub use crate::check::{CheckedScheduler, ScheduleChecker};
    pub use crate::fifo_rr::FifoRr;
    pub use crate::islip::Islip;
    pub use crate::lcf::{CentralLcf, DistributedLcf};
    pub use crate::matching::Matching;
    pub use crate::maxsize::MaxSizeMatcher;
    pub use crate::multicast::{FanoutSplit, McastGrant, McastPolicy};
    pub use crate::mwm::{MaxWeightMatcher, NodeWeightedGreedy};
    pub use crate::pim::Pim;
    pub use crate::registry::{BackendChoice, SchedulerKind, WeightedKind};
    pub use crate::request::RequestMatrix;
    pub use crate::traits::Scheduler;
    pub use crate::wavefront::Wavefront;
    pub use crate::weighted::{GreedyWeight, WeightGuarantee, WeightMatrix, WeightedScheduler};
}
