//! The request matrix presented to a scheduler each time slot.

use crate::bitmat::BitMatrix;
use rand::Rng;

/// An `n × n` request matrix: `get(i, j)` is true iff input (requester) `i`
/// has at least one packet queued for output (resource) `j`.
///
/// This is the `R` array of the paper's Fig. 2 pseudocode. In the switch
/// model it is derived from VOQ occupancy: one bit per virtual output queue.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequestMatrix {
    bits: BitMatrix,
}

impl RequestMatrix {
    /// Creates an empty request matrix for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        RequestMatrix {
            bits: BitMatrix::new(n),
        }
    }

    /// Builds a matrix from `(requester, resource)` pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut m = RequestMatrix::new(n);
        for (i, j) in pairs {
            m.set(i, j, true);
        }
        m
    }

    /// Builds a matrix from a predicate over `(requester, resource)`.
    pub fn from_fn(n: usize, f: impl FnMut(usize, usize) -> bool) -> Self {
        RequestMatrix {
            bits: BitMatrix::from_fn(n, f),
        }
    }

    /// A matrix with every request set (worst-case scheduler input).
    pub fn full(n: usize) -> Self {
        RequestMatrix::from_fn(n, |_, _| true)
    }

    /// A random matrix where each request is set independently with
    /// probability `density`. Useful for benchmarks and property tests.
    pub fn random(n: usize, density: f64, rng: &mut impl Rng) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        RequestMatrix::from_fn(n, |_, _| rng.gen_bool(density))
    }

    /// Number of ports.
    #[inline]
    pub fn n(&self) -> usize {
        self.bits.n()
    }

    /// Whether requester `i` requests resource `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits.get(i, j)
    }

    /// Sets or clears request `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        self.bits.set(i, j, value);
    }

    /// NRQ of the paper: the number of resources requester `i` requests.
    #[inline]
    pub fn nrq(&self, i: usize) -> usize {
        self.bits.row_count(i)
    }

    /// The number of requesters requesting resource `j` (the distributed
    /// scheduler's NGT before any matches are removed).
    #[inline]
    pub fn ngt(&self, j: usize) -> usize {
        self.bits.col_count(j)
    }

    /// Total number of requests.
    pub fn count(&self) -> usize {
        self.bits.count()
    }

    /// True if nobody requests anything.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// True if requester `i` has at least one request.
    pub fn requester_active(&self, i: usize) -> bool {
        self.bits.row_any(i)
    }

    /// Iterates over the resources requested by requester `i`, ascending.
    pub fn row_ones(&self, i: usize) -> crate::bitmat::RowOnes<'_> {
        self.bits.row_ones(i)
    }

    /// Iterates over the requesters of resource `j`, ascending.
    pub fn col_ones(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        self.bits.col_ones(j)
    }

    /// Iterates over all `(requester, resource)` requests in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bits.ones()
    }

    /// Removes every request issued by requester `i`.
    pub fn clear_requester(&mut self, i: usize) {
        self.bits.clear_row(i);
    }

    /// Removes every request for resource `j`.
    pub fn clear_resource(&mut self, j: usize) {
        self.bits.clear_col(j);
    }

    /// Access to the underlying bit matrix.
    pub fn bits(&self) -> &BitMatrix {
        &self.bits
    }

    /// Replaces requester `i`'s whole row from packed occupancy words — the
    /// word-parallel ingest path used by the simulator's slot loop (see
    /// [`BitMatrix::set_row_words`] for the layout contract).
    #[inline]
    pub fn set_row_words(&mut self, i: usize, words: &[u64]) {
        self.bits.set_row_words(i, words);
    }

    /// Copies `other` into `self` without reallocating (see
    /// [`BitMatrix::copy_from`]).
    pub fn copy_from(&mut self, other: &RequestMatrix) {
        self.bits.copy_from(&other.bits);
    }
}

impl From<BitMatrix> for RequestMatrix {
    fn from(bits: BitMatrix) -> Self {
        RequestMatrix { bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_pairs_and_counts() {
        let m = RequestMatrix::from_pairs(4, [(0, 1), (0, 2), (1, 0), (3, 1)]);
        assert_eq!(m.count(), 4);
        assert_eq!(m.nrq(0), 2);
        assert_eq!(m.nrq(2), 0);
        assert_eq!(m.ngt(1), 2);
        assert!(m.requester_active(0));
        assert!(!m.requester_active(2));
    }

    #[test]
    fn paper_figure3_nrq_column() {
        // Fig. 3 step 1: NRQ = [2, 3, 3, 1].
        let m = RequestMatrix::from_pairs(
            4,
            [
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 0),
                (2, 2),
                (2, 3),
                (3, 1),
            ],
        );
        assert_eq!(
            (0..4).map(|i| m.nrq(i)).collect::<Vec<_>>(),
            vec![2, 3, 3, 1]
        );
    }

    #[test]
    fn full_matrix() {
        let m = RequestMatrix::full(5);
        assert_eq!(m.count(), 25);
        assert_eq!(m.nrq(3), 5);
        assert_eq!(m.ngt(4), 5);
    }

    #[test]
    fn clear_requester_and_resource() {
        let mut m = RequestMatrix::full(4);
        m.clear_requester(1);
        assert_eq!(m.nrq(1), 0);
        assert_eq!(m.count(), 12);
        m.clear_resource(2);
        assert_eq!(m.ngt(2), 0);
        assert_eq!(m.count(), 9);
    }

    #[test]
    fn random_density_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty = RequestMatrix::random(8, 0.0, &mut rng);
        assert!(empty.is_empty());
        let full = RequestMatrix::random(8, 1.0, &mut rng);
        assert_eq!(full.count(), 64);
    }

    #[test]
    fn random_density_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = RequestMatrix::random(64, 0.5, &mut rng);
        let density = m.count() as f64 / (64.0 * 64.0);
        assert!((0.4..0.6).contains(&density), "density was {density}");
    }

    #[test]
    fn pairs_roundtrip() {
        let pairs = vec![(0, 3), (2, 1), (3, 0)];
        let m = RequestMatrix::from_pairs(4, pairs.clone());
        assert_eq!(m.pairs().collect::<Vec<_>>(), pairs);
    }
}
