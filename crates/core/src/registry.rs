//! Name-based scheduler construction for experiment harnesses.

use crate::bitkern::Backend;
use crate::fifo_rr::FifoRr;
use crate::islip::Islip;
use crate::lcf::{CentralLcf, DistributedLcf};
use crate::maxsize::MaxSizeMatcher;
use crate::mwm::{MaxWeightMatcher, NodeWeightedGreedy};
use crate::pim::Pim;
use crate::traits::Scheduler;
use crate::wavefront::Wavefront;
use crate::weighted::{GreedyWeight, WeightGuarantee, WeightedScheduler};

/// The schedulers evaluated in the paper's Fig. 12, plus the reference
/// matchers (maximum-size, and maximum-weight under unit weights).
/// (`outbuf` is a switch architecture, not a scheduler, and lives in
/// `lcf-sim`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SchedulerKind {
    Fifo,
    LcfCentral,
    LcfCentralRr,
    LcfDist,
    LcfDistRr,
    Pim,
    Islip,
    Wavefront,
    MaxSize,
    MaxWeight,
    /// Test-only probe that panics on every `schedule` call. Excluded from
    /// [`SchedulerKind::ALL`]; exists so fault-isolation paths (`try_sweep`
    /// panic containment) can be exercised through the public registry.
    FaultProbe,
}

/// How the registry resolved a requested kernel [`Backend`] for a concrete
/// scheduler and port count. Returned by
/// [`SchedulerKind::build_with_backend`] so callers can see exactly which
/// kernel will run instead of guessing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// The scheduler runs the backend the caller asked for.
    AsRequested(Backend),
    /// Reserved: a bitset request could not be honored and the scheduler
    /// fell back to the scalar reference kernel. The multi-word kernels
    /// ([`bitkern`](crate::bitkern)) serve every port count, so no current
    /// scheduler constructs this variant; it remains so that callers (and
    /// the bench fallback asserts) keep a loud guard should a future
    /// kernel reintroduce a size limit.
    ScalarFallback {
        /// The port count that forced the fallback.
        n: usize,
    },
    /// The scheduler has no word-parallel kernel at all; the backend request
    /// is ignored and the scalar implementation always runs.
    NoKernel,
}

impl BackendChoice {
    /// The backend that will actually execute.
    pub fn effective(self) -> Backend {
        match self {
            BackendChoice::AsRequested(b) => b,
            BackendChoice::ScalarFallback { .. } | BackendChoice::NoKernel => Backend::Scalar,
        }
    }

    /// True if a bitset request was silently impossible to honor.
    pub fn is_fallback(self) -> bool {
        matches!(self, BackendChoice::ScalarFallback { .. })
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::AsRequested(b) => f.write_str(b.name()),
            BackendChoice::ScalarFallback { n } => {
                write!(f, "scalar (bitset unavailable for n = {n})")
            }
            BackendChoice::NoKernel => f.write_str("scalar (no word-parallel kernel)"),
        }
    }
}

/// The deliberately faulty scheduler behind [`SchedulerKind::FaultProbe`].
struct FaultProbe {
    n: usize,
}

impl Scheduler for FaultProbe {
    fn name(&self) -> &'static str {
        "panic_probe"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(
        &mut self,
        _requests: &crate::request::RequestMatrix,
        _out: &mut crate::matching::Matching,
    ) {
        // lint:allow(no-panic): this probe exists to panic, so fault isolation can be tested
        panic!("panic_probe: deliberate scheduler fault");
    }
}

impl SchedulerKind {
    /// All kinds, in the order the paper's Fig. 12 legend lists them
    /// (best-documented first), with the reference matchers last.
    pub const ALL: [SchedulerKind; 10] = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::LcfDist,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
        SchedulerKind::Fifo,
        SchedulerKind::MaxSize,
        SchedulerKind::MaxWeight,
    ];

    /// The seven VOQ-based practical schedulers of Fig. 12 (excludes `fifo`,
    /// which needs the single-FIFO queue model, and the reference matcher).
    pub const VOQ_PRACTICAL: [SchedulerKind; 7] = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::LcfDist,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
    ];

    /// The paper's name for this scheduler (Fig. 12 legend).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::LcfCentral => "lcf_central",
            SchedulerKind::LcfCentralRr => "lcf_central_rr",
            SchedulerKind::LcfDist => "lcf_dist",
            SchedulerKind::LcfDistRr => "lcf_dist_rr",
            SchedulerKind::Pim => "pim",
            SchedulerKind::Islip => "islip",
            SchedulerKind::Wavefront => "wfront",
            SchedulerKind::MaxSize => "maxsize",
            SchedulerKind::MaxWeight => "mwm",
            SchedulerKind::FaultProbe => "panic_probe",
        }
    }

    /// Parses a paper name back into a kind. The test-only `panic_probe` is
    /// addressable by name even though it is not part of
    /// [`SchedulerKind::ALL`].
    pub fn from_name(name: &str) -> Option<SchedulerKind> {
        if name == "panic_probe" {
            return Some(SchedulerKind::FaultProbe);
        }
        SchedulerKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// True for the iterative schedulers whose `iterations` parameter the
    /// paper pins to 4 in the Fig. 12 experiment.
    pub fn is_iterative(self) -> bool {
        matches!(
            self,
            SchedulerKind::LcfDist
                | SchedulerKind::LcfDistRr
                | SchedulerKind::Pim
                | SchedulerKind::Islip
        )
    }

    /// True if the scheduler expects single-FIFO (head-of-line only) inputs.
    pub fn wants_fifo_queues(self) -> bool {
        self == SchedulerKind::Fifo
    }

    /// True for schedulers that have a word-parallel (bitset) kernel in
    /// addition to the scalar reference kernel.
    pub fn has_kernel(self) -> bool {
        matches!(
            self,
            SchedulerKind::LcfCentral
                | SchedulerKind::LcfCentralRr
                | SchedulerKind::Pim
                | SchedulerKind::Islip
                | SchedulerKind::Wavefront
        )
    }

    /// True if every matching this scheduler produces is guaranteed maximal
    /// (no augmenting single edge). The greedy central schedulers and the
    /// wavefront arbiter sweep all positions each slot; the iterative
    /// schedulers stop after a finite iteration budget and may leave an
    /// augmenting edge behind. `fifo` is maximal under its own precondition
    /// of at most one request per input (head-of-line requests only).
    pub fn guarantees_maximal(self) -> bool {
        matches!(
            self,
            SchedulerKind::Fifo
                | SchedulerKind::LcfCentral
                | SchedulerKind::LcfCentralRr
                | SchedulerKind::Wavefront
                | SchedulerKind::MaxSize
                | SchedulerKind::MaxWeight
        )
    }

    /// Resolves a requested backend for this scheduler at port count `n`
    /// without building anything. The multi-word kernels serve every port
    /// count, so schedulers with a kernel always honor the request; only
    /// kernel-less schedulers report [`BackendChoice::NoKernel`].
    pub fn resolve_backend(self, _n: usize, requested: Backend) -> BackendChoice {
        if !self.has_kernel() {
            BackendChoice::NoKernel
        } else {
            BackendChoice::AsRequested(requested)
        }
    }

    /// Builds a scheduler instance with the default (word-parallel) kernel
    /// backend.
    ///
    /// * `iterations` — budget for the iterative schedulers (ignored by the
    ///   others).
    /// * `seed` — RNG seed (used by PIM only).
    pub fn build(self, n: usize, iterations: usize, seed: u64) -> Box<dyn Scheduler + Send> {
        self.build_with_backend(n, iterations, seed, Backend::default())
            .0
    }

    /// Like [`SchedulerKind::build`], but selects the matching-kernel
    /// [`Backend`] for the schedulers that have a word-parallel fast path
    /// (`lcf_central*`, `islip`, `pim`, `wfront`). The scalar backend is the
    /// reference implementation; both produce bit-identical matchings, so
    /// this is a performance dial and a differential-testing hook, never a
    /// semantic switch. Schedulers without a bitset kernel ignore the
    /// choice.
    ///
    /// Returns the scheduler together with the [`BackendChoice`] that was
    /// actually applied, so callers can assert which kernel runs instead of
    /// guessing.
    pub fn build_with_backend(
        self,
        n: usize,
        iterations: usize,
        seed: u64,
        backend: Backend,
    ) -> (Box<dyn Scheduler + Send>, BackendChoice) {
        let sched: Box<dyn Scheduler + Send> = match self {
            SchedulerKind::Fifo => Box::new(FifoRr::new(n)),
            SchedulerKind::LcfCentral => Box::new(CentralLcf::pure(n).with_backend(backend)),
            SchedulerKind::LcfCentralRr => {
                Box::new(CentralLcf::with_round_robin(n).with_backend(backend))
            }
            SchedulerKind::LcfDist => Box::new(DistributedLcf::pure(n, iterations)),
            SchedulerKind::LcfDistRr => Box::new(DistributedLcf::with_round_robin(n, iterations)),
            SchedulerKind::Pim => Box::new(Pim::new(n, iterations, seed).with_backend(backend)),
            SchedulerKind::Islip => Box::new(Islip::new(n, iterations).with_backend(backend)),
            SchedulerKind::Wavefront => Box::new(Wavefront::new(n).with_backend(backend)),
            SchedulerKind::MaxSize => Box::new(MaxSizeMatcher::new(n)),
            SchedulerKind::MaxWeight => Box::new(MaxWeightMatcher::new(n)),
            SchedulerKind::FaultProbe => Box::new(FaultProbe { n }),
        };
        (sched, self.resolve_backend(n, backend))
    }

    /// Like [`SchedulerKind::build_with_backend`], but wraps the scheduler
    /// in a [`CheckedScheduler`](crate::check::CheckedScheduler) that
    /// validates every matching (permutation validity, grant ⊆ request,
    /// maximality where [`SchedulerKind::guarantees_maximal`]) and — when
    /// the effective backend is the bitset kernel — replays every request
    /// matrix through a scalar twin built from the same seed, asserting
    /// bit-identical agreement. The simulator uses this in debug builds.
    #[cfg(feature = "check-invariants")]
    pub fn build_checked(
        self,
        n: usize,
        iterations: usize,
        seed: u64,
        backend: Backend,
    ) -> (Box<dyn Scheduler + Send>, BackendChoice) {
        use crate::check::{CheckedScheduler, ScheduleChecker};

        let (primary, choice) = self.build_with_backend(n, iterations, seed, backend);
        let checker = ScheduleChecker::new().require_maximal(self.guarantees_maximal());
        let mut checked = CheckedScheduler::new(primary, checker);
        if choice.effective() == Backend::Bitset {
            let (twin, _) = self.build_with_backend(n, iterations, seed, Backend::Scalar);
            checked = checked.with_shadow(twin);
        }
        (Box::new(checked), choice)
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The weighted-scheduler registry: name-based construction for the
/// schedulers that consume a [`WeightMatrix`](crate::weighted::WeightMatrix)
/// instead of a boolean request pattern. These sit outside the Fig. 12
/// lineup (the paper's schedulers are all pattern-only) but complete the
/// taxonomy: the practical weighted heuristics (`lqf`, `ocf`, `nwgreedy`)
/// and the exact reference (`mwm`) the heuristics are measured against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightedKind {
    /// Longest queue first: edge-greedy over queue-length weights.
    Lqf,
    /// Oldest cell first: edge-greedy over head-of-line cell ages.
    Ocf,
    /// Exact maximum-weight matching over queue lengths (Hungarian).
    Mwm,
    /// Node-weighted greedy (Gupta/Sanghavi/Shroff) over queue lengths.
    NwGreedy,
}

impl WeightedKind {
    /// All weighted kinds, heuristics first, reference last.
    pub const ALL: [WeightedKind; 4] = [
        WeightedKind::Lqf,
        WeightedKind::Ocf,
        WeightedKind::NwGreedy,
        WeightedKind::Mwm,
    ];

    /// The experiment-output name of this scheduler.
    pub fn name(self) -> &'static str {
        match self {
            WeightedKind::Lqf => "lqf",
            WeightedKind::Ocf => "ocf",
            WeightedKind::Mwm => "mwm",
            WeightedKind::NwGreedy => "nwgreedy",
        }
    }

    /// Parses a name back into a kind.
    pub fn from_name(name: &str) -> Option<WeightedKind> {
        WeightedKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// True if the scheduler's weights are head-of-line cell ages rather
    /// than queue lengths (the simulator picks its `WeightSource` from
    /// this).
    pub fn age_weighted(self) -> bool {
        self == WeightedKind::Ocf
    }

    /// The weight bound this scheduler promises relative to the exact
    /// maximum-weight matching (enforced slot by slot by
    /// [`build_checked`](WeightedKind::build_checked)).
    pub fn guarantee(self) -> WeightGuarantee {
        match self {
            WeightedKind::Mwm => WeightGuarantee::Exact,
            WeightedKind::Lqf | WeightedKind::Ocf => WeightGuarantee::HalfOfOptimal,
            WeightedKind::NwGreedy => WeightGuarantee::Heuristic,
        }
    }

    /// Builds a weighted scheduler instance. None of the weighted
    /// schedulers has a word-parallel kernel, so there is no backend
    /// parameter; the registry's [`BackendChoice`] story for them is
    /// uniformly [`BackendChoice::NoKernel`].
    pub fn build(self, n: usize) -> Box<dyn WeightedScheduler + Send> {
        match self {
            WeightedKind::Lqf => Box::new(GreedyWeight::new(n, "lqf")),
            WeightedKind::Ocf => Box::new(GreedyWeight::new(n, "ocf")),
            WeightedKind::Mwm => Box::new(MaxWeightMatcher::new(n)),
            WeightedKind::NwGreedy => Box::new(NodeWeightedGreedy::new(n)),
        }
    }

    /// Like [`WeightedKind::build`], but wraps the scheduler in a
    /// [`CheckedWeightedScheduler`](crate::check::CheckedWeightedScheduler)
    /// that validates every matching (permutation validity, grant ⊆
    /// positive-weight request, maximality) and holds the scheduler to its
    /// [`WeightedKind::guarantee`] against a Hungarian oracle. The
    /// simulator's weighted path uses this in debug builds.
    #[cfg(feature = "check-invariants")]
    pub fn build_checked(self, n: usize) -> Box<dyn WeightedScheduler + Send> {
        Box::new(crate::check::CheckedWeightedScheduler::new(
            self.build(n),
            self.guarantee(),
        ))
    }
}

impl std::fmt::Display for WeightedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestMatrix;

    #[test]
    fn names_roundtrip() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::from_name("outbuf"), None);
    }

    #[test]
    fn build_produces_matching_scheduler() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(8, 4, 1);
            assert_eq!(s.num_ports(), 8);
            assert_eq!(s.name(), kind.name());
            // Single-request matrices satisfy even the FIFO precondition.
            let requests = RequestMatrix::from_pairs(8, [(3, 5)]);
            let m = s.schedule(&requests);
            assert_eq!(
                m.output_for(3),
                Some(5),
                "{kind} must grant the only request"
            );
        }
    }

    #[test]
    fn iterative_flags() {
        assert!(SchedulerKind::Pim.is_iterative());
        assert!(SchedulerKind::LcfDist.is_iterative());
        assert!(!SchedulerKind::LcfCentral.is_iterative());
        assert!(!SchedulerKind::Wavefront.is_iterative());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", SchedulerKind::LcfCentralRr), "lcf_central_rr");
    }

    #[test]
    fn backend_choice_honors_request_at_any_port_count() {
        let kind = SchedulerKind::LcfCentralRr;
        for n in [8, 64, 100, 256, 1024] {
            assert_eq!(
                kind.resolve_backend(n, Backend::Bitset),
                BackendChoice::AsRequested(Backend::Bitset),
                "multi-word kernels must serve n = {n}"
            );
            assert_eq!(
                kind.resolve_backend(n, Backend::Scalar),
                BackendChoice::AsRequested(Backend::Scalar)
            );
        }
        // Schedulers without a kernel ignore the request entirely.
        assert_eq!(
            SchedulerKind::MaxSize.resolve_backend(8, Backend::Bitset),
            BackendChoice::NoKernel
        );
    }

    #[test]
    fn scalar_fallback_variant_stays_loud() {
        // No scheduler constructs ScalarFallback today, but the reporting
        // surface must stay meaningful for the bench fallback asserts.
        let fallback = BackendChoice::ScalarFallback { n: 100 };
        assert!(fallback.is_fallback());
        assert_eq!(fallback.effective(), Backend::Scalar);
        assert!(fallback.to_string().contains("n = 100"));
        assert!(!BackendChoice::AsRequested(Backend::Bitset).is_fallback());
        assert!(!BackendChoice::NoKernel.is_fallback());
    }

    #[test]
    fn build_with_backend_returns_the_resolved_choice() {
        let (s, choice) = SchedulerKind::Islip.build_with_backend(100, 4, 1, Backend::Bitset);
        assert_eq!(s.num_ports(), 100);
        assert_eq!(choice, BackendChoice::AsRequested(Backend::Bitset));
        for kind in [
            SchedulerKind::LcfCentral,
            SchedulerKind::Islip,
            SchedulerKind::Pim,
            SchedulerKind::Wavefront,
        ] {
            let (_, choice) = kind.build_with_backend(256, 4, 1, Backend::Bitset);
            assert_eq!(
                choice,
                BackendChoice::AsRequested(Backend::Bitset),
                "{kind} must run the bitset kernel at n = 256"
            );
        }
    }

    #[test]
    fn panic_probe_is_hidden_but_addressable() {
        assert!(!SchedulerKind::ALL.contains(&SchedulerKind::FaultProbe));
        assert_eq!(
            SchedulerKind::from_name("panic_probe"),
            Some(SchedulerKind::FaultProbe)
        );
        assert_eq!(SchedulerKind::FaultProbe.name(), "panic_probe");
        let (s, choice) = SchedulerKind::FaultProbe.build_with_backend(4, 1, 0, Backend::default());
        assert_eq!(s.num_ports(), 4);
        assert_eq!(choice, BackendChoice::NoKernel);
    }

    #[test]
    #[should_panic(expected = "deliberate scheduler fault")]
    fn panic_probe_panics_on_schedule() {
        let mut s = SchedulerKind::FaultProbe.build(4, 1, 0);
        let _ = s.schedule(&RequestMatrix::full(4));
    }

    #[cfg(feature = "check-invariants")]
    #[test]
    fn build_checked_validates_and_shadows() {
        for kind in SchedulerKind::ALL {
            let (mut s, _) = kind.build_checked(8, 4, 1, Backend::default());
            let requests = RequestMatrix::from_pairs(8, [(3, 5)]);
            let m = s.schedule(&requests);
            assert_eq!(m.output_for(3), Some(5), "{kind}");
        }
    }

    #[test]
    fn weighted_names_roundtrip() {
        for kind in WeightedKind::ALL {
            assert_eq!(WeightedKind::from_name(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(WeightedKind::from_name("lcf_central"), None);
    }

    #[test]
    fn weighted_build_produces_matching_scheduler() {
        use crate::weighted::WeightMatrix;
        for kind in WeightedKind::ALL {
            let mut s = kind.build(8);
            assert_eq!(s.num_ports(), 8);
            assert_eq!(s.name(), kind.name());
            let w = WeightMatrix::from_triples(8, [(3, 5, 7)]);
            let m = s.schedule_weighted(&w);
            assert_eq!(
                m.output_for(3),
                Some(5),
                "{kind} must grant the only request"
            );
        }
    }

    #[test]
    fn weighted_guarantees_and_flags() {
        use crate::weighted::WeightGuarantee;
        assert_eq!(WeightedKind::Mwm.guarantee(), WeightGuarantee::Exact);
        assert_eq!(
            WeightedKind::Lqf.guarantee(),
            WeightGuarantee::HalfOfOptimal
        );
        assert_eq!(
            WeightedKind::Ocf.guarantee(),
            WeightGuarantee::HalfOfOptimal
        );
        assert_eq!(
            WeightedKind::NwGreedy.guarantee(),
            WeightGuarantee::Heuristic
        );
        assert!(WeightedKind::Ocf.age_weighted());
        assert!(!WeightedKind::Lqf.age_weighted());
        assert!(!WeightedKind::Mwm.age_weighted());
    }

    #[test]
    fn mwm_kind_is_registered_like_the_other_reference() {
        assert!(SchedulerKind::ALL.contains(&SchedulerKind::MaxWeight));
        assert_eq!(
            SchedulerKind::from_name("mwm"),
            Some(SchedulerKind::MaxWeight)
        );
        assert!(SchedulerKind::MaxWeight.guarantees_maximal());
        assert!(!SchedulerKind::MaxWeight.has_kernel());
        assert!(!SchedulerKind::MaxWeight.is_iterative());
        assert_eq!(
            SchedulerKind::MaxWeight.resolve_backend(8, Backend::Bitset),
            BackendChoice::NoKernel
        );
    }

    #[cfg(feature = "check-invariants")]
    #[test]
    fn weighted_build_checked_validates() {
        use crate::weighted::WeightMatrix;
        for kind in WeightedKind::ALL {
            let mut s = kind.build_checked(8);
            assert_eq!(s.name(), kind.name());
            let w = WeightMatrix::from_triples(8, [(3, 5, 7), (2, 5, 3), (2, 1, 1)]);
            let m = s.schedule_weighted(&w);
            assert_eq!(m.output_for(3), Some(5), "{kind}");
            assert_eq!(m.output_for(2), Some(1), "{kind}");
        }
    }
}
