//! Name-based scheduler construction for experiment harnesses.

use crate::bitkern::Backend;
use crate::fifo_rr::FifoRr;
use crate::islip::Islip;
use crate::lcf::{CentralLcf, DistributedLcf};
use crate::maxsize::MaxSizeMatcher;
use crate::pim::Pim;
use crate::traits::Scheduler;
use crate::wavefront::Wavefront;

/// The schedulers evaluated in the paper's Fig. 12, plus the maximum-size
/// reference. (`outbuf` is a switch architecture, not a scheduler, and lives
/// in `lcf-sim`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SchedulerKind {
    Fifo,
    LcfCentral,
    LcfCentralRr,
    LcfDist,
    LcfDistRr,
    Pim,
    Islip,
    Wavefront,
    MaxSize,
}

impl SchedulerKind {
    /// All kinds, in the order the paper's Fig. 12 legend lists them
    /// (best-documented first), with the reference matcher last.
    pub const ALL: [SchedulerKind; 9] = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::LcfDist,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
        SchedulerKind::Fifo,
        SchedulerKind::MaxSize,
    ];

    /// The seven VOQ-based practical schedulers of Fig. 12 (excludes `fifo`,
    /// which needs the single-FIFO queue model, and the reference matcher).
    pub const VOQ_PRACTICAL: [SchedulerKind; 7] = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::LcfDist,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
    ];

    /// The paper's name for this scheduler (Fig. 12 legend).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::LcfCentral => "lcf_central",
            SchedulerKind::LcfCentralRr => "lcf_central_rr",
            SchedulerKind::LcfDist => "lcf_dist",
            SchedulerKind::LcfDistRr => "lcf_dist_rr",
            SchedulerKind::Pim => "pim",
            SchedulerKind::Islip => "islip",
            SchedulerKind::Wavefront => "wfront",
            SchedulerKind::MaxSize => "maxsize",
        }
    }

    /// Parses a paper name back into a kind.
    pub fn from_name(name: &str) -> Option<SchedulerKind> {
        SchedulerKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// True for the iterative schedulers whose `iterations` parameter the
    /// paper pins to 4 in the Fig. 12 experiment.
    pub fn is_iterative(self) -> bool {
        matches!(
            self,
            SchedulerKind::LcfDist
                | SchedulerKind::LcfDistRr
                | SchedulerKind::Pim
                | SchedulerKind::Islip
        )
    }

    /// True if the scheduler expects single-FIFO (head-of-line only) inputs.
    pub fn wants_fifo_queues(self) -> bool {
        self == SchedulerKind::Fifo
    }

    /// Builds a scheduler instance with the default (word-parallel) kernel
    /// backend.
    ///
    /// * `iterations` — budget for the iterative schedulers (ignored by the
    ///   others).
    /// * `seed` — RNG seed (used by PIM only).
    pub fn build(self, n: usize, iterations: usize, seed: u64) -> Box<dyn Scheduler + Send> {
        self.build_with_backend(n, iterations, seed, Backend::default())
    }

    /// Like [`SchedulerKind::build`], but selects the matching-kernel
    /// [`Backend`] for the schedulers that have a word-parallel fast path
    /// (`lcf_central*`, `islip`, `pim`, `wfront`). The scalar backend is the
    /// reference implementation; both produce bit-identical matchings, so
    /// this is a performance dial and a differential-testing hook, never a
    /// semantic switch. Schedulers without a bitset kernel ignore the
    /// choice.
    pub fn build_with_backend(
        self,
        n: usize,
        iterations: usize,
        seed: u64,
        backend: Backend,
    ) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerKind::Fifo => Box::new(FifoRr::new(n)),
            SchedulerKind::LcfCentral => Box::new(CentralLcf::pure(n).with_backend(backend)),
            SchedulerKind::LcfCentralRr => {
                Box::new(CentralLcf::with_round_robin(n).with_backend(backend))
            }
            SchedulerKind::LcfDist => Box::new(DistributedLcf::pure(n, iterations)),
            SchedulerKind::LcfDistRr => Box::new(DistributedLcf::with_round_robin(n, iterations)),
            SchedulerKind::Pim => Box::new(Pim::new(n, iterations, seed).with_backend(backend)),
            SchedulerKind::Islip => Box::new(Islip::new(n, iterations).with_backend(backend)),
            SchedulerKind::Wavefront => Box::new(Wavefront::new(n).with_backend(backend)),
            SchedulerKind::MaxSize => Box::new(MaxSizeMatcher::new(n)),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestMatrix;

    #[test]
    fn names_roundtrip() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::from_name("outbuf"), None);
    }

    #[test]
    fn build_produces_matching_scheduler() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build(8, 4, 1);
            assert_eq!(s.num_ports(), 8);
            assert_eq!(s.name(), kind.name());
            // Single-request matrices satisfy even the FIFO precondition.
            let requests = RequestMatrix::from_pairs(8, [(3, 5)]);
            let m = s.schedule(&requests);
            assert_eq!(
                m.output_for(3),
                Some(5),
                "{kind} must grant the only request"
            );
        }
    }

    #[test]
    fn iterative_flags() {
        assert!(SchedulerKind::Pim.is_iterative());
        assert!(SchedulerKind::LcfDist.is_iterative());
        assert!(!SchedulerKind::LcfCentral.is_iterative());
        assert!(!SchedulerKind::Wavefront.is_iterative());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", SchedulerKind::LcfCentralRr), "lcf_central_rr");
    }
}
