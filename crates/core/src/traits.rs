//! The scheduler interface.

use crate::matching::Matching;
use crate::request::RequestMatrix;

/// A switch scheduler: computes a conflict-free matching for one time slot.
///
/// Schedulers are stateful — round-robin pointers, diagonals and RNGs evolve
/// from slot to slot — which is why [`schedule`](Scheduler::schedule) takes
/// `&mut self`. Every implementation guarantees:
///
/// * the returned matching [`is_valid_for`](Matching::is_valid_for) the
///   request matrix (only requested pairs are connected, no conflicts), and
/// * `requests.n() == self.num_ports()` is required (checked with an assert).
pub trait Scheduler {
    /// Short identifier matching the names used in the paper's Fig. 12
    /// legend (`lcf_central`, `pim`, `islip`, …).
    fn name(&self) -> &'static str;

    /// Number of switch ports this scheduler instance was built for.
    fn num_ports(&self) -> usize;

    /// Computes the matching for the next time slot and advances internal
    /// round-robin state.
    fn schedule(&mut self, requests: &RequestMatrix) -> Matching;

    /// Resets all internal state (pointers, RNG is *not* reseeded).
    fn reset(&mut self) {}

    /// Enables or disables per-decision tracing. While tracing, a scheduler
    /// records *why* each grant happened; the records are collected with
    /// [`drain_events`](Scheduler::drain_events). Default: ignored —
    /// schedulers without instrumentation trace nothing.
    ///
    /// Tracing never changes the schedule: instrumented schedulers route to
    /// their scalar reference kernel while tracing, which is bit-identical
    /// to the word-parallel kernel by contract.
    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains the decision events recorded since the last drain into
    /// `sink`. Events are stamped with slot 0 — the simulation loop
    /// re-stamps them with the current slot. Default: no events.
    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, _sink: &mut dyn FnMut(lcf_telemetry::Event)) {}
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn num_ports(&self) -> usize {
        (**self).num_ports()
    }

    fn schedule(&mut self, requests: &RequestMatrix) -> Matching {
        (**self).schedule(requests)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        (**self).set_tracing(enabled)
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        (**self).drain_events(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcf::CentralLcf;

    #[test]
    fn boxed_scheduler_delegates() {
        let mut boxed: Box<dyn Scheduler> = Box::new(CentralLcf::with_round_robin(4));
        assert_eq!(boxed.num_ports(), 4);
        assert_eq!(boxed.name(), "lcf_central_rr");
        let requests = RequestMatrix::from_pairs(4, [(0, 0)]);
        let m = boxed.schedule(&requests);
        assert_eq!(m.size(), 1);
        boxed.reset();
    }
}
