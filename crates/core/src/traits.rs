//! The scheduler interface.

use crate::matching::Matching;
use crate::request::RequestMatrix;

/// A switch scheduler: computes a conflict-free matching for one time slot.
///
/// Schedulers are stateful — round-robin pointers, diagonals and RNGs evolve
/// from slot to slot — which is why
/// [`schedule_into`](Scheduler::schedule_into) takes `&mut self`. Every
/// implementation guarantees:
///
/// * the produced matching [`is_valid_for`](Matching::is_valid_for) the
///   request matrix (only requested pairs are connected, no conflicts), and
/// * `requests.n() == self.num_ports()` is required (checked with an assert).
///
/// # Hot-path memory contract
///
/// `schedule_into` is the primary entry point and must not allocate: the
/// caller owns the output buffer (reused slot after slot), and per-call
/// scratch lives in the scheduler as workhorse state sized at construction.
/// The buffer may arrive *dirty* — implementations [`Matching::reset`] it
/// before granting, so stale pairs from the previous slot can never leak
/// into the new schedule. The repo-specific `hot-path-alloc` lint rule
/// enforces the no-allocation side mechanically. [`schedule`] is a
/// convenience shim for tests and one-shot callers; it allocates a fresh
/// buffer per call and delegates.
///
/// [`schedule`]: Scheduler::schedule
pub trait Scheduler {
    /// Short identifier matching the names used in the paper's Fig. 12
    /// legend (`lcf_central`, `pim`, `islip`, …).
    fn name(&self) -> &'static str;

    /// Number of switch ports this scheduler instance was built for.
    fn num_ports(&self) -> usize;

    /// Computes the matching for the next time slot into `out` (resetting
    /// it first — the buffer may be dirty) and advances internal
    /// round-robin state. This is the allocation-free primary method; see
    /// the trait-level hot-path memory contract.
    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching);

    /// Computes the matching for the next time slot and advances internal
    /// round-robin state. Convenience shim over
    /// [`schedule_into`](Scheduler::schedule_into): allocates a fresh
    /// output buffer per call, so keep it out of per-slot loops.
    fn schedule(&mut self, requests: &RequestMatrix) -> Matching {
        let mut out = Matching::new(self.num_ports());
        self.schedule_into(requests, &mut out);
        out
    }

    /// Resets all internal state (pointers, RNG is *not* reseeded).
    fn reset(&mut self) {}

    /// Enables or disables per-decision tracing. While tracing, a scheduler
    /// records *why* each grant happened; the records are collected with
    /// [`drain_events`](Scheduler::drain_events). Default: ignored —
    /// schedulers without instrumentation trace nothing.
    ///
    /// Tracing never changes the schedule: instrumented schedulers route to
    /// their scalar reference kernel while tracing, which is bit-identical
    /// to the word-parallel kernel by contract.
    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains the decision events recorded since the last drain into
    /// `sink`. Events are stamped with slot 0 — the simulation's shared
    /// `drive()` loop re-stamps them with the current slot before they
    /// enter the trace. Default: no events.
    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, _sink: &mut dyn FnMut(lcf_telemetry::Event)) {}
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn num_ports(&self) -> usize {
        (**self).num_ports()
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        (**self).schedule_into(requests, out)
    }

    fn schedule(&mut self, requests: &RequestMatrix) -> Matching {
        (**self).schedule(requests)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        (**self).set_tracing(enabled)
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        (**self).drain_events(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcf::CentralLcf;

    #[test]
    fn boxed_scheduler_delegates() {
        let mut boxed: Box<dyn Scheduler> = Box::new(CentralLcf::with_round_robin(4));
        assert_eq!(boxed.num_ports(), 4);
        assert_eq!(boxed.name(), "lcf_central_rr");
        let requests = RequestMatrix::from_pairs(4, [(0, 0)]);
        let m = boxed.schedule(&requests);
        assert_eq!(m.size(), 1);
        boxed.reset();
    }

    #[test]
    fn boxed_schedule_into_resets_a_dirty_buffer() {
        let mut boxed: Box<dyn Scheduler> = Box::new(CentralLcf::with_round_robin(4));
        let requests = RequestMatrix::from_pairs(4, [(1, 2)]);
        // Dirty buffer of the wrong size with a stale pair.
        let mut out = Matching::from_pairs(3, [(0, 0)]);
        boxed.schedule_into(&requests, &mut out);
        assert_eq!(out.n(), 4);
        assert_eq!(out.pairs().collect::<Vec<_>>(), vec![(1, 2)]);
    }
}
