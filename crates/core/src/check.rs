//! Machine-checked schedule invariants — the `ScheduleChecker`.
//!
//! The paper's central claims are structural: every slot produces a
//! conflict-free matching, grants are a subset of requests, the greedy
//! schedulers produce *maximal* matchings, and the rotating round-robin
//! position gives Central LCF its hard `b/n²` bandwidth floor. This module
//! turns those claims into executable checks that run on every matching a
//! scheduler emits:
//!
//! * [`check_matching`] — permutation validity (no input or output matched
//!   twice, sizes agree) and grant ⊆ request,
//! * [`check_maximal`] — no augmenting single edge exists (an unmatched
//!   input still requesting an unmatched output),
//! * [`check_central_precedence`] — the Fig. 2 round-robin precedence rules
//!   of [`CentralLcf`](crate::lcf::CentralLcf), replayed from the request
//!   matrix, the pre-advance `(I, J)` pointer and the produced matching,
//! * [`CheckedScheduler`] — a wrapper that validates every matching at the
//!   [`Matching`] seam and optionally runs a scalar *shadow* scheduler to
//!   assert bit-identical scalar-vs-bitset agreement slot by slot.
//!
//! The module is compiled behind the `check-invariants` feature (a default
//! feature of `lcf-core`). The simulator wires [`CheckedScheduler`] into its
//! slot loop in debug builds only, so release throughput is unaffected while
//! every `cargo test` run double-checks each scheduling decision.

use crate::lcf::RrPolicy;
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;
use crate::weighted::{matching_weight, WeightGuarantee, WeightMatrix, WeightedScheduler};

/// A violated schedule invariant, with the witnessing ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The matching and the request matrix disagree on the port count.
    SizeMismatch {
        /// Port count of the matching.
        matching_n: usize,
        /// Port count of the request matrix.
        requests_n: usize,
    },
    /// The two direction maps of the matching disagree — some port is
    /// matched twice (never reachable through [`Matching::connect`]).
    Conflict,
    /// The matching connects a pair nobody requested.
    Ungranted {
        /// Input of the unrequested connection.
        input: usize,
        /// Output of the unrequested connection.
        output: usize,
    },
    /// An augmenting single edge exists: `input` is unmatched, requests
    /// `output`, and `output` is unmatched too.
    NotMaximal {
        /// The unmatched requesting input.
        input: usize,
        /// The unmatched requested output.
        output: usize,
    },
    /// A round-robin precedence rule of Central LCF was not honored.
    RrPrecedence {
        /// The fairness policy whose rule was violated.
        policy: RrPolicy,
        /// The input that should have been favored.
        input: usize,
        /// The output the favored input should have won.
        output: usize,
        /// What the matching actually gave that input.
        got: Option<usize>,
    },
    /// Scalar and bitset kernels produced different matchings for the same
    /// request matrix (they are required to be bit-identical).
    BackendDivergence {
        /// Name of the diverging scheduler.
        scheduler: &'static str,
    },
    /// A weighted matching connected a pair whose weight is zero — the
    /// weighted analogue of [`Violation::Ungranted`].
    ZeroWeightGrant {
        /// Input of the zero-weight connection.
        input: usize,
        /// Output of the zero-weight connection.
        output: usize,
    },
    /// A weighted scheduler's matching fell short of the weight bound its
    /// [`WeightGuarantee`] promises relative to the Hungarian optimum.
    WeightBound {
        /// Total weight the scheduler achieved.
        achieved: u128,
        /// Exact maximum-weight matching value for the same matrix.
        optimal: u128,
        /// The promise that was broken.
        guarantee: WeightGuarantee,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::SizeMismatch {
                matching_n,
                requests_n,
            } => write!(
                f,
                "matching is over {matching_n} ports but requests over {requests_n}"
            ),
            Violation::Conflict => write!(f, "matching is not conflict-free"),
            Violation::Ungranted { input, output } => write!(
                f,
                "matching connects ({input}, {output}) which was never requested"
            ),
            Violation::NotMaximal { input, output } => write!(
                f,
                "augmenting edge exists: unmatched input {input} requests unmatched output {output}"
            ),
            Violation::RrPrecedence {
                policy,
                input,
                output,
                got,
            } => write!(
                f,
                "{policy:?} precedence: input {input} should have won output {output}, got {got:?}"
            ),
            Violation::BackendDivergence { scheduler } => {
                write!(f, "{scheduler}: scalar and bitset kernels diverged")
            }
            Violation::ZeroWeightGrant { input, output } => write!(
                f,
                "matching connects ({input}, {output}) whose weight is zero"
            ),
            Violation::WeightBound {
                achieved,
                optimal,
                guarantee,
            } => write!(
                f,
                "weight bound broken: achieved {achieved} vs optimal {optimal} under {guarantee:?}"
            ),
        }
    }
}

/// Checks permutation validity and grant ⊆ request.
///
/// Passes iff the matching is over the same port count as `requests`, is
/// conflict-free (no input or output appears twice across both direction
/// maps), and only connects requested pairs.
pub fn check_matching(requests: &RequestMatrix, matching: &Matching) -> Result<(), Violation> {
    if matching.n() != requests.n() {
        return Err(Violation::SizeMismatch {
            matching_n: matching.n(),
            requests_n: requests.n(),
        });
    }
    if !matching.is_conflict_free() {
        return Err(Violation::Conflict);
    }
    for (i, j) in matching.pairs() {
        if !requests.get(i, j) {
            return Err(Violation::Ungranted {
                input: i,
                output: j,
            });
        }
    }
    Ok(())
}

/// Checks maximality: no unmatched input may still request an unmatched
/// output (the "no augmenting single edge" condition). Returns the witness
/// edge on failure.
pub fn check_maximal(requests: &RequestMatrix, matching: &Matching) -> Result<(), Violation> {
    for i in 0..matching.n() {
        if matching.input_matched(i) {
            continue;
        }
        for j in requests.row_ones(i) {
            if !matching.output_matched(j) {
                return Err(Violation::NotMaximal {
                    input: i,
                    output: j,
                });
            }
        }
    }
    Ok(())
}

/// Checks the weighted analogue of [`check_matching`] + [`check_maximal`]:
/// permutation validity, grant ⊆ positive-weight request, and maximality
/// over the positive-weight pattern. Maximality is unconditional here
/// because every weighted scheduler in the repo (edge-greedy, node-weighted
/// greedy, Hungarian) produces maximal matchings — with non-negative
/// weights, a non-maximal matching is always improvable by the uncovered
/// positive edge.
///
/// Allocation-free, so the simulator's slot loop can run it per slot.
pub fn check_weighted_matching(
    weights: &WeightMatrix,
    matching: &Matching,
) -> Result<(), Violation> {
    let n = weights.n();
    if matching.n() != n {
        return Err(Violation::SizeMismatch {
            matching_n: matching.n(),
            requests_n: n,
        });
    }
    if !matching.is_conflict_free() {
        return Err(Violation::Conflict);
    }
    for (i, j) in matching.pairs() {
        if weights.get(i, j) == 0 {
            return Err(Violation::ZeroWeightGrant {
                input: i,
                output: j,
            });
        }
    }
    for i in 0..n {
        if matching.input_matched(i) {
            continue;
        }
        for j in 0..n {
            if weights.get(i, j) > 0 && !matching.output_matched(j) {
                return Err(Violation::NotMaximal {
                    input: i,
                    output: j,
                });
            }
        }
    }
    Ok(())
}

/// A [`WeightedScheduler`] wrapper that validates every matching with
/// [`check_weighted_matching`] and holds the scheduler to its
/// [`WeightGuarantee`] against a Hungarian oracle
/// ([`MaxWeightMatcher`](crate::mwm::MaxWeightMatcher)): `Exact` matchings
/// must equal the optimum's weight, `HalfOfOptimal` must reach at least
/// half of it, and `Heuristic` skips the oracle (validity checks only).
///
/// Violations are programming errors, so `schedule_weighted` panics with
/// the [`Violation`] in the message — the same contract as
/// [`CheckedScheduler`]. Built by
/// [`WeightedKind::build_checked`](crate::registry::WeightedKind::build_checked);
/// the simulator's weighted path uses that constructor in debug builds.
pub struct CheckedWeightedScheduler {
    inner: Box<dyn WeightedScheduler + Send>,
    guarantee: WeightGuarantee,
    // Constructor-sized oracle: its scratch is reused across slots, so the
    // per-slot check honors the hot-path memory contract.
    oracle: crate::mwm::MaxWeightMatcher,
}

impl CheckedWeightedScheduler {
    /// Wraps `inner`, enforcing `guarantee` on every matching.
    pub fn new(inner: Box<dyn WeightedScheduler + Send>, guarantee: WeightGuarantee) -> Self {
        let oracle = crate::mwm::MaxWeightMatcher::new(inner.num_ports());
        CheckedWeightedScheduler {
            inner,
            guarantee,
            oracle,
        }
    }
}

impl WeightedScheduler for CheckedWeightedScheduler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn schedule_weighted_into(&mut self, weights: &WeightMatrix, out: &mut Matching) {
        self.inner.schedule_weighted_into(weights, out);
        if let Err(v) = check_weighted_matching(weights, out) {
            // lint:allow(no-panic): the checker's purpose is to abort on a broken scheduler invariant
            panic!("{}: weighted invariant violated: {v}", self.inner.name());
        }
        let bound_holds = |achieved: u128, optimal: u128| match self.guarantee {
            WeightGuarantee::Exact => achieved == optimal,
            WeightGuarantee::HalfOfOptimal => 2 * achieved >= optimal,
            WeightGuarantee::Heuristic => true,
        };
        if self.guarantee != WeightGuarantee::Heuristic {
            let achieved = matching_weight(weights, out);
            let optimal = self.oracle.max_matching_weight(weights);
            if !bound_holds(achieved, optimal) {
                let v = Violation::WeightBound {
                    achieved,
                    optimal,
                    guarantee: self.guarantee,
                };
                // lint:allow(no-panic): a broken approximation bound is a correctness bug, not a recoverable state
                panic!("{}: {v}", self.inner.name());
            }
        }
    }
}

/// Checks the round-robin precedence rules of
/// [`CentralLcf`](crate::lcf::CentralLcf) by replaying the Fig. 2 schedule
/// order from the *pre-advance* pointer offsets `(i_off, j_off)`.
///
/// The replay relies only on facts derivable from the inputs and the
/// produced matching: resources are scheduled in the order `res = 0..n`
/// (resource `(res + j_off) % n`), so the step at which each granted output
/// was scheduled is known, and a requester's row is intact at step `res` iff
/// its grant (if any) happened at step `≥ res`. The checkable rules per
/// policy:
///
/// * `Diagonal` — at every step whose diagonal requester still has its row
///   intact and requests the step's resource, that requester must win it.
/// * `SinglePosition` — if `[I, J]` is requested, input `I` must win `J`
///   (position `[I, J]` is examined at step 0, when nothing is withdrawn).
/// * `Row` — input `I` must win the first resource (in schedule order) that
///   it requests.
/// * `Column` — resource `J` must go to its first requester in the rotating
///   order starting at `I`, regardless of request counts.
/// * `PriorityDiagonal` — the pre-pass grants every requested diagonal
///   position whose input and output are still free, before anything else.
/// * `None` — no fairness rule; nothing to check.
pub fn check_central_precedence(
    policy: RrPolicy,
    i_off: usize,
    j_off: usize,
    requests: &RequestMatrix,
    matching: &Matching,
) -> Result<(), Violation> {
    let n = requests.n();
    // Step (in the Fig. 2 resource loop) at which output `o` was scheduled.
    let step_of = |o: usize| (o + n - j_off) % n;
    let require = |input: usize, output: usize| -> Result<(), Violation> {
        if matching.output_for(input) == Some(output) {
            Ok(())
        } else {
            Err(Violation::RrPrecedence {
                policy,
                input,
                output,
                got: matching.output_for(input),
            })
        }
    };

    match policy {
        RrPolicy::None => Ok(()),
        RrPolicy::Diagonal => {
            for res in 0..n {
                let resource = (res + j_off) % n;
                let diag = (i_off + res) % n;
                if !requests.get(diag, resource) {
                    continue;
                }
                // The diagonal requester's row was withdrawn before this
                // step iff it won an earlier-scheduled resource.
                let granted_earlier = matching.output_for(diag).is_some_and(|o| step_of(o) < res);
                if granted_earlier {
                    continue;
                }
                require(diag, resource)?;
            }
            Ok(())
        }
        RrPolicy::SinglePosition => {
            if requests.get(i_off, j_off) {
                require(i_off, j_off)?;
            }
            Ok(())
        }
        RrPolicy::Row => {
            for res in 0..n {
                let resource = (res + j_off) % n;
                if requests.get(i_off, resource) {
                    // First requested resource in schedule order: the
                    // favored row must win exactly this one.
                    return require(i_off, resource);
                }
            }
            Ok(())
        }
        RrPolicy::Column => {
            let winner = crate::arbiter::select_rotating(n, i_off, |req| requests.get(req, j_off));
            if let Some(w) = winner {
                require(w, j_off)?;
            }
            Ok(())
        }
        RrPolicy::PriorityDiagonal => {
            let mut in_used = vec![false; n];
            let mut out_used = vec![false; n];
            for res in 0..n {
                let di = (i_off + res) % n;
                let dj = (j_off + res) % n;
                if requests.get(di, dj) && !in_used[di] && !out_used[dj] {
                    require(di, dj)?;
                    in_used[di] = true;
                    out_used[dj] = true;
                }
            }
            Ok(())
        }
    }
}

/// Declarative checker for one scheduler's matchings.
///
/// Construct once per scheduler, then [`check`](ScheduleChecker::check)
/// every matching the scheduler emits. Maximality is opt-in because the
/// single-iteration iterative schedulers legitimately produce non-maximal
/// matchings.
///
/// ```
/// use lcf_core::check::ScheduleChecker;
/// use lcf_core::prelude::*;
///
/// let requests = RequestMatrix::from_pairs(4, [(0, 1), (2, 3)]);
/// let mut sched = CentralLcf::with_round_robin(4);
/// let m = sched.schedule(&requests);
/// ScheduleChecker::new().require_maximal(true).check(&requests, &m).unwrap();
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ScheduleChecker {
    maximal: bool,
}

impl ScheduleChecker {
    /// A checker that validates permutation validity and grant ⊆ request.
    pub fn new() -> Self {
        ScheduleChecker { maximal: false }
    }

    /// Additionally require maximality (builder style).
    pub fn require_maximal(mut self, yes: bool) -> Self {
        self.maximal = yes;
        self
    }

    /// Runs all configured checks against one scheduling decision.
    pub fn check(&self, requests: &RequestMatrix, matching: &Matching) -> Result<(), Violation> {
        check_matching(requests, matching)?;
        if self.maximal {
            check_maximal(requests, matching)?;
        }
        Ok(())
    }
}

/// A [`Scheduler`] wrapper that checks every matching at the [`Matching`]
/// seam, and optionally replays each request matrix through a *shadow*
/// scheduler (the scalar twin of a bitset-backed primary) to assert that
/// both kernels stay bit-identical slot after slot.
///
/// Violations are programming errors in a scheduler kernel, not runtime
/// conditions a caller could handle, so `schedule` panics with the
/// [`Violation`] rendered into the message. Built by
/// [`SchedulerKind::build_checked`](crate::registry::SchedulerKind::build_checked);
/// the simulator uses that constructor in debug builds.
pub struct CheckedScheduler {
    inner: Box<dyn Scheduler + Send>,
    shadow: Option<Box<dyn Scheduler + Send>>,
    checker: ScheduleChecker,
    // Reused output buffer for the shadow's matching, so the divergence
    // check honors the hot-path memory contract too.
    twin: Matching,
}

impl CheckedScheduler {
    /// Wraps `inner`, validating every matching with `checker`.
    pub fn new(inner: Box<dyn Scheduler + Send>, checker: ScheduleChecker) -> Self {
        let twin = Matching::new(inner.num_ports());
        CheckedScheduler {
            inner,
            shadow: None,
            checker,
            twin,
        }
    }

    /// Adds a shadow scheduler whose matchings must be identical to the
    /// primary's on every slot (builder style). The shadow must be the same
    /// algorithm over a different kernel backend, built with the same seed.
    pub fn with_shadow(mut self, shadow: Box<dyn Scheduler + Send>) -> Self {
        assert_eq!(
            shadow.num_ports(),
            self.inner.num_ports(),
            "shadow port count mismatch"
        );
        self.shadow = Some(shadow);
        self
    }
}

impl Scheduler for CheckedScheduler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        self.inner.schedule_into(requests, out);
        if let Err(v) = self.checker.check(requests, out) {
            // lint:allow(no-panic): the checker's purpose is to abort on a broken scheduler invariant
            panic!("{}: schedule invariant violated: {v}", self.inner.name());
        }
        if let Some(shadow) = &mut self.shadow {
            shadow.schedule_into(requests, &mut self.twin);
            if self.twin != *out {
                let v = Violation::BackendDivergence {
                    scheduler: self.inner.name(),
                };
                // lint:allow(no-panic): kernel divergence is a correctness bug, not a recoverable state
                panic!("{v}: primary {out:?} vs shadow {:?}", self.twin);
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        if let Some(shadow) = &mut self.shadow {
            shadow.reset();
        }
    }

    // Tracing applies to the primary only: the shadow's job is divergence
    // detection, and tracing never changes a schedule.
    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        self.inner.set_tracing(enabled);
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        self.inner.drain_events(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcf::CentralLcf;

    fn requests() -> RequestMatrix {
        RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1), (2, 3)])
    }

    #[test]
    fn valid_matching_passes() {
        let m = Matching::from_pairs(4, [(0, 0), (1, 1), (2, 3)]);
        assert_eq!(check_matching(&requests(), &m), Ok(()));
        assert_eq!(check_maximal(&requests(), &m), Ok(()));
    }

    #[test]
    fn ungranted_pair_is_caught() {
        let m = Matching::from_pairs(4, [(3, 2)]);
        assert_eq!(
            check_matching(&requests(), &m),
            Err(Violation::Ungranted {
                input: 3,
                output: 2
            })
        );
    }

    #[test]
    fn size_mismatch_is_caught() {
        let m = Matching::new(3);
        assert!(matches!(
            check_matching(&requests(), &m),
            Err(Violation::SizeMismatch { .. })
        ));
    }

    #[test]
    fn augmenting_edge_is_caught() {
        // Input 2 could still reach free output 3.
        let m = Matching::from_pairs(4, [(0, 0), (1, 1)]);
        assert_eq!(
            check_maximal(&requests(), &m),
            Err(Violation::NotMaximal {
                input: 2,
                output: 3
            })
        );
    }

    #[test]
    fn checker_builder_combines_rules() {
        let m = Matching::from_pairs(4, [(0, 0), (1, 1)]);
        assert!(ScheduleChecker::new().check(&requests(), &m).is_ok());
        assert!(ScheduleChecker::new()
            .require_maximal(true)
            .check(&requests(), &m)
            .is_err());
    }

    #[test]
    fn diagonal_precedence_violation_is_caught() {
        // I = 1, J = 0: requester 1 requests resource 0 with its row intact
        // at step 0, so (1, 0) must be granted. Granting (0, 0) instead is a
        // precedence violation.
        let r = requests();
        let bad = Matching::from_pairs(4, [(0, 0), (1, 1)]);
        let err = check_central_precedence(RrPolicy::Diagonal, 1, 0, &r, &bad);
        assert_eq!(
            err,
            Err(Violation::RrPrecedence {
                policy: RrPolicy::Diagonal,
                input: 1,
                output: 0,
                got: Some(1),
            })
        );
        let good = Matching::from_pairs(4, [(1, 0), (2, 3)]);
        assert_eq!(
            check_central_precedence(RrPolicy::Diagonal, 1, 0, &r, &good),
            Ok(())
        );
    }

    #[test]
    fn diagonal_precedence_accepts_earlier_withdrawal() {
        // I = 0, J = 0 over requests where input 1 requests both 0 and 1.
        // If input 1 won resource 0 at step 0, its row is withdrawn at step
        // 1 and the diagonal position (1, 1) imposes nothing.
        let r = RequestMatrix::from_pairs(4, [(1, 0), (1, 1)]);
        let m = Matching::from_pairs(4, [(1, 0)]);
        assert_eq!(
            check_central_precedence(RrPolicy::Diagonal, 1, 0, &r, &m),
            Ok(())
        );
    }

    #[test]
    fn real_scheduler_satisfies_its_own_precedence() {
        for policy in [
            RrPolicy::None,
            RrPolicy::SinglePosition,
            RrPolicy::Row,
            RrPolicy::Column,
            RrPolicy::Diagonal,
            RrPolicy::PriorityDiagonal,
        ] {
            let mut sched = CentralLcf::with_policy(4, policy);
            for _ in 0..20 {
                let (i, j) = sched.pointer();
                let m = sched.schedule(&requests());
                assert_eq!(
                    check_central_precedence(policy, i, j, &requests(), &m),
                    Ok(()),
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn checked_scheduler_delegates_and_passes() {
        let inner = Box::new(CentralLcf::with_round_robin(4));
        let mut checked =
            CheckedScheduler::new(inner, ScheduleChecker::new().require_maximal(true))
                .with_shadow(Box::new(CentralLcf::with_round_robin(4)));
        assert_eq!(checked.name(), "lcf_central_rr");
        assert_eq!(checked.num_ports(), 4);
        for _ in 0..10 {
            let m = checked.schedule(&requests());
            assert!(m.is_valid_for(&requests()));
        }
        checked.reset();
    }

    #[test]
    #[should_panic(expected = "scalar and bitset kernels diverged")]
    fn checked_scheduler_catches_shadow_divergence() {
        // A desynchronized shadow (pointer advanced once) diverges on the
        // Fig. 3 matrix.
        let inner = Box::new(CentralLcf::with_round_robin(4));
        let mut shadow = CentralLcf::with_round_robin(4);
        shadow.advance_pointer();
        let mut checked =
            CheckedScheduler::new(inner, ScheduleChecker::new()).with_shadow(Box::new(shadow));
        let r = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1)]);
        let _ = checked.schedule(&r);
    }

    #[test]
    fn violation_messages_render() {
        let v = Violation::Ungranted {
            input: 1,
            output: 2,
        };
        assert!(v.to_string().contains("(1, 2)"));
        let v = Violation::BackendDivergence { scheduler: "pim" };
        assert!(v.to_string().contains("pim"));
        let v = Violation::ZeroWeightGrant {
            input: 0,
            output: 3,
        };
        assert!(v.to_string().contains("(0, 3)"));
        let v = Violation::WeightBound {
            achieved: 10,
            optimal: 18,
            guarantee: WeightGuarantee::Exact,
        };
        assert!(v.to_string().contains("10"));
        assert!(v.to_string().contains("18"));
    }

    fn weights() -> WeightMatrix {
        WeightMatrix::from_triples(4, [(0, 0, 5), (1, 0, 2), (1, 1, 9), (2, 3, 1)])
    }

    #[test]
    fn weighted_valid_matching_passes() {
        let m = Matching::from_pairs(4, [(0, 0), (1, 1), (2, 3)]);
        assert_eq!(check_weighted_matching(&weights(), &m), Ok(()));
    }

    #[test]
    fn weighted_zero_weight_grant_is_caught() {
        let m = Matching::from_pairs(4, [(3, 2)]);
        assert_eq!(
            check_weighted_matching(&weights(), &m),
            Err(Violation::ZeroWeightGrant {
                input: 3,
                output: 2
            })
        );
    }

    #[test]
    fn weighted_non_maximal_is_caught() {
        // Input 2 could still reach free output 3 with positive weight.
        let m = Matching::from_pairs(4, [(0, 0), (1, 1)]);
        assert_eq!(
            check_weighted_matching(&weights(), &m),
            Err(Violation::NotMaximal {
                input: 2,
                output: 3
            })
        );
    }

    #[test]
    fn weighted_size_mismatch_is_caught() {
        let m = Matching::new(3);
        assert!(matches!(
            check_weighted_matching(&weights(), &m),
            Err(Violation::SizeMismatch { .. })
        ));
    }

    #[test]
    fn checked_weighted_scheduler_passes_honest_schedulers() {
        use crate::registry::WeightedKind;
        for kind in WeightedKind::ALL {
            let mut s = CheckedWeightedScheduler::new(kind.build(4), kind.guarantee());
            assert_eq!(s.num_ports(), 4);
            for _ in 0..10 {
                let m = s.schedule_weighted(&weights());
                assert!(m.is_valid_for(&weights().to_requests()), "{kind}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight bound broken")]
    fn checked_weighted_scheduler_catches_false_exactness_claim() {
        // Greedy takes the 10 edge and strands 9 + 9 = 18; claiming Exact
        // for it must abort on the trap matrix.
        use crate::weighted::GreedyWeight;
        let w = WeightMatrix::from_triples(2, [(0, 0, 10), (1, 0, 9), (0, 1, 9)]);
        let mut s = CheckedWeightedScheduler::new(
            Box::new(GreedyWeight::new(2, "lqf")),
            WeightGuarantee::Exact,
        );
        let _ = s.schedule_weighted(&w);
    }

    #[test]
    #[should_panic(expected = "weighted invariant violated")]
    fn checked_weighted_scheduler_catches_zero_weight_grants() {
        /// A broken scheduler that grants the full diagonal regardless of
        /// the weights.
        struct DiagonalAlways {
            n: usize,
        }
        impl WeightedScheduler for DiagonalAlways {
            fn name(&self) -> &'static str {
                "diag_always"
            }
            fn num_ports(&self) -> usize {
                self.n
            }
            fn schedule_weighted_into(&mut self, _w: &WeightMatrix, out: &mut Matching) {
                out.reset(self.n);
                for i in 0..self.n {
                    out.connect(i, i);
                }
            }
        }
        let mut s = CheckedWeightedScheduler::new(
            Box::new(DiagonalAlways { n: 4 }),
            WeightGuarantee::Heuristic,
        );
        // (3, 3) has weight zero here, so the grant must be rejected.
        let _ = s.schedule_weighted(&weights());
    }
}
