//! Maximum-size bipartite matching via Hopcroft–Karp.
//!
//! The paper's Sec. 1 discusses maximum-size matching as the throughput
//! upper bound that is "too slow for high-speed networking and leads to
//! starvation". We implement it as a *reference*: the EXT-1 experiment
//! measures how close each practical scheduler's matching size comes to the
//! true maximum, and the property-test suite uses it as an oracle.
//!
//! Complexity: `O(E · √V)` (Hopcroft & Karp 1973, reference \[7\] of the paper).

use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;

const INF: usize = usize::MAX;
const NIL: usize = usize::MAX;

/// Hopcroft–Karp maximum-size matcher.
///
/// ```
/// use lcf_core::prelude::*;
///
/// // A greedy matcher might take (0,0) and strand input 1; maximum is 2.
/// let requests = RequestMatrix::from_pairs(2, [(0, 0), (0, 1), (1, 0)]);
/// let mut hk = MaxSizeMatcher::new(2);
/// assert_eq!(hk.max_matching_size(&requests), 2);
/// ```
///
/// Stateless between slots (no fairness mechanism whatsoever — the paper's
/// point is precisely that this *cannot* be used as a switch scheduler
/// as-is), but implements [`Scheduler`] so it can be dropped into the same
/// harness as the practical algorithms.
#[derive(Clone, Debug)]
pub struct MaxSizeMatcher {
    n: usize,
    // Scratch buffers reused across calls.
    match_input: Vec<usize>,
    match_output: Vec<usize>,
    dist: Vec<usize>,
    queue: Vec<usize>,
}

impl MaxSizeMatcher {
    /// Creates a matcher for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "matcher requires n > 0");
        MaxSizeMatcher {
            n,
            match_input: vec![NIL; n],
            match_output: vec![NIL; n],
            dist: vec![INF; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// Size of a maximum matching for `requests` (without materializing it).
    pub fn max_matching_size(&mut self, requests: &RequestMatrix) -> usize {
        self.run(requests)
    }

    fn run(&mut self, requests: &RequestMatrix) -> usize {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        let n = self.n;
        self.match_input.fill(NIL);
        self.match_output.fill(NIL);
        let mut matching_size = 0;

        // Repeat BFS phase + DFS augmentation until no augmenting path exists.
        loop {
            // BFS from all free inputs to establish layered distances.
            self.queue.clear();
            for i in 0..n {
                if self.match_input[i] == NIL {
                    self.dist[i] = 0;
                    self.queue.push(i);
                } else {
                    self.dist[i] = INF;
                }
            }
            let mut found_augmenting = false;
            let mut head = 0;
            while head < self.queue.len() {
                let i = self.queue[head];
                head += 1;
                for j in requests.row_ones(i) {
                    let next = self.match_output[j];
                    if next == NIL {
                        found_augmenting = true;
                    } else if self.dist[next] == INF {
                        self.dist[next] = self.dist[i] + 1;
                        self.queue.push(next);
                    }
                }
            }
            if !found_augmenting {
                break;
            }

            // DFS along layered edges to augment vertex-disjoint paths.
            for i in 0..n {
                if self.match_input[i] == NIL && self.dfs(i, requests) {
                    matching_size += 1;
                }
            }
        }

        matching_size
    }

    fn dfs(&mut self, i: usize, requests: &RequestMatrix) -> bool {
        // Iterative DFS would obscure the algorithm; n is small (<= a few
        // thousand ports) and path length is bounded by n, so recursion is safe.
        let n = self.n;
        for j in 0..n {
            if !requests.get(i, j) {
                continue;
            }
            let next = self.match_output[j];
            if next == NIL || (self.dist[next] == self.dist[i] + 1 && self.dfs(next, requests)) {
                self.match_input[i] = j;
                self.match_output[j] = i;
                return true;
            }
        }
        self.dist[i] = INF;
        false
    }
}

impl Scheduler for MaxSizeMatcher {
    fn name(&self) -> &'static str {
        "maxsize"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        self.run(requests);
        out.reset(self.n);
        for i in 0..self.n {
            if self.match_input[i] != NIL {
                out.connect(i, self.match_input[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_requests() {
        let mut mx = MaxSizeMatcher::new(4);
        assert_eq!(mx.max_matching_size(&RequestMatrix::new(4)), 0);
    }

    #[test]
    fn full_matrix_perfect_matching() {
        let mut mx = MaxSizeMatcher::new(8);
        let requests = RequestMatrix::full(8);
        assert_eq!(mx.max_matching_size(&requests), 8);
        let m = mx.schedule(&requests);
        assert_eq!(m.size(), 8);
        assert!(m.is_valid_for(&requests));
    }

    #[test]
    fn diagonal_matrix() {
        let requests = RequestMatrix::from_fn(6, |i, j| i == j);
        let mut mx = MaxSizeMatcher::new(6);
        assert_eq!(mx.max_matching_size(&requests), 6);
    }

    #[test]
    fn finds_augmenting_path_greedy_misses() {
        // Greedy could match (0,0) and strand input 1; maximum is 2:
        // input 0 -> output 1, input 1 -> output 0.
        let requests = RequestMatrix::from_pairs(2, [(0, 0), (0, 1), (1, 0)]);
        let mut mx = MaxSizeMatcher::new(2);
        let m = mx.schedule(&requests);
        assert_eq!(m.size(), 2);
        assert!(m.is_valid_for(&requests));
    }

    #[test]
    fn star_pattern_maximum_is_one_plus() {
        // Inputs 1..4 all request only output 0; input 0 requests everything.
        // Maximum matching: one of 1..4 gets output 0, input 0 gets another
        // output -> size 2.
        let mut pairs = vec![(1, 0), (2, 0), (3, 0), (4, 0)];
        pairs.extend((0..5).map(|j| (0, j)));
        let requests = RequestMatrix::from_pairs(5, pairs);
        let mut mx = MaxSizeMatcher::new(5);
        assert_eq!(mx.max_matching_size(&requests), 2);
    }

    #[test]
    fn figure3_example_maximum_is_four() {
        let requests = RequestMatrix::from_pairs(
            4,
            [
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 0),
                (2, 2),
                (2, 3),
                (3, 1),
            ],
        );
        let mut mx = MaxSizeMatcher::new(4);
        assert_eq!(mx.max_matching_size(&requests), 4);
    }

    #[test]
    fn never_smaller_than_any_valid_matching() {
        use crate::lcf::CentralLcf;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let mut mx = MaxSizeMatcher::new(12);
        let mut lcf = CentralLcf::with_round_robin(12);
        for _ in 0..100 {
            let requests = RequestMatrix::random(12, 0.3, &mut rng);
            let upper = mx.max_matching_size(&requests);
            let practical = lcf.schedule(&requests).size();
            assert!(
                practical <= upper,
                "maximum-size matching is an upper bound"
            );
        }
    }

    #[test]
    fn reusable_across_calls() {
        let mut mx = MaxSizeMatcher::new(4);
        assert_eq!(mx.max_matching_size(&RequestMatrix::full(4)), 4);
        assert_eq!(mx.max_matching_size(&RequestMatrix::new(4)), 0);
        assert_eq!(mx.max_matching_size(&RequestMatrix::full(4)), 4);
    }
}
