//! Word-parallel kernels for the matching schedulers.
//!
//! For switches with `n <= 64` ports — every configuration the paper
//! evaluates — a whole request-matrix row fits in one `u64`, so the scans
//! that dominate scheduler inner loops collapse into word operations:
//!
//! * candidate filtering is a single `AND` of a column mask against a
//!   free-inputs mask,
//! * rotating-priority selection ("first requester at or after the
//!   pointer") is two `trailing_zeros` probes on a split mask,
//! * NRQ maintenance is `count_ones` on row words,
//! * uniform random choice among candidates is a popcount plus a
//!   k-th-set-bit select.
//!
//! Each scheduler keeps its scalar implementation as the reference — the
//! bit kernels are required (and property-tested) to produce *identical*
//! matchings, grant for grant, so the scalar path stays selectable via
//! [`Backend::Scalar`] for differential testing and for `n > 64`.

use crate::bitmat::BitMatrix;

/// Largest port count the single-word kernels handle: one row per `u64`.
pub const WORD_PORTS: usize = 64;

/// Which matching-kernel implementation a scheduler uses.
///
/// `Bitset` is the default; schedulers silently fall back to the scalar
/// reference when `n >` [`WORD_PORTS`], so the choice is a pure performance
/// dial and never changes results: both backends are bit-identical by
/// construction (enforced by equivalence property tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Reference implementation: index arithmetic and per-bit probes.
    Scalar,
    /// Word-parallel implementation on `u64` row/column masks.
    #[default]
    Bitset,
}

impl Backend {
    /// Registry/CLI name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Bitset => "bitset",
        }
    }

    /// Parses a backend name.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "bitset" => Some(Backend::Bitset),
            _ => None,
        }
    }

    /// True if the word kernels apply for an `n`-port switch.
    #[inline]
    pub fn word_parallel(self, n: usize) -> bool {
        self == Backend::Bitset && n <= WORD_PORTS
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A mask with bits `[0, n)` set.
///
/// # Panics
/// Panics (in debug) if `n` is 0 or exceeds [`WORD_PORTS`].
#[inline]
pub fn mask_n(n: usize) -> u64 {
    debug_assert!((1..=WORD_PORTS).contains(&n));
    if n == WORD_PORTS {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Loads each row of `m` into one word of `rows`. Requires `n <= 64`.
pub fn load_rows(m: &BitMatrix, rows: &mut Vec<u64>) {
    let n = m.n();
    assert!(n <= WORD_PORTS, "load_rows requires n <= {WORD_PORTS}");
    rows.clear();
    rows.extend((0..n).map(|i| m.row_words(i)[0]));
}

/// Computes per-column masks (the transpose): bit `i` of `cols[j]` is bit
/// `j` of `rows[i]`. Runs in `O(set bits)`.
pub fn col_masks(rows: &[u64], cols: &mut Vec<u64>) {
    cols.clear();
    cols.resize(rows.len(), 0);
    for (i, &row) in rows.iter().enumerate() {
        let mut r = row;
        while r != 0 {
            let j = r.trailing_zeros() as usize;
            r &= r - 1;
            cols[j] |= 1u64 << i;
        }
    }
}

/// First set bit of `mask` in the rotating order
/// `start, start+1, …, start+n-1 (mod n)` — the word-parallel form of
/// [`select_rotating`](crate::arbiter::select_rotating). Bits of `mask` at
/// or beyond `n` must be zero.
#[inline]
pub fn rotating_first(mask: u64, n: usize, start: usize) -> Option<usize> {
    debug_assert!(start < n && n <= WORD_PORTS);
    debug_assert_eq!(mask & !mask_n(n), 0, "mask has bits beyond n");
    // Two probes: the segment [start, n) wins outright; otherwise wrap to
    // [0, start). `start < 64` so the shifts are in range.
    let upper = mask & (u64::MAX << start);
    if upper != 0 {
        return Some(upper.trailing_zeros() as usize);
    }
    let lower = mask & !(u64::MAX << start);
    if lower != 0 {
        return Some(lower.trailing_zeros() as usize);
    }
    None
}

/// The position of the `k`-th set bit of `mask` (ascending, 0-based).
///
/// # Panics
/// Panics (in debug) if `mask` has fewer than `k + 1` set bits.
#[inline]
pub fn kth_set_bit(mask: u64, k: usize) -> usize {
    debug_assert!((mask.count_ones() as usize) > k, "k-th set bit absent");
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros() as usize
}

/// Among the set bits of `mask`, the index minimizing `key`, ties broken by
/// the rotating order starting at `start` — the word-parallel form of
/// [`min_rotating`](crate::arbiter::min_rotating) restricted to mask
/// membership. Bits of `mask` at or beyond `n` must be zero.
#[inline]
pub fn min_key_rotating(mask: u64, n: usize, start: usize, key: &[usize]) -> Option<usize> {
    debug_assert!(start < n && n <= WORD_PORTS);
    let mut best: Option<(usize, usize)> = None; // (key, idx)
                                                 // Enumerating [start, n) ascending then [0, start) ascending visits the
                                                 // candidates in exactly the rotating order, so keeping the first strict
                                                 // minimum reproduces the scalar tie-break.
    let upper = mask & (u64::MAX << start);
    let lower = mask & !(u64::MAX << start);
    for part in [upper, lower] {
        let mut m = part;
        while m != 0 {
            let idx = m.trailing_zeros() as usize;
            m &= m - 1;
            let kv = key[idx];
            match best {
                Some((bk, _)) if bk <= kv => {}
                _ => best = Some((kv, idx)),
            }
        }
    }
    best.map(|(_, idx)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{min_rotating, select_rotating};

    #[test]
    fn mask_n_extremes() {
        assert_eq!(mask_n(1), 1);
        assert_eq!(mask_n(5), 0b11111);
        assert_eq!(mask_n(64), u64::MAX);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Bitset] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("simd"), None);
        assert_eq!(Backend::default(), Backend::Bitset);
    }

    #[test]
    fn word_parallel_gate() {
        assert!(Backend::Bitset.word_parallel(64));
        assert!(!Backend::Bitset.word_parallel(65));
        assert!(!Backend::Scalar.word_parallel(8));
    }

    #[test]
    fn load_rows_and_col_masks_transpose() {
        let m = BitMatrix::from_fn(37, |i, j| (i * 7 + j * 3) % 5 == 0);
        let mut rows = Vec::new();
        load_rows(&m, &mut rows);
        let mut cols = Vec::new();
        col_masks(&rows, &mut cols);
        for (i, row) in rows.iter().enumerate() {
            for (j, col) in cols.iter().enumerate() {
                assert_eq!(row >> j & 1 == 1, m.get(i, j));
                assert_eq!(col >> i & 1 == 1, m.get(i, j));
            }
        }
    }

    #[test]
    fn rotating_first_matches_select_rotating() {
        for n in [1, 2, 7, 31, 64] {
            for seed in 0..50u64 {
                let mask = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(seed as u32)
                    & mask_n(n);
                for start in 0..n {
                    let scalar = select_rotating(n, start, |i| mask >> i & 1 == 1);
                    assert_eq!(
                        rotating_first(mask, n, start),
                        scalar,
                        "n={n} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    fn kth_set_bit_enumerates_ascending() {
        let mask = 0b1011_0101u64;
        let expected = [0usize, 2, 4, 5, 7];
        for (k, &bit) in expected.iter().enumerate() {
            assert_eq!(kth_set_bit(mask, k), bit);
        }
        assert_eq!(kth_set_bit(u64::MAX, 63), 63);
    }

    #[test]
    fn min_key_rotating_matches_min_rotating() {
        let n = 16;
        for seed in 0..50u64 {
            let mask = seed.wrapping_mul(0xD134_2543_DE82_EF95) & mask_n(n);
            let key: Vec<usize> = (0..n)
                .map(|i| (seed as usize).wrapping_mul(i + 3) % 5)
                .collect();
            for start in 0..n {
                let scalar = min_rotating(n, start, |i| (mask >> i & 1 == 1).then_some(key[i]));
                assert_eq!(
                    min_key_rotating(mask, n, start, &key),
                    scalar,
                    "seed={seed} start={start}"
                );
            }
        }
    }
}
