//! Word-parallel kernels for the matching schedulers.
//!
//! A request-matrix row for an `n`-port switch is a mask of
//! `words_for(n)` 64-bit words: bit `dst % 64` of word `dst / 64` is set
//! iff the row requests destination `dst`. This is the packed layout of
//! [`BitMatrix::row_words`]/[`BitMatrix::set_row_words`] and of the
//! simulator's `VoqSet::occupancy_words`, so request rows flow from VOQ
//! occupancy bitmaps into the kernels without any per-bit translation.
//! On these masks the scans that dominate scheduler inner loops collapse
//! into word operations:
//!
//! * candidate filtering is a word-wise `AND` of a column mask against a
//!   free-inputs mask,
//! * rotating-priority selection ("first requester at or after the
//!   pointer") is a short word walk with two `trailing_zeros` probes on a
//!   split boundary word,
//! * NRQ maintenance is `count_ones` over row words,
//! * uniform random choice among candidates is a popcount plus a
//!   k-th-set-bit select.
//!
//! For `n <= 64` — every configuration the paper evaluates — a row is a
//! single word and the kernels degenerate to the classic one-`u64` forms.
//! Larger switches (n = 128/256/1024, the data-center-scale regimes) use
//! the same entry points with more words per row; nothing falls back to
//! the scalar reference.
//!
//! Each scheduler keeps its scalar implementation as the reference — the
//! bit kernels are required (and property-tested) to produce *identical*
//! matchings, grant for grant, so the scalar path stays selectable via
//! [`Backend::Scalar`] for differential testing.
//!
//! All multi-word entry points check their length/range contracts with
//! release-mode asserts: a caller that hands a short mask or an
//! out-of-range index gets a loud panic, never a silently truncated mask.

use crate::bitmat::BitMatrix;

/// Bits per mask word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words in an `n`-bit row mask.
///
/// # Panics
/// Panics if `n` is 0 — every kernel mask covers at least one port.
#[inline]
pub fn words_for(n: usize) -> usize {
    assert!(n > 0, "kernel masks require n > 0");
    n.div_ceil(WORD_BITS)
}

/// Which matching-kernel implementation a scheduler uses.
///
/// `Bitset` is the default and handles every port count — rows wider than
/// one word use multi-word masks — so the choice is a pure performance
/// dial and never changes results: both backends are bit-identical by
/// construction (enforced by equivalence property tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Reference implementation: index arithmetic and per-bit probes.
    Scalar,
    /// Word-parallel implementation on `u64` row/column masks.
    #[default]
    Bitset,
}

impl Backend {
    /// Registry/CLI name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Bitset => "bitset",
        }
    }

    /// Parses a backend name.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "bitset" => Some(Backend::Bitset),
            _ => None,
        }
    }

    /// True if the word kernels apply. The kernels are multi-word, so this
    /// depends only on the backend, not on the port count: `Bitset` runs
    /// word-parallel at any `n`.
    #[inline]
    pub fn word_parallel(self) -> bool {
        self == Backend::Bitset
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single word with bits `[0, n)` set, for `n <= 64` (the last-word mask
/// of a multi-word row; the whole-row form is [`mask_fill`]).
///
/// # Panics
/// Panics if `n` is 0 or exceeds [`WORD_BITS`] — checked in release too,
/// because an oversized `n` would silently wrap the shift amount.
#[inline]
pub fn mask_n(n: usize) -> u64 {
    assert!(
        (1..=WORD_BITS).contains(&n),
        "mask_n requires 1 <= n <= {WORD_BITS}"
    );
    if n == WORD_BITS {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Fills `out` with the all-ports mask: bits `[0, n)` set, bits at or
/// beyond `n` zero.
///
/// # Panics
/// Panics if `out.len() != words_for(n)`.
pub fn mask_fill(out: &mut [u64], n: usize) {
    let w = words_for(n);
    assert_eq!(
        out.len(),
        w,
        "mask_fill: mask has {} words, n = {n} needs {w}",
        out.len()
    );
    out[..w - 1].fill(u64::MAX);
    out[w - 1] = mask_n(n - (w - 1) * WORD_BITS);
}

/// True if bit `idx` of the mask is set.
///
/// # Panics
/// Panics if `idx` is at or beyond the mask's width.
#[inline]
pub fn test_bit(mask: &[u64], idx: usize) -> bool {
    mask[idx / WORD_BITS] >> (idx % WORD_BITS) & 1 == 1
}

/// Sets bit `idx` of the mask.
///
/// # Panics
/// Panics if `idx` is at or beyond the mask's width.
#[inline]
pub fn set_bit(mask: &mut [u64], idx: usize) {
    mask[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
}

/// Clears bit `idx` of the mask.
///
/// # Panics
/// Panics if `idx` is at or beyond the mask's width.
#[inline]
pub fn clear_bit(mask: &mut [u64], idx: usize) {
    mask[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
}

/// Number of set bits in the mask.
#[inline]
pub fn popcount(mask: &[u64]) -> usize {
    mask.iter().map(|w| w.count_ones() as usize).sum()
}

/// Loads every row of `m` into `rows` as one flat `n × words_for(n)` block:
/// row `i` occupies `rows[i * w..(i + 1) * w]` in the [`BitMatrix::row_words`]
/// layout. Allocation-free once `rows` has capacity for `n * w` words.
pub fn load_rows(m: &BitMatrix, rows: &mut Vec<u64>) {
    rows.clear();
    for i in 0..m.n() {
        rows.extend_from_slice(m.row_words(i));
    }
}

/// Computes per-column masks (the transpose): bit `i % 64` of word `i / 64`
/// of column `j`'s mask (at `cols[j * w..(j + 1) * w]`) is bit `j` of row
/// `i`. Runs in `O(n * w + set bits)`.
///
/// # Panics
/// Panics if `rows.len() != n * words_for(n)`.
pub fn col_masks(rows: &[u64], n: usize, cols: &mut Vec<u64>) {
    let w = words_for(n);
    assert_eq!(rows.len(), n * w, "col_masks: rows not n x w for n = {n}");
    cols.clear();
    cols.resize(n * w, 0);
    for i in 0..n {
        let (iw, ib) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
        for wi in 0..w {
            let mut word = rows[i * w + wi];
            while word != 0 {
                let j = wi * WORD_BITS + word.trailing_zeros() as usize;
                word &= word - 1;
                cols[j * w + iw] |= ib;
            }
        }
    }
}

/// First set bit of `mask` in the rotating order
/// `start, start+1, …, start+n-1 (mod n)` — the word-parallel form of
/// [`select_rotating`](crate::arbiter::select_rotating). Bits of `mask` at
/// or beyond `n` must be zero.
///
/// # Panics
/// Panics if `start >= n` or `mask.len() != words_for(n)` — checked in
/// release too; the bits-beyond-`n` contract is debug-asserted.
pub fn rotating_first(mask: &[u64], n: usize, start: usize) -> Option<usize> {
    let w = words_for(n);
    assert!(
        start < n,
        "rotating_first: start {start} out of range for n = {n}"
    );
    assert_eq!(
        mask.len(),
        w,
        "rotating_first: mask has {} words, n = {n} needs {w}",
        mask.len()
    );
    debug_assert!(excess_is_zero(mask, n), "mask has bits beyond n");
    let (sw, sb) = (start / WORD_BITS, start % WORD_BITS);
    // Segment [start, n): the boundary word with bits below `start`
    // cleared, then the remaining words in ascending order.
    let boundary = mask[sw] & (u64::MAX << sb);
    if boundary != 0 {
        return Some(sw * WORD_BITS + boundary.trailing_zeros() as usize);
    }
    for (wi, &word) in mask.iter().enumerate().skip(sw + 1) {
        if word != 0 {
            return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
        }
    }
    // Wrap segment [0, start): full words, then the boundary word with
    // bits at or above `start` cleared.
    for (wi, &word) in mask.iter().enumerate().take(sw) {
        if word != 0 {
            return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
        }
    }
    let boundary = mask[sw] & !(u64::MAX << sb);
    if boundary != 0 {
        return Some(sw * WORD_BITS + boundary.trailing_zeros() as usize);
    }
    None
}

/// The position of the `k`-th set bit of `mask` (ascending, 0-based).
///
/// # Panics
/// Panics if `mask` has fewer than `k + 1` set bits — checked in release
/// too: a wrapped pick would silently skew PIM's uniform choice.
pub fn kth_set_bit(mask: &[u64], k: usize) -> usize {
    let mut k = k;
    for (wi, &word) in mask.iter().enumerate() {
        let ones = word.count_ones() as usize;
        if k < ones {
            let mut m = word;
            for _ in 0..k {
                m &= m - 1;
            }
            return wi * WORD_BITS + m.trailing_zeros() as usize;
        }
        k -= ones;
    }
    // lint:allow(no-panic): caller contract — the mask must hold > k set bits
    panic!("kth_set_bit: k-th set bit absent");
}

/// Among the set bits of `mask`, the index minimizing `key`, ties broken by
/// the rotating order starting at `start` — the word-parallel form of
/// [`min_rotating`](crate::arbiter::min_rotating) restricted to mask
/// membership. Bits of `mask` at or beyond `n` must be zero.
///
/// # Panics
/// Panics if `start >= n`, `mask.len() != words_for(n)` or `key` is shorter
/// than `n` — checked in release too.
pub fn min_key_rotating(mask: &[u64], n: usize, start: usize, key: &[usize]) -> Option<usize> {
    let w = words_for(n);
    assert!(
        start < n,
        "min_key_rotating: start {start} out of range for n = {n}"
    );
    assert_eq!(
        mask.len(),
        w,
        "min_key_rotating: mask has {} words, n = {n} needs {w}",
        mask.len()
    );
    assert!(key.len() >= n, "min_key_rotating: key table shorter than n");
    debug_assert!(excess_is_zero(mask, n), "mask has bits beyond n");
    let (sw, sb) = (start / WORD_BITS, start % WORD_BITS);
    // Visiting [start, n) ascending then [0, start) ascending enumerates
    // the candidates in exactly the rotating order, so keeping the first
    // strict minimum reproduces the scalar tie-break.
    let mut best: Option<(usize, usize)> = None; // (key, idx)
    let mut consider = |wi: usize, word: u64| {
        let mut word = word;
        while word != 0 {
            let idx = wi * WORD_BITS + word.trailing_zeros() as usize;
            word &= word - 1;
            let kv = key[idx];
            match best {
                Some((bk, _)) if bk <= kv => {}
                _ => best = Some((kv, idx)),
            }
        }
    };
    consider(sw, mask[sw] & (u64::MAX << sb));
    for (wi, &word) in mask.iter().enumerate().skip(sw + 1) {
        consider(wi, word);
    }
    for (wi, &word) in mask.iter().enumerate().take(sw) {
        consider(wi, word);
    }
    consider(sw, mask[sw] & !(u64::MAX << sb));
    best.map(|(_, idx)| idx)
}

/// True if every bit at or beyond `n` is zero (the mask contract).
fn excess_is_zero(mask: &[u64], n: usize) -> bool {
    let w = words_for(n);
    let used = n - (w - 1) * WORD_BITS;
    let excess_last = if used == WORD_BITS {
        0
    } else {
        mask[w - 1] >> used
    };
    excess_last == 0 && mask[w..].iter().all(|&word| word == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{min_rotating, select_rotating};

    /// Port counts crossing every word-boundary case: single word, exact
    /// boundary, boundary + 1, and multi-word interiors.
    const SIZES: [usize; 10] = [1, 2, 7, 31, 64, 65, 127, 128, 192, 256];

    /// A deterministic pseudo-random w-word mask for port count n.
    fn mask_for(n: usize, seed: u64) -> Vec<u64> {
        let w = words_for(n);
        let mut mask: Vec<u64> = (0..w as u64)
            .map(|wi| {
                (seed ^ wi.wrapping_mul(0xA076_1D64_78BD_642F))
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((seed + wi) as u32)
            })
            .collect();
        let used = n - (w - 1) * WORD_BITS;
        mask[w - 1] &= mask_n(used);
        mask
    }

    #[test]
    fn mask_n_extremes() {
        assert_eq!(mask_n(1), 1);
        assert_eq!(mask_n(5), 0b11111);
        assert_eq!(mask_n(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "mask_n requires")]
    fn mask_n_rejects_oversize_in_release_too() {
        let _ = mask_n(65);
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
        assert_eq!(words_for(1024), 16);
    }

    #[test]
    fn mask_fill_matches_bit_loop() {
        for n in SIZES {
            let mut mask = vec![0u64; words_for(n)];
            mask_fill(&mut mask, n);
            assert_eq!(popcount(&mask), n, "n = {n}");
            for idx in 0..n {
                assert!(test_bit(&mask, idx), "n = {n} idx = {idx}");
            }
            assert!(excess_is_zero(&mask, n), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "mask_fill")]
    fn mask_fill_rejects_short_mask() {
        let mut mask = vec![0u64; 1];
        mask_fill(&mut mask, 65);
    }

    #[test]
    fn bit_ops_roundtrip() {
        let mut mask = vec![0u64; 4];
        for idx in [0, 63, 64, 130, 255] {
            assert!(!test_bit(&mask, idx));
            set_bit(&mut mask, idx);
            assert!(test_bit(&mask, idx));
        }
        assert_eq!(popcount(&mask), 5);
        clear_bit(&mut mask, 64);
        assert!(!test_bit(&mask, 64));
        assert_eq!(popcount(&mask), 4);
    }

    #[test]
    #[should_panic]
    fn test_bit_out_of_range_is_loud() {
        let mask = vec![0u64; 2];
        let _ = test_bit(&mask, 128);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Bitset] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("simd"), None);
        assert_eq!(Backend::default(), Backend::Bitset);
    }

    #[test]
    fn word_parallel_is_backend_only() {
        // The multi-word kernels removed the n <= 64 cliff: the bitset
        // backend is word-parallel at every port count.
        assert!(Backend::Bitset.word_parallel());
        assert!(!Backend::Scalar.word_parallel());
    }

    #[test]
    fn load_rows_and_col_masks_transpose() {
        for n in [37, 64, 65, 130, 200] {
            let m = BitMatrix::from_fn(n, |i, j| (i * 7 + j * 3) % 5 == 0);
            let w = words_for(n);
            let mut rows = Vec::new();
            load_rows(&m, &mut rows);
            assert_eq!(rows.len(), n * w);
            let mut cols = Vec::new();
            col_masks(&rows, n, &mut cols);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(test_bit(&rows[i * w..(i + 1) * w], j), m.get(i, j));
                    assert_eq!(test_bit(&cols[j * w..(j + 1) * w], i), m.get(i, j));
                }
            }
        }
    }

    #[test]
    fn rotating_first_matches_select_rotating() {
        for n in SIZES {
            for seed in 0..20u64 {
                let mask = mask_for(n, seed);
                for start in (0..n).step_by((n / 9).max(1)) {
                    let scalar = select_rotating(n, start, |i| test_bit(&mask, i));
                    assert_eq!(
                        rotating_first(&mask, n, start),
                        scalar,
                        "n={n} seed={seed} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "rotating_first")]
    fn rotating_first_rejects_short_mask_in_release_too() {
        let mask = vec![u64::MAX; 1];
        let _ = rotating_first(&mask, 128, 0);
    }

    #[test]
    fn kth_set_bit_enumerates_ascending() {
        let mask = [0b1011_0101u64];
        let expected = [0usize, 2, 4, 5, 7];
        for (k, &bit) in expected.iter().enumerate() {
            assert_eq!(kth_set_bit(&mask, k), bit);
        }
        assert_eq!(kth_set_bit(&[u64::MAX], 63), 63);
        // Multi-word: bits straddling word boundaries enumerate in order.
        let mask = [1u64 << 63, 0b101u64, 0, 1u64 << 7];
        assert_eq!(kth_set_bit(&mask, 0), 63);
        assert_eq!(kth_set_bit(&mask, 1), 64);
        assert_eq!(kth_set_bit(&mask, 2), 66);
        assert_eq!(kth_set_bit(&mask, 3), 192 + 7);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn kth_set_bit_absent_is_loud_in_release_too() {
        let _ = kth_set_bit(&[0b11u64, 0], 2);
    }

    #[test]
    fn min_key_rotating_matches_min_rotating() {
        for n in SIZES {
            for seed in 0..20u64 {
                let mask = mask_for(n, seed.wrapping_mul(0xD134_2543_DE82_EF95));
                let key: Vec<usize> = (0..n)
                    .map(|i| (seed as usize).wrapping_mul(i + 3) % 5)
                    .collect();
                for start in (0..n).step_by((n / 7).max(1)) {
                    let scalar = min_rotating(n, start, |i| test_bit(&mask, i).then_some(key[i]));
                    assert_eq!(
                        min_key_rotating(&mask, n, start, &key),
                        scalar,
                        "n={n} seed={seed} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "key table")]
    fn min_key_rotating_rejects_short_key_in_release_too() {
        let mask = vec![0u64; 2];
        let key = vec![0usize; 64];
        let _ = min_key_rotating(&mask, 128, 0, &key);
    }
}
