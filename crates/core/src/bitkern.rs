//! Word-parallel kernels for the matching schedulers.
//!
//! A request-matrix row for an `n`-port switch is a mask of
//! `words_for(n)` 64-bit words: bit `dst % 64` of word `dst / 64` is set
//! iff the row requests destination `dst`. This is the packed layout of
//! [`BitMatrix::row_words`]/[`BitMatrix::set_row_words`] and of the
//! simulator's `VoqSet::occupancy_words`, so request rows flow from VOQ
//! occupancy bitmaps into the kernels without any per-bit translation.
//! On these masks the scans that dominate scheduler inner loops collapse
//! into word operations:
//!
//! * candidate filtering is a word-wise `AND` of a column mask against a
//!   free-inputs mask,
//! * rotating-priority selection ("first requester at or after the
//!   pointer") is a short word walk with two `trailing_zeros` probes on a
//!   split boundary word,
//! * NRQ maintenance is `count_ones` over row words,
//! * uniform random choice among candidates is a popcount plus a
//!   k-th-set-bit select.
//!
//! For `n <= 64` — every configuration the paper evaluates — a row is a
//! single word and the kernels degenerate to the classic one-`u64` forms.
//! Larger switches (n = 128/256/1024, the data-center-scale regimes) use
//! the same entry points with more words per row; nothing falls back to
//! the scalar reference.
//!
//! Each scheduler keeps its scalar implementation as the reference — the
//! bit kernels are required (and property-tested) to produce *identical*
//! matchings, grant for grant, so the scalar path stays selectable via
//! [`Backend::Scalar`] for differential testing.
//!
//! All multi-word entry points check their length/range contracts with
//! release-mode asserts: a caller that hands a short mask or an
//! out-of-range index gets a loud panic, never a silently truncated mask.

use crate::bitmat::BitMatrix;

/// Bits per mask word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words in an `n`-bit row mask.
///
/// # Panics
/// Panics if `n` is 0 — every kernel mask covers at least one port.
#[inline]
pub fn words_for(n: usize) -> usize {
    assert!(n > 0, "kernel masks require n > 0");
    n.div_ceil(WORD_BITS)
}

/// Which matching-kernel implementation a scheduler uses.
///
/// `Bitset` is the default and handles every port count — rows wider than
/// one word use multi-word masks — so the choice is a pure performance
/// dial and never changes results: both backends are bit-identical by
/// construction (enforced by equivalence property tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Reference implementation: index arithmetic and per-bit probes.
    Scalar,
    /// Word-parallel implementation on `u64` row/column masks.
    #[default]
    Bitset,
}

impl Backend {
    /// Registry/CLI name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Bitset => "bitset",
        }
    }

    /// Parses a backend name.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "bitset" => Some(Backend::Bitset),
            _ => None,
        }
    }

    /// True if the word kernels apply. The kernels are multi-word, so this
    /// depends only on the backend, not on the port count: `Bitset` runs
    /// word-parallel at any `n`.
    #[inline]
    pub fn word_parallel(self) -> bool {
        self == Backend::Bitset
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single word with bits `[0, n)` set, for `n <= 64` (the last-word mask
/// of a multi-word row; the whole-row form is [`mask_fill`]).
///
/// # Panics
/// Panics if `n` is 0 or exceeds [`WORD_BITS`] — checked in release too,
/// because an oversized `n` would silently wrap the shift amount.
#[inline]
pub fn mask_n(n: usize) -> u64 {
    assert!(
        (1..=WORD_BITS).contains(&n),
        "mask_n requires 1 <= n <= {WORD_BITS}"
    );
    if n == WORD_BITS {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Fills `out` with the all-ports mask: bits `[0, n)` set, bits at or
/// beyond `n` zero.
///
/// # Panics
/// Panics if `out.len() != words_for(n)`.
pub fn mask_fill(out: &mut [u64], n: usize) {
    let w = words_for(n);
    assert_eq!(
        out.len(),
        w,
        "mask_fill: mask has {} words, n = {n} needs {w}",
        out.len()
    );
    out[..w - 1].fill(u64::MAX);
    out[w - 1] = mask_n(n - (w - 1) * WORD_BITS);
}

/// True if bit `idx` of the mask is set.
///
/// # Panics
/// Panics if `idx` is at or beyond the mask's width.
#[inline]
pub fn test_bit(mask: &[u64], idx: usize) -> bool {
    mask[idx / WORD_BITS] >> (idx % WORD_BITS) & 1 == 1
}

/// Sets bit `idx` of the mask.
///
/// # Panics
/// Panics if `idx` is at or beyond the mask's width.
#[inline]
pub fn set_bit(mask: &mut [u64], idx: usize) {
    mask[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
}

/// Clears bit `idx` of the mask.
///
/// # Panics
/// Panics if `idx` is at or beyond the mask's width.
#[inline]
pub fn clear_bit(mask: &mut [u64], idx: usize) {
    mask[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
}

/// Number of set bits in the mask.
#[inline]
pub fn popcount(mask: &[u64]) -> usize {
    mask.iter().map(|w| w.count_ones() as usize).sum()
}

/// Loads every row of `m` into `rows` as one flat `n × words_for(n)` block:
/// row `i` occupies `rows[i * w..(i + 1) * w]` in the [`BitMatrix::row_words`]
/// layout. Allocation-free once `rows` has capacity for `n * w` words.
pub fn load_rows(m: &BitMatrix, rows: &mut Vec<u64>) {
    rows.clear();
    rows.extend_from_slice(m.all_words());
}

/// Transposes the leading `sub × sub` corner of a 64×64 bit block in
/// place, where `sub` is rounded up to a power of two: bit `j` of word `i`
/// moves to bit `i` of word `j`. Masked XOR block swaps (the recursive
/// half-block scheme from Hacker's Delight §7-3) — no per-bit work. Words
/// and bits at or beyond `sub` must be zero; they are left untouched, so
/// small matrices (the paper's n = 16/32 regimes) skip the outer stages
/// entirely: `sub/2 * log2(sub)` swap steps instead of a fixed `32 * 6`.
fn transpose64(a: &mut [u64; WORD_BITS], sub: usize) {
    let s = sub.next_power_of_two();
    let mut j = s >> 1;
    if j == 0 {
        return; // 1×1 block: transpose is the identity
    }
    // Stage mask: the high j bits of each 2j-bit group.
    let mut m: u64 = {
        let group = ((1u64 << j) - 1) << j;
        let mut mm = 0u64;
        let mut sh = 0;
        while sh < WORD_BITS {
            mm |= group << sh;
            sh += 2 * j;
        }
        mm
    };
    while j != 0 {
        let mut k = 0;
        while k < s {
            let t = (a[k] ^ (a[k + j] << j)) & m;
            a[k] ^= t;
            a[k + j] ^= t >> j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
}

/// Computes per-column masks (the transpose): bit `i % 64` of word `i / 64`
/// of column `j`'s mask (at `cols[j * w..(j + 1) * w]`) is bit `j` of row
/// `i`. Word-parallel: the matrix is processed as `w²` 64×64 blocks, each
/// transposed with [`transpose64`]'s masked XOR swaps; all-zero blocks are
/// skipped, so sparse matrices stay cheap while dense ones never pay a
/// per-set-bit loop.
///
/// # Panics
/// Panics if `rows.len() != n * words_for(n)`.
pub fn col_masks(rows: &[u64], n: usize, cols: &mut Vec<u64>) {
    let w = words_for(n);
    assert_eq!(rows.len(), n * w, "col_masks: rows not n x w for n = {n}");
    cols.clear();
    cols.resize(n * w, 0);
    let mut block = [0u64; WORD_BITS];
    for bi in 0..w {
        let i_lo = bi * WORD_BITS;
        let i_n = (n - i_lo).min(WORD_BITS);
        for bj in 0..w {
            let mut any = 0u64;
            for r in 0..i_n {
                let word = rows[(i_lo + r) * w + bj];
                block[r] = word;
                any |= word;
            }
            if any == 0 {
                continue; // cols is pre-zeroed; skip the empty block
            }
            let j_lo = bj * WORD_BITS;
            let j_n = (n - j_lo).min(WORD_BITS);
            block[i_n..].fill(0);
            transpose64(&mut block, i_n.max(j_n));
            for c in 0..j_n {
                cols[(j_lo + c) * w + bi] = block[c];
            }
        }
    }
}

/// First set bit of `mask` in the rotating order
/// `start, start+1, …, start+n-1 (mod n)` — the word-parallel form of
/// [`select_rotating`](crate::arbiter::select_rotating). Bits of `mask` at
/// or beyond `n` must be zero.
///
/// # Panics
/// Panics if `start >= n` or `mask.len() != words_for(n)` — checked in
/// release too; the bits-beyond-`n` contract is debug-asserted.
pub fn rotating_first(mask: &[u64], n: usize, start: usize) -> Option<usize> {
    let w = words_for(n);
    assert!(
        start < n,
        "rotating_first: start {start} out of range for n = {n}"
    );
    assert_eq!(
        mask.len(),
        w,
        "rotating_first: mask has {} words, n = {n} needs {w}",
        mask.len()
    );
    debug_assert!(excess_is_zero(mask, n), "mask has bits beyond n");
    let (sw, sb) = (start / WORD_BITS, start % WORD_BITS);
    // Segment [start, n): the boundary word with bits below `start`
    // cleared, then the remaining words in ascending order.
    let boundary = mask[sw] & (u64::MAX << sb);
    if boundary != 0 {
        return Some(sw * WORD_BITS + boundary.trailing_zeros() as usize);
    }
    for (wi, &word) in mask.iter().enumerate().skip(sw + 1) {
        if word != 0 {
            return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
        }
    }
    // Wrap segment [0, start): full words, then the boundary word with
    // bits at or above `start` cleared.
    for (wi, &word) in mask.iter().enumerate().take(sw) {
        if word != 0 {
            return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
        }
    }
    let boundary = mask[sw] & !(u64::MAX << sb);
    if boundary != 0 {
        return Some(sw * WORD_BITS + boundary.trailing_zeros() as usize);
    }
    None
}

/// The position of the `k`-th set bit of `mask` (ascending, 0-based).
///
/// # Panics
/// Panics if `mask` has fewer than `k + 1` set bits — checked in release
/// too: a wrapped pick would silently skew PIM's uniform choice.
pub fn kth_set_bit(mask: &[u64], k: usize) -> usize {
    let mut k = k;
    for (wi, &word) in mask.iter().enumerate() {
        let ones = word.count_ones() as usize;
        if k < ones {
            let mut m = word;
            for _ in 0..k {
                m &= m - 1;
            }
            return wi * WORD_BITS + m.trailing_zeros() as usize;
        }
        k -= ones;
    }
    // lint:allow(no-panic): caller contract — the mask must hold > k set bits
    panic!("kth_set_bit: k-th set bit absent");
}

/// Among the set bits of `mask`, the index minimizing `key`, ties broken by
/// the rotating order starting at `start` — the word-parallel form of
/// [`min_rotating`](crate::arbiter::min_rotating) restricted to mask
/// membership. Bits of `mask` at or beyond `n` must be zero.
///
/// # Panics
/// Panics if `start >= n`, `mask.len() != words_for(n)` or `key` is shorter
/// than `n` — checked in release too.
pub fn min_key_rotating(mask: &[u64], n: usize, start: usize, key: &[usize]) -> Option<usize> {
    let w = words_for(n);
    assert!(
        start < n,
        "min_key_rotating: start {start} out of range for n = {n}"
    );
    assert_eq!(
        mask.len(),
        w,
        "min_key_rotating: mask has {} words, n = {n} needs {w}",
        mask.len()
    );
    assert!(key.len() >= n, "min_key_rotating: key table shorter than n");
    debug_assert!(excess_is_zero(mask, n), "mask has bits beyond n");
    let (sw, sb) = (start / WORD_BITS, start % WORD_BITS);
    // Visiting [start, n) ascending then [0, start) ascending enumerates
    // the candidates in exactly the rotating order, so keeping the first
    // strict minimum reproduces the scalar tie-break.
    let mut best: Option<(usize, usize)> = None; // (key, idx)
    let mut consider = |wi: usize, word: u64| {
        let mut word = word;
        while word != 0 {
            let idx = wi * WORD_BITS + word.trailing_zeros() as usize;
            word &= word - 1;
            let kv = key[idx];
            match best {
                Some((bk, _)) if bk <= kv => {}
                _ => best = Some((kv, idx)),
            }
        }
    };
    consider(sw, mask[sw] & (u64::MAX << sb));
    for (wi, &word) in mask.iter().enumerate().skip(sw + 1) {
        consider(wi, word);
    }
    for (wi, &word) in mask.iter().enumerate().take(sw) {
        consider(wi, word);
    }
    consider(sw, mask[sw] & !(u64::MAX << sb));
    best.map(|(_, idx)| idx)
}

/// Among the set bits of `mask`, the index minimizing
/// `popcount(rows[i * w..][..w] & filter)` — the number of row-`i` request
/// bits surviving the `filter` mask — ties broken by the rotating order
/// starting at `start`. This is the lazy-NRQ form of [`min_key_rotating`]:
/// instead of maintaining a decremented count table and withdrawing rows
/// from every column on each grant, the caller keeps the *original* request
/// rows plus a mask of still-unscheduled resources, and the key is an
/// `AND`+`popcount` per candidate. Bits of `mask` at or beyond `n` must be
/// zero.
///
/// # Panics
/// Panics if `start >= n`, `mask.len() != words_for(n)`,
/// `rows.len() < n * words_for(n)`, or `filter.len() != words_for(n)` —
/// checked in release too.
pub fn min_overlap_rotating(
    mask: &[u64],
    n: usize,
    start: usize,
    rows: &[u64],
    filter: &[u64],
) -> Option<usize> {
    let w = words_for(n);
    assert!(
        start < n,
        "min_overlap_rotating: start {start} out of range for n = {n}"
    );
    assert_eq!(
        mask.len(),
        w,
        "min_overlap_rotating: mask has {} words, n = {n} needs {w}",
        mask.len()
    );
    assert!(
        rows.len() >= n * w,
        "min_overlap_rotating: rows shorter than n x w"
    );
    assert_eq!(
        filter.len(),
        w,
        "min_overlap_rotating: filter has {} words, n = {n} needs {w}",
        filter.len()
    );
    debug_assert!(excess_is_zero(mask, n), "mask has bits beyond n");
    if w == 1 {
        // Single-word fast path: rotate the candidate word so one ascending
        // trailing_zeros walk visits candidates in exactly the rotating
        // order. Valid bits all land below `n`, so masking off the shifted
        // overlap keeps the walk clean.
        let cand = mask[0];
        if cand == 0 {
            return None;
        }
        let rot = if start == 0 {
            cand
        } else if n == WORD_BITS {
            // lint:allow(truncating-cast): start < n <= 64 fits u32
            cand.rotate_right(start as u32)
        } else {
            ((cand >> start) | (cand << (n - start))) & mask_n(n)
        };
        let filter0 = filter[0];
        let mut best_key = u32::MAX;
        let mut best_idx = 0usize;
        let mut m = rot;
        while m != 0 {
            let mut idx = start + m.trailing_zeros() as usize;
            m &= m - 1;
            if idx >= n {
                idx -= n;
            }
            let kv = (rows[idx] & filter0).count_ones();
            if kv < best_key {
                best_key = kv;
                best_idx = idx;
            }
        }
        return Some(best_idx);
    }
    let (sw, sb) = (start / WORD_BITS, start % WORD_BITS);
    // Same rotating enumeration as `min_key_rotating`: [start, n) ascending
    // then [0, start) ascending, keeping the first strict minimum.
    let mut best_key = usize::MAX;
    let mut best_idx: Option<usize> = None;
    let mut consider = |wi: usize, word: u64| {
        let mut word = word;
        while word != 0 {
            let idx = wi * WORD_BITS + word.trailing_zeros() as usize;
            word &= word - 1;
            let row = &rows[idx * w..idx * w + w];
            let kv: usize = row
                .iter()
                .zip(filter)
                .map(|(r, f)| (r & f).count_ones() as usize)
                .sum();
            if kv < best_key {
                best_key = kv;
                best_idx = Some(idx);
            }
        }
    };
    consider(sw, mask[sw] & (u64::MAX << sb));
    for (wi, &word) in mask.iter().enumerate().skip(sw + 1) {
        consider(wi, word);
    }
    for (wi, &word) in mask.iter().enumerate().take(sw) {
        consider(wi, word);
    }
    consider(sw, mask[sw] & !(u64::MAX << sb));
    best_idx
}

// --- Packed 16-bit lane kernels (single-word masks, n <= 64) -------------
//
// The LCF min-NRQ scan visits every live requester of a resource; on dense
// heavy-traffic matrices that is Θ(n²/2) candidate probes per schedule. The
// lane kernels instead keep the NRQ table as packed 16-bit lanes (4 per
// word) and find the minimum — *including* the rotating tie-break — with
// word-parallel compares: each lane's search key is `(nrq << 7) | rotation
// position`, so one unsigned lane-min yields both the smallest count and,
// among ties, the first requester in the rotating order.

/// High bit of each 16-bit lane.
const H16: u64 = 0x8000_8000_8000_8000;
/// All-lanes sentinel: larger than any valid key, small enough that the
/// borrow-free SWAR compare stays per-lane.
const SENT16: u64 = 0x7FFF_7FFF_7FFF_7FFF;
/// 1 in each 16-bit lane.
const ONE16: u64 = 0x0001_0001_0001_0001;

/// Lane masks per 4-bit member nibble: entry `b` has lane `l` = `0xFFFF`
/// iff bit `l` of `b` is set.
const fn lane16_lut() -> [u64; 16] {
    let mut t = [0u64; 16];
    let mut b = 0;
    while b < 16 {
        let mut l = 0;
        while l < 4 {
            if (b >> l) & 1 == 1 {
                t[b] |= 0xFFFF << (16 * l);
            }
            l += 1;
        }
        b += 1;
    }
    t
}
static LANE16_LUT: [u64; 16] = lane16_lut();

/// Per-lane unsigned minimum; both operands' lanes must be `<= 0x7FFF` so
/// the `(a | H) - b` borrow trick never crosses a lane boundary.
#[inline]
fn min16(a: u64, b: u64) -> u64 {
    let ge = ((a | H16) - b) & H16; // lane high bit set iff a >= b
    let sel = (ge >> 15).wrapping_mul(0xFFFF); // 0xFFFF where a >= b
    a ^ ((a ^ b) & sel)
}

/// Number of 16-bit-lane words covering `n` lanes.
#[inline]
pub fn lane16_words(n: usize) -> usize {
    assert!(
        (1..=WORD_BITS).contains(&n),
        "lane16 kernels require 1 <= n <= {WORD_BITS}"
    );
    n.div_ceil(4)
}

/// The NRQ count's position within a lane: the low 7 bits hold the
/// rotation position, so a lane compares as `(count << 7) | rotation`.
const LANE16_COUNT_SHIFT: u32 = 7;

/// Builds the rotation-position table consumed by [`min_lane16_rotating`]:
/// for each `start` in `0..n`, `lane16_words(n)` words whose lane `i`
/// holds `(i - start) mod n`. Precomputing this (`n²/4` words, a few KB)
/// keeps the per-scan work to one load+add+mask+min per word.
///
/// # Panics
/// Panics if `n` is 0 or exceeds [`WORD_BITS`].
pub fn lane16_rot_table(n: usize) -> Vec<u64> {
    let nw = lane16_words(n);
    let mut table = vec![0u64; n * nw];
    for start in 0..n {
        for i in 0..n {
            let rot = ((i + n - start) % n) as u64;
            table[start * nw + i / 4] |= rot << (16 * (i % 4));
        }
    }
    table
}

/// Packs the popcount of each single-word row into 16-bit lanes: lane
/// `i % 4` of `keys16[i / 4]` becomes `rows[i].count_ones() << 7` (shifted
/// past the rotation-position field). This is the NRQ table layout
/// consumed by [`min_lane16_rotating`] and maintained by
/// [`lane16_decrement`].
///
/// # Panics
/// Panics if `rows.len() < n` or `n > 64`.
pub fn lane16_pack_popcounts(rows: &[u64], n: usize, keys16: &mut Vec<u64>) {
    let nw = lane16_words(n);
    assert!(
        rows.len() >= n,
        "lane16_pack_popcounts: rows shorter than n"
    );
    keys16.clear();
    keys16.resize(nw, 0);
    for (i, &row) in rows.iter().enumerate().take(n) {
        keys16[i / 4] |= ((row.count_ones() as u64) << LANE16_COUNT_SHIFT) << (16 * (i % 4));
    }
}

/// Subtracts 1 from the packed count of every index whose bit is set in
/// `members`. Counts must be nonzero for every member (the caller's NRQ
/// invariant: a live requester of a granted resource has a count of at
/// least 1).
pub fn lane16_decrement(keys16: &mut [u64], members: u64) {
    let dec = ONE16 << LANE16_COUNT_SHIFT;
    for (k, word) in keys16.iter_mut().enumerate() {
        *word -= LANE16_LUT[(members >> (4 * k)) as usize & 0xF] & dec;
    }
}

/// Among the set bits of `cand` (a single-word mask, `n <= 64`), the index
/// with the smallest packed count in `keys16`, ties broken by the rotating
/// order starting at `start` — the packed-lane form of
/// [`min_key_rotating`]. Counts must be at most [`WORD_BITS`] (NRQ
/// values); `rot` is the [`lane16_rot_table`] for this `n`. The scan is
/// word-parallel: each candidate lane is compared as `(count << 7) |
/// rotation position`, so the minimum lane directly encodes the winner
/// with the correct tie-break and no per-candidate loop runs.
///
/// # Panics
/// Panics if `start >= n`, `n > 64`, `keys16` has fewer than
/// `lane16_words(n)` words, or `rot` is not a full `n`-start table —
/// checked in release too.
pub fn min_lane16_rotating(
    cand: u64,
    n: usize,
    start: usize,
    keys16: &[u64],
    rot: &[u64],
) -> Option<usize> {
    let nw = lane16_words(n);
    assert!(
        start < n,
        "min_lane16_rotating: start {start} out of range for n = {n}"
    );
    assert!(
        keys16.len() >= nw,
        "min_lane16_rotating: keys16 has {} words, n = {n} needs {nw}",
        keys16.len()
    );
    assert!(
        rot.len() >= n * nw,
        "min_lane16_rotating: rot table has {} words, n = {n} needs {}",
        rot.len(),
        n * nw
    );
    debug_assert!(n == WORD_BITS || cand >> n == 0, "cand has bits beyond n");
    if cand == 0 {
        return None;
    }
    let rot = &rot[start * nw..start * nw + nw];
    let mut acc = SENT16;
    for k in 0..nw {
        let lut = LANE16_LUT[(cand >> (4 * k)) as usize & 0xF];
        let masked = ((keys16[k] + rot[k]) | !lut) & SENT16;
        acc = min16(acc, masked);
    }
    acc = min16(acc, (acc >> 32) | 0x7FFF_7FFF_0000_0000);
    acc = min16(acc, (acc >> 16) | 0x7FFF_7FFF_7FFF_0000);
    let rotpos = (acc & 0x7F) as usize;
    let mut idx = rotpos + start;
    if idx >= n {
        idx -= n;
    }
    Some(idx)
}

/// [`min_lane16_rotating`] fused with the grant's NRQ update: when the scan
/// finds a winner (`cand != 0`), every candidate's packed count is
/// decremented in the same pass over the lane words — the caller MUST treat
/// a `Some` return as a grant of the scanned resource. This is the inner
/// step of the LCF resource loop, where a non-empty candidate set always
/// produces a grant; fusing the update saves a second walk (and a second
/// set of lane-mask lookups) over the key words.
///
/// # Panics
/// Same contract as [`min_lane16_rotating`], checked in release too.
pub fn min_lane16_rotating_grant(
    cand: u64,
    n: usize,
    start: usize,
    keys16: &mut [u64],
    rot: &[u64],
) -> Option<usize> {
    let nw = lane16_words(n);
    assert!(
        start < n,
        "min_lane16_rotating_grant: start {start} out of range for n = {n}"
    );
    assert!(
        keys16.len() >= nw,
        "min_lane16_rotating_grant: keys16 has {} words, n = {n} needs {nw}",
        keys16.len()
    );
    assert!(
        rot.len() >= n * nw,
        "min_lane16_rotating_grant: rot table has {} words, n = {n} needs {}",
        rot.len(),
        n * nw
    );
    debug_assert!(n == WORD_BITS || cand >> n == 0, "cand has bits beyond n");
    if cand == 0 {
        return None;
    }
    let rot = &rot[start * nw..start * nw + nw];
    let dec = ONE16 << LANE16_COUNT_SHIFT;
    // Two independent accumulators halve the `min16` dependency chain, and
    // words with no candidate lanes are skipped outright (no min
    // contribution, no decrement) — late resources in a heavy-traffic
    // schedule have few unmatched requesters left, so most words are empty.
    let mut acc0 = SENT16;
    let mut acc1 = SENT16;
    let mut k = 0;
    while k < nw {
        let nib = (cand >> (4 * k)) as usize & 0xF;
        if nib != 0 {
            let lut = LANE16_LUT[nib];
            let keys = keys16[k];
            acc0 = min16(acc0, ((keys + rot[k]) | !lut) & SENT16);
            keys16[k] = keys - (lut & dec);
        }
        k += 1;
        if k >= nw {
            break;
        }
        let nib = (cand >> (4 * k)) as usize & 0xF;
        if nib != 0 {
            let lut = LANE16_LUT[nib];
            let keys = keys16[k];
            acc1 = min16(acc1, ((keys + rot[k]) | !lut) & SENT16);
            keys16[k] = keys - (lut & dec);
        }
        k += 1;
    }
    let mut acc = min16(acc0, acc1);
    acc = min16(acc, (acc >> 32) | 0x7FFF_7FFF_0000_0000);
    acc = min16(acc, (acc >> 16) | 0x7FFF_7FFF_7FFF_0000);
    let rotpos = (acc & 0x7F) as usize;
    let mut idx = rotpos + start;
    if idx >= n {
        idx -= n;
    }
    Some(idx)
}

/// True if every bit at or beyond `n` is zero (the mask contract).
fn excess_is_zero(mask: &[u64], n: usize) -> bool {
    let w = words_for(n);
    let used = n - (w - 1) * WORD_BITS;
    let excess_last = if used == WORD_BITS {
        0
    } else {
        mask[w - 1] >> used
    };
    excess_last == 0 && mask[w..].iter().all(|&word| word == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{min_rotating, select_rotating};

    /// Port counts crossing every word-boundary case: single word, exact
    /// boundary, boundary + 1, and multi-word interiors.
    const SIZES: [usize; 10] = [1, 2, 7, 31, 64, 65, 127, 128, 192, 256];

    /// Miri interprets ~two orders of magnitude slower than native; shrink
    /// the pseudo-random seed sweeps so the UB-detection pass stays fast
    /// while still crossing every word-boundary size in `SIZES`.
    fn sweep(seeds: u64) -> u64 {
        if cfg!(miri) {
            seeds.min(2)
        } else {
            seeds
        }
    }

    /// A deterministic pseudo-random w-word mask for port count n.
    fn mask_for(n: usize, seed: u64) -> Vec<u64> {
        let w = words_for(n);
        let mut mask: Vec<u64> = (0..w as u64)
            .map(|wi| {
                (seed ^ wi.wrapping_mul(0xA076_1D64_78BD_642F))
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((seed + wi) as u32)
            })
            .collect();
        let used = n - (w - 1) * WORD_BITS;
        mask[w - 1] &= mask_n(used);
        mask
    }

    #[test]
    fn mask_n_extremes() {
        assert_eq!(mask_n(1), 1);
        assert_eq!(mask_n(5), 0b11111);
        assert_eq!(mask_n(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "mask_n requires")]
    fn mask_n_rejects_oversize_in_release_too() {
        let _ = mask_n(65);
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
        assert_eq!(words_for(1024), 16);
    }

    #[test]
    fn mask_fill_matches_bit_loop() {
        for n in SIZES {
            let mut mask = vec![0u64; words_for(n)];
            mask_fill(&mut mask, n);
            assert_eq!(popcount(&mask), n, "n = {n}");
            for idx in 0..n {
                assert!(test_bit(&mask, idx), "n = {n} idx = {idx}");
            }
            assert!(excess_is_zero(&mask, n), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "mask_fill")]
    fn mask_fill_rejects_short_mask() {
        let mut mask = vec![0u64; 1];
        mask_fill(&mut mask, 65);
    }

    #[test]
    fn bit_ops_roundtrip() {
        let mut mask = vec![0u64; 4];
        for idx in [0, 63, 64, 130, 255] {
            assert!(!test_bit(&mask, idx));
            set_bit(&mut mask, idx);
            assert!(test_bit(&mask, idx));
        }
        assert_eq!(popcount(&mask), 5);
        clear_bit(&mut mask, 64);
        assert!(!test_bit(&mask, 64));
        assert_eq!(popcount(&mask), 4);
    }

    #[test]
    #[should_panic]
    fn test_bit_out_of_range_is_loud() {
        let mask = vec![0u64; 2];
        let _ = test_bit(&mask, 128);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Bitset] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("simd"), None);
        assert_eq!(Backend::default(), Backend::Bitset);
    }

    #[test]
    fn word_parallel_is_backend_only() {
        // The multi-word kernels removed the n <= 64 cliff: the bitset
        // backend is word-parallel at every port count.
        assert!(Backend::Bitset.word_parallel());
        assert!(!Backend::Scalar.word_parallel());
    }

    #[test]
    fn load_rows_and_col_masks_transpose() {
        for n in [37, 64, 65, 130, 200] {
            let m = BitMatrix::from_fn(n, |i, j| (i * 7 + j * 3) % 5 == 0);
            let w = words_for(n);
            let mut rows = Vec::new();
            load_rows(&m, &mut rows);
            assert_eq!(rows.len(), n * w);
            let mut cols = Vec::new();
            col_masks(&rows, n, &mut cols);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(test_bit(&rows[i * w..(i + 1) * w], j), m.get(i, j));
                    assert_eq!(test_bit(&cols[j * w..(j + 1) * w], i), m.get(i, j));
                }
            }
        }
    }

    #[test]
    fn rotating_first_matches_select_rotating() {
        for n in SIZES {
            for seed in 0..sweep(20) {
                let mask = mask_for(n, seed);
                for start in (0..n).step_by((n / 9).max(1)) {
                    let scalar = select_rotating(n, start, |i| test_bit(&mask, i));
                    assert_eq!(
                        rotating_first(&mask, n, start),
                        scalar,
                        "n={n} seed={seed} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "rotating_first")]
    fn rotating_first_rejects_short_mask_in_release_too() {
        let mask = vec![u64::MAX; 1];
        let _ = rotating_first(&mask, 128, 0);
    }

    #[test]
    fn kth_set_bit_enumerates_ascending() {
        let mask = [0b1011_0101u64];
        let expected = [0usize, 2, 4, 5, 7];
        for (k, &bit) in expected.iter().enumerate() {
            assert_eq!(kth_set_bit(&mask, k), bit);
        }
        assert_eq!(kth_set_bit(&[u64::MAX], 63), 63);
        // Multi-word: bits straddling word boundaries enumerate in order.
        let mask = [1u64 << 63, 0b101u64, 0, 1u64 << 7];
        assert_eq!(kth_set_bit(&mask, 0), 63);
        assert_eq!(kth_set_bit(&mask, 1), 64);
        assert_eq!(kth_set_bit(&mask, 2), 66);
        assert_eq!(kth_set_bit(&mask, 3), 192 + 7);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn kth_set_bit_absent_is_loud_in_release_too() {
        let _ = kth_set_bit(&[0b11u64, 0], 2);
    }

    #[test]
    fn min_key_rotating_matches_min_rotating() {
        for n in SIZES {
            for seed in 0..sweep(20) {
                let mask = mask_for(n, seed.wrapping_mul(0xD134_2543_DE82_EF95));
                let key: Vec<usize> = (0..n)
                    .map(|i| (seed as usize).wrapping_mul(i + 3) % 5)
                    .collect();
                for start in (0..n).step_by((n / 7).max(1)) {
                    let scalar = min_rotating(n, start, |i| test_bit(&mask, i).then_some(key[i]));
                    assert_eq!(
                        min_key_rotating(&mask, n, start, &key),
                        scalar,
                        "n={n} seed={seed} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "key table")]
    fn min_key_rotating_rejects_short_key_in_release_too() {
        let mask = vec![0u64; 2];
        let key = vec![0usize; 64];
        let _ = min_key_rotating(&mask, 128, 0, &key);
    }

    #[test]
    fn col_masks_dense_and_corner_bits() {
        // Full matrix: every column mask is the all-ports mask.
        for n in SIZES {
            let w = words_for(n);
            let mut full = vec![0u64; w];
            mask_fill(&mut full, n);
            let rows: Vec<u64> = (0..n).flat_map(|_| full.clone()).collect();
            let mut cols = Vec::new();
            col_masks(&rows, n, &mut cols);
            for j in 0..n {
                assert_eq!(&cols[j * w..(j + 1) * w], &full[..], "n = {n} j = {j}");
            }
        }
        // Single bits at the four matrix corners land at the four
        // transposed corners, with everything else zero.
        for n in SIZES {
            let w = words_for(n);
            let mut rows = vec![0u64; n * w];
            set_bit(&mut rows[0..w], 0);
            set_bit(&mut rows[0..w], n - 1);
            set_bit(&mut rows[(n - 1) * w..], 0);
            set_bit(&mut rows[(n - 1) * w..], n - 1);
            let mut cols = Vec::new();
            col_masks(&rows, n, &mut cols);
            for j in 0..n {
                let col = &cols[j * w..(j + 1) * w];
                if j == 0 || j == n - 1 {
                    let want = if n == 1 { 1 } else { 2 };
                    assert_eq!(popcount(col), want, "n = {n} j = {j}");
                    assert!(test_bit(col, 0) && test_bit(col, n - 1), "n = {n} j = {j}");
                } else {
                    assert_eq!(popcount(col), 0, "n = {n} j = {j}");
                }
            }
        }
    }

    #[test]
    fn min_overlap_rotating_matches_min_key_on_filtered_popcounts() {
        for n in SIZES {
            let w = words_for(n);
            for seed in 0..sweep(12) {
                let mask = mask_for(n, seed.wrapping_mul(0x94D0_49BB_1331_11EB));
                let rows: Vec<u64> = (0..n)
                    .flat_map(|i| {
                        mask_for(n, seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
                    })
                    .collect();
                let filter = mask_for(n, seed.rotate_left(17) ^ 0xDEAD_BEEF);
                let key: Vec<usize> = (0..n)
                    .map(|i| {
                        rows[i * w..(i + 1) * w]
                            .iter()
                            .zip(&filter)
                            .map(|(r, f)| (r & f).count_ones() as usize)
                            .sum()
                    })
                    .collect();
                for start in (0..n).step_by((n / 7).max(1)) {
                    assert_eq!(
                        min_overlap_rotating(&mask, n, start, &rows, &filter),
                        min_key_rotating(&mask, n, start, &key),
                        "n={n} seed={seed} start={start}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_overlap_rotating")]
    fn min_overlap_rotating_rejects_short_filter_in_release_too() {
        let mask = vec![0u64; 1];
        let rows = vec![0u64; 64];
        let filter: Vec<u64> = Vec::new();
        let _ = min_overlap_rotating(&mask, 64, 0, &rows, &filter);
    }

    #[test]
    fn lane16_pack_and_decrement_roundtrip() {
        for n in [1, 3, 4, 5, 31, 33, 64] {
            let rows: Vec<u64> = (0..n).map(|i| mask_for(64, i as u64 + 7)[0]).collect();
            let mut keys = Vec::new();
            lane16_pack_popcounts(&rows, n, &mut keys);
            assert_eq!(keys.len(), lane16_words(n));
            let lane = |keys: &[u64], i: usize| {
                ((keys[i / 4] >> (16 * (i % 4))) & 0xFFFF) >> LANE16_COUNT_SHIFT
            };
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(lane(&keys, i), u64::from(row.count_ones()), "n={n} i={i}");
            }
            // Decrement a member set (restricted to nonzero lanes, per the
            // kernel contract); only member lanes drop, by exactly 1.
            let before: Vec<u64> = (0..n).map(|i| lane(&keys, i)).collect();
            let nonzero = (0..n).fold(0u64, |m, i| m | (u64::from(before[i] > 0) << i));
            let members = mask_for(n.min(64), 99)[0] & nonzero;
            lane16_decrement(&mut keys, members);
            for (i, &b) in before.iter().enumerate() {
                let want = b - u64::from(members >> i & 1 == 1);
                assert_eq!(lane(&keys, i), want, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn min_lane16_rotating_matches_min_key_rotating() {
        for n in [1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33, 47, 63, 64] {
            for seed in 0..sweep(16) {
                let cand = mask_for(n, seed.wrapping_mul(0x9E6C_63D0_876A_68AD))[0];
                let key: Vec<usize> = (0..n)
                    .map(|i| ((seed as usize).wrapping_mul(i * 31 + 17) >> 3) % (WORD_BITS + 1))
                    .collect();
                let mut keys16 = vec![0u64; lane16_words(n)];
                for (i, &k) in key.iter().enumerate() {
                    keys16[i / 4] |= ((k as u64) << LANE16_COUNT_SHIFT) << (16 * (i % 4));
                }
                let rot = lane16_rot_table(n);
                for start in 0..n {
                    assert_eq!(
                        min_lane16_rotating(cand, n, start, &keys16, &rot),
                        min_key_rotating(&[cand], n, start, &key),
                        "n={n} seed={seed} start={start} cand={cand:#x}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_lane16_rotating")]
    fn min_lane16_rotating_rejects_short_keys_in_release_too() {
        let keys = vec![0u64; 1];
        let _ = min_lane16_rotating(u64::MAX, 64, 0, &keys, &[]);
    }

    /// The fused scan+grant kernel must return the same winner as the plain
    /// scan and leave the keys exactly as a separate `lane16_decrement`
    /// would.
    #[test]
    fn min_lane16_rotating_grant_equals_scan_then_decrement() {
        for n in [1, 3, 4, 7, 16, 31, 32, 33, 63, 64] {
            for seed in 0..sweep(8) {
                let cand = mask_for(n, seed.wrapping_mul(0xA076_1D64_78BD_642F))[0];
                let mut keys16 = vec![0u64; lane16_words(n)];
                for i in 0..n {
                    // Nonzero counts so the post-grant decrement never wraps.
                    let k = 1 + ((seed as usize).wrapping_mul(i * 13 + 7) >> 2) % WORD_BITS;
                    keys16[i / 4] |= ((k as u64) << LANE16_COUNT_SHIFT) << (16 * (i % 4));
                }
                let rot = lane16_rot_table(n);
                for start in 0..n {
                    let mut fused = keys16.clone();
                    let got = min_lane16_rotating_grant(cand, n, start, &mut fused, &rot);
                    let want = min_lane16_rotating(cand, n, start, &keys16, &rot);
                    assert_eq!(got, want, "n={n} seed={seed} start={start}");
                    let mut separate = keys16.clone();
                    if got.is_some() {
                        lane16_decrement(&mut separate, cand);
                    }
                    assert_eq!(fused, separate, "n={n} seed={seed} start={start}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_lane16_rotating_grant")]
    fn min_lane16_rotating_grant_rejects_short_keys_in_release_too() {
        let mut keys = vec![0u64; 1];
        let _ = min_lane16_rotating_grant(u64::MAX, 64, 0, &mut keys, &[]);
    }
}
