//! FIFO input queuing with round-robin conflict resolution (`fifo`).
//!
//! The head-of-line-blocking baseline: each input has a *single* FIFO queue
//! instead of virtual output queues, so the scheduler only ever sees the
//! destination of the packet at the head of each queue. The well-known
//! consequence (Karol, Hluchyj & Morgan) is a throughput ceiling of
//! `2 - √2 ≈ 0.586` under uniform traffic, which is exactly the knee the
//! paper's Fig. 12 shows for the `fifo` curve.

use crate::arbiter::RoundRobinPointer;
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;

/// Round-robin arbitration over single-FIFO inputs.
///
/// The request matrix handed to this scheduler must contain **at most one
/// request per row** — the head-of-line destination. (The simulator's FIFO
/// queue model guarantees this; the scheduler asserts it.) Each output port
/// grants one of its head-of-line requesters using a rotating pointer.
#[derive(Clone, Debug)]
pub struct FifoRr {
    n: usize,
    out_ptr: Vec<RoundRobinPointer>,
}

impl FifoRr {
    /// Creates a FIFO round-robin scheduler for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        FifoRr {
            n,
            out_ptr: vec![RoundRobinPointer::new(n); n],
        }
    }

    /// Current pointer position for output `j` (for tests/diagnostics).
    pub fn pointer(&self, j: usize) -> usize {
        self.out_ptr[j].pos()
    }
}

impl Scheduler for FifoRr {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        let n = self.n;
        debug_assert!(
            (0..n).all(|i| requests.nrq(i) <= 1),
            "FIFO scheduler expects at most one head-of-line request per input"
        );
        out.reset(n);

        // Each input has at most one request, so outputs can arbitrate
        // independently: no input can be granted twice.
        for j in 0..n {
            if let Some(i) = self.out_ptr[j].select(|i| requests.get(i, j)) {
                out.connect(i, j);
                self.out_ptr[j].advance_past(i);
            }
        }
    }

    fn reset(&mut self) {
        for p in &mut self.out_ptr {
            *p = RoundRobinPointer::new(self.n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_requests() {
        let mut s = FifoRr::new(4);
        assert_eq!(s.schedule(&RequestMatrix::new(4)).size(), 0);
    }

    #[test]
    fn disjoint_heads_all_granted() {
        let requests = RequestMatrix::from_pairs(4, [(0, 2), (1, 0), (2, 3), (3, 1)]);
        let mut s = FifoRr::new(4);
        let m = s.schedule(&requests);
        assert_eq!(m.size(), 4);
        assert!(m.is_valid_for(&requests));
    }

    #[test]
    fn contention_resolved_round_robin() {
        // All four heads target output 0: wins must rotate 0,1,2,3,0,...
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (2, 0), (3, 0)]);
        let mut s = FifoRr::new(4);
        let winners: Vec<usize> = (0..8)
            .map(|_| s.schedule(&requests).input_for(0).unwrap())
            .collect();
        assert_eq!(winners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn pointer_only_moves_on_grant() {
        let mut s = FifoRr::new(4);
        s.schedule(&RequestMatrix::new(4));
        assert_eq!(s.pointer(0), 0);
        s.schedule(&RequestMatrix::from_pairs(4, [(2, 0)]));
        assert_eq!(s.pointer(0), 3);
    }

    #[test]
    fn matchings_always_valid() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let mut s = FifoRr::new(16);
        for _ in 0..200 {
            // At most one request per row, random head destinations.
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for i in 0..16 {
                if rng.gen_bool(0.7) {
                    pairs.push((i, rng.gen_range(0..16)));
                }
            }
            let requests = RequestMatrix::from_pairs(16, pairs);
            let m = s.schedule(&requests);
            assert!(m.is_valid_for(&requests));
            assert!(m.is_maximal_for(&requests));
        }
    }

    #[test]
    fn reset_restores_pointers() {
        let mut s = FifoRr::new(4);
        s.schedule(&RequestMatrix::from_pairs(4, [(1, 1)]));
        s.reset();
        assert_eq!(s.pointer(1), 0);
    }
}
