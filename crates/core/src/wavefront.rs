//! Wrapped wavefront arbiter (Tamir & Chi).
//!
//! A matching is computed by sweeping `n` *wrapped diagonals* across the
//! request matrix. The cells of one wrapped diagonal touch `n` distinct rows
//! and `n` distinct columns, so all of them can arbitrate simultaneously in
//! hardware — the algorithm maps onto a regular array of crosspoint cells,
//! which is why the paper cites it as the low-cost distributed baseline.

use crate::bitkern::{self, Backend};
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;

/// The wrapped wavefront arbiter (`wfront` in the paper's Fig. 12).
///
/// For each wave `k = 0..n`, every cell `(i, j)` with
/// `(i + j) mod n == (k + offset) mod n` is examined; a requesting cell whose
/// row and column are both still free is matched. The starting diagonal
/// `offset` rotates every scheduling cycle, so each diagonal is the first to
/// arbitrate once every `n` cycles — this built-in round-robin is what keeps
/// the wavefront arbiter starvation-free.
#[derive(Clone, Debug)]
pub struct Wavefront {
    n: usize,
    offset: usize,
    backend: Backend,
    // Word-parallel scratch (bitset backend): diag[d*w..(d+1)*w] holds the
    // requesting rows of wrapped diagonal d as a words_for(n)-word mask.
    diag: Vec<u64>,
    free_in: Vec<u64>,
    free_out: Vec<u64>,
}

impl Wavefront {
    /// Creates a wavefront arbiter for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        let w = bitkern::words_for(n);
        Wavefront {
            n,
            offset: 0,
            backend: Backend::default(),
            diag: vec![0; n * w],
            free_in: vec![0; w],
            free_out: vec![0; w],
        }
    }

    /// Selects the matching-kernel implementation (builder style). Both
    /// backends produce bit-identical matchings; see [`Backend`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured kernel backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The diagonal that arbitrates first in the next cycle.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl Scheduler for Wavefront {
    fn name(&self) -> &'static str {
        "wfront"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        if self.backend.word_parallel() {
            self.schedule_bitset(requests, out);
        } else {
            self.schedule_scalar(requests, out);
        }
        self.offset = (self.offset + 1) % self.n;
    }

    fn reset(&mut self) {
        self.offset = 0;
    }
}

impl Wavefront {
    /// The scalar reference kernel: one probe per matrix cell.
    fn schedule_scalar(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        out.reset(n);
        let matching = out;

        for wave in 0..n {
            let d = (wave + self.offset) % n;
            // Cells of wrapped diagonal d: (i, (d - i) mod n) for all i.
            for i in 0..n {
                let j = (d + n - i) % n;
                debug_assert_eq!((i + j) % n, d);
                if requests.get(i, j) && !matching.input_matched(i) && !matching.output_matched(j) {
                    matching.connect(i, j);
                }
            }
        }
    }

    /// The word-parallel kernel: requests are bucketed into per-diagonal
    /// multi-word row masks in `O(set bits)`, then each wave is a word-wise
    /// `AND` with the free-inputs mask plus a set-bit walk. The cells of
    /// one wrapped diagonal touch distinct rows and columns, so the walk
    /// order within a wave cannot change the outcome (each row and column
    /// appears at most once per wave, so clearing `free_in`/`free_out`
    /// mid-wave never invalidates the word snapshot); matchings are
    /// bit-identical to [`Wavefront::schedule_scalar`].
    fn schedule_bitset(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        let w = bitkern::words_for(n);
        out.reset(n);
        let matching = out;

        self.diag.fill(0);
        for i in 0..n {
            for (wi, &word) in requests.bits().row_words(i).iter().enumerate() {
                let mut row = word;
                while row != 0 {
                    let j = wi * bitkern::WORD_BITS + row.trailing_zeros() as usize;
                    row &= row - 1;
                    let d = (i + j) % n;
                    bitkern::set_bit(&mut self.diag[d * w..(d + 1) * w], i);
                }
            }
        }

        bitkern::mask_fill(&mut self.free_in, n);
        bitkern::mask_fill(&mut self.free_out, n);
        for wave in 0..n {
            let d = (wave + self.offset) % n;
            for wi in 0..w {
                let mut cand = self.diag[d * w + wi] & self.free_in[wi];
                while cand != 0 {
                    let i = wi * bitkern::WORD_BITS + cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let j = (d + n - i) % n;
                    if bitkern::test_bit(&self.free_out, j) {
                        matching.connect(i, j);
                        bitkern::clear_bit(&mut self.free_in, i);
                        bitkern::clear_bit(&mut self.free_out, j);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_requests() {
        let mut s = Wavefront::new(4);
        assert_eq!(s.schedule(&RequestMatrix::new(4)).size(), 0);
    }

    #[test]
    fn full_requests_give_perfect_matching() {
        let mut s = Wavefront::new(8);
        for _ in 0..16 {
            assert_eq!(s.schedule(&RequestMatrix::full(8)).size(), 8);
        }
    }

    #[test]
    fn first_diagonal_wins_whole_wave() {
        // All requests on diagonal 0 ((i + j) % 4 == 0): the very first wave
        // matches all of them.
        let requests = RequestMatrix::from_fn(4, |i, j| (i + j) % 4 == 0);
        let mut s = Wavefront::new(4);
        let m = s.schedule(&requests);
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn offset_rotates_each_cycle() {
        let mut s = Wavefront::new(4);
        assert_eq!(s.offset(), 0);
        s.schedule(&RequestMatrix::new(4));
        assert_eq!(s.offset(), 1);
        for _ in 0..3 {
            s.schedule(&RequestMatrix::new(4));
        }
        assert_eq!(s.offset(), 0);
    }

    #[test]
    fn rotation_provides_fairness_on_contended_output() {
        // Inputs 0 and 1 both persistently request output 0. Cell (0,0) is on
        // diagonal 0, cell (1,0) on diagonal 1. As the starting diagonal
        // rotates, each input wins half the slots.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0)]);
        let mut s = Wavefront::new(4);
        let mut wins = [0usize; 2];
        for _ in 0..40 {
            let m = s.schedule(&requests);
            wins[m.input_for(0).unwrap()] += 1;
        }
        // Diagonal 0 leads in 1 of 4 offsets; diagonal 1 in... offsets are
        // uniform over 4 positions, and whichever of the two diagonals comes
        // first in the wrapped order wins. Over a full rotation each cell
        // leads at least once.
        assert!(wins[0] > 0 && wins[1] > 0, "wins: {wins:?}");
        assert_eq!(wins[0] + wins[1], 40);
    }

    #[test]
    fn matchings_always_valid_and_maximal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Wavefront::new(16);
        for _ in 0..200 {
            let requests = RequestMatrix::random(16, 0.3, &mut rng);
            let m = s.schedule(&requests);
            assert!(m.is_valid_for(&requests));
            assert!(
                m.is_maximal_for(&requests),
                "a full wavefront sweep visits every cell, so the matching is maximal"
            );
        }
    }

    #[test]
    fn reset_restores_offset() {
        let mut s = Wavefront::new(4);
        s.schedule(&RequestMatrix::new(4));
        s.reset();
        assert_eq!(s.offset(), 0);
    }
}
