//! Arbitration primitives shared by the schedulers.
//!
//! The hardware described in the paper builds its arbiters from shift
//! registers and an open-collector bus forming a *programmable priority
//! encoder* (Sec. 4.2). The software equivalents here are rotating-priority
//! scans: the candidate closest to (at or after) a pointer wins, and the
//! pointer moves so every position is periodically favored.

/// Picks the first index `idx` in the rotating order
/// `start, start+1, …, start+n-1 (mod n)` for which `pred(idx)` holds.
pub fn select_rotating(
    n: usize,
    start: usize,
    mut pred: impl FnMut(usize) -> bool,
) -> Option<usize> {
    for k in 0..n {
        let idx = (start + k) % n;
        if pred(idx) {
            return Some(idx);
        }
    }
    None
}

/// Among the indices where `key(idx)` is `Some`, picks the one with the
/// minimum key; ties are broken by the rotating order starting at `start`
/// (the first minimum encountered in rotation order wins).
///
/// This is exactly the two-step bus arbitration of the paper's hardware:
/// first the minimum NRQ wins on the open-collector bus, then the PRIO shift
/// register (a rotating unary priority) breaks ties.
pub fn min_rotating(
    n: usize,
    start: usize,
    mut key: impl FnMut(usize) -> Option<usize>,
) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (key, idx)
    for k in 0..n {
        let idx = (start + k) % n;
        if let Some(kv) = key(idx) {
            match best {
                Some((bk, _)) if bk <= kv => {}
                _ => best = Some((kv, idx)),
            }
        }
    }
    best.map(|(_, idx)| idx)
}

/// A single round-robin pointer over `n` positions.
///
/// Used per-port by iSLIP (grant and accept pointers) and by the FIFO
/// scheduler's per-output arbitration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRobinPointer {
    n: usize,
    pos: usize,
}

impl RoundRobinPointer {
    /// Creates a pointer over `n` positions, starting at 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pointer requires n > 0");
        RoundRobinPointer { n, pos: 0 }
    }

    /// Current position (highest priority index).
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Number of positions.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Selects the first index at or after the pointer satisfying `pred`,
    /// without moving the pointer.
    pub fn select(&self, pred: impl FnMut(usize) -> bool) -> Option<usize> {
        select_rotating(self.n, self.pos, pred)
    }

    /// Moves the pointer to one beyond `granted` (the iSLIP update rule:
    /// the granted index becomes the lowest priority).
    pub fn advance_past(&mut self, granted: usize) {
        assert!(granted < self.n, "granted index out of range");
        self.pos = (granted + 1) % self.n;
    }

    /// Moves the pointer forward by one position.
    pub fn step(&mut self) {
        self.pos = (self.pos + 1) % self.n;
    }
}

/// The paper's rotating round-robin position/diagonal.
///
/// Fig. 2 keeps two offsets `I` (requester) and `J` (resource) and advances
/// them once per scheduling cycle: `I := (I+1) mod n; if I = 0 then J :=
/// (J+1) mod n`. Every matrix position `[i, j]` is therefore the round-robin
/// position once every `n²` cycles — which is where the paper's hard
/// bandwidth lower bound of `b/n²` per requester/resource pair comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagonalPointer {
    n: usize,
    /// Requester offset `I`.
    pub i: usize,
    /// Resource offset `J`.
    pub j: usize,
}

impl DiagonalPointer {
    /// Creates a pointer for an `n`-port switch at `I = J = 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pointer requires n > 0");
        DiagonalPointer { n, i: 0, j: 0 }
    }

    /// Number of positions per axis.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The round-robin position on the diagonal for scheduling step `res`
    /// (step `res` schedules resource `(J + res) mod n` and favors requester
    /// `(I + res) mod n`).
    #[inline]
    pub fn diagonal_position(&self, res: usize) -> (usize, usize) {
        ((self.i + res) % self.n, (self.j + res) % self.n)
    }

    /// Advances the pointer at the end of a scheduling cycle (Fig. 2).
    pub fn advance(&mut self) {
        self.i = (self.i + 1) % self.n;
        if self.i == 0 {
            self.j = (self.j + 1) % self.n;
        }
    }

    /// Number of cycles after which every `(i, j)` position has been the
    /// round-robin position exactly once: `n²`.
    pub fn period(&self) -> usize {
        self.n * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_rotating_wraps() {
        // start at 2, candidates {0, 1}: 0 comes before 1 in rotation order 2,3,0,1.
        let got = select_rotating(4, 2, |i| i == 0 || i == 1);
        assert_eq!(got, Some(0));
    }

    #[test]
    fn select_rotating_prefers_start() {
        let got = select_rotating(4, 2, |i| i == 2 || i == 0);
        assert_eq!(got, Some(2));
    }

    #[test]
    fn select_rotating_none() {
        assert_eq!(select_rotating(4, 0, |_| false), None);
    }

    #[test]
    fn min_rotating_picks_minimum() {
        let keys = [Some(3), Some(1), None, Some(1)];
        // start 0: first minimum in order 0,1,2,3 is index 1.
        assert_eq!(min_rotating(4, 0, |i| keys[i]), Some(1));
        // start 3: rotation order 3,0,1,2 — index 3 (key 1) wins the tie.
        assert_eq!(min_rotating(4, 3, |i| keys[i]), Some(3));
    }

    #[test]
    fn min_rotating_all_none() {
        assert_eq!(min_rotating(5, 2, |_| None), None);
    }

    #[test]
    fn min_rotating_strict_improvement_only() {
        // Equal keys later in the rotation must not displace the earlier one.
        let keys = [Some(2), Some(2), Some(2)];
        assert_eq!(min_rotating(3, 1, |i| keys[i]), Some(1));
    }

    #[test]
    fn round_robin_pointer_advance() {
        let mut p = RoundRobinPointer::new(4);
        assert_eq!(p.pos(), 0);
        p.advance_past(2);
        assert_eq!(p.pos(), 3);
        p.advance_past(3);
        assert_eq!(p.pos(), 0);
        p.step();
        assert_eq!(p.pos(), 1);
    }

    #[test]
    fn round_robin_select_uses_pointer() {
        let mut p = RoundRobinPointer::new(4);
        p.advance_past(0); // pos = 1
        let sel = p.select(|i| i == 0 || i == 3);
        assert_eq!(sel, Some(3)); // order 1,2,3,0
    }

    #[test]
    fn diagonal_pointer_follows_figure2_rule() {
        let mut d = DiagonalPointer::new(3);
        let mut seen = Vec::new();
        for _ in 0..9 {
            seen.push((d.i, d.j));
            d.advance();
        }
        // I cycles fastest; J bumps when I wraps.
        assert_eq!(
            seen,
            vec![
                (0, 0),
                (1, 0),
                (2, 0),
                (0, 1),
                (1, 1),
                (2, 1),
                (0, 2),
                (1, 2),
                (2, 2)
            ]
        );
        // After n^2 advances we are back at the origin.
        assert_eq!((d.i, d.j), (0, 0));
    }

    #[test]
    fn diagonal_positions_are_a_diagonal() {
        let mut d = DiagonalPointer::new(4);
        d.advance(); // I=1, J=0 — matches the state used in Fig. 3
        let diag: Vec<(usize, usize)> = (0..4).map(|res| d.diagonal_position(res)).collect();
        // Fig. 3: positions [I1,T0], [I2,T1], [I3,T2], [I0,T3].
        assert_eq!(diag, vec![(1, 0), (2, 1), (3, 2), (0, 3)]);
        // Distinct requesters and distinct resources (conflict-free diagonal).
        let mut is_: Vec<usize> = diag.iter().map(|p| p.0).collect();
        let mut js: Vec<usize> = diag.iter().map(|p| p.1).collect();
        is_.sort_unstable();
        js.sort_unstable();
        assert_eq!(is_, vec![0, 1, 2, 3]);
        assert_eq!(js, vec![0, 1, 2, 3]);
    }

    #[test]
    fn diagonal_period() {
        let d = DiagonalPointer::new(16);
        assert_eq!(d.period(), 256);
    }
}
