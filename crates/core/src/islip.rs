//! iSLIP — iterative round-robin matching with slip (McKeown).
//!
//! Replaces PIM's coin flips with rotating grant/accept pointers. The
//! pointer-update rule — pointers move only when a grant is accepted *in the
//! first iteration* — is what de-synchronizes the grant pointers ("slip")
//! and gives 100% throughput under uniform traffic.

use crate::arbiter::RoundRobinPointer;
use crate::bitkern::{self, Backend};
#[cfg(feature = "telemetry")]
use crate::lcf::IterationTrace;
use crate::matching::Matching;
use crate::request::RequestMatrix;
use crate::traits::Scheduler;

/// The iSLIP scheduler.
///
/// ```
/// use lcf_core::prelude::*;
///
/// let mut islip = Islip::new(4, 1);
/// // Both inputs want output 0: the grant pointer rotates the winner.
/// let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0)]);
/// let first = islip.schedule(&requests).input_for(0).unwrap();
/// let second = islip.schedule(&requests).input_for(0).unwrap();
/// assert_ne!(first, second);
/// ```
///
/// State: one grant pointer per output and one accept pointer per input.
/// Per iteration:
///
/// 1. **Grant** — each unmatched output grants the requesting unmatched
///    input closest at-or-after its grant pointer.
/// 2. **Accept** — each unmatched input accepts the granting output closest
///    at-or-after its accept pointer.
/// 3. **Pointer update** — only for matches made in the *first* iteration:
///    the output's grant pointer moves one past the accepted input and the
///    input's accept pointer one past the accepted output.
#[derive(Clone, Debug)]
pub struct Islip {
    n: usize,
    iterations: usize,
    backend: Backend,
    grant_ptr: Vec<RoundRobinPointer>,
    accept_ptr: Vec<RoundRobinPointer>,
    // Scratch, reused across slots.
    grant_of_target: Vec<Option<usize>>,
    // Word-parallel scratch (bitset backend): flat `n × words_for(n)`
    // masks plus three single-mask scratch buffers.
    rows: Vec<u64>,
    cols: Vec<u64>,
    grant_mask: Vec<u64>,
    unmatched_in: Vec<u64>,
    unmatched_out: Vec<u64>,
    cand: Vec<u64>,
    #[cfg(feature = "telemetry")]
    tracing: bool,
    #[cfg(feature = "telemetry")]
    trace: IterationTrace,
}

impl Islip {
    /// Creates an iSLIP scheduler with the given iteration budget.
    ///
    /// The canonical deployment uses a single iteration; the paper's
    /// iterative baselines use four. Both are supported.
    pub fn new(n: usize, iterations: usize) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        assert!(iterations > 0, "at least one iteration required");
        let w = bitkern::words_for(n);
        Islip {
            n,
            iterations,
            backend: Backend::default(),
            grant_ptr: vec![RoundRobinPointer::new(n); n],
            accept_ptr: vec![RoundRobinPointer::new(n); n],
            grant_of_target: vec![None; n],
            rows: Vec::with_capacity(n * w),
            cols: Vec::with_capacity(n * w),
            grant_mask: vec![0; n * w],
            unmatched_in: vec![0; w],
            unmatched_out: vec![0; w],
            cand: vec![0; w],
            #[cfg(feature = "telemetry")]
            tracing: false,
            #[cfg(feature = "telemetry")]
            trace: IterationTrace::default(),
        }
    }

    /// Convergence record of the most recent `schedule` call (same shape as
    /// [`DistributedLcf::last_trace`](crate::lcf::DistributedLcf::last_trace)).
    /// Only populated while tracing.
    #[cfg(feature = "telemetry")]
    pub fn last_trace(&self) -> &IterationTrace {
        &self.trace
    }

    /// Selects the matching-kernel implementation (builder style). Both
    /// backends produce bit-identical schedules; see [`Backend`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured kernel backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured iteration budget.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Current grant pointer position of output `j` (for tests/diagnostics).
    pub fn grant_pointer(&self, j: usize) -> usize {
        self.grant_ptr[j].pos()
    }

    /// Current accept pointer position of input `i`.
    pub fn accept_pointer(&self, i: usize) -> usize {
        self.accept_ptr[i].pos()
    }
}

impl Scheduler for Islip {
    fn name(&self) -> &'static str {
        "islip"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        // While tracing, take the scalar reference kernel: it is
        // bit-identical to the word-parallel kernel by contract, and it is
        // where step recording lives.
        #[cfg(feature = "telemetry")]
        let word_parallel = !self.tracing && self.backend.word_parallel();
        #[cfg(not(feature = "telemetry"))]
        let word_parallel = self.backend.word_parallel();
        if word_parallel {
            self.schedule_bitset(requests, out);
        } else {
            self.schedule_scalar(requests, out);
        }
    }

    fn reset(&mut self) {
        for p in &mut self.grant_ptr {
            *p = RoundRobinPointer::new(self.n);
        }
        for p in &mut self.accept_ptr {
            *p = RoundRobinPointer::new(self.n);
        }
        #[cfg(feature = "telemetry")]
        {
            self.trace = IterationTrace::default();
        }
    }

    #[cfg(feature = "telemetry")]
    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    #[cfg(feature = "telemetry")]
    fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {
        self.trace.drain_into(sink);
    }
}

impl Islip {
    /// The scalar reference kernel: one rotating scan per port per step.
    fn schedule_scalar(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        out.reset(n);
        let matching = out;
        #[cfg(feature = "telemetry")]
        self.trace.begin_cycle();

        for iter in 0..self.iterations {
            #[cfg(feature = "telemetry")]
            let mut step = self.tracing.then(crate::telemetry::IterationStep::default);
            #[cfg(feature = "telemetry")]
            if let Some(step) = step.as_mut() {
                for i in 0..n {
                    if matching.input_matched(i) {
                        continue;
                    }
                    for j in requests.row_ones(i) {
                        if !matching.output_matched(j) {
                            step.requests.push((i, j));
                        }
                    }
                }
            }
            // Grant step.
            for j in 0..n {
                self.grant_of_target[j] = None;
                if matching.output_matched(j) {
                    continue;
                }
                self.grant_of_target[j] =
                    self.grant_ptr[j].select(|i| !matching.input_matched(i) && requests.get(i, j));
            }

            #[cfg(feature = "telemetry")]
            if let Some(step) = step.as_mut() {
                for j in 0..n {
                    if let Some(i) = self.grant_of_target[j] {
                        step.grants.push((i, j));
                    }
                }
            }

            // Accept step.
            let mut new_matches = 0;
            for i in 0..n {
                if matching.input_matched(i) {
                    continue;
                }
                let accepted = self.accept_ptr[i].select(|j| self.grant_of_target[j] == Some(i));
                if let Some(j) = accepted {
                    matching.connect(i, j);
                    new_matches += 1;
                    #[cfg(feature = "telemetry")]
                    if let Some(step) = step.as_mut() {
                        step.accepts.push((i, j));
                    }
                    // Pointers slip only on first-iteration accepts; this is
                    // the rule that prevents starvation (McKeown, Sec. III).
                    if iter == 0 {
                        self.grant_ptr[j].advance_past(i);
                        self.accept_ptr[i].advance_past(j);
                    }
                }
            }
            #[cfg(feature = "telemetry")]
            {
                if let Some(step) = step.take() {
                    self.trace.steps.push(step);
                }
                if self.tracing {
                    self.trace.new_matches.push(new_matches);
                    if new_matches == 0 {
                        self.trace.converged_after = Some(iter + 1);
                    }
                }
            }
            if new_matches == 0 {
                break;
            }
        }
    }

    /// The word-parallel kernel: candidate filtering is a word-wise `AND`
    /// of a column mask against the unmatched-inputs mask, and each pointer
    /// scan is a word-walk [`bitkern::rotating_first`] over the
    /// `words_for(n)`-word mask. Produces grant-for-grant identical
    /// matchings (and identical pointer updates) to
    /// [`Islip::schedule_scalar`].
    fn schedule_bitset(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let n = self.n;
        let w = bitkern::words_for(n);
        out.reset(n);
        let matching = out;
        bitkern::load_rows(requests.bits(), &mut self.rows);
        bitkern::col_masks(&self.rows, n, &mut self.cols);
        bitkern::mask_fill(&mut self.unmatched_in, n);
        bitkern::mask_fill(&mut self.unmatched_out, n);

        for iter in 0..self.iterations {
            // Grant step: each unmatched output offers its grant to the
            // first requesting unmatched input at or after its pointer.
            // Walking word copies of the unmatched-outputs mask visits the
            // outputs in the same ascending order as the scalar loop.
            self.grant_mask.fill(0);
            for wi in 0..w {
                let mut outs = self.unmatched_out[wi];
                while outs != 0 {
                    let j = wi * bitkern::WORD_BITS + outs.trailing_zeros() as usize;
                    outs &= outs - 1;
                    for (k, c) in self.cand.iter_mut().enumerate() {
                        *c = self.cols[j * w + k] & self.unmatched_in[k];
                    }
                    if let Some(i) = bitkern::rotating_first(&self.cand, n, self.grant_ptr[j].pos())
                    {
                        bitkern::set_bit(&mut self.grant_mask[i * w..(i + 1) * w], j);
                    }
                }
            }

            // Accept step: each input holding grants accepts the first at
            // or after its pointer. The per-word snapshot (`ins`) is not
            // invalidated by clearing bits of `unmatched_in`: an input is
            // cleared only when it accepts, and each input accepts at most
            // once per iteration.
            let mut new_matches = 0;
            for wi in 0..w {
                let mut ins = self.unmatched_in[wi];
                while ins != 0 {
                    let i = wi * bitkern::WORD_BITS + ins.trailing_zeros() as usize;
                    ins &= ins - 1;
                    if let Some(j) = bitkern::rotating_first(
                        &self.grant_mask[i * w..(i + 1) * w],
                        n,
                        self.accept_ptr[i].pos(),
                    ) {
                        matching.connect(i, j);
                        bitkern::clear_bit(&mut self.unmatched_in, i);
                        bitkern::clear_bit(&mut self.unmatched_out, j);
                        new_matches += 1;
                        if iter == 0 {
                            self.grant_ptr[j].advance_past(i);
                            self.accept_ptr[i].advance_past(j);
                        }
                    }
                }
            }
            if new_matches == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_requests() {
        let mut s = Islip::new(4, 1);
        assert_eq!(s.schedule(&RequestMatrix::new(4)).size(), 0);
    }

    #[test]
    fn single_request_granted_and_pointers_move() {
        let mut s = Islip::new(4, 1);
        let requests = RequestMatrix::from_pairs(4, [(1, 2)]);
        let m = s.schedule(&requests);
        assert_eq!(m.output_for(1), Some(2));
        assert_eq!(s.grant_pointer(2), 2, "grant pointer moves past input 1");
        assert_eq!(s.accept_pointer(1), 3, "accept pointer moves past output 2");
    }

    #[test]
    fn pointers_do_not_move_without_accept() {
        let mut s = Islip::new(4, 1);
        s.schedule(&RequestMatrix::new(4));
        for j in 0..4 {
            assert_eq!(s.grant_pointer(j), 0);
        }
    }

    #[test]
    fn desynchronization_on_full_matrix() {
        // Classic iSLIP behaviour: under persistent full load the grant
        // pointers de-synchronize and the switch reaches a perfect matching
        // every slot after a short transient (at most n slots).
        let n = 8;
        let mut s = Islip::new(n, 1);
        let requests = RequestMatrix::full(n);
        let mut last_sizes = Vec::new();
        for _ in 0..3 * n {
            last_sizes.push(s.schedule(&requests).size());
        }
        assert!(
            last_sizes[2 * n..].iter().all(|&sz| sz == n),
            "pointers failed to desynchronize: {last_sizes:?}"
        );
    }

    #[test]
    fn round_robin_fairness_on_contended_output() {
        // Three inputs fight for output 0; over 3k slots each must win ~k.
        let n = 4;
        let mut s = Islip::new(n, 1);
        let requests = RequestMatrix::from_pairs(n, [(0, 0), (1, 0), (2, 0)]);
        let mut wins = [0usize; 4];
        for _ in 0..30 {
            let m = s.schedule(&requests);
            if let Some(i) = m.input_for(0) {
                wins[i] += 1;
            }
        }
        assert_eq!(wins, [10, 10, 10, 0]);
    }

    #[test]
    fn matchings_always_valid() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = Islip::new(16, 4);
        for _ in 0..200 {
            let requests = RequestMatrix::random(16, 0.3, &mut rng);
            let m = s.schedule(&requests);
            assert!(m.is_valid_for(&requests));
        }
    }

    #[test]
    fn maximal_with_n_iterations() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = Islip::new(12, 12);
        for _ in 0..100 {
            let requests = RequestMatrix::random(12, 0.4, &mut rng);
            let m = s.schedule(&requests);
            assert!(m.is_maximal_for(&requests));
        }
    }

    #[test]
    fn reset_restores_pointers() {
        let mut s = Islip::new(4, 1);
        s.schedule(&RequestMatrix::full(4));
        s.reset();
        for j in 0..4 {
            assert_eq!(s.grant_pointer(j), 0);
            assert_eq!(s.accept_pointer(j), 0);
        }
    }
}
