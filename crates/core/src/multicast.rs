//! Multicast scheduling with fanout splitting.
//!
//! Clint serves multicast through the *precalculated schedule* (Sec. 4.3);
//! the literature the paper cites (\[11\], Prabhakar/McKeown/Ahuja) schedules
//! multicast inside the arbiter instead: each input exposes the *fanout
//! set* of its head-of-line multicast cell, the scheduler grants a subset
//! of the requested outputs each slot (**fanout splitting**), and the cell
//! departs once every branch has been served — the unserved branches are
//! the cell's **residue**.
//!
//! Two classic residue policies are provided:
//!
//! * [`McastPolicy::Concentrate`] — serve the inputs with the *smallest*
//!   residual fanout first, each taking every free output it wants. Small
//!   fanouts complete and free their inputs; the residue concentrates on
//!   few inputs, which is the throughput-optimal direction (and is the
//!   least-choice-first idea transplanted to multicast).
//! * [`McastPolicy::Distribute`] — each output independently grants a
//!   rotating-priority requester; residue spreads across inputs.

use crate::arbiter::RoundRobinPointer;
use crate::bitmat::BitMatrix;

/// Residue placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McastPolicy {
    /// Smallest residual fanout first (concentrating, LCF-flavored).
    Concentrate,
    /// Independent per-output round-robin grants (distributing).
    Distribute,
}

/// One slot's multicast grant: which input feeds each output, and which
/// inputs completed their head-of-line cell.
#[derive(Clone, Debug)]
pub struct McastGrant {
    /// `owner[j]` = input whose cell is copied to output `j` this slot.
    pub owner: Vec<Option<usize>>,
    /// `completed[i]` = input `i`'s head cell had every branch served.
    pub completed: Vec<bool>,
    /// Branches served this slot, per input.
    pub served_branches: Vec<usize>,
}

impl McastGrant {
    /// Total branches (output copies) served.
    pub fn fanout_served(&self) -> usize {
        self.owner.iter().flatten().count()
    }
}

/// The fanout-splitting multicast scheduler.
///
/// ```
/// use lcf_core::bitmat::BitMatrix;
/// use lcf_core::multicast::{FanoutSplit, McastPolicy};
///
/// // Input 0 multicasts to outputs 1 and 3.
/// let mut fanouts = BitMatrix::new(4);
/// fanouts.set(0, 1, true);
/// fanouts.set(0, 3, true);
/// let mut sched = FanoutSplit::new(4, McastPolicy::Concentrate);
/// let grant = sched.schedule(&fanouts);
/// assert_eq!(grant.fanout_served(), 2);
/// assert!(grant.completed[0]);
/// ```
#[derive(Clone, Debug)]
pub struct FanoutSplit {
    n: usize,
    policy: McastPolicy,
    /// Rotating offset used for input ordering ties (Concentrate) .
    rr: RoundRobinPointer,
    /// Per-output grant pointers (Distribute).
    out_ptr: Vec<RoundRobinPointer>,
}

impl FanoutSplit {
    /// Creates a scheduler for `n` ports with the given residue policy.
    pub fn new(n: usize, policy: McastPolicy) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        FanoutSplit {
            n,
            policy,
            rr: RoundRobinPointer::new(n),
            out_ptr: vec![RoundRobinPointer::new(n); n],
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> McastPolicy {
        self.policy
    }

    /// Schedules one slot. `fanouts` row `i` is the residual fanout set of
    /// input `i`'s head-of-line cell (empty row = no multicast cell).
    pub fn schedule(&mut self, fanouts: &BitMatrix) -> McastGrant {
        assert_eq!(fanouts.n(), self.n, "fanout matrix size mismatch");
        let n = self.n;
        let mut owner: Vec<Option<usize>> = vec![None; n];
        let mut served_branches = vec![0usize; n];

        match self.policy {
            McastPolicy::Concentrate => {
                // Order inputs by residual fanout ascending; rotate the tie
                // order so equal-fanout inputs take turns going first.
                let start = self.rr.pos();
                let mut order: Vec<usize> = (0..n).filter(|&i| fanouts.row_any(i)).collect();
                order.sort_by_key(|&i| (fanouts.row_count(i), (i + n - start) % n));
                for &i in &order {
                    for j in fanouts.row_ones(i) {
                        if owner[j].is_none() {
                            owner[j] = Some(i);
                            served_branches[i] += 1;
                        }
                    }
                }
                self.rr.step();
            }
            McastPolicy::Distribute => {
                for (j, slot_owner) in owner.iter_mut().enumerate() {
                    if let Some(i) = self.out_ptr[j].select(|i| fanouts.get(i, j)) {
                        *slot_owner = Some(i);
                        served_branches[i] += 1;
                        self.out_ptr[j].advance_past(i);
                    }
                }
            }
        }

        let completed: Vec<bool> = (0..n)
            .map(|i| fanouts.row_any(i) && served_branches[i] == fanouts.row_count(i))
            .collect();
        McastGrant {
            owner,
            completed,
            served_branches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fanouts(n: usize, rows: &[(usize, &[usize])]) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for &(i, outs) in rows {
            for &j in outs {
                m.set(i, j, true);
            }
        }
        m
    }

    #[test]
    fn single_cell_fully_served() {
        let f = fanouts(4, &[(1, &[0, 2, 3])]);
        for policy in [McastPolicy::Concentrate, McastPolicy::Distribute] {
            let mut s = FanoutSplit::new(4, policy);
            let g = s.schedule(&f);
            assert_eq!(g.fanout_served(), 3, "{policy:?}");
            assert!(g.completed[1]);
            assert_eq!(g.served_branches[1], 3);
        }
    }

    #[test]
    fn concentrate_completes_small_fanouts_first() {
        // Input 0 wants {0,1,2,3} (fanout 4); input 1 wants {1} (fanout 1).
        // Concentration: input 1 completes; input 0 keeps a residue of {1}.
        let f = fanouts(4, &[(0, &[0, 1, 2, 3]), (1, &[1])]);
        let mut s = FanoutSplit::new(4, McastPolicy::Concentrate);
        let g = s.schedule(&f);
        assert!(g.completed[1], "small fanout must complete");
        assert!(!g.completed[0]);
        assert_eq!(g.owner[1], Some(1));
        assert_eq!(g.served_branches[0], 3, "residue of exactly one branch");
    }

    #[test]
    fn distribute_spreads_grants() {
        // Same pattern: per-output RR with fresh pointers favors input 0
        // everywhere, so input 0 completes and input 1 is the residue.
        let f = fanouts(4, &[(0, &[0, 1, 2, 3]), (1, &[1])]);
        let mut s = FanoutSplit::new(4, McastPolicy::Distribute);
        let g = s.schedule(&f);
        assert!(g.completed[0]);
        assert!(!g.completed[1]);
    }

    #[test]
    fn no_output_double_granted() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for policy in [McastPolicy::Concentrate, McastPolicy::Distribute] {
            let mut s = FanoutSplit::new(8, policy);
            for _ in 0..200 {
                let f = BitMatrix::from_fn(8, |_, _| rng.gen_bool(0.3));
                let g = s.schedule(&f);
                // Owners only among requesters.
                for (j, &o) in g.owner.iter().enumerate() {
                    if let Some(i) = o {
                        assert!(f.get(i, j), "{policy:?}: granted unrequested branch");
                    }
                }
                // Work conservation: every requested output is served.
                for j in 0..8 {
                    if f.col_count(j) > 0 {
                        assert!(g.owner[j].is_some(), "{policy:?}: output {j} idle");
                    }
                }
            }
        }
    }

    #[test]
    fn drains_residue_over_slots() {
        // Drive a tiny simulation: three overlapping multicast cells; every
        // cell must complete within a few slots under both policies.
        for policy in [McastPolicy::Concentrate, McastPolicy::Distribute] {
            let mut s = FanoutSplit::new(4, policy);
            let mut residual = fanouts(4, &[(0, &[0, 1]), (1, &[0, 1, 2]), (2, &[1, 2, 3])]);
            let mut slots = 0;
            while !residual.is_empty() {
                let g = s.schedule(&residual);
                assert!(g.fanout_served() > 0, "{policy:?} must make progress");
                for (j, &o) in g.owner.iter().enumerate() {
                    if let Some(i) = o {
                        residual.set(i, j, false);
                    }
                }
                slots += 1;
                assert!(slots <= 8, "{policy:?} failed to drain");
            }
        }
    }

    #[test]
    fn concentrate_beats_distribute_on_cell_completion() {
        // Synthetic steady state: every slot each idle input gets a fresh
        // random multicast cell; count completed cells over many slots.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 8;
        let slots = 4_000;
        let mut completions = Vec::new();
        for policy in [McastPolicy::Concentrate, McastPolicy::Distribute] {
            let mut rng = StdRng::seed_from_u64(99);
            let mut s = FanoutSplit::new(n, policy);
            let mut residual = BitMatrix::new(n);
            let mut completed_cells = 0u64;
            for _ in 0..slots {
                // Refill idle inputs with fanout-3 cells.
                for i in 0..n {
                    if !residual.row_any(i) {
                        for _ in 0..3 {
                            residual.set(i, rng.gen_range(0..n), true);
                        }
                    }
                }
                let g = s.schedule(&residual);
                for (j, &o) in g.owner.iter().enumerate() {
                    if let Some(i) = o {
                        residual.set(i, j, false);
                    }
                }
                completed_cells += g.completed.iter().filter(|&&c| c).count() as u64;
            }
            completions.push(completed_cells);
        }
        assert!(
            completions[0] >= completions[1],
            "concentrating residue must not lose to distributing: {completions:?}"
        );
    }
}
