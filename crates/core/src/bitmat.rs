//! A dense square bit matrix backed by `u64` words.
//!
//! `BitMatrix` is the storage substrate for [`RequestMatrix`](crate::request::RequestMatrix).
//! Rows are stored contiguously in row-major order, one or more 64-bit words
//! per row, so the per-output scans that dominate scheduler inner loops touch
//! a handful of cache lines and can use `trailing_zeros` to enumerate set bits
//! without per-bit branching.

/// A square `n × n` bit matrix.
///
/// All indices are checked; out-of-range accesses panic (these matrices are
/// small and scheduler correctness matters more than the cost of a compare).
///
/// ```
/// use lcf_core::bitmat::BitMatrix;
///
/// let mut m = BitMatrix::new(4);
/// m.set(1, 2, true);
/// m.set(1, 3, true);
/// assert_eq!(m.row_count(1), 2);
/// assert_eq!(m.row_ones(1).collect::<Vec<_>>(), vec![2, 3]);
/// m.clear_row(1);
/// assert!(m.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "BitMatrix requires n > 0");
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            words: vec![0; words_per_row * n],
        }
    }

    /// Builds a matrix from a predicate over `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = BitMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Side length of the matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of `u64` words storing one row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// All rows' words as one flat row-major slice
    /// (`n * words_per_row()` words) — the same layout
    /// [`BitMatrix::row_words`] exposes per row. Lets word-parallel kernels
    /// ingest the whole matrix with a single copy.
    #[inline]
    pub fn all_words(&self) -> &[u64] {
        &self.words
    }

    /// The words of `row`, least-significant bit = column 0. Bits at or
    /// beyond column `n` are always zero.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(row < self.n, "row out of range");
        let start = row * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// Overwrites `row` from raw words (little-endian bit order, matching
    /// [`BitMatrix::row_words`]). Bits at or beyond column `n` in the last
    /// word must be zero — this is the word-parallel ingest path used by the
    /// simulator to copy VOQ occupancy masks straight into the request
    /// matrix.
    ///
    /// # Panics
    /// Panics if `words.len() != self.words_per_row()` or if a bit beyond
    /// column `n` is set.
    pub fn set_row_words(&mut self, row: usize, words: &[u64]) {
        assert!(row < self.n, "row out of range");
        assert_eq!(words.len(), self.words_per_row, "word count mismatch");
        if let Some(&last) = words.last() {
            let used = self.n - (self.words_per_row - 1) * 64;
            let excess = if used == 64 { 0 } else { last >> used };
            assert_eq!(excess, 0, "bits beyond column n must be zero");
        }
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row].copy_from_slice(words);
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> (usize, u64) {
        assert!(row < self.n && col < self.n, "bit index out of range");
        (row * self.words_per_row + col / 64, 1u64 << (col % 64))
    }

    /// Returns the bit at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        let (w, mask) = self.index(row, col);
        self.words[w] & mask != 0
    }

    /// Sets the bit at `(row, col)` to `value`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        let (w, mask) = self.index(row, col);
        if value {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// Number of set bits in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        assert!(row < self.n, "row out of range");
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of set bits in `col`.
    pub fn col_count(&self, col: usize) -> usize {
        (0..self.n).filter(|&i| self.get(i, col)).count()
    }

    /// Total number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if `row` has at least one set bit.
    pub fn row_any(&self, row: usize) -> bool {
        assert!(row < self.n, "row out of range");
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .any(|&w| w != 0)
    }

    /// Clears every bit in `row`.
    pub fn clear_row(&mut self, row: usize) {
        assert!(row < self.n, "row out of range");
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row].fill(0);
    }

    /// Clears every bit in `col`.
    pub fn clear_col(&mut self, col: usize) {
        for row in 0..self.n {
            self.set(row, col, false);
        }
    }

    /// Clears the whole matrix.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the column indices of the set bits in `row`, ascending.
    pub fn row_ones(&self, row: usize) -> RowOnes<'_> {
        assert!(row < self.n, "row out of range");
        let start = row * self.words_per_row;
        RowOnes {
            words: &self.words[start..start + self.words_per_row],
            word_idx: 0,
            current: if self.words_per_row > 0 {
                self.words[start]
            } else {
                0
            },
        }
    }

    /// Iterates over the row indices of the set bits in `col`, ascending.
    pub fn col_ones(&self, col: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&i| self.get(i, col))
    }

    /// Iterates over all set `(row, col)` positions in row-major order.
    pub fn ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.row_ones(i).map(move |j| (i, j)))
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Copies the contents of `other` into `self` without reallocating.
    ///
    /// Schedulers keep a workhorse copy of the request matrix that they
    /// destructively update each slot; this keeps the hot path allocation-free.
    ///
    /// # Panics
    /// Panics if the two matrices differ in size.
    pub fn copy_from(&mut self, other: &BitMatrix) {
        assert_eq!(self.n, other.n, "copy_from requires equal sizes");
        self.words.copy_from_slice(&other.words);
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Iterator over set-bit columns of one row; see [`BitMatrix::row_ones`].
pub struct RowOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for RowOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_is_empty() {
        let m = BitMatrix::new(7);
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert_eq!(m.n(), 7);
        for i in 0..7 {
            for j in 0..7 {
                assert!(!m.get(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_size_panics() {
        let _ = BitMatrix::new(0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::new(5);
        m.set(2, 3, true);
        assert!(m.get(2, 3));
        assert!(!m.get(3, 2));
        m.set(2, 3, false);
        assert!(!m.get(2, 3));
    }

    #[test]
    fn set_is_idempotent() {
        let mut m = BitMatrix::new(4);
        m.set(1, 1, true);
        m.set(1, 1, true);
        assert_eq!(m.count(), 1);
        m.set(1, 1, false);
        m.set(1, 1, false);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn works_beyond_one_word() {
        let n = 130; // three words per row
        let mut m = BitMatrix::new(n);
        m.set(0, 0, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        m.set(0, 127, true);
        m.set(0, 129, true);
        assert_eq!(m.row_count(0), 5);
        let cols: Vec<usize> = m.row_ones(0).collect();
        assert_eq!(cols, vec![0, 63, 64, 127, 129]);
        assert_eq!(m.col_count(64), 1);
    }

    #[test]
    fn row_and_col_counts() {
        let mut m = BitMatrix::new(4);
        m.set(0, 1, true);
        m.set(1, 1, true);
        m.set(2, 1, true);
        m.set(2, 3, true);
        assert_eq!(m.row_count(2), 2);
        assert_eq!(m.col_count(1), 3);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn clear_row_and_col() {
        let mut m = BitMatrix::from_fn(6, |_, _| true);
        assert_eq!(m.count(), 36);
        m.clear_row(2);
        assert_eq!(m.count(), 30);
        assert!(!m.row_any(2));
        m.clear_col(4);
        assert_eq!(m.count(), 25);
        assert_eq!(m.col_count(4), 0);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn ones_iterates_row_major() {
        let mut m = BitMatrix::new(3);
        m.set(0, 2, true);
        m.set(1, 0, true);
        m.set(2, 1, true);
        let positions: Vec<(usize, usize)> = m.ones().collect();
        assert_eq!(positions, vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    fn col_ones_matches_get() {
        let m = BitMatrix::from_fn(9, |i, j| (i + j) % 3 == 0);
        for j in 0..9 {
            let via_iter: Vec<usize> = m.col_ones(j).collect();
            let via_get: Vec<usize> = (0..9).filter(|&i| m.get(i, j)).collect();
            assert_eq!(via_iter, via_get);
        }
    }

    #[test]
    fn from_fn_diagonal() {
        let m = BitMatrix::from_fn(8, |i, j| i == j);
        assert_eq!(m.count(), 8);
        for i in 0..8 {
            assert_eq!(m.row_count(i), 1);
            assert!(m.get(i, i));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let m = BitMatrix::new(4);
        let _ = m.get(4, 0);
    }

    #[test]
    fn debug_format_is_grid() {
        let mut m = BitMatrix::new(2);
        m.set(0, 1, true);
        let s = format!("{m:?}");
        assert!(s.contains(".1"));
        assert!(s.contains(".."));
    }
}
