//! # lcf-fabric — non-blocking switch fabrics
//!
//! The paper's switch model assumes "a non-blocking switch fabric such as
//! the crossbar switch of Figure 1. Other non-blocking fabrics such as Clos
//! networks are also possible" (Sec. 2). This crate provides both:
//!
//! * [`crossbar`] — a crosspoint-level crossbar: configure it from a
//!   [`Matching`](lcf_core::matching::Matching), forward a slot of packets,
//!   and account for the `n²` crosspoint cost.
//! * [`clos`] — three-stage Clos networks `C(m, k, r)` with a bipartite
//!   edge-coloring router: any matching routes without internal blocking
//!   when `m ≥ k` (rearrangeably non-blocking, Clos 1953).
//! * [`cost`] — crosspoint-count comparison between the two, including the
//!   optimal Clos dimensioning that makes wide switches affordable.
//!
//! The fabric is deliberately decoupled from the schedulers: a scheduler
//! produces a conflict-free matching, and any fabric here can realize it.
//! The tests verify that contract end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clos;
pub mod cost;
pub mod crossbar;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::clos::{ClosNetwork, ClosRoute};
    pub use crate::cost::{clos_crosspoints, crossbar_crosspoints, optimal_clos};
    pub use crate::crossbar::Crossbar;
}
