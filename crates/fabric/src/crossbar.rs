//! A crosspoint-level crossbar switch (the fabric of the paper's Fig. 1).

use lcf_core::matching::Matching;

/// An `n × n` crossbar modelled at the crosspoint level.
///
/// A crosspoint `(i, j)` connects input line `i` to output column `j`.
/// A configuration is conflict-free iff at most one crosspoint is closed
/// per row and per column — exactly the property a
/// [`Matching`] guarantees, which is what
/// makes the scheduler/fabric split sound.
///
/// ```
/// use lcf_core::matching::Matching;
/// use lcf_fabric::crossbar::Crossbar;
///
/// let mut xbar = Crossbar::new(4);
/// xbar.configure(&Matching::from_pairs(4, [(0, 3), (2, 1)]));
/// let out = xbar.forward(&[Some("a"), None, Some("c"), None]);
/// assert_eq!(out, vec![None, Some("c"), None, Some("a")]);
/// ```
#[derive(Clone, Debug)]
pub struct Crossbar {
    n: usize,
    /// Closed crosspoints, row-major.
    closed: Vec<bool>,
}

/// Error returned when a configuration would short two signals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossbarError {
    /// Two crosspoints closed in one row (an input driving two outputs is
    /// legal only for multicast-capable fabrics; see
    /// [`Crossbar::configure_multicast`]).
    RowConflict(usize),
    /// Two crosspoints closed in one column (two inputs shorted together).
    ColumnConflict(usize),
}

impl std::fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossbarError::RowConflict(i) => write!(f, "input {i} drives multiple outputs"),
            CrossbarError::ColumnConflict(j) => write!(f, "output {j} driven by multiple inputs"),
        }
    }
}

impl std::error::Error for CrossbarError {}

impl Crossbar {
    /// Creates an open (no connections) crossbar.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "crossbar requires n > 0");
        Crossbar {
            n,
            closed: vec![false; n * n],
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of crosspoints — the cost driver of a crossbar: `n²`.
    pub fn crosspoints(&self) -> usize {
        self.n * self.n
    }

    /// Opens every crosspoint.
    pub fn clear(&mut self) {
        self.closed.fill(false);
    }

    /// Whether crosspoint `(i, j)` is closed.
    pub fn is_closed(&self, input: usize, output: usize) -> bool {
        self.closed[input * self.n + output]
    }

    /// Configures the crossbar from a unicast matching. Always succeeds:
    /// matchings are conflict-free by construction.
    pub fn configure(&mut self, matching: &Matching) {
        assert_eq!(matching.n(), self.n, "matching size mismatch");
        self.clear();
        for (i, j) in matching.pairs() {
            self.closed[i * self.n + j] = true;
        }
        debug_assert!(self.check().is_ok());
    }

    /// Configures from explicit `(input, output)` pairs, allowing multicast
    /// (one input driving several outputs, as Clint's precalculated
    /// schedule does) but rejecting column conflicts.
    pub fn configure_multicast(
        &mut self,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<(), CrossbarError> {
        self.clear();
        for (i, j) in pairs {
            assert!(i < self.n && j < self.n, "port out of range");
            self.closed[i * self.n + j] = true;
        }
        // Multicast permits row fan-out; columns must stay exclusive.
        for j in 0..self.n {
            if (0..self.n).filter(|&i| self.is_closed(i, j)).count() > 1 {
                self.clear();
                return Err(CrossbarError::ColumnConflict(j));
            }
        }
        Ok(())
    }

    /// Verifies the electrical contract: at most one closed crosspoint per
    /// row and column.
    pub fn check(&self) -> Result<(), CrossbarError> {
        for i in 0..self.n {
            if (0..self.n).filter(|&j| self.is_closed(i, j)).count() > 1 {
                return Err(CrossbarError::RowConflict(i));
            }
        }
        for j in 0..self.n {
            if (0..self.n).filter(|&i| self.is_closed(i, j)).count() > 1 {
                return Err(CrossbarError::ColumnConflict(j));
            }
        }
        Ok(())
    }

    /// Forwards one slot: `inputs[i]` is the payload at input `i`; returns
    /// the payload arriving at each output.
    pub fn forward<T: Clone>(&self, inputs: &[Option<T>]) -> Vec<Option<T>> {
        assert_eq!(inputs.len(), self.n, "one payload slot per input");
        (0..self.n)
            .map(|j| {
                (0..self.n)
                    .find(|&i| self.is_closed(i, j))
                    .and_then(|i| inputs[i].clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_from_matching_and_forward() {
        let m = Matching::from_pairs(4, [(0, 2), (3, 1)]);
        let mut xbar = Crossbar::new(4);
        xbar.configure(&m);
        assert!(xbar.is_closed(0, 2));
        assert!(xbar.is_closed(3, 1));
        assert!(!xbar.is_closed(0, 0));
        let out = xbar.forward(&[Some("a"), None, None, Some("d")]);
        assert_eq!(out, vec![None, Some("d"), Some("a"), None]);
    }

    #[test]
    fn reconfiguration_clears_previous_state() {
        let mut xbar = Crossbar::new(4);
        xbar.configure(&Matching::from_pairs(4, [(0, 0)]));
        xbar.configure(&Matching::from_pairs(4, [(1, 1)]));
        assert!(!xbar.is_closed(0, 0));
        assert!(xbar.is_closed(1, 1));
    }

    #[test]
    fn multicast_fanout_allowed() {
        let mut xbar = Crossbar::new(4);
        xbar.configure_multicast([(2, 0), (2, 1), (2, 3)]).unwrap();
        let out = xbar.forward(&[None, None, Some(7u32), None]);
        assert_eq!(out, vec![Some(7), Some(7), None, Some(7)]);
    }

    #[test]
    fn column_conflict_rejected_and_rolled_back() {
        let mut xbar = Crossbar::new(4);
        let err = xbar.configure_multicast([(0, 1), (2, 1)]).unwrap_err();
        assert_eq!(err, CrossbarError::ColumnConflict(1));
        // The fabric must not be left half-configured.
        assert!((0..4).all(|i| (0..4).all(|j| !xbar.is_closed(i, j))));
    }

    #[test]
    fn check_detects_conflicts() {
        let mut xbar = Crossbar::new(3);
        xbar.closed[0] = true; // (0,0)
        xbar.closed[1] = true; // (0,1) — row conflict
        assert_eq!(xbar.check(), Err(CrossbarError::RowConflict(0)));
    }

    #[test]
    fn crosspoint_cost_is_quadratic() {
        assert_eq!(Crossbar::new(16).crosspoints(), 256);
        assert_eq!(Crossbar::new(64).crosspoints(), 4096);
    }
}
