//! Crosspoint-cost comparison: crossbar vs Clos (the scalability argument
//! behind the paper's Sec. 2 mention of Clos fabrics).

use crate::clos::ClosNetwork;

/// Crosspoints of an `n × n` crossbar: `n²`.
pub fn crossbar_crosspoints(n: usize) -> usize {
    n * n
}

/// Crosspoints of a Clos network.
pub fn clos_crosspoints(net: &ClosNetwork) -> usize {
    net.crosspoints()
}

/// Finds the rearrangeably non-blocking Clos network (`m = k`) with the
/// fewest crosspoints for `n` ports, over all factorizations `n = r·k`.
///
/// Returns `None` when no 3-stage decomposition beats a plain crossbar
/// (small `n`).
pub fn optimal_clos(n: usize) -> Option<ClosNetwork> {
    let mut best: Option<ClosNetwork> = None;
    for k in 2..n {
        if !n.is_multiple_of(k) {
            continue;
        }
        let r = n / k;
        if r < 2 {
            continue;
        }
        let candidate = ClosNetwork::new(k, k, r);
        if best.is_none_or(|b| candidate.crosspoints() < b.crosspoints()) {
            best = Some(candidate);
        }
    }
    best.filter(|b| b.crosspoints() < crossbar_crosspoints(n))
}

/// One row of a crossbar-vs-Clos cost table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostRow {
    /// Port count.
    pub n: usize,
    /// Crossbar crosspoints.
    pub crossbar: usize,
    /// Best rearrangeable Clos crosspoints (crossbar if no Clos wins).
    pub clos: usize,
    /// The winning Clos dimensioning, if any.
    pub best: Option<ClosNetwork>,
}

/// Builds the comparison for a port sweep.
pub fn comparison(ns: &[usize]) -> Vec<CostRow> {
    ns.iter()
        .map(|&n| {
            let best = optimal_clos(n);
            CostRow {
                n,
                crossbar: crossbar_crosspoints(n),
                clos: best.map_or(crossbar_crosspoints(n), |b| b.crosspoints()),
                best,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_cost() {
        assert_eq!(crossbar_crosspoints(16), 256);
        assert_eq!(crossbar_crosspoints(256), 65536);
    }

    #[test]
    fn small_switches_prefer_crossbars() {
        // At n = 4 every 3-stage decomposition costs more than 16 points.
        assert!(optimal_clos(4).is_none());
    }

    #[test]
    fn large_switches_prefer_clos() {
        let best = optimal_clos(256).expect("a 256-port Clos beats the crossbar");
        assert!(best.crosspoints() < crossbar_crosspoints(256));
        assert!(best.is_rearrangeably_nonblocking());
        assert_eq!(best.ports(), 256);
    }

    #[test]
    fn optimum_is_actually_minimal() {
        let n = 64;
        let best = optimal_clos(n).expect("64 ports decompose");
        for k in 2..n {
            if n % k == 0 && n / k >= 2 {
                let candidate = ClosNetwork::new(k, k, n / k);
                assert!(best.crosspoints() <= candidate.crosspoints());
            }
        }
    }

    #[test]
    fn comparison_rows_are_consistent() {
        let rows = comparison(&[4, 16, 64, 256]);
        for row in &rows {
            assert!(row.clos <= row.crossbar);
            if let Some(best) = row.best {
                assert_eq!(best.crosspoints(), row.clos);
            } else {
                assert_eq!(row.clos, row.crossbar);
            }
        }
        // Cost advantage grows with n.
        let gain = |r: &CostRow| r.crossbar as f64 / r.clos as f64;
        assert!(gain(&rows[3]) > gain(&rows[1]));
    }
}
