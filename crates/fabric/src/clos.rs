//! Three-stage Clos networks `C(m, k, r)` (Clos 1953, reference \[2\] of the
//! paper).
//!
//! An `n = r·k` port Clos network has `r` ingress switches (`k × m`), `m`
//! middle switches (`r × r`) and `r` egress switches (`m × k`). It is
//! *rearrangeably non-blocking* for `m ≥ k`: any conflict-free matching of
//! external ports can be routed without internal collisions, possibly
//! rearranging existing routes — which is fine for a slot-scheduled switch
//! that recomputes the whole configuration every slot. It is *strictly*
//! non-blocking for `m ≥ 2k − 1`.
//!
//! Routing is bipartite edge coloring: each matched pair becomes an edge
//! between its ingress and egress switch, and a color (= middle switch)
//! assignment with no repeated color at any switch is exactly a
//! collision-free route. The classic König/alternating-path algorithm needs
//! only `Δ ≤ k ≤ m` colors, proving the non-blocking claim constructively.

use lcf_core::matching::Matching;

/// Routing failure: the network is under-provisioned (`m < k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosBlocked {
    /// The middle-stage count that would have been needed.
    pub needed: usize,
}

impl std::fmt::Display for ClosBlocked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Clos network blocked: needs {} middle switches",
            self.needed
        )
    }
}

impl std::error::Error for ClosBlocked {}

/// A three-stage Clos network `C(m, k, r)`.
///
/// ```
/// use lcf_core::matching::Matching;
/// use lcf_fabric::clos::ClosNetwork;
///
/// let net = ClosNetwork::rearrangeable_for_ports(16);
/// let matching = Matching::from_pairs(16, (0..16).map(|i| (i, 15 - i)));
/// let route = net.route(&matching).unwrap();
/// assert_eq!(route.size(), 16);
/// assert!(route.verify()); // no internal link used twice
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosNetwork {
    /// Middle switches.
    pub m: usize,
    /// External ports per ingress/egress switch.
    pub k: usize,
    /// Ingress (and egress) switches.
    pub r: usize,
}

impl ClosNetwork {
    /// Creates a `C(m, k, r)` network.
    pub fn new(m: usize, k: usize, r: usize) -> Self {
        assert!(
            m > 0 && k > 0 && r > 0,
            "all Clos parameters must be positive"
        );
        ClosNetwork { m, k, r }
    }

    /// A rearrangeably non-blocking network (`m = k`) for `n` ports, with
    /// `r × k` as square as possible.
    pub fn rearrangeable_for_ports(n: usize) -> Self {
        let (k, r) = split_ports(n);
        ClosNetwork::new(k, k, r)
    }

    /// A strictly non-blocking network (`m = 2k − 1`) for `n` ports.
    pub fn strict_for_ports(n: usize) -> Self {
        let (k, r) = split_ports(n);
        ClosNetwork::new(2 * k - 1, k, r)
    }

    /// External port count `n = r·k`.
    pub fn ports(&self) -> usize {
        self.r * self.k
    }

    /// `m ≥ k`.
    pub fn is_rearrangeably_nonblocking(&self) -> bool {
        self.m >= self.k
    }

    /// `m ≥ 2k − 1`.
    pub fn is_strictly_nonblocking(&self) -> bool {
        self.m >= 2 * self.k - 1
    }

    /// Total crosspoints: `r·k·m` (ingress) + `m·r²` (middle) + `r·m·k`
    /// (egress).
    pub fn crosspoints(&self) -> usize {
        2 * self.r * self.k * self.m + self.m * self.r * self.r
    }

    /// Ingress switch of external input `p`.
    pub fn ingress_of(&self, p: usize) -> usize {
        p / self.k
    }

    /// Egress switch of external output `q`.
    pub fn egress_of(&self, q: usize) -> usize {
        q / self.k
    }

    /// Routes a matching through the middle stage.
    ///
    /// Returns one `(input, middle, output)` assignment per matched pair.
    /// Succeeds for every matching when `m ≥ k`; with fewer middle switches
    /// routing fails as soon as some ingress or egress switch needs more
    /// colors than exist.
    pub fn route(&self, matching: &Matching) -> Result<ClosRoute, ClosBlocked> {
        assert_eq!(matching.n(), self.ports(), "matching size mismatch");
        let edges: Vec<(usize, usize, usize, usize)> = matching
            .pairs()
            .map(|(p, q)| (p, q, self.ingress_of(p), self.egress_of(q)))
            .collect();

        // Degree bound: an ingress switch with d routed inputs needs d
        // colors; d <= k always, but check against m for under-provisioned
        // networks to fail fast with a precise requirement.
        let mut ingress_deg = vec![0usize; self.r];
        let mut egress_deg = vec![0usize; self.r];
        for &(_, _, a, b) in &edges {
            ingress_deg[a] += 1;
            egress_deg[b] += 1;
        }
        let needed = ingress_deg
            .iter()
            .chain(egress_deg.iter())
            .copied()
            .max()
            .unwrap_or(0);
        if needed > self.m {
            return Err(ClosBlocked { needed });
        }

        // Bipartite edge coloring with alternating-path repair (König).
        let mut color_of: Vec<Option<usize>> = vec![None; edges.len()];
        // at_ingress[a][c] / at_egress[b][c] = edge using color c there.
        let mut at_ingress: Vec<Vec<Option<usize>>> = vec![vec![None; self.m]; self.r];
        let mut at_egress: Vec<Vec<Option<usize>>> = vec![vec![None; self.m]; self.r];

        for e in 0..edges.len() {
            let (_, _, a, b) = edges[e];
            let free_a = (0..self.m).find(|&c| at_ingress[a][c].is_none());
            let free_both =
                (0..self.m).find(|&c| at_ingress[a][c].is_none() && at_egress[b][c].is_none());
            if let Some(c) = free_both {
                color_of[e] = Some(c);
                at_ingress[a][c] = Some(e);
                at_egress[b][c] = Some(e);
                continue;
            }
            // No shared free color: take c1 free at the ingress and c2 free
            // at the egress, then invert the alternating (c1, c2) path that
            // starts at the egress. The path arrives at ingress switches
            // only via c1 edges, and c1 is free at `a`, so it never touches
            // `a`; after inversion c1 is free at `b` as well.
            // lint:allow(no-panic): each node has degree <= m, so one of the m colors is free (Vizing bound)
            let c1 = free_a.expect("degree bound guarantees a free ingress color");
            let c2 = (0..self.m)
                .find(|&c| at_egress[b][c].is_none())
                // lint:allow(no-panic): each node has degree <= m, so one of the m colors is free (Vizing bound)
                .expect("degree bound guarantees a free egress color");
            // `cur` is the next edge to recolor from `from_col` to `to_col`;
            // it was found at an egress node iff `found_at_egress`.
            let mut cur = at_egress[b][c1];
            let mut found_at_egress = true;
            let (mut from_col, mut to_col) = (c1, c2);
            while let Some(edge) = cur {
                let (_, _, ea, eb) = edges[edge];
                // The far endpoint, where the inversion may newly clash.
                let far_is_ingress = found_at_egress;
                let next = if far_is_ingress {
                    at_ingress[ea][to_col]
                } else {
                    at_egress[eb][to_col]
                };
                // Recolor. Clear the old slots only if they still point at
                // this edge — at the endpoint shared with the previously
                // recolored edge the slot has already been taken over.
                if at_ingress[ea][from_col] == Some(edge) {
                    at_ingress[ea][from_col] = None;
                }
                if at_egress[eb][from_col] == Some(edge) {
                    at_egress[eb][from_col] = None;
                }
                color_of[edge] = Some(to_col);
                at_ingress[ea][to_col] = Some(edge);
                at_egress[eb][to_col] = Some(edge);
                // Walk on.
                cur = next;
                found_at_egress = !far_is_ingress;
                std::mem::swap(&mut from_col, &mut to_col);
            }
            // c1 is now free at both a and b.
            debug_assert!(at_ingress[a][c1].is_none());
            debug_assert!(at_egress[b][c1].is_none());
            color_of[e] = Some(c1);
            at_ingress[a][c1] = Some(e);
            at_egress[b][c1] = Some(e);
        }

        let assignments: Vec<(usize, usize, usize)> = edges
            .iter()
            .zip(&color_of)
            // lint:allow(no-panic): the coloring loop above assigns every edge exactly once
            .map(|(&(p, q, _, _), &c)| (p, c.expect("all edges colored"), q))
            .collect();
        let route = ClosRoute {
            net: *self,
            assignments,
        };
        debug_assert!(route.verify());
        Ok(route)
    }
}

/// Splits `n` ports into `r` switches of `k` ports, as square as possible.
fn split_ports(n: usize) -> (usize, usize) {
    assert!(n > 1, "a Clos network needs at least 2 ports");
    let mut k = (n as f64).sqrt().round() as usize;
    while k > 1 && !n.is_multiple_of(k) {
        k -= 1;
    }
    let k = k.max(1);
    (k, n / k)
}

/// A routed configuration: `(input, middle switch, output)` per connection.
#[derive(Clone, Debug)]
pub struct ClosRoute {
    net: ClosNetwork,
    assignments: Vec<(usize, usize, usize)>,
}

impl ClosRoute {
    /// The routed `(input, middle, output)` triples.
    pub fn assignments(&self) -> &[(usize, usize, usize)] {
        &self.assignments
    }

    /// Number of routed connections.
    pub fn size(&self) -> usize {
        self.assignments.len()
    }

    /// Verifies that no internal link is used twice: every (ingress,
    /// middle) and (middle, egress) link carries at most one connection.
    /// Link occupancy is a dense `switch × middle` bitmap — deterministic
    /// iteration and O(1) probes, no hashing.
    pub fn verify(&self) -> bool {
        let (m, r) = (self.net.m, self.net.r);
        let mut up_links = vec![false; r * m];
        let mut down_links = vec![false; m * r];
        for &(p, c, q) in &self.assignments {
            let up = self.net.ingress_of(p) * m + c;
            let down = c * r + self.net.egress_of(q);
            if up_links[up] || down_links[down] {
                return false;
            }
            up_links[up] = true;
            down_links[down] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn random_permutation_matching(n: usize, rng: &mut StdRng) -> Matching {
        let mut outs: Vec<usize> = (0..n).collect();
        outs.shuffle(rng);
        Matching::from_pairs(n, (0..n).map(|i| (i, outs[i])))
    }

    fn random_partial_matching(n: usize, size: usize, rng: &mut StdRng) -> Matching {
        let mut ins: Vec<usize> = (0..n).collect();
        let mut outs: Vec<usize> = (0..n).collect();
        ins.shuffle(rng);
        outs.shuffle(rng);
        Matching::from_pairs(n, ins.into_iter().zip(outs).take(size))
    }

    #[test]
    fn parameters_and_port_split() {
        let c = ClosNetwork::rearrangeable_for_ports(16);
        assert_eq!(c.ports(), 16);
        assert_eq!((c.m, c.k, c.r), (4, 4, 4));
        assert!(c.is_rearrangeably_nonblocking());
        assert!(!c.is_strictly_nonblocking());

        let s = ClosNetwork::strict_for_ports(16);
        assert_eq!((s.m, s.k, s.r), (7, 4, 4));
        assert!(s.is_strictly_nonblocking());
    }

    #[test]
    fn split_handles_non_squares() {
        let c = ClosNetwork::rearrangeable_for_ports(12);
        assert_eq!(c.ports(), 12);
        let c = ClosNetwork::rearrangeable_for_ports(17); // prime
        assert_eq!(c.ports(), 17);
        assert_eq!(c.k, 1);
    }

    #[test]
    fn routes_full_permutations_with_m_equals_k() {
        let net = ClosNetwork::rearrangeable_for_ports(16);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let m = random_permutation_matching(16, &mut rng);
            let route = net.route(&m).expect("m = k must route any permutation");
            assert_eq!(route.size(), 16);
            assert!(route.verify());
        }
    }

    #[test]
    fn routes_partial_matchings() {
        let net = ClosNetwork::rearrangeable_for_ports(64);
        let mut rng = StdRng::seed_from_u64(2);
        for size in [0usize, 1, 13, 40, 64] {
            let m = random_partial_matching(64, size, &mut rng);
            let route = net.route(&m).expect("partial matchings route too");
            assert_eq!(route.size(), size);
            assert!(route.verify());
        }
    }

    #[test]
    fn strictly_nonblocking_network_routes_too() {
        let net = ClosNetwork::strict_for_ports(16);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let m = random_permutation_matching(16, &mut rng);
            assert!(net.route(&m).expect("strict network").verify());
        }
    }

    #[test]
    fn underprovisioned_network_blocks() {
        // m = 2 < k = 4: a permutation needs 4 middle switches.
        let net = ClosNetwork::new(2, 4, 4);
        let m = Matching::from_pairs(16, (0..16).map(|i| (i, i)));
        let err = net.route(&m).unwrap_err();
        assert_eq!(err.needed, 4);
    }

    #[test]
    fn route_respects_port_geography() {
        let net = ClosNetwork::new(4, 4, 4);
        assert_eq!(net.ingress_of(0), 0);
        assert_eq!(net.ingress_of(7), 1);
        assert_eq!(net.egress_of(15), 3);
    }

    #[test]
    fn worst_case_concentrated_matching() {
        // All k inputs of ingress 0 route to the k outputs of egress 0:
        // every connection needs a distinct middle switch.
        let net = ClosNetwork::new(4, 4, 4);
        let m = Matching::from_pairs(16, (0..4).map(|i| (i, 3 - i)));
        let route = net
            .route(&m)
            .expect("k parallel connections need k middles");
        let mut middles: Vec<usize> = route.assignments().iter().map(|&(_, c, _)| c).collect();
        middles.sort_unstable();
        middles.dedup();
        assert_eq!(middles.len(), 4, "each connection on its own middle switch");
    }

    #[test]
    fn scheduler_to_fabric_contract() {
        // End to end: an LCF matching routes through a rearrangeable Clos.
        use lcf_core::lcf::CentralLcf;
        use lcf_core::request::RequestMatrix;
        use lcf_core::traits::Scheduler;
        let net = ClosNetwork::rearrangeable_for_ports(16);
        let mut sched = CentralLcf::with_round_robin(16);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let requests = RequestMatrix::random(16, 0.4, &mut rng);
            let matching = sched.schedule(&requests);
            let route = net.route(&matching).expect("every matching routes");
            assert_eq!(route.size(), matching.size());
            assert!(route.verify());
        }
    }
}
