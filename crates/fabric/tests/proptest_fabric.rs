//! Property tests: every conflict-free matching routes through every
//! adequately provisioned fabric, for arbitrary shapes and sizes.

use lcf_core::matching::Matching;
use lcf_fabric::clos::ClosNetwork;
use lcf_fabric::crossbar::Crossbar;
use proptest::prelude::*;

/// Strategy: a random partial matching over `n` ports, built from two
/// independent permutations truncated to a random size.
fn matching(n: usize) -> impl Strategy<Value = Matching> {
    (
        Just(n),
        proptest::collection::vec(any::<u32>(), n),
        proptest::collection::vec(any::<u32>(), n),
        0..=n,
    )
        .prop_map(|(n, in_keys, out_keys, size)| {
            let mut ins: Vec<usize> = (0..n).collect();
            let mut outs: Vec<usize> = (0..n).collect();
            ins.sort_by_key(|&i| in_keys[i]);
            outs.sort_by_key(|&j| out_keys[j]);
            Matching::from_pairs(n, ins.into_iter().zip(outs).take(size))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The crossbar accepts every matching and forwards exactly along it.
    #[test]
    fn crossbar_realizes_every_matching(m in matching(12)) {
        let mut xbar = Crossbar::new(12);
        xbar.configure(&m);
        prop_assert!(xbar.check().is_ok());
        let inputs: Vec<Option<usize>> = (0..12).map(Some).collect();
        let outputs = xbar.forward(&inputs);
        for (j, &out) in outputs.iter().enumerate() {
            prop_assert_eq!(out, m.input_for(j), "output {} payload", j);
        }
    }

    /// A rearrangeably non-blocking Clos (m = k) routes every matching with
    /// no internal link used twice, across several dimensionings.
    #[test]
    fn clos_routes_every_matching(
        m in matching(12),
        k in proptest::sample::select(vec![2usize, 3, 4, 6]),
    ) {
        let r = 12 / k;
        let net = ClosNetwork::new(k, k, r);
        prop_assert_eq!(net.ports(), 12);
        let route = net.route(&m).expect("m = k is rearrangeably non-blocking");
        prop_assert_eq!(route.size(), m.size());
        prop_assert!(route.verify());
        // Every assignment must reproduce a matched pair.
        for &(p, _, q) in route.assignments() {
            prop_assert_eq!(m.output_for(p), Some(q));
        }
    }

    /// Extra middle switches never hurt: strict networks route everything
    /// the rearrangeable one does.
    #[test]
    fn more_middles_still_route(m in matching(12)) {
        for extra in 0..3usize {
            let net = ClosNetwork::new(4 + extra, 4, 3);
            let route = net.route(&m).expect("provisioned network routes");
            prop_assert!(route.verify());
        }
    }

    /// The middle switch assignment is a proper coloring: connections
    /// sharing an ingress or egress switch never share a middle switch.
    #[test]
    fn routing_is_a_proper_edge_coloring(m in matching(16)) {
        let net = ClosNetwork::new(4, 4, 4);
        let route = net.route(&m).expect("routes");
        let a = route.assignments();
        for x in 0..a.len() {
            for y in x + 1..a.len() {
                let (p1, c1, q1) = a[x];
                let (p2, c2, q2) = a[y];
                if net.ingress_of(p1) == net.ingress_of(p2) || net.egress_of(q1) == net.egress_of(q2) {
                    prop_assert_ne!(c1, c2, "shared switch must imply distinct middles");
                }
            }
        }
    }
}
