//! Criterion bench: scheduling cost vs port count (EXT-5).
//!
//! Software analogue of the paper's Sec. 6.2 "Speed" comparison: the
//! central scheduler's work grows like n² (n sequential resources, each an
//! O(n) scan) while the distributed scheduler does a fixed number of
//! iterations of O(n²) message work — and the Hopcroft–Karp reference shows
//! what a maximum-size matcher costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcf_core::bitkern::Backend;
use lcf_core::matching::Matching;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_vs_n");
    let kinds = [
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
        SchedulerKind::MaxSize,
    ];
    for n in [8usize, 16, 32, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(3);
        let pool: Vec<RequestMatrix> = (0..16)
            .map(|_| RequestMatrix::random(n, 0.5, &mut rng))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        for kind in kinds {
            let (mut sched, choice) = kind.build_with_backend(n, 4, 5, Backend::default());
            // Readers take this group as kernel scaling data, so a silent
            // scalar fallback would poison the committed numbers.
            assert!(
                !choice.is_fallback(),
                "{} at n = {n} fell back to scalar ({choice}); \
                 schedule_vs_n must measure the requested kernel",
                kind.name()
            );
            let mut out = Matching::new(n);
            let mut idx = 0usize;
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &pool, |b, pool| {
                b.iter(|| {
                    sched.schedule_into(&pool[idx % pool.len()], &mut out);
                    idx += 1;
                    std::hint::black_box(out.size())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
