//! Criterion bench: cost of one scheduling decision, per scheduler, at the
//! paper's n = 16 across request densities (EXT-5), plus the word-parallel
//! kernel comparison (scalar vs bitset backend) across port counts, plus
//! the `sim_heavy` end-to-end heavy-traffic slot loop (load 0.99, n = 32)
//! comparing the fast path against the legacy paths.
//!
//! Regenerate the committed baseline with
//! `CRITERION_JSON=$PWD/results/BENCH_schedulers.json cargo bench --bench schedulers`
//! from the workspace root (absolute path: bench binaries run with the
//! package dir as cwd).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcf_core::bitkern::Backend;
use lcf_core::matching::Matching;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_schedulers(c: &mut Criterion) {
    let n = 16;
    let mut group = c.benchmark_group("schedule_n16");
    for kind in SchedulerKind::ALL {
        for density in [0.25, 0.75] {
            let mut rng = StdRng::seed_from_u64(7);
            // A pool of request matrices so the scheduler sees variety; the
            // FIFO scheduler needs <=1 request per row.
            let pool: Vec<RequestMatrix> = (0..64)
                .map(|_| {
                    if kind.wants_fifo_queues() {
                        use rand::Rng;
                        let mut pairs: Vec<(usize, usize)> = Vec::new();
                        for i in 0..n {
                            if rng.gen_bool(density) {
                                pairs.push((i, rng.gen_range(0..n)));
                            }
                        }
                        RequestMatrix::from_pairs(n, pairs)
                    } else {
                        RequestMatrix::random(n, density, &mut rng)
                    }
                })
                .collect();
            let mut sched = kind.build(n, 4, 11);
            // The hot path is allocation-free: one Matching reused across
            // every decision, exactly as the simulator's slot loop does it.
            let mut out = Matching::new(n);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("d{density}")),
                &pool,
                |b, pool| {
                    b.iter(|| {
                        sched.schedule_into(&pool[idx % pool.len()], &mut out);
                        idx += 1;
                        std::hint::black_box(out.size())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Scalar vs word-parallel kernels for every scheduler that has both, at
/// n = 8..256 (multi-word masks above 64). The bitset kernels are the
/// production default; the scalar reference is what the paper's Fig. 2
/// pseudocode transliterates to.
fn bench_kernels(c: &mut Criterion) {
    let kinds = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
    ];
    for backend in [Backend::Scalar, Backend::Bitset] {
        let mut group = c.benchmark_group(format!("kernel_{backend}"));
        for kind in kinds {
            for n in [8usize, 16, 32, 64, 128, 256] {
                let mut rng = StdRng::seed_from_u64(7);
                let pool: Vec<RequestMatrix> = (0..64)
                    .map(|_| RequestMatrix::random(n, 0.5, &mut rng))
                    .collect();
                let mut sched = kind.build_with_backend(n, 4, 11, backend).0;
                let mut out = Matching::new(n);
                let mut idx = 0usize;
                group.bench_with_input(BenchmarkId::new(kind.name(), n), &pool, |b, pool| {
                    b.iter(|| {
                        sched.schedule_into(&pool[idx % pool.len()], &mut out);
                        idx += 1;
                        std::hint::black_box(out.size())
                    })
                });
            }
        }
        group.finish();
    }
}

/// The heavy-traffic slot loop: `lcf_central` at n = 32, load 0.99,
/// full simulator pipeline (traffic → PQ → VOQ spill → schedule →
/// delivery → stats). Three variants, measured in the same run so the
/// committed ratios are machine-independent:
///
/// * `reference` — scalar matching kernel + legacy per-pair generator,
///   the paper-transliteration path every optimization is accounted
///   against;
/// * `legacy` — word-parallel kernel + legacy generator (the pre-fast-path
///   production default);
/// * `fast` — word-parallel kernel + batched word-granularity generator,
///   the heavy-traffic fast path.
///
/// `bench_guard` asserts from the committed baseline that `fast` is at
/// least 3x the `reference` slot rate and never slower than `legacy`.
fn bench_sim_heavy(c: &mut Criterion) {
    use lcf_sim::stats::SimStats;
    use lcf_sim::switch::{IqSwitch, QueueMode};
    use lcf_sim::traffic::{Bernoulli, DestPattern, FastBernoulli, Traffic};

    const SLOTS_PER_ITER: u64 = 1_000;
    let n = 32usize;
    let load = 0.99;
    let mut group = c.benchmark_group("sim_heavy");
    group.throughput(Throughput::Elements(SLOTS_PER_ITER));

    for variant in ["reference", "legacy", "fast"] {
        let backend = if variant == "reference" {
            Backend::Scalar
        } else {
            Backend::Bitset
        };
        group.bench_function(BenchmarkId::new("lcf_central_n32_load0.99", variant), |b| {
            let sched = SchedulerKind::LcfCentral
                .build_with_backend(n, 4, 2, backend)
                .0;
            let mut sw = IqSwitch::new(n, sched, QueueMode::Voq { cap: 256 }, 1_000);
            let mut traffic: Box<dyn Traffic> = if variant == "fast" {
                Box::new(FastBernoulli::new(n, load, DestPattern::Uniform))
            } else {
                Box::new(Bernoulli::new(n, load, DestPattern::Uniform))
            };
            let mut rng = StdRng::seed_from_u64(1);
            let mut stats = SimStats::new(n, 0, 4096);
            let mut slot = 0u64;
            b.iter(|| {
                for _ in 0..SLOTS_PER_ITER {
                    sw.step(slot, traffic.as_mut(), &mut rng, &mut stats);
                    slot += 1;
                }
                std::hint::black_box(stats.delivered)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_kernels, bench_sim_heavy);
criterion_main!(benches);
