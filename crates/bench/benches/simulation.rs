//! Criterion bench: end-to-end simulator slot rate.
//!
//! Two groups:
//!
//! * `sim_slots` — model comparison at the paper's default configuration
//!   (n = 16, load 0.8), covering the Fig. 12 architectures. This group is
//!   kept identical to the pinned `.bench-baseline` checkout so criterion
//!   baseline-vs-current comparisons of `sim_slots` stay apples-to-apples.
//! * `sim_scaling` — the hot-loop scaling matrix: slots/sec for
//!   n ∈ {16, 32, 64, 128} × {lcf_central_rr, islip} × loads {0.5, 0.95}.
//!   New in this tree (no baseline counterpart); the committed throughput record
//!   that CI guards against is the scheduler-kernel baseline
//!   `results/BENCH_schedulers.json` (see the `bench_guard` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::outbuf::ObSwitch;
use lcf_sim::stats::SimStats;
use lcf_sim::switch::{IqSwitch, QueueMode};
use lcf_sim::traffic::{Bernoulli, DestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLOTS_PER_ITER: u64 = 1_000;

fn bench_sim_models(c: &mut Criterion) {
    let cfg = SimConfig::paper_default();
    let n = cfg.n;
    let mut group = c.benchmark_group("sim_slots");
    group.throughput(Throughput::Elements(SLOTS_PER_ITER));

    for model in [
        ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
        ModelKind::Scheduler(SchedulerKind::LcfDistRr),
        ModelKind::Scheduler(SchedulerKind::Islip),
        ModelKind::Scheduler(SchedulerKind::Fifo),
        ModelKind::OutputBuffered,
    ] {
        group.bench_function(BenchmarkId::new("load0.8", model.name()), |b| {
            let mut traffic = Bernoulli::new(n, 0.8, DestPattern::Uniform);
            let mut rng = StdRng::seed_from_u64(1);
            let mut stats = SimStats::new(n, 0, cfg.max_latency_bucket);
            let mut slot = 0u64;
            match model {
                ModelKind::OutputBuffered => {
                    let mut sw = ObSwitch::new(n, cfg.pq_cap, cfg.outbuf_cap);
                    b.iter(|| {
                        for _ in 0..SLOTS_PER_ITER {
                            sw.step(slot, &mut traffic, &mut rng, &mut stats);
                            slot += 1;
                        }
                        std::hint::black_box(stats.delivered)
                    });
                }
                ModelKind::Scheduler(kind) => {
                    let mode = if kind.wants_fifo_queues() {
                        QueueMode::SingleFifo { cap: cfg.voq_cap }
                    } else {
                        QueueMode::Voq { cap: cfg.voq_cap }
                    };
                    let mut sw = IqSwitch::new(n, kind.build(n, 4, 2), mode, cfg.pq_cap);
                    b.iter(|| {
                        for _ in 0..SLOTS_PER_ITER {
                            sw.step(slot, &mut traffic, &mut rng, &mut stats);
                            slot += 1;
                        }
                        std::hint::black_box(stats.delivered)
                    });
                }
            }
        });
    }
    group.finish();
}

fn bench_sim_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling");
    group.throughput(Throughput::Elements(SLOTS_PER_ITER));

    for kind in [SchedulerKind::LcfCentralRr, SchedulerKind::Islip] {
        for n in [16usize, 32, 64, 128] {
            for load in [0.5f64, 0.95] {
                group.bench_function(
                    BenchmarkId::new(kind.name(), format!("n{n}/load{load}")),
                    |b| {
                        let mut sw = IqSwitch::new(
                            n,
                            kind.build(n, 4, 2),
                            QueueMode::Voq { cap: 256 },
                            1_000,
                        );
                        let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
                        let mut rng = StdRng::seed_from_u64(1);
                        let mut stats = SimStats::new(n, 0, 4096);
                        let mut slot = 0u64;
                        b.iter(|| {
                            for _ in 0..SLOTS_PER_ITER {
                                sw.step(slot, &mut traffic, &mut rng, &mut stats);
                                slot += 1;
                            }
                            std::hint::black_box(stats.delivered)
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sim_models, bench_sim_scaling);
criterion_main!(benches);
