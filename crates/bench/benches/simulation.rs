//! Criterion bench: end-to-end simulator slot rate per switch model.
//!
//! Measures how many simulated slots per second the Fig. 11 model sustains
//! for each scheduler — the cost of regenerating Fig. 12, and a regression
//! guard for the simulator's hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::outbuf::ObSwitch;
use lcf_sim::stats::SimStats;
use lcf_sim::switch::{IqSwitch, QueueMode};
use lcf_sim::traffic::{Bernoulli, DestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLOTS_PER_ITER: u64 = 1_000;

fn bench_simulation(c: &mut Criterion) {
    let cfg = SimConfig::paper_default();
    let n = cfg.n;
    let mut group = c.benchmark_group("sim_slots");
    group.throughput(Throughput::Elements(SLOTS_PER_ITER));

    for model in [
        ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
        ModelKind::Scheduler(SchedulerKind::LcfDistRr),
        ModelKind::Scheduler(SchedulerKind::Islip),
        ModelKind::Scheduler(SchedulerKind::Fifo),
        ModelKind::OutputBuffered,
    ] {
        group.bench_function(BenchmarkId::new("load0.8", model.name()), |b| {
            let mut traffic = Bernoulli::new(n, 0.8, DestPattern::Uniform);
            let mut rng = StdRng::seed_from_u64(1);
            let mut stats = SimStats::new(n, 0, cfg.max_latency_bucket);
            let mut slot = 0u64;
            match model {
                ModelKind::OutputBuffered => {
                    let mut sw = ObSwitch::new(n, cfg.pq_cap, cfg.outbuf_cap);
                    b.iter(|| {
                        for _ in 0..SLOTS_PER_ITER {
                            sw.step(slot, &mut traffic, &mut rng, &mut stats);
                            slot += 1;
                        }
                        std::hint::black_box(stats.delivered)
                    });
                }
                ModelKind::Scheduler(kind) => {
                    let mode = if kind.wants_fifo_queues() {
                        QueueMode::SingleFifo { cap: cfg.voq_cap }
                    } else {
                        QueueMode::Voq { cap: cfg.voq_cap }
                    };
                    let mut sw = IqSwitch::new(n, kind.build(n, 4, 2), mode, cfg.pq_cap);
                    b.iter(|| {
                        for _ in 0..SLOTS_PER_ITER {
                            sw.step(slot, &mut traffic, &mut rng, &mut stats);
                            slot += 1;
                        }
                        std::hint::black_box(stats.delivered)
                    });
                }
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
