//! Criterion bench: the RTL model's software cost vs the behavioral
//! scheduler, and Clos routing vs crossbar configuration.
//!
//! The RTL model simulates every bus cycle, so it is expected to be much
//! slower than the behavioral code — this bench quantifies the cost of the
//! fidelity. The fabric group measures what realizing a matching costs on
//! each fabric (the per-slot work a switch control plane would do).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcf_core::lcf::CentralLcf;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_fabric::clos::ClosNetwork;
use lcf_fabric::crossbar::Crossbar;
use lcf_hw::rtl::RtlScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rtl_vs_behavioral(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtl_vs_behavioral");
    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(1);
        let pool: Vec<RequestMatrix> = (0..16)
            .map(|_| RequestMatrix::random(n, 0.4, &mut rng))
            .collect();

        let mut beh = CentralLcf::with_round_robin(n);
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::new("behavioral", n), &pool, |b, pool| {
            b.iter(|| {
                let m = beh.schedule(&pool[idx % pool.len()]);
                idx += 1;
                std::hint::black_box(m.size())
            })
        });

        let mut rtl = RtlScheduler::new(n);
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::new("rtl", n), &pool, |b, pool| {
            b.iter(|| {
                let m = rtl.schedule(&pool[idx % pool.len()]);
                idx += 1;
                std::hint::black_box(m.size())
            })
        });
    }
    group.finish();
}

fn bench_fabric_realization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_realize");
    for n in [16usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sched = CentralLcf::with_round_robin(n);
        let matchings: Vec<_> = (0..16)
            .map(|_| sched.schedule(&RequestMatrix::random(n, 0.5, &mut rng)))
            .collect();

        let mut xbar = Crossbar::new(n);
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::new("crossbar", n), &matchings, |b, ms| {
            b.iter(|| {
                xbar.configure(&ms[idx % ms.len()]);
                idx += 1;
                std::hint::black_box(xbar.crosspoints())
            })
        });

        let clos = ClosNetwork::rearrangeable_for_ports(n);
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::new("clos_route", n), &matchings, |b, ms| {
            b.iter(|| {
                let route = clos.route(&ms[idx % ms.len()]).expect("routes");
                idx += 1;
                std::hint::black_box(route.size())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rtl_vs_behavioral, bench_fabric_realization);
criterion_main!(benches);
