//! # lcf-bench — table/figure regeneration harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the full
//! index):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — gate/register counts |
//! | `table2` | Table 2 — scheduling task timing |
//! | `fig10`  | Fig. 10 — communication cost central vs distributed |
//! | `fig12`  | Fig. 12a/b — queueing delay vs load, 9 schedulers |
//! | `matchsize` | EXT-1 — matching size vs Hopcroft–Karp maximum |
//! | `iterations` | EXT-2 — distributed LCF convergence vs n |
//! | `nonuniform` | EXT-3 — throughput under hotspot/diagonal traffic |
//! | `fairness` | EXT-4 — b/n² lower bound and pure-LCF starvation |
//! | `bursty` | EXT-6 — on-off traffic latency |
//! | `clint_channels` | EXT-7 — Clint bulk vs quick channel |
//!
//! Every binary prints an ASCII table to stdout and writes a CSV under
//! `results/`. Pass `--quick` for a shorter (less converged) run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig12;
pub mod table;

/// Shared CLI plumbing for the experiment binaries.
pub mod cli {
    /// True if `--quick` was passed (shorter simulations, noisier numbers).
    pub fn quick_mode() -> bool {
        std::env::args().any(|a| a == "--quick")
    }

    /// Returns the value of `--seed <u64>` if present.
    pub fn seed_arg() -> Option<u64> {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    /// Directory experiment CSVs are written to (created on demand).
    pub fn results_dir() -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(
            std::env::var("LCF_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
        );
        std::fs::create_dir_all(&dir).expect("cannot create results directory");
        dir
    }
}
