//! ASCII table rendering and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// Renders a right-aligned ASCII table with a header row.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }

    let mut out = String::new();
    let rule = |out: &mut String| {
        for &w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };

    rule(&mut out);
    for (h, &w) in headers.iter().zip(&widths) {
        let _ = write!(out, "| {h:>w$} ");
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (cell, &w) in row.iter().zip(&widths) {
            let _ = write!(out, "| {cell:>w$} ");
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Writes a CSV file (comma-separated, quoted only when needed).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| quote_csv(c)).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    f.flush()
}

fn quote_csv(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with 2 decimal places (the precision the paper's plots
/// can be read at).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_aligns() {
        let t = ascii_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "123".into()],
            ],
        );
        assert!(t.contains("| long-name |"));
        assert!(t.contains("|         a |"));
        assert!(t.starts_with('+'));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let _ = ascii_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(quote_csv("plain"), "plain");
        assert_eq!(quote_csv("a,b"), "\"a,b\"");
        assert_eq!(quote_csv("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_roundtrip_via_file() {
        let dir = std::env::temp_dir().join("lcf_bench_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4,5".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n3,\"4,5\"\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00"); // bankers-adjacent, but stable
        assert_eq!(f2(2.5), "2.50");
        assert_eq!(f3(0.12345), "0.123");
    }
}
