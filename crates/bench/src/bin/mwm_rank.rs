//! EXT-20 — ranking LCF between iSLIP and the maximum-weight optimum.
//!
//! The reference tier (exact Hungarian MWM, plus the `nwgreedy`
//! node-weighted heuristic) gives the repo an upper anchor: how much delay
//! and throughput is left on the table by the practical schedulers? This
//! experiment ranks `islip`, `lcf_central_rr`, `lqf`, `nwgreedy` and `mwm`
//! on mean/p99 delay and throughput under uniform, diagonal (nonuniform)
//! and hotspot load, with `run_replicated` / `run_replicated_weighted`
//! 95% confidence intervals so an ordering claim is only made when the
//! intervals separate.
//!
//! The interesting row is hotspot: the hot output runs near critical
//! utilization, and queue-length weights steer service toward the backlog
//! that size-based matchings (LCF, iSLIP) are blind to.
//!
//! Usage: `cargo run --release -p lcf-bench --bin mwm_rank [--quick] [--seed N]`
//!
//! `--quick` shrinks the horizon and replication count (CI runs it this
//! way); the committed `results/mwm_rank.csv` comes from the full run.

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::{SchedulerKind, WeightedKind};
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::{run_replicated, run_replicated_weighted, ReplicatedReport};
use lcf_sim::traffic::DestPattern;

/// One contender: either a Fig. 12 registry scheduler or a weighted kind.
enum Contender {
    Boolean(SchedulerKind),
    Weighted(WeightedKind),
}

impl Contender {
    fn name(&self) -> &'static str {
        match self {
            Contender::Boolean(kind) => kind.name(),
            Contender::Weighted(kind) => kind.name(),
        }
    }

    fn run(&self, cfg: &SimConfig, replications: usize) -> ReplicatedReport {
        match self {
            Contender::Boolean(kind) => {
                let mut cfg = cfg.clone();
                cfg.model = ModelKind::Scheduler(*kind);
                run_replicated(&cfg, replications)
            }
            Contender::Weighted(kind) => run_replicated_weighted(cfg, *kind, replications),
        }
    }
}

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0x33D0);
    let (warmup, measure, replications) = if quick {
        (5_000u64, 20_000u64, 3usize)
    } else {
        (50_000u64, 200_000u64, 8usize)
    };

    let contenders = [
        Contender::Boolean(SchedulerKind::Islip),
        Contender::Boolean(SchedulerKind::LcfCentralRr),
        Contender::Weighted(WeightedKind::Lqf),
        Contender::Weighted(WeightedKind::NwGreedy),
        Contender::Weighted(WeightedKind::Mwm),
    ];
    let scenarios: [(&str, DestPattern, f64); 3] = [
        ("uniform", DestPattern::Uniform, 0.95),
        ("diagonal", DestPattern::Diagonal, 0.90),
        // Hot output offered 16 × 0.85 × 0.07 ≈ 0.95 pkt/slot: near
        // critical but stable, so delay (not loss) does the ranking.
        (
            "hotspot",
            DestPattern::Hotspot {
                hot: 0,
                fraction: 0.07,
            },
            0.85,
        ),
    ];

    eprintln!(
        "mwm_rank: n=16, {replications} replications x {measure} slots (warmup {warmup}), \
         seed={seed}{}",
        if quick { " (quick mode)" } else { "" }
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for contender in &contenders {
        let mut row = vec![contender.name().to_string()];
        for (scenario, pattern, load) in &scenarios {
            let cfg = SimConfig {
                load: *load,
                pattern: pattern.clone(),
                warmup_slots: warmup,
                measure_slots: measure,
                seed,
                // The hotspot rows run saturated on the hot port; delay
                // tails overflow paper_default's 4096 bucket cap.
                max_latency_bucket: 65_536,
                ..SimConfig::paper_default()
            };
            let rep = contender.run(&cfg, replications);
            row.push(format!(
                "{:.1}±{:.1} / {:.4}",
                rep.mean_latency.mean, rep.mean_latency.half_width, rep.throughput.mean
            ));
            csv_rows.push(vec![
                contender.name().to_string(),
                scenario.to_string(),
                format!("{load}"),
                f2(rep.mean_latency.mean),
                f2(rep.mean_latency.half_width),
                f2(rep.p99_latency.mean),
                f2(rep.p99_latency.half_width),
                format!("{:.5}", rep.throughput.mean),
                format!("{:.5}", rep.throughput.half_width),
                format!("{:.5}", rep.loss_rate.mean),
                format!("{replications}"),
                format!("{measure}"),
            ]);
            eprintln!(
                "  {} {scenario}@{load}: {:.2} ± {:.2} slots, thpt {:.4}",
                contender.name(),
                rep.mean_latency.mean,
                rep.mean_latency.half_width,
                rep.throughput.mean
            );
        }
        rows.push(row);
    }

    let mut headers = vec!["scheduler".to_string()];
    headers.extend(scenarios.iter().map(|(s, _, l)| format!("{s}@{l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-20 — mean delay [slots] ± 95% CI / throughput: LCF vs iSLIP vs MWM");
    println!("{}", ascii_table(&header_refs, &rows));
    println!(
        "(mwm is the O(n^3) reference optimum on queue-length weights; the gap\n \
         between lcf_central_rr and mwm is the price of size-only matching)"
    );

    let dir = cli::results_dir();
    let path = dir.join("mwm_rank.csv");
    write_csv(
        &path,
        &[
            "scheduler",
            "scenario",
            "load",
            "mean_delay",
            "mean_delay_ci",
            "p99",
            "p99_ci",
            "throughput",
            "throughput_ci",
            "loss_rate",
            "replications",
            "slots",
        ],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
