//! EXT-13 — the request-acknowledgment protocol under loss.
//!
//! Sweeps link loss rates and reports what the Sec. 4.1 protocol (plus
//! timeouts and receiver-side deduplication) costs in latency and
//! retransmissions — with exactly-once delivery verified at every point.
//!
//! Usage: `cargo run --release -p lcf-bench --bin reliable_transport [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, f3, write_csv};
use lcf_clint::reliable::{ReliableConfig, ReliableSim};

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xED);
    let slots = if quick { 5_000 } else { 50_000 };
    let losses = [0.0, 0.01, 0.05, 0.1, 0.2, 0.4];

    eprintln!("reliable_transport: 16 hosts, offered load 0.3, timeout 16, seed={seed}");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &loss in &losses {
        let report = ReliableSim::new(ReliableConfig {
            n: 16,
            offered_load: 0.3,
            breq_loss: loss,
            back_loss: loss,
            timeout: 16,
            slots,
            seed,
        })
        .run();
        assert_eq!(
            report.delivered_unique, report.enqueued,
            "exactly-once delivery must hold at loss {loss}"
        );
        assert_eq!(report.in_flight_at_end, 0);
        let retx_rate = report.retransmissions as f64 / report.enqueued.max(1) as f64;
        rows.push(vec![
            format!("{loss}"),
            report.enqueued.to_string(),
            report.delivered_unique.to_string(),
            report.duplicates_suppressed.to_string(),
            f3(retx_rate),
            f2(report.mean_delivery_latency),
        ]);
        csv_rows.push(vec![
            format!("{loss}"),
            report.enqueued.to_string(),
            report.duplicates_suppressed.to_string(),
            format!("{retx_rate}"),
            format!("{}", report.mean_delivery_latency),
        ]);
    }

    println!("\nEXT-13 — reliable bulk transfers vs symmetric link loss");
    println!(
        "{}",
        ascii_table(
            &[
                "loss",
                "enqueued",
                "delivered",
                "dups suppressed",
                "retx/transfer",
                "mean delay"
            ],
            &rows
        )
    );
    println!("(delivered always equals enqueued: the protocol converts loss into\n latency and retransmissions, never into missing or duplicate data)");

    let dir = cli::results_dir();
    let path = dir.join("reliable_transport.csv");
    write_csv(
        &path,
        &["loss", "enqueued", "duplicates", "retx_rate", "mean_delay"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
