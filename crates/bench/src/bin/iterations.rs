//! EXT-2 — convergence of the iterative schedulers.
//!
//! The paper argues (Sec. 6.2) that the distributed LCF scheduler, like
//! PIM, converges in `O(log₂ n)` iterations. Two measurements:
//!
//! 1. iterations until convergence of `lcf_dist` on dense random requests,
//!    as a function of `n` (compare against `log₂ n`);
//! 2. matching-size ratio achieved by `lcf_dist` and `pim` under a fixed
//!    iteration budget (why the paper picks 4 iterations).
//!
//! Usage: `cargo run --release -p lcf-bench --bin iterations [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, f3, write_csv};
use lcf_core::lcf::DistributedLcf;
use lcf_core::maxsize::MaxSizeMatcher;
use lcf_core::pim::Pim;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xE2);
    let trials = if quick { 100 } else { 1_000 };
    let density = 0.5;

    // --- Part 1: iterations to convergence vs n --------------------------
    println!(
        "EXT-2a — iterations to convergence, lcf_dist vs pim (density {density}, {trials} trials)"
    );
    let ns = [4usize, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    let mut csv1 = Vec::new();
    for &n in &ns {
        // Budget n => both schedulers always converge within the budget.
        let mut lcf = DistributedLcf::pure(n, n);
        let mut pim = Pim::new(n, n, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut lcf_sum, mut lcf_max) = (0usize, 0usize);
        let (mut pim_sum, mut pim_max) = (0usize, 0usize);
        for _ in 0..trials {
            let requests = RequestMatrix::random(n, density, &mut rng);
            // converged_after includes the empty probe iteration; the last
            // productive iteration is one earlier.
            let productive = |trace: &lcf_core::lcf::IterationTrace| {
                trace.converged_after.map(|c| c - 1).unwrap_or(n).max(1)
            };
            lcf.schedule(&requests);
            let iters = productive(lcf.last_trace());
            lcf_sum += iters;
            lcf_max = lcf_max.max(iters);
            pim.schedule(&requests);
            let iters = productive(pim.last_trace());
            pim_sum += iters;
            pim_max = pim_max.max(iters);
        }
        let lcf_mean = lcf_sum as f64 / trials as f64;
        let pim_mean = pim_sum as f64 / trials as f64;
        let log2n = (n as f64).log2();
        // The PIM paper's bound: E[iterations] <= log2 n + 4/3.
        let pim_bound = log2n + 4.0 / 3.0;
        rows.push(vec![
            n.to_string(),
            f2(lcf_mean),
            lcf_max.to_string(),
            f2(pim_mean),
            pim_max.to_string(),
            f2(pim_bound),
        ]);
        csv1.push(vec![
            n.to_string(),
            format!("{lcf_mean}"),
            lcf_max.to_string(),
            format!("{pim_mean}"),
            pim_max.to_string(),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "n",
                "lcf_dist mean",
                "lcf max",
                "pim mean",
                "pim max",
                "log2n + 4/3"
            ],
            &rows
        )
    );
    println!("(PIM respects its E[iters] <= log2 n + 4/3 bound; the LCF priorities\n trade slower worst-case convergence for near-maximum matchings, see EXT-2b)");

    // --- Part 2: matching quality vs iteration budget --------------------
    println!("EXT-2b — matching-size ratio vs iteration budget (n = 16)");
    let budgets = [1usize, 2, 3, 4, 6, 8];
    let n = 16;
    let mut oracle = MaxSizeMatcher::new(n);
    let mut rows2 = Vec::new();
    let mut csv2 = Vec::new();
    for name in ["lcf_dist", "pim"] {
        let mut row = vec![name.to_string()];
        for &budget in &budgets {
            let mut sched: Box<dyn Scheduler> = match name {
                "lcf_dist" => Box::new(DistributedLcf::pure(n, budget)),
                _ => Box::new(Pim::new(n, budget, seed)),
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ratio_sum = 0.0;
            let mut counted = 0u32;
            for _ in 0..trials {
                let requests = RequestMatrix::random(n, density, &mut rng);
                let max = oracle.max_matching_size(&requests);
                if max == 0 {
                    continue;
                }
                ratio_sum += sched.schedule(&requests).size() as f64 / max as f64;
                counted += 1;
            }
            let mean = ratio_sum / counted as f64;
            row.push(f3(mean));
            csv2.push(vec![
                name.to_string(),
                budget.to_string(),
                format!("{mean}"),
            ]);
        }
        rows2.push(row);
    }
    let mut headers = vec!["scheduler".to_string()];
    headers.extend(budgets.iter().map(|b| format!("i={b}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", ascii_table(&header_refs, &rows2));
    println!(
        "(the paper's \"small number of iterations is normally sufficient\": 4 is near-saturated)"
    );

    let dir = cli::results_dir();
    write_csv(
        &dir.join("iterations_convergence.csv"),
        &["n", "mean_iters", "max_iters"],
        &csv1,
    )
    .expect("write csv");
    write_csv(
        &dir.join("iterations_quality.csv"),
        &["scheduler", "budget", "ratio"],
        &csv2,
    )
    .expect("write csv");
    eprintln!("wrote {}/iterations_*.csv", dir.display());
}
