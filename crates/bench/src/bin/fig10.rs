//! Regenerates Fig. 10: scheduling communication cost of the central vs the
//! distributed organization.
//!
//! Usage: `cargo run -p lcf-bench --bin fig10`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_hw::comm::{central_message_fields, comparison, distributed_message_fields};

const ITERATIONS: usize = 4; // the Fig. 12 iteration budget

fn main() {
    println!("Fig. 10 — communication required per scheduling cycle");
    let (req, gnt, vld) = central_message_fields(16);
    println!("  central (a):     per host: req({req}) up, gnt({gnt}) + vld({vld}) down");
    let (r, nrq, g, ngt, a) = distributed_message_fields(16);
    println!(
        "  distributed (b): per position per iteration: req({r})+nrq({nrq}) up, gnt({g})+ngt({ngt}) down, acc({a}) up"
    );
    println!("  formulas: central = n(n + log2 n + 1); distributed = i*n^2*(2*log2 n + 3), i = {ITERATIONS}\n");

    let ns = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let rows = comparison(&ns, ITERATIONS);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.central.to_string(),
                r.distributed.to_string(),
                format!("{:.1}x", r.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["n", "central bits", "distributed bits", "dist/central"],
            &table_rows
        )
    );

    let dir = cli::results_dir();
    let path = dir.join("fig10.csv");
    write_csv(
        &path,
        &["n", "central_bits", "distributed_bits", "ratio"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.central.to_string(),
                    r.distributed.to_string(),
                    format!("{:.3}", r.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write fig10.csv");
    eprintln!("wrote {}", path.display());
}
