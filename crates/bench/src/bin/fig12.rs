//! Regenerates Fig. 12a (mean queueing delay vs load) and Fig. 12b
//! (latency relative to output buffering) of the paper.
//!
//! Usage: `cargo run --release -p lcf-bench --bin fig12 [--quick] [--seed N]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::fig12;
use lcf_bench::table::{ascii_table, f2, f3, write_csv};

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0x1C_F2002);
    let loads = if quick {
        fig12::quick_load_grid()
    } else {
        fig12::load_grid()
    };
    eprintln!(
        "fig12: 16-port switch, uniform Bernoulli, VOQ=256, PQ=1000, 4 iterations, seed={seed}{}",
        if quick { " (quick mode)" } else { "" }
    );

    let points = fig12::run(&loads, quick, seed);

    // Group into one row per model with one column per load, like the figure.
    let models: Vec<String> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.model) {
                seen.push(p.model.clone());
            }
        }
        seen
    };
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(loads.iter().map(|l| format!("{l:.3}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let series = |metric: &dyn Fn(&fig12::Fig12Point) -> String| -> Vec<Vec<String>> {
        models
            .iter()
            .map(|m| {
                let mut row = vec![m.clone()];
                for &l in &loads {
                    let p = points
                        .iter()
                        .find(|p| &p.model == m && (p.load - l).abs() < 1e-9)
                        .expect("every (model, load) simulated");
                    row.push(metric(p));
                }
                row
            })
            .collect()
    };

    println!("\nFig. 12a — mean queueing delay [slots] vs load");
    let abs_rows = series(&|p| f2(p.latency));
    println!("{}", ascii_table(&header_refs, &abs_rows));

    println!("Fig. 12b — latency relative to outbuf");
    let rel_rows = series(&|p| f2(p.relative));
    println!("{}", ascii_table(&header_refs, &rel_rows));

    println!("Throughput (delivered fraction of link capacity)");
    let thr_rows = series(&|p| f3(p.throughput));
    println!("{}", ascii_table(&header_refs, &thr_rows));

    // CSV: long format, one row per (model, load).
    let dir = cli::results_dir();
    let csv_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                format!("{}", p.load),
                format!("{}", p.latency),
                format!("{}", p.relative),
                format!("{}", p.throughput),
            ]
        })
        .collect();
    let path = dir.join("fig12.csv");
    write_csv(
        &path,
        &[
            "model",
            "load",
            "latency_slots",
            "relative_to_outbuf",
            "throughput",
        ],
        &csv_rows,
    )
    .expect("write fig12.csv");
    eprintln!("wrote {}", path.display());
}
