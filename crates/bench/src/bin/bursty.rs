//! EXT-6 — latency under bursty on-off traffic.
//!
//! Same switch as Fig. 12, but arrivals come in geometric on-off bursts
//! (mean length 16) instead of smooth Bernoulli: a burst parks a train of
//! packets in one VOQ, shrinking request diversity.
//!
//! Usage: `cargo run --release -p lcf-bench --bin bursty [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_sim::config::{ModelKind, SimConfig, TrafficKind};
use lcf_sim::runner::sweep;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xE6);
    let (warmup, measure) = if quick {
        (5_000, 20_000)
    } else {
        (50_000, 200_000)
    };
    let loads = [0.3, 0.5, 0.7, 0.8, 0.9];
    let mean_burst = 16.0;

    let models = ModelKind::figure12_lineup();
    let mut configs = Vec::new();
    for model in &models {
        for &load in &loads {
            configs.push(SimConfig {
                model: *model,
                load,
                traffic: TrafficKind::Bursty { mean_burst },
                warmup_slots: warmup,
                measure_slots: measure,
                seed,
                ..SimConfig::paper_default()
            });
        }
    }
    eprintln!("bursty: on-off traffic, mean burst {mean_burst}, 16 ports, seed={seed}");
    let reports = sweep(&configs);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        let mut row = vec![model.name().to_string()];
        for (li, &load) in loads.iter().enumerate() {
            let r = &reports[mi * loads.len() + li];
            row.push(f2(r.mean_latency()));
            csv_rows.push(vec![
                model.name().to_string(),
                format!("{load}"),
                format!("{}", r.mean_latency()),
                format!("{}", r.throughput),
            ]);
        }
        rows.push(row);
    }

    let mut headers = vec!["model".to_string()];
    headers.extend(loads.iter().map(|l| format!("{l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-6 — mean queueing delay [slots], bursty on-off arrivals");
    println!("{}", ascii_table(&header_refs, &rows));

    let dir = cli::results_dir();
    let path = dir.join("bursty.csv");
    write_csv(
        &path,
        &["model", "load", "latency_slots", "throughput"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
