//! EXT-7 — Clint's segregated architecture: bulk vs quick channel.
//!
//! Sweeps offered load on both channels and reports the latency/loss
//! trade-off the segregation buys: the scheduled bulk channel never drops
//! or collides but pays the 3-stage pipeline, while the quick channel is
//! instantaneous when idle and collision-limited when busy.
//!
//! Usage: `cargo run --release -p lcf-bench --bin clint_channels [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, f3, write_csv};
use lcf_clint::sim::{ClintConfig, ClintSim};

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xE7);
    let slots = if quick { 10_000 } else { 100_000 };
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];

    eprintln!("clint_channels: 16 hosts, {slots} slots per point, seed={seed}");
    println!("\nEXT-7 — equal offered load on both channels");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &load in &loads {
        let report = ClintSim::new(ClintConfig {
            n: 16,
            bulk_load: load,
            quick_load: load,
            cfg_error_rate: 0.0,
            gnt_error_rate: 0.0,
            slots,
            seed,
        })
        .run();
        let quick_goodput = report.quick_delivered as f64 / report.quick_generated.max(1) as f64;
        let collision_rate = report.quick_collisions as f64
            / (report.quick_collisions + report.quick_delivered).max(1) as f64;
        rows.push(vec![
            format!("{load}"),
            f2(report.bulk_mean_latency),
            f2(report.quick_mean_latency),
            f3(quick_goodput),
            f3(collision_rate),
        ]);
        csv_rows.push(vec![
            format!("{load}"),
            format!("{}", report.bulk_mean_latency),
            format!("{}", report.quick_mean_latency),
            format!("{quick_goodput}"),
            format!("{collision_rate}"),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "load",
                "bulk delay",
                "quick delay",
                "quick goodput",
                "collision rate"
            ],
            &rows
        )
    );
    println!("(bulk pays the schedule->transfer pipeline but never collides;\n quick is fastest when idle and degrades with contention)");

    // Error injection ablation: CRC-protected control plane.
    println!("Config-packet corruption ablation (bulk load 0.6)");
    let mut rows2 = Vec::new();
    for &err in &[0.0, 0.01, 0.05, 0.2] {
        let report = ClintSim::new(ClintConfig {
            n: 16,
            bulk_load: 0.6,
            quick_load: 0.0,
            cfg_error_rate: err,
            gnt_error_rate: 0.0,
            slots,
            seed,
        })
        .run();
        rows2.push(vec![
            format!("{err}"),
            report.cfg_crc_errors.to_string(),
            f2(report.bulk_mean_latency),
            f3(report.bulk_delivered as f64 / report.bulk_generated.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "error rate",
                "CRC rejections",
                "bulk delay",
                "delivered fraction"
            ],
            &rows2
        )
    );

    // Grant-packet corruption: a lost grant wastes its reserved slot but
    // the packet is rescheduled, so delivery stays complete.
    println!("Grant-packet corruption ablation (bulk load 0.6)");
    let mut rows3 = Vec::new();
    for &err in &[0.0, 0.01, 0.05, 0.2] {
        let report = ClintSim::new(ClintConfig {
            n: 16,
            bulk_load: 0.6,
            quick_load: 0.0,
            cfg_error_rate: 0.0,
            gnt_error_rate: err,
            slots,
            seed,
        })
        .run();
        rows3.push(vec![
            format!("{err}"),
            report.gnt_crc_errors.to_string(),
            report.wasted_reservations.to_string(),
            f2(report.bulk_mean_latency),
            f3(report.bulk_delivered as f64 / report.bulk_generated.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "error rate",
                "grants lost",
                "wasted slots",
                "bulk delay",
                "delivered fraction"
            ],
            &rows3
        )
    );

    let dir = cli::results_dir();
    let path = dir.join("clint_channels.csv");
    write_csv(
        &path,
        &[
            "load",
            "bulk_delay",
            "quick_delay",
            "quick_goodput",
            "collision_rate",
        ],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
