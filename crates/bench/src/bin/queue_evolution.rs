//! Queue-length evolution over time (EXT-21): per-window backlog occupancy
//! snapshots from the sharded serve loop, `lcf_central_rr` vs `islip` at
//! loads 0.95 and 0.99.
//!
//! The Fig. 12-style experiments report *steady-state* delay; this one
//! watches the queues get there. Each (scheduler, load) point runs the
//! `lcf serve` engine — 4 shards, independent seeds, lock-step windows —
//! starting from empty queues with **no warm-up**, so the window-by-window
//! trajectory shows the transient ramp, the settling into steady state, and
//! (at 0.99) how much longer LCF's smaller matchings-backlog takes to
//! stabilize than iSLIP's. Per window the serve loop merges each shard's
//! per-slot backlog histogram; the CSV records the mean and the p50/p99
//! occupancy quantiles of every window.
//!
//! Usage: `cargo run --release -p lcf-bench --bin queue_evolution [--quick] [--seed N]`
//!
//! `--quick` shrinks windows and horizon for smoke tests (CI runs it this
//! way); the committed `results/queue_evolution.csv` comes from the full
//! run: 4 shards x 40 windows x 25 000 slots per point.

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig, TrafficKind};
use lcf_sim::serve::{serve, ServeConfig};

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0x9_E0E);
    let (window_slots, windows) = if quick {
        (2_000u64, 6u64)
    } else {
        (25_000u64, 40u64)
    };
    let shards = 4usize;
    let loads = [0.95, 0.99];
    let models = [SchedulerKind::LcfCentralRr, SchedulerKind::Islip];
    eprintln!(
        "queue_evolution: n=16 uniform FastBernoulli, {shards} shards x {windows} windows x \
         {window_slots} slots, no warmup, seed={seed}{}",
        if quick { " (quick mode)" } else { "" }
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for kind in models {
        for load in loads {
            let base = SimConfig {
                model: ModelKind::Scheduler(kind),
                load,
                traffic: TrafficKind::FastBernoulli,
                // Loss-free horizon, like heavy_traffic: the trajectory is
                // only meaningful while no queue clips.
                pq_cap: 20_000,
                voq_cap: 10_000,
                // No warm-up: the ramp from empty queues IS the experiment.
                warmup_slots: 0,
                measure_slots: 0,
                seed,
                max_latency_bucket: 65_536,
                ..SimConfig::paper_default()
            };
            let cfg = ServeConfig {
                shards,
                window_slots,
                windows,
                drain_deadline_slots: 2_000_000,
                occupancy_range: 1 << 16,
                ..ServeConfig::new(base)
            };
            let outcome = serve(&cfg).expect("serve run");
            assert_eq!(outcome.windows_run, windows);
            assert!(
                outcome.drained,
                "{} at load {load} failed to drain",
                kind.name()
            );
            let mut final_mean = 0.0;
            for (w, merged) in outcome.merged.iter().enumerate() {
                assert_eq!(
                    merged.counter("serve.dropped"),
                    0,
                    "{} at load {load}: packets dropped — queues undersized",
                    kind.name()
                );
                let occupancy = merged
                    .histogram("serve.occupancy")
                    .expect("serve emits occupancy histograms");
                let mean_backlog: f64 = (0..shards)
                    .map(|s| {
                        merged
                            .gauge(&format!("serve.shard.{s}.mean_backlog"))
                            .expect("per-shard mean backlog gauge")
                    })
                    .sum::<f64>()
                    / shards as f64;
                final_mean = mean_backlog;
                csv_rows.push(vec![
                    kind.name().to_string(),
                    format!("{load}"),
                    format!("{w}"),
                    format!("{}", (w as u64 + 1) * window_slots),
                    f2(mean_backlog),
                    format!("{}", occupancy.quantile_lower_bound(0.5)),
                    format!("{}", occupancy.quantile_lower_bound(0.99)),
                    format!("{}", merged.counter("serve.delivered")),
                    f2(merged.gauge("serve.mean_latency").unwrap_or(0.0)),
                    format!("{shards}"),
                    format!("{window_slots}"),
                ]);
            }
            let first = &outcome.merged[0];
            let first_mean: f64 = (0..shards)
                .map(|s| {
                    first
                        .gauge(&format!("serve.shard.{s}.mean_backlog"))
                        .unwrap_or(0.0)
                })
                .sum::<f64>()
                / shards as f64;
            rows.push(vec![
                kind.name().to_string(),
                format!("{load:.2}"),
                format!("{windows}"),
                f2(first_mean),
                f2(final_mean),
                format!("{:.2}", final_mean / first_mean.max(1e-9)),
            ]);
            eprintln!(
                "  {} load {load}: mean backlog {:.1} -> {:.1} packets over {windows} windows",
                kind.name(),
                first_mean,
                final_mean
            );
        }
    }

    println!("\nQueue-length evolution — n=16, uniform Bernoulli (fast path), from empty queues");
    println!("(mean backlog per window, averaged across 4 independent shards)");
    println!(
        "{}",
        ascii_table(
            &[
                "model",
                "load",
                "windows",
                "window0 backlog",
                "final backlog",
                "ramp factor",
            ],
            &rows
        )
    );

    let dir = cli::results_dir();
    let path = dir.join("queue_evolution.csv");
    write_csv(
        &path,
        &[
            "model",
            "load",
            "window",
            "slot",
            "mean_backlog",
            "p50_backlog",
            "p99_backlog",
            "delivered",
            "mean_latency_slots",
            "shards",
            "window_slots",
        ],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
