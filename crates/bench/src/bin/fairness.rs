//! EXT-4 — fairness: the paper's hard `b/n²` guarantee and pure-LCF
//! starvation.
//!
//! Two experiments, both running directly on the schedulers with persistent
//! (saturated-queue) request patterns:
//!
//! 1. **Starvation** — a pattern where pure LCF starves a requester forever
//!    while the round-robin variants keep serving it: `I0` requests
//!    `{T0, T1}` (two choices), `I1` requests `{T0}` and `I2` requests
//!    `{T1}` (one choice each). Pure LCF always prefers the single-choice
//!    requesters; `I0` never wins.
//! 2. **Lower bound** — under an all-ones request matrix (maximum
//!    contention), every (requester, resource) pair must receive at least
//!    `1/n²` of the slots from the `*_rr` schedulers.
//!
//! Usage: `cargo run --release -p lcf-bench --bin fairness`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;

fn main() {
    let seed = cli::seed_arg().unwrap_or(0xE4);

    // --- Part 1: starvation ---------------------------------------------
    println!("EXT-4a — starvation test: I0:{{T0,T1}} vs single-request competitors");
    let n = 4;
    let requests = RequestMatrix::from_pairs(n, [(0, 0), (0, 1), (1, 0), (2, 1)]);
    let slots = 10_000u64;
    let kinds = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDist,
        SchedulerKind::LcfDistRr,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
    ];
    let mut rows = Vec::new();
    let mut csv1 = Vec::new();
    for kind in kinds {
        let mut sched = kind.build(n, 4, seed);
        let mut i0_wins = 0u64;
        for _ in 0..slots {
            let m = sched.schedule(&requests);
            if m.output_for(0).is_some() {
                i0_wins += 1;
            }
        }
        let frac = i0_wins as f64 / slots as f64;
        let verdict = if i0_wins == 0 { "STARVED" } else { "served" };
        rows.push(vec![
            kind.name().to_string(),
            i0_wins.to_string(),
            format!("{frac:.4}"),
            verdict.to_string(),
        ]);
        csv1.push(vec![
            kind.name().to_string(),
            i0_wins.to_string(),
            format!("{frac}"),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["scheduler", "I0 grants / 10k slots", "fraction", "verdict"],
            &rows
        )
    );

    // --- Part 2: the b/n^2 lower bound -----------------------------------
    println!("EXT-4b — minimum per-pair service fraction under an all-ones matrix");
    let n = 8;
    let full = RequestMatrix::full(n);
    let slots = (n * n * 200) as u64; // 200 round-robin periods
    let mut rows2 = Vec::new();
    let mut csv2 = Vec::new();
    for kind in kinds {
        let mut sched = kind.build(n, 4, seed);
        let mut service = vec![0u64; n * n];
        for _ in 0..slots {
            let m = sched.schedule(&full);
            for (i, j) in m.pairs() {
                service[i * n + j] += 1;
            }
        }
        let min = *service.iter().min().expect("nonempty") as f64 / slots as f64;
        let bound = 1.0 / (n * n) as f64;
        rows2.push(vec![
            kind.name().to_string(),
            format!("{min:.5}"),
            format!("{bound:.5}"),
            if min >= bound { "holds" } else { "below" }.to_string(),
        ]);
        csv2.push(vec![
            kind.name().to_string(),
            format!("{min}"),
            format!("{bound}"),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["scheduler", "min pair fraction", "b/n^2 bound", "bound"],
            &rows2
        )
    );
    println!("(the paper guarantees the bound for the *_rr schedulers; others may\n satisfy it statistically on symmetric loads but give no hard guarantee)");

    // --- Part 3: the bound on the adversarial (asymmetric) pattern --------
    // The same pattern that starves lcf_dist in Part 1: under the paper's
    // guarantee the *_rr schedulers must still serve every requested pair at
    // least once per n^2 cycles; the pure LCF schedulers need not.
    println!("EXT-4c — min requested-pair fraction on the starvation pattern (n = 4)");
    let n = 4;
    let adversarial = RequestMatrix::from_pairs(n, [(0, 0), (0, 1), (1, 0), (2, 1)]);
    let pairs: Vec<(usize, usize)> = adversarial.pairs().collect();
    let slots = (n * n * 500) as u64;
    let bound = 1.0 / (n * n) as f64;
    let mut rows3 = Vec::new();
    let mut csv3 = Vec::new();
    for kind in kinds {
        let mut sched = kind.build(n, 4, seed);
        let mut service = vec![0u64; n * n];
        for _ in 0..slots {
            let m = sched.schedule(&adversarial);
            for (i, j) in m.pairs() {
                service[i * n + j] += 1;
            }
        }
        let min = pairs
            .iter()
            .map(|&(i, j)| service[i * n + j] as f64 / slots as f64)
            .fold(f64::INFINITY, f64::min);
        rows3.push(vec![
            kind.name().to_string(),
            format!("{min:.5}"),
            format!("{bound:.5}"),
            if min >= bound { "holds" } else { "BELOW" }.to_string(),
        ]);
        csv3.push(vec![
            kind.name().to_string(),
            format!("{min}"),
            format!("{bound}"),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["scheduler", "min pair fraction", "b/n^2 bound", "bound"],
            &rows3
        )
    );
    println!("(the hard guarantee is only claimed for lcf_central_rr / lcf_dist_rr;\n a BELOW verdict for the pure variants demonstrates why the paper adds\n the round-robin stage)");

    let dir = cli::results_dir();
    write_csv(
        &dir.join("fairness_starvation.csv"),
        &["scheduler", "i0_grants", "fraction"],
        &csv1,
    )
    .expect("write csv");
    write_csv(
        &dir.join("fairness_bound.csv"),
        &["scheduler", "min_fraction", "bound"],
        &csv2,
    )
    .expect("write csv");
    write_csv(
        &dir.join("fairness_adversarial.csv"),
        &["scheduler", "min_fraction", "bound"],
        &csv3,
    )
    .expect("write csv");
    eprintln!("wrote {}/fairness_*.csv", dir.display());
}
