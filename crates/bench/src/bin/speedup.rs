//! EXT-10 — fabric speedup: how much faster must the fabric run for an
//! input-queued LCF switch to emulate output queueing?
//!
//! Classic theory says speedup 2 suffices for any maximal matcher; this
//! experiment measures where the LCF scheduler actually lands on that
//! curve at the paper's 16-port configuration.
//!
//! Usage: `cargo run --release -p lcf-bench --bin speedup [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::cioq::CioqSwitch;
use lcf_sim::config::SimConfig;
use lcf_sim::outbuf::ObSwitch;
use lcf_sim::stats::SimStats;
use lcf_sim::traffic::{Bernoulli, DestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_cioq(cfg: &SimConfig, speedup: usize, load: f64) -> f64 {
    let n = cfg.n;
    let mut sw = CioqSwitch::new(
        n,
        SchedulerKind::LcfCentralRr.build(n, cfg.iterations, cfg.seed),
        speedup,
        0,
        cfg.pq_cap,
        cfg.voq_cap,
        cfg.outbuf_cap,
    );
    let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut warm = SimStats::new(n, 0, cfg.max_latency_bucket);
    for slot in 0..cfg.warmup_slots {
        sw.step(slot, &mut traffic, &mut rng, &mut warm);
    }
    let start = cfg.warmup_slots;
    let mut stats = SimStats::new(n, start, cfg.max_latency_bucket);
    for slot in start..start + cfg.measure_slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    stats.mean_latency()
}

fn run_outbuf(cfg: &SimConfig, load: f64) -> f64 {
    let n = cfg.n;
    let mut sw = ObSwitch::new(n, cfg.pq_cap, cfg.outbuf_cap);
    let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut warm = SimStats::new(n, 0, cfg.max_latency_bucket);
    for slot in 0..cfg.warmup_slots {
        sw.step(slot, &mut traffic, &mut rng, &mut warm);
    }
    let start = cfg.warmup_slots;
    let mut stats = SimStats::new(n, start, cfg.max_latency_bucket);
    for slot in start..start + cfg.measure_slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
    }
    stats.mean_latency()
}

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xEA);
    let mut cfg = SimConfig::paper_default();
    cfg.seed = seed;
    if quick {
        cfg.warmup_slots = 5_000;
        cfg.measure_slots = 20_000;
    } else {
        cfg.warmup_slots = 30_000;
        cfg.measure_slots = 120_000;
    }
    let loads = [0.6, 0.8, 0.9, 0.95, 0.99];
    let speedups = [1usize, 2, 3];

    eprintln!("speedup: 16-port CIOQ, lcf_central_rr, seed={seed}");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &s in &speedups {
        let mut row = vec![format!("cioq s={s}")];
        for &load in &loads {
            let lat = run_cioq(&cfg, s, load);
            row.push(f2(lat));
            csv_rows.push(vec![format!("{s}"), format!("{load}"), format!("{lat}")]);
        }
        rows.push(row);
    }
    let mut ob_row = vec!["outbuf".to_string()];
    for &load in &loads {
        let lat = run_outbuf(&cfg, load);
        ob_row.push(f2(lat));
        csv_rows.push(vec!["outbuf".into(), format!("{load}"), format!("{lat}")]);
    }
    rows.push(ob_row);

    let mut headers = vec!["model".to_string()];
    headers.extend(loads.iter().map(|l| format!("{l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-10 — mean delay [slots] vs fabric speedup (LCF, CIOQ)");
    println!("{}", ascii_table(&header_refs, &rows));
    println!("(speedup 2 should pull the LCF switch onto the outbuf curve)");

    let dir = cli::results_dir();
    let path = dir.join("speedup.csv");
    write_csv(&path, &["speedup", "load", "latency_slots"], &csv_rows).expect("write csv");
    eprintln!("wrote {}", path.display());
}
