//! Regenerates Table 2: clock cycles and wall time of the scheduling tasks
//! at the Clint implementation's 66 MHz clock.
//!
//! Usage: `cargo run -p lcf-bench --bin table2`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_hw::timing::{central_time_steps, distributed_expected_time_steps, TimingModel};

fn main() {
    let m = TimingModel::paper(16);

    println!("Table 2 — Scheduling Tasks (n = 16, 66 MHz clock)");
    let rows: Vec<Vec<String>> = m
        .table2()
        .iter()
        .map(|t| {
            vec![
                t.task.to_string(),
                t.decomposition.to_string(),
                t.cycles.to_string(),
                format!("{:.0} ns", t.time_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["Task", "Decomposition", "Clock Cycles", "Time"], &rows)
    );

    println!("Speed comparison (Sec. 6.2): abstract time steps per schedule");
    let ns = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024];
    let speed_rows: Vec<Vec<String>> = ns
        .iter()
        .map(|&n| {
            vec![
                n.to_string(),
                central_time_steps(n).to_string(),
                format!("{:.1}", distributed_expected_time_steps(n)),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["n", "central O(n)", "distributed O(log2 n)"], &speed_rows)
    );

    let dir = cli::results_dir();
    let path = dir.join("table2.csv");
    write_csv(
        &path,
        &["task", "decomposition", "cycles", "time_ns"],
        &m.table2()
            .iter()
            .map(|t| {
                vec![
                    t.task.to_string(),
                    t.decomposition.to_string(),
                    t.cycles.to_string(),
                    format!("{:.1}", t.time_ns),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write table2.csv");
    eprintln!("wrote {}", path.display());
}
