//! EXT-15 — does the LCF advantage persist on wider switches?
//!
//! The paper evaluates n = 16 (the Clint prototype size) and argues the
//! distributed scheduler exists for larger n. This experiment repeats the
//! core Fig. 12 comparison at n = 8…64 to check that the ordering — and
//! LCF's ≈1.4× gap to output buffering — is not an artifact of the port
//! count.
//!
//! Usage: `cargo run --release -p lcf-bench --bin scaling_n [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::sweep;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xEF);
    let (warmup, measure) = if quick {
        (5_000, 20_000)
    } else {
        (30_000, 120_000)
    };
    let ns = [8usize, 16, 32, 64];
    let load = 0.9;
    let models = [
        ModelKind::Scheduler(SchedulerKind::LcfCentral),
        ModelKind::Scheduler(SchedulerKind::LcfDist),
        ModelKind::Scheduler(SchedulerKind::Pim),
        ModelKind::Scheduler(SchedulerKind::Islip),
        ModelKind::Scheduler(SchedulerKind::Wavefront),
        ModelKind::OutputBuffered,
    ];

    let mut configs = Vec::new();
    for &n in &ns {
        for model in &models {
            configs.push(SimConfig {
                model: *model,
                n,
                load,
                warmup_slots: warmup,
                measure_slots: measure,
                seed,
                ..SimConfig::paper_default()
            });
        }
    }
    eprintln!("scaling_n: load {load}, uniform Bernoulli, seed={seed}");
    let reports = sweep(&configs);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        let base = reports[ni * models.len() + models.len() - 1].mean_latency(); // outbuf last
        for (mi, model) in models.iter().enumerate() {
            let r = &reports[ni * models.len() + mi];
            csv_rows.push(vec![
                n.to_string(),
                model.name().to_string(),
                format!("{}", r.mean_latency()),
                format!("{}", r.mean_latency() / base),
            ]);
        }
        let row: Vec<String> = std::iter::once(n.to_string())
            .chain((0..models.len()).map(|mi| {
                let r = &reports[ni * models.len() + mi];
                format!(
                    "{} ({}x)",
                    f2(r.mean_latency()),
                    f2(r.mean_latency() / base)
                )
            }))
            .collect();
        rows.push(row);
    }

    let mut headers = vec!["n".to_string()];
    headers.extend(models.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-15 — mean delay [slots] (and ratio to outbuf) at load {load}");
    println!("{}", ascii_table(&header_refs, &rows));

    let dir = cli::results_dir();
    let path = dir.join("scaling_n.csv");
    write_csv(&path, &["n", "model", "latency", "relative"], &csv_rows).expect("write csv");
    eprintln!("wrote {}", path.display());
}
