//! EXT-12 — testing the paper's *explanation* of the round-robin crossover.
//!
//! Sec. 6.3: beyond load ≈0.9 `lcf_central_rr` suddenly beats
//! `lcf_central`; the authors "assume that the round robin algorithm of
//! lcf_central_rr is leveling the lengths of the VOQs thereby maintaining
//! choice by avoiding the VOQs to drain." This experiment measures both
//! quantities directly — the scheduler's mean choice (non-empty VOQs per
//! input) and the VOQ length imbalance — on either side of the crossover.
//!
//! Usage: `cargo run --release -p lcf-bench --bin voq_choice [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::SimConfig;
use lcf_sim::stats::SimStats;
use lcf_sim::switch::{IqSwitch, QueueMode};
use lcf_sim::traffic::{Bernoulli, DestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Probe {
    latency: f64,
    mean_choice: f64,
    voq_std: f64,
}

fn run(kind: SchedulerKind, load: f64, cfg: &SimConfig) -> Probe {
    let n = cfg.n;
    let mut sw = IqSwitch::new(
        n,
        kind.build(n, cfg.iterations, cfg.seed),
        QueueMode::Voq { cap: cfg.voq_cap },
        cfg.pq_cap,
    );
    let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut warm = SimStats::new(n, 0, cfg.max_latency_bucket);
    for slot in 0..cfg.warmup_slots {
        sw.step(slot, &mut traffic, &mut rng, &mut warm);
    }
    let start = cfg.warmup_slots;
    let mut stats = SimStats::new(n, start, cfg.max_latency_bucket);
    let (mut choice_sum, mut std_sum) = (0.0, 0.0);
    for slot in start..start + cfg.measure_slots {
        sw.step(slot, &mut traffic, &mut rng, &mut stats);
        choice_sum += sw.mean_choice();
        std_sum += sw.voq_length_std_dev();
    }
    Probe {
        latency: stats.mean_latency(),
        mean_choice: choice_sum / cfg.measure_slots as f64,
        voq_std: std_sum / cfg.measure_slots as f64,
    }
}

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xEC);
    let mut cfg = SimConfig::paper_default();
    cfg.seed = seed;
    if quick {
        cfg.warmup_slots = 10_000;
        cfg.measure_slots = 40_000;
    } else {
        cfg.warmup_slots = 50_000;
        cfg.measure_slots = 200_000;
    }
    let loads = [0.8, 0.9, 0.95, 0.975, 0.99];

    eprintln!("voq_choice: 16 ports, lcf_central vs lcf_central_rr, seed={seed}");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &load in &loads {
        let pure = run(SchedulerKind::LcfCentral, load, &cfg);
        let rr = run(SchedulerKind::LcfCentralRr, load, &cfg);
        rows.push(vec![
            format!("{load}"),
            f2(pure.latency),
            f2(rr.latency),
            f2(pure.mean_choice),
            f2(rr.mean_choice),
            f2(pure.voq_std),
            f2(rr.voq_std),
        ]);
        for (name, p) in [("lcf_central", &pure), ("lcf_central_rr", &rr)] {
            csv_rows.push(vec![
                name.to_string(),
                format!("{load}"),
                format!("{}", p.latency),
                format!("{}", p.mean_choice),
                format!("{}", p.voq_std),
            ]);
        }
    }

    println!("\nEXT-12 — choice and VOQ leveling around the crossover");
    println!(
        "{}",
        ascii_table(
            &[
                "load",
                "delay pure",
                "delay rr",
                "choice pure",
                "choice rr",
                "voq-std pure",
                "voq-std rr"
            ],
            &rows
        )
    );
    println!("(the paper's hypothesis predicts: past the crossover load, the rr\n variant shows HIGHER mean choice and LOWER voq length imbalance,\n explaining its lower delay)");

    let dir = cli::results_dir();
    let path = dir.join("voq_choice.csv");
    write_csv(
        &path,
        &["scheduler", "load", "latency", "mean_choice", "voq_len_std"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
