//! EXT-3 — throughput under non-uniform traffic (hotspot and diagonal).
//!
//! The paper evaluates uniform destinations only; this ablation offers
//! load 1.0 with skewed patterns and reports the delivered throughput of
//! each scheduler.
//!
//! Usage: `cargo run --release -p lcf-bench --bin nonuniform [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f3, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::sweep;
use lcf_sim::traffic::DestPattern;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xE3);
    let (warmup, measure) = if quick {
        (5_000, 20_000)
    } else {
        (30_000, 150_000)
    };

    let patterns: Vec<(&str, DestPattern)> = vec![
        ("uniform", DestPattern::Uniform),
        (
            "hotspot25",
            DestPattern::Hotspot {
                hot: 0,
                fraction: 0.25,
            },
        ),
        (
            "hotspot50",
            DestPattern::Hotspot {
                hot: 0,
                fraction: 0.50,
            },
        ),
        ("diagonal", DestPattern::Diagonal),
    ];

    let models: Vec<ModelKind> = SchedulerKind::VOQ_PRACTICAL
        .into_iter()
        .map(ModelKind::Scheduler)
        .chain([ModelKind::OutputBuffered])
        .collect();

    let mut configs = Vec::new();
    for model in &models {
        for (_, pattern) in &patterns {
            configs.push(SimConfig {
                model: *model,
                load: 1.0,
                pattern: pattern.clone(),
                warmup_slots: warmup,
                measure_slots: measure,
                seed,
                ..SimConfig::paper_default()
            });
        }
    }
    eprintln!("nonuniform: 16 ports, offered load 1.0, seed={seed}");
    let reports = sweep(&configs);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        let mut row = vec![model.name().to_string()];
        for (pi, (pname, _)) in patterns.iter().enumerate() {
            let r = &reports[mi * patterns.len() + pi];
            row.push(f3(r.throughput));
            csv_rows.push(vec![
                model.name().to_string(),
                pname.to_string(),
                format!("{}", r.throughput),
                format!("{}", r.mean_latency()),
            ]);
        }
        rows.push(row);
    }

    let mut headers = vec!["scheduler".to_string()];
    headers.extend(patterns.iter().map(|(p, _)| p.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-3 — delivered throughput at offered load 1.0");
    println!("{}", ascii_table(&header_refs, &rows));
    println!("(hotspot ceilings are capacity limits, not scheduler failures: with a\n fraction f on one output, aggregate throughput caps at min(1, 1/(n*f)) + ...)");

    let dir = cli::results_dir();
    let path = dir.join("nonuniform.csv");
    write_csv(
        &path,
        &["scheduler", "pattern", "throughput", "latency"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
