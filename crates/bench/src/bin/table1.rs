//! Regenerates Table 1: gate and register counts of the 16-port central
//! LCF scheduler, plus the model's scaling to other port counts.
//!
//! Usage: `cargo run -p lcf-bench --bin table1`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_hw::gates::GateModel;

fn main() {
    let m = GateModel::new(16);

    println!("Table 1 — Gate Count and Register Count of the LCF Scheduler (n = 16)");
    let rows = vec![
        vec![
            "Gate count".to_string(),
            format!("16x{}={}", m.slice().gates, m.distributed().gates),
            m.central().gates.to_string(),
            m.total().gates.to_string(),
        ],
        vec![
            "Reg. count".to_string(),
            format!("16x{}={}", m.slice().regs, m.distributed().regs),
            m.central().regs.to_string(),
            m.total().regs.to_string(),
        ],
    ];
    println!(
        "{}",
        ascii_table(&["", "Distributed", "Central", "Total"], &rows)
    );

    println!("Per-slice component breakdown (Fig. 6 structure):");
    let comp_rows: Vec<Vec<String>> = m
        .slice_components()
        .iter()
        .map(|c| vec![c.name.to_string(), c.gates.to_string(), c.regs.to_string()])
        .collect();
    println!(
        "{}",
        ascii_table(&["component", "gates", "regs"], &comp_rows)
    );

    println!("Scaling (same structure, other port counts):");
    let ns = [4usize, 8, 16, 32, 64, 128, 256];
    let scale_rows: Vec<Vec<String>> = ns
        .iter()
        .map(|&n| {
            let g = GateModel::new(n);
            vec![
                n.to_string(),
                g.distributed().gates.to_string(),
                g.central().gates.to_string(),
                g.total().gates.to_string(),
                g.total().regs.to_string(),
                format!("{:.0}%", g.xcv600_utilization() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "n",
                "dist gates",
                "central gates",
                "total gates",
                "total regs",
                "XCV600 util"
            ],
            &scale_rows
        )
    );

    let dir = cli::results_dir();
    let path = dir.join("table1.csv");
    write_csv(
        &path,
        &[
            "n",
            "dist_gates",
            "central_gates",
            "total_gates",
            "total_regs",
        ],
        &ns.iter()
            .map(|&n| {
                let g = GateModel::new(n);
                vec![
                    n.to_string(),
                    g.distributed().gates.to_string(),
                    g.central().gates.to_string(),
                    g.total().gates.to_string(),
                    g.total().regs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write table1.csv");
    eprintln!("wrote {}", path.display());
}
