//! EXT-16 — latency *distributions*, not just means.
//!
//! Fig. 12 plots mean queueing delay; tails decide application-level
//! deadlines. This experiment exports the full empirical CDF per scheduler
//! at one load point and prints the deciles.
//!
//! Usage: `cargo run --release -p lcf-bench --bin latency_cdf [--quick] [--load L]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::run_sim_with_stats;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xF0);
    let load: f64 = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--load")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.9)
    };
    let (warmup, measure) = if quick {
        (10_000, 40_000)
    } else {
        (50_000, 200_000)
    };

    eprintln!("latency_cdf: 16 ports, load {load}, seed={seed}");
    let models = ModelKind::figure12_lineup();
    let quantiles = [0.5, 0.9, 0.99, 0.999];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for model in &models {
        let cfg = SimConfig {
            model: *model,
            load,
            warmup_slots: warmup,
            measure_slots: measure,
            seed,
            ..SimConfig::paper_default()
        };
        let (_, stats) = run_sim_with_stats(&cfg);
        let mut row = vec![model.name().to_string()];
        for &q in &quantiles {
            row.push(stats.latency_quantile(q).to_string());
        }
        rows.push(row);
        for point in stats.latency_cdf() {
            csv_rows.push(vec![
                model.name().to_string(),
                point.value.to_string(),
                format!("{}", point.fraction),
                // The final CDF point of an overflowing histogram is a lower
                // bound, not an observed delay; plotting scripts can filter.
                u8::from(point.overflow).to_string(),
            ]);
        }
    }

    let mut headers = vec!["model".to_string()];
    headers.extend(quantiles.iter().map(|q| format!("p{}", q * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-16 — queueing delay quantiles [slots] at load {load}");
    println!("{}", ascii_table(&header_refs, &rows));

    let dir = cli::results_dir();
    let path = dir.join("latency_cdf.csv");
    write_csv(
        &path,
        &["model", "delay_slots", "cum_fraction", "overflow"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {} (full CDFs)", path.display());
}
