//! EXT-9 — fabric cost: crossbar vs Clos crosspoints, and routing checks.
//!
//! The paper's switch model admits any non-blocking fabric (Sec. 2). This
//! experiment shows where a 3-stage Clos network starts beating the `n²`
//! crossbar, and verifies that LCF matchings route through a rearrangeably
//! non-blocking Clos without internal collisions.
//!
//! Usage: `cargo run --release -p lcf-bench --bin clos_cost`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_core::lcf::CentralLcf;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_fabric::clos::ClosNetwork;
use lcf_fabric::cost::{comparison, crossbar_crosspoints};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = cli::seed_arg().unwrap_or(0xE9);
    let ns = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024];

    println!("EXT-9 — crosspoint cost: crossbar vs best rearrangeable Clos");
    let rows = comparison(&ns);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.crossbar.to_string(),
                r.clos.to_string(),
                r.best
                    .map(|b| format!("C({}, {}, {})", b.m, b.k, b.r))
                    .unwrap_or_else(|| "crossbar".into()),
                format!("{:.2}x", r.crossbar as f64 / r.clos as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["n", "crossbar", "clos", "best C(m,k,r)", "saving"],
            &table_rows
        )
    );

    // Routing validation: 1000 LCF matchings through a 64-port Clos.
    let n = 64;
    let net = ClosNetwork::rearrangeable_for_ports(n);
    let mut sched = CentralLcf::with_round_robin(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut routed = 0usize;
    let mut connections = 0usize;
    for _ in 0..1_000 {
        let requests = RequestMatrix::random(n, 0.5, &mut rng);
        let matching = sched.schedule(&requests);
        let route = net
            .route(&matching)
            .expect("rearrangeable Clos routes every matching");
        assert!(route.verify(), "internal link collision");
        routed += 1;
        connections += route.size();
    }
    println!(
        "routed {routed} LCF schedules ({connections} connections) through C({}, {}, {}) with zero internal collisions",
        net.m, net.k, net.r
    );
    println!(
        "({}-port crossbar: {} crosspoints; this Clos: {} crosspoints)",
        n,
        crossbar_crosspoints(n),
        net.crosspoints()
    );

    let dir = cli::results_dir();
    let path = dir.join("clos_cost.csv");
    write_csv(
        &path,
        &["n", "crossbar_crosspoints", "clos_crosspoints"],
        &rows
            .iter()
            .map(|r| vec![r.n.to_string(), r.crossbar.to_string(), r.clos.to_string()])
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
