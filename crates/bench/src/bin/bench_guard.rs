//! `bench_guard` — asserts that a telemetry-off build of the central LCF
//! scheduler is still in the same performance class as the committed
//! baseline (`results/BENCH_schedulers.json`).
//!
//! The telemetry layer is feature-gated and must compile to no-ops when the
//! `telemetry` feature is off. A perf regression here would mean the gating
//! leaked work (or allocation) into the hot scheduling path. This guard is
//! deliberately coarse — CI machines are noisy, so the tolerance is a
//! multiple of the baseline, not a percentage — but it catches the failure
//! mode that matters: an accidental order-of-magnitude slowdown.
//!
//! ```text
//! cargo run --release -p lcf-bench --bin bench_guard
//! ```
//!
//! Exits non-zero iff any measured median exceeds `TOLERANCE x` baseline.

#![forbid(unsafe_code)]

use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Allowed slack over the committed baseline median. The baseline was
/// recorded under criterion on an idle machine; this guard runs a cruder
/// timer on whatever CI hands us (observed ~3-4x on slow shared VMs), so
/// anything under 8x is "same class" — the target failure mode is an
/// accidental order-of-magnitude slowdown, not percent-level drift.
const TOLERANCE: f64 = 8.0;

/// Calls per timing sample; large enough that one sample is ~1 ms.
const CALLS_PER_SAMPLE: usize = 2_000;

/// Timing samples per density; the median of these is compared.
const SAMPLES: usize = 21;

fn main() {
    let baseline_path = baseline_path();
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_guard: cannot read {}: {e}", baseline_path.display());
            eprintln!(
                "bench_guard: regenerate the baseline from the workspace root with:\n  \
                 CRITERION_JSON=$PWD/results/BENCH_schedulers.json \
                 cargo bench -p lcf-bench --bench schedulers"
            );
            std::process::exit(2);
        }
    };

    let mut failures = 0usize;
    for density in [0.25, 0.75] {
        let id = format!("schedule_n16/lcf_central/d{density}");
        let Some(baseline_ns) = ns_median_for(&baseline, &id) else {
            eprintln!("bench_guard: baseline entry `{id}` not found in BENCH_schedulers.json");
            failures += 1;
            continue;
        };
        let measured_ns = measure_lcf_central(16, density);
        let limit = baseline_ns * TOLERANCE;
        let verdict = if measured_ns <= limit { "ok" } else { "FAIL" };
        println!(
            "bench_guard: {id}  baseline {baseline_ns:8.1} ns  measured {measured_ns:8.1} ns  \
             limit {limit:8.1} ns  {verdict}"
        );
        if measured_ns > limit {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("bench_guard: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("bench_guard: all checks passed (tolerance {TOLERANCE}x)");
}

/// Median ns per `schedule()` call for central LCF at the given density,
/// mirroring the pool setup of the `schedule_n16` criterion group.
fn measure_lcf_central(n: usize, density: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let pool: Vec<RequestMatrix> = (0..64)
        .map(|_| RequestMatrix::random(n, density, &mut rng))
        .collect();
    let mut sched = SchedulerKind::LcfCentral.build(n, 4, 11);

    // Warm caches and branch predictors before sampling.
    let mut idx = 0usize;
    for _ in 0..CALLS_PER_SAMPLE {
        let m = sched.schedule(&pool[idx % pool.len()]);
        std::hint::black_box(m.size());
        idx += 1;
    }

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..CALLS_PER_SAMPLE {
                let m = sched.schedule(&pool[idx % pool.len()]);
                std::hint::black_box(m.size());
                idx += 1;
            }
            start.elapsed().as_nanos() as f64 / CALLS_PER_SAMPLE as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Extracts `ns_median` for the result entry with the given id from the
/// criterion JSON export. Hand-rolled to keep the bench crate
/// dependency-free: finds the quoted id, then the next `"ns_median"` key
/// within that entry. Tolerates arbitrary whitespace after colons.
fn ns_median_for(json: &str, id: &str) -> Option<f64> {
    let id_quoted = format!("\"{id}\"");
    let at = json.find(&id_quoted)?;
    let rest = &json[at + id_quoted.len()..];
    // Entries are flat objects, so the matching median precedes the next id.
    let entry_end = rest.find("\"id\"").unwrap_or(rest.len());
    let entry = &rest[..entry_end];
    let m = entry.find("\"ns_median\"")?;
    let after_key = &entry[m + "\"ns_median\"".len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
    let num = after_colon
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect::<String>();
    num.parse().ok()
}

/// `results/BENCH_schedulers.json` relative to the workspace root (the
/// manifest dir of this crate is `<root>/crates/bench`).
fn baseline_path() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(|root| root.join("results/BENCH_schedulers.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("results/BENCH_schedulers.json"))
}
