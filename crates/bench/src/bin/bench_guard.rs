//! `bench_guard` — asserts that a telemetry-off build of the central LCF
//! scheduler is still in the same performance class as the committed
//! baseline (`results/BENCH_schedulers.json`), and that the heavy-traffic
//! fast path keeps its committed speedup over the legacy paths.
//!
//! The telemetry layer is feature-gated and must compile to no-ops when the
//! `telemetry` feature is off. A perf regression here would mean the gating
//! leaked work (or allocation) into the hot scheduling path. This guard is
//! deliberately coarse — CI machines are noisy, so the tolerance is a
//! multiple of the baseline, not a percentage — but it catches the failure
//! mode that matters: an accidental order-of-magnitude slowdown.
//!
//! The `sim_heavy` checks work differently: the committed baseline records
//! all three heavy-traffic variants (`reference`, `legacy`, `fast`) from
//! the *same* criterion run, so their ratios are machine-independent. The
//! guard asserts the committed ratios (fast >= 3x reference slot rate,
//! fast never slower than legacy) and then re-measures the fast-vs-reference
//! ratio live with a cruder timer and a wider margin.
//!
//! ```text
//! cargo run --release -p lcf-bench --bin bench_guard
//! ```
//!
//! Exits non-zero iff any measured median exceeds `TOLERANCE x` baseline or
//! any `sim_heavy` ratio check fails.

#![forbid(unsafe_code)]

use lcf_core::bitkern::Backend;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
// lint:allow(wall-clock): bench_guard's whole purpose is live wall-clock re-measure
use std::time::Instant;

/// Allowed slack over the committed baseline median. The baseline was
/// recorded under criterion on an idle machine; this guard runs a cruder
/// timer on whatever CI hands us (observed ~3-4x on slow shared VMs), so
/// anything under 8x is "same class" — the target failure mode is an
/// accidental order-of-magnitude slowdown, not percent-level drift.
const TOLERANCE: f64 = 8.0;

/// Calls per timing sample; large enough that one sample is ~1 ms.
const CALLS_PER_SAMPLE: usize = 2_000;

/// Timing samples per density; the median of these is compared.
const SAMPLES: usize = 21;

fn main() {
    let baseline_path = baseline_path();
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_guard: cannot read {}: {e}", baseline_path.display());
            eprintln!(
                "bench_guard: regenerate the baseline from the workspace root with:\n  \
                 CRITERION_JSON=$PWD/results/BENCH_schedulers.json \
                 cargo bench -p lcf-bench --bench schedulers"
            );
            std::process::exit(2);
        }
    };

    let mut failures = 0usize;
    for density in [0.25, 0.75] {
        let id = format!("schedule_n16/lcf_central/d{density}");
        let Some(baseline_ns) = ns_median_for(&baseline, &id) else {
            eprintln!("bench_guard: baseline entry `{id}` not found in BENCH_schedulers.json");
            failures += 1;
            continue;
        };
        let measured_ns = measure_lcf_central(16, density);
        let limit = baseline_ns * TOLERANCE;
        let verdict = if measured_ns <= limit { "ok" } else { "FAIL" };
        println!(
            "bench_guard: {id}  baseline {baseline_ns:8.1} ns  measured {measured_ns:8.1} ns  \
             limit {limit:8.1} ns  {verdict}"
        );
        if measured_ns > limit {
            failures += 1;
        }
    }

    failures += check_sim_heavy(&baseline);

    if failures > 0 {
        eprintln!("bench_guard: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("bench_guard: all checks passed (tolerance {TOLERANCE}x)");
}

/// Committed fast-vs-reference speedup floor: the baseline was recorded
/// with all three variants in one criterion run, so this ratio is a
/// property of the code, not of the machine that recorded it.
const HEAVY_RATIO_BASELINE: f64 = 3.0;

/// Live re-measurement floor for the same ratio; wider because the guard's
/// crude timer runs on noisy CI machines. A fast path that has collapsed
/// to parity with the scalar reference fails this even on a bad VM.
const HEAVY_RATIO_LIVE: f64 = 2.0;

/// Heavy-traffic slot loop guards (the `sim_heavy` criterion group):
/// baseline ratio checks plus a live fast-vs-reference re-measurement.
fn check_sim_heavy(baseline: &str) -> usize {
    let id = |variant: &str| format!("sim_heavy/lcf_central_n32_load0.99/{variant}");
    let mut entries = [0.0f64; 3];
    for (slot, variant) in entries.iter_mut().zip(["reference", "legacy", "fast"]) {
        match ns_median_for(baseline, &id(variant)) {
            Some(ns) => *slot = ns,
            None => {
                eprintln!(
                    "bench_guard: baseline entry `{}` not found in BENCH_schedulers.json",
                    id(variant)
                );
                return 1;
            }
        }
    }
    let [reference_ns, legacy_ns, fast_ns] = entries;
    let mut failures = 0usize;

    let committed_ratio = reference_ns / fast_ns;
    let verdict = if committed_ratio >= HEAVY_RATIO_BASELINE {
        "ok"
    } else {
        failures += 1;
        "FAIL"
    };
    println!(
        "bench_guard: sim_heavy committed fast speedup {committed_ratio:.2}x over reference \
         (floor {HEAVY_RATIO_BASELINE}x)  {verdict}"
    );

    let verdict = if fast_ns <= legacy_ns {
        "ok"
    } else {
        failures += 1;
        "FAIL"
    };
    println!(
        "bench_guard: sim_heavy committed fast {fast_ns:.0} ns <= legacy {legacy_ns:.0} ns \
         per iter  {verdict}"
    );

    let live_fast = measure_heavy_slot(Backend::Bitset, true);
    let live_reference = measure_heavy_slot(Backend::Scalar, false);
    let live_ratio = live_reference / live_fast;
    let verdict = if live_ratio >= HEAVY_RATIO_LIVE {
        "ok"
    } else {
        failures += 1;
        "FAIL"
    };
    println!(
        "bench_guard: sim_heavy live reference {live_reference:8.1} ns/slot  fast \
         {live_fast:8.1} ns/slot  ratio {live_ratio:.2}x (floor {HEAVY_RATIO_LIVE}x)  {verdict}"
    );
    failures
}

/// Median ns per slot of the heavy-traffic loop (`lcf_central`, n = 32,
/// load 0.99), mirroring the `sim_heavy` criterion group with the guard's
/// cruder timer.
fn measure_heavy_slot(backend: Backend, fast_traffic: bool) -> f64 {
    use lcf_sim::stats::SimStats;
    use lcf_sim::switch::{IqSwitch, QueueMode};
    use lcf_sim::traffic::{Bernoulli, DestPattern, FastBernoulli, Traffic};

    const SLOTS_PER_SAMPLE: u64 = 2_000;
    const HEAVY_SAMPLES: usize = 7;

    let n = 32usize;
    let sched = SchedulerKind::LcfCentral
        .build_with_backend(n, 4, 2, backend)
        .0;
    let mut sw = IqSwitch::new(n, sched, QueueMode::Voq { cap: 256 }, 1_000);
    let mut traffic: Box<dyn Traffic> = if fast_traffic {
        Box::new(FastBernoulli::new(n, 0.99, DestPattern::Uniform))
    } else {
        Box::new(Bernoulli::new(n, 0.99, DestPattern::Uniform))
    };
    let mut rng = StdRng::seed_from_u64(1);
    let mut stats = SimStats::new(n, 0, 4096);
    let mut slot = 0u64;

    // Warm-up fills the queues to the load-0.99 steady state.
    for _ in 0..SLOTS_PER_SAMPLE {
        sw.step(slot, traffic.as_mut(), &mut rng, &mut stats);
        slot += 1;
    }

    let mut samples: Vec<f64> = (0..HEAVY_SAMPLES)
        .map(|_| {
            // lint:allow(wall-clock): timing the hot slot loop is the measurement
            let start = Instant::now();
            for _ in 0..SLOTS_PER_SAMPLE {
                sw.step(slot, traffic.as_mut(), &mut rng, &mut stats);
                slot += 1;
            }
            start.elapsed().as_nanos() as f64 / SLOTS_PER_SAMPLE as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Median ns per `schedule()` call for central LCF at the given density,
/// mirroring the pool setup of the `schedule_n16` criterion group.
fn measure_lcf_central(n: usize, density: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let pool: Vec<RequestMatrix> = (0..64)
        .map(|_| RequestMatrix::random(n, density, &mut rng))
        .collect();
    let mut sched = SchedulerKind::LcfCentral.build(n, 4, 11);

    // Warm caches and branch predictors before sampling.
    let mut idx = 0usize;
    for _ in 0..CALLS_PER_SAMPLE {
        let m = sched.schedule(&pool[idx % pool.len()]);
        std::hint::black_box(m.size());
        idx += 1;
    }

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            // lint:allow(wall-clock): timing the scheduler calls is the measurement
            let start = Instant::now();
            for _ in 0..CALLS_PER_SAMPLE {
                let m = sched.schedule(&pool[idx % pool.len()]);
                std::hint::black_box(m.size());
                idx += 1;
            }
            start.elapsed().as_nanos() as f64 / CALLS_PER_SAMPLE as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Extracts `ns_median` for the result entry with the given id from the
/// criterion JSON export. Hand-rolled to keep the bench crate
/// dependency-free: finds the quoted id, then the next `"ns_median"` key
/// within that entry. Tolerates arbitrary whitespace after colons.
fn ns_median_for(json: &str, id: &str) -> Option<f64> {
    let id_quoted = format!("\"{id}\"");
    let at = json.find(&id_quoted)?;
    let rest = &json[at + id_quoted.len()..];
    // Entries are flat objects, so the matching median precedes the next id.
    let entry_end = rest.find("\"id\"").unwrap_or(rest.len());
    let entry = &rest[..entry_end];
    let m = entry.find("\"ns_median\"")?;
    let after_key = &entry[m + "\"ns_median\"".len()..];
    let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
    let num = after_colon
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect::<String>();
    num.parse().ok()
}

/// `results/BENCH_schedulers.json` relative to the workspace root (the
/// manifest dir of this crate is `<root>/crates/bench`).
fn baseline_path() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(|root| root.join("results/BENCH_schedulers.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("results/BENCH_schedulers.json"))
}
