//! Heavy-traffic delay scaling (EXT): mean queueing delay vs `1/(1−ρ)` at
//! loads 0.98 / 0.99 / 0.995 with replication confidence intervals.
//!
//! Heavy-traffic theory predicts the mean delay of a work-conserving switch
//! grows like `1/(1−ρ)` as the offered load ρ approaches capacity; the
//! interesting question is the *coefficient* each scheduler pays. This
//! experiment drives the fast-path stack end to end: `FastBernoulli`
//! traffic (one keystream word per input per slot at n = 16),
//! `run_replicated` for independent replications with 95% CIs, and the
//! word-parallel matching kernels — exactly the configuration the
//! `sim_heavy` bench group and `bench_guard` protect.
//!
//! Queues are sized (PQ 20 000, VOQ 10 000) so that no packet is dropped at
//! any of the three loads — delay scaling is only meaningful on a loss-free
//! horizon; the run asserts zero loss.
//!
//! Usage: `cargo run --release -p lcf-bench --bin heavy_traffic [--quick] [--seed N]`
//!
//! `--quick` shrinks the horizon and replication count for smoke tests
//! (CI runs it this way); the committed `results/heavy_traffic.csv` comes
//! from the full run: 8 replications × 10⁶ measured slots per point.

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::{ModelKind, SimConfig, TrafficKind};
use lcf_sim::runner::run_replicated;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0x4EA7);
    let (warmup, measure, replications) = if quick {
        (10_000u64, 50_000u64, 3usize)
    } else {
        (200_000u64, 1_000_000u64, 8usize)
    };
    let loads = [0.98, 0.99, 0.995];
    let models = [
        SchedulerKind::LcfCentral,
        SchedulerKind::LcfCentralRr,
        SchedulerKind::Islip,
        SchedulerKind::Wavefront,
    ];
    eprintln!(
        "heavy_traffic: n=16 uniform FastBernoulli, {replications} replications x {measure} \
         slots (warmup {warmup}), seed={seed}{}",
        if quick { " (quick mode)" } else { "" }
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for kind in models {
        for load in loads {
            let cfg = SimConfig {
                model: ModelKind::Scheduler(kind),
                load,
                traffic: TrafficKind::FastBernoulli,
                // Loss-free horizon: delay scaling is meaningless once the
                // queues clip the tail.
                pq_cap: 20_000,
                voq_cap: 10_000,
                warmup_slots: warmup,
                measure_slots: measure,
                seed,
                // p99 at load .995 exceeds paper_default's 4096 bucket cap.
                max_latency_bucket: 65_536,
                ..SimConfig::paper_default()
            };
            let rep = run_replicated(&cfg, replications);
            assert_eq!(
                rep.loss_rate.mean,
                0.0,
                "{} at load {load}: packets dropped — queues undersized",
                kind.name()
            );
            let scale = 1.0 / (1.0 - load);
            rows.push(vec![
                kind.name().to_string(),
                format!("{load:.3}"),
                format!("{scale:.0}"),
                format!(
                    "{:.2} ± {:.2}",
                    rep.mean_latency.mean, rep.mean_latency.half_width
                ),
                format!(
                    "{:.1} ± {:.1}",
                    rep.p99_latency.mean, rep.p99_latency.half_width
                ),
                format!("{:.2}", rep.mean_latency.mean / scale),
                format!("{:.4}", rep.throughput.mean),
            ]);
            csv_rows.push(vec![
                kind.name().to_string(),
                format!("{load}"),
                format!("{scale}"),
                f2(rep.mean_latency.mean),
                f2(rep.mean_latency.half_width),
                f2(rep.p99_latency.mean),
                f2(rep.p99_latency.half_width),
                format!("{:.4}", rep.mean_latency.mean / scale),
                format!("{:.5}", rep.throughput.mean),
                format!("{:.5}", rep.throughput.half_width),
                f2(rep.mean_queue_len.mean),
                format!("{replications}"),
                format!("{measure}"),
            ]);
            eprintln!(
                "  {} load {load}: {:.2} ± {:.2} slots",
                kind.name(),
                rep.mean_latency.mean,
                rep.mean_latency.half_width
            );
        }
    }

    println!("\nHeavy-traffic delay scaling — n=16, uniform Bernoulli (fast path)");
    println!("(delay/(1/(1-rho)) constant across loads ⇒ the scheduler obeys 1/(1-rho) scaling)");
    println!(
        "{}",
        ascii_table(
            &[
                "model",
                "load",
                "1/(1-rho)",
                "delay [slots] ±95%",
                "p99 [slots] ±95%",
                "delay·(1-rho)",
                "throughput",
            ],
            &rows
        )
    );

    let dir = cli::results_dir();
    let path = dir.join("heavy_traffic.csv");
    write_csv(
        &path,
        &[
            "model",
            "load",
            "inv_one_minus_rho",
            "mean_delay_slots",
            "mean_delay_ci95",
            "p99_delay_slots",
            "p99_delay_ci95",
            "delay_times_one_minus_rho",
            "throughput",
            "throughput_ci95",
            "mean_queue_len",
            "replications",
            "measure_slots",
        ],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
