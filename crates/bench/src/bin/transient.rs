//! EXT-18 — transient dynamics: overload onset and recovery.
//!
//! Fig. 12 is a steady-state picture. This experiment applies a load step —
//! overload (1.0) for the first half, then 0.5 — and records the backlog
//! trajectory: how fast queues fill per scheduler, and how fast they drain
//! once the overload ends. Schedulers with larger matchings drain faster;
//! head-of-line blocking never drains at all until the backlog clears.
//!
//! Usage: `cargo run --release -p lcf-bench --bin transient [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::config::SimConfig;
use lcf_sim::stats::SimStats;
use lcf_sim::switch::{IqSwitch, QueueMode};
use lcf_sim::traffic::{Bernoulli, DestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xF2);
    let cfg = SimConfig::paper_default();
    let n = cfg.n;
    let phase = if quick { 5_000u64 } else { 20_000 };
    let sample_every = phase / 10;

    let kinds = [
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::Islip,
        SchedulerKind::Fifo,
    ];

    eprintln!("transient: load 1.0 for {phase} slots then 0.5 for {phase}, {n} ports, seed={seed}");
    let mut csv_rows = Vec::new();
    let mut rows = Vec::new();
    let mut sample_slots: Vec<u64> = Vec::new();

    for kind in kinds {
        let mode = if kind.wants_fifo_queues() {
            QueueMode::SingleFifo { cap: cfg.voq_cap }
        } else {
            QueueMode::Voq { cap: cfg.voq_cap }
        };
        let mut sw = IqSwitch::new(n, kind.build(n, cfg.iterations, seed), mode, cfg.pq_cap);
        let mut overload = Bernoulli::new(n, 1.0, DestPattern::Uniform);
        let mut normal = Bernoulli::new(n, 0.5, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = SimStats::new(n, 0, cfg.max_latency_bucket);

        let mut samples = Vec::new();
        let mut drained_at: Option<u64> = None;
        for slot in 0..2 * phase {
            let traffic: &mut Bernoulli = if slot < phase {
                &mut overload
            } else {
                &mut normal
            };
            sw.step(slot, traffic, &mut rng, &mut stats);
            if slot % sample_every == sample_every - 1 {
                samples.push(sw.buffered_packets());
                if kind == kinds[0] {
                    sample_slots.push(slot + 1);
                }
                csv_rows.push(vec![
                    kind.name().to_string(),
                    (slot + 1).to_string(),
                    sw.buffered_packets().to_string(),
                ]);
            }
            if slot >= phase && drained_at.is_none() && sw.buffered_packets() < n {
                drained_at = Some(slot - phase);
            }
        }

        let mut row = vec![kind.name().to_string()];
        row.extend(samples.iter().map(|b| b.to_string()));
        row.push(
            drained_at
                .map(|d| format!("{d}"))
                .unwrap_or_else(|| "never".into()),
        );
        rows.push(row);
    }

    let mut headers = vec!["scheduler".to_string()];
    headers.extend(sample_slots.iter().map(|s| format!("@{s}")));
    headers.push("drain [slots]".to_string());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-18 — buffered packets over a 1.0 -> 0.5 load step (drain = slots after the step until backlog < n)");
    println!("{}", ascii_table(&header_refs, &rows));

    let dir = cli::results_dir();
    let path = dir.join("transient.csv");
    write_csv(&path, &["scheduler", "slot", "buffered"], &csv_rows).expect("write csv");
    eprintln!("wrote {}", path.display());
}
