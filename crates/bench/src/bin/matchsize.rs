//! EXT-1 — matching quality: how close each scheduler's per-slot matching
//! comes to the Hopcroft–Karp maximum, across request densities.
//!
//! This quantifies the paper's core claim mechanically: prioritizing
//! least-choice requesters maximizes the number of switch connections.
//!
//! Usage: `cargo run --release -p lcf-bench --bin matchsize [--quick] [--seed N]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f3, write_csv};
use lcf_core::maxsize::MaxSizeMatcher;
use lcf_core::registry::SchedulerKind;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xE1);
    let n = 16;
    let trials = if quick { 200 } else { 2_000 };
    let densities = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8];
    eprintln!("matchsize: n={n}, {trials} random matrices per density, seed={seed}");

    let schedulers = SchedulerKind::VOQ_PRACTICAL;
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();

    for kind in schedulers {
        let mut sched = kind.build(n, 4, seed);
        let mut oracle = MaxSizeMatcher::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut row = vec![kind.name().to_string()];
        for &d in &densities {
            let mut ratio_sum = 0.0;
            let mut counted = 0u32;
            for _ in 0..trials {
                let requests = RequestMatrix::random(n, d, &mut rng);
                let max = oracle.max_matching_size(&requests);
                if max == 0 {
                    continue;
                }
                let got = sched.schedule(&requests).size();
                ratio_sum += got as f64 / max as f64;
                counted += 1;
            }
            let mean = ratio_sum / counted as f64;
            row.push(f3(mean));
            csv_rows.push(vec![
                kind.name().to_string(),
                format!("{d}"),
                format!("{mean}"),
            ]);
        }
        rows.push(row);
    }

    let mut headers = vec!["scheduler".to_string()];
    headers.extend(densities.iter().map(|d| format!("d={d}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-1 — mean matching size / maximum matching size");
    println!("{}", ascii_table(&header_refs, &rows));
    println!("(1.000 = always maximum-size; every scheduler here is maximal,\n so deficits come from greedy choices that block augmenting paths)");

    let dir = cli::results_dir();
    let path = dir.join("matchsize.csv");
    write_csv(&path, &["scheduler", "density", "ratio"], &csv_rows).expect("write csv");
    eprintln!("wrote {}", path.display());
}
