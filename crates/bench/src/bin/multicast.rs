//! EXT-17 — multicast fanout splitting: residue concentration vs
//! distribution.
//!
//! A per-input multicast queue feeds the fanout-splitting scheduler
//! (`lcf-core::multicast`); cells depart when every branch is served.
//! Compares the concentrating (LCF-flavored, smallest-residual-first) and
//! distributing (per-output round-robin) policies across loads.
//!
//! Usage: `cargo run --release -p lcf-bench --bin multicast [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, f3, write_csv};
use lcf_core::bitmat::BitMatrix;
use lcf_core::multicast::{FanoutSplit, McastPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

#[derive(Clone, Copy)]
struct Cell {
    fanout: u16,
    generated_at: u64,
}

struct Outcome {
    mean_cell_latency: f64,
    branches_per_slot: f64,
    cells_completed: u64,
    cells_generated: u64,
}

fn run(
    n: usize,
    load: f64,
    mean_fanout: usize,
    policy: McastPolicy,
    slots: u64,
    seed: u64,
) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sched = FanoutSplit::new(n, policy);
    let mut queues: Vec<VecDeque<Cell>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut residual = BitMatrix::new(n);
    let mut hol_loaded = vec![false; n];
    let (mut generated, mut completed, mut branches) = (0u64, 0u64, 0u64);
    let mut latency_sum = 0.0;

    for slot in 0..slots {
        // Arrivals: a multicast cell with a random fanout set.
        for (i, q) in queues.iter_mut().enumerate() {
            if rng.gen_bool(load) && q.len() < 256 {
                let size = rng.gen_range(1..=2 * mean_fanout - 1);
                let mut fanout = 0u16;
                while (fanout.count_ones() as usize) < size {
                    fanout |= 1 << rng.gen_range(0..n);
                }
                q.push_back(Cell {
                    fanout,
                    generated_at: slot,
                });
                let _ = i;
                generated += 1;
            }
        }

        // Load head-of-line cells into the residual matrix.
        for i in 0..n {
            if !hol_loaded[i] {
                if let Some(cell) = queues[i].front() {
                    for j in 0..n {
                        residual.set(i, j, cell.fanout & (1 << j) != 0);
                    }
                    hol_loaded[i] = true;
                }
            }
        }

        let grant = sched.schedule(&residual);
        branches += grant.fanout_served() as u64;
        for (j, &o) in grant.owner.iter().enumerate() {
            if let Some(i) = o {
                residual.set(i, j, false);
            }
        }
        for i in 0..n {
            if hol_loaded[i] && !residual.row_any(i) {
                let cell = queues[i].pop_front().expect("HOL cell exists");
                latency_sum += (slot - cell.generated_at) as f64;
                completed += 1;
                hol_loaded[i] = false;
            }
        }
    }

    Outcome {
        mean_cell_latency: if completed > 0 {
            latency_sum / completed as f64
        } else {
            f64::NAN
        },
        branches_per_slot: branches as f64 / slots as f64,
        cells_completed: completed,
        cells_generated: generated,
    }
}

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xF1);
    let n = 16;
    let slots = if quick { 20_000 } else { 100_000 };
    let mean_fanout = 3;
    let loads = [0.05, 0.1, 0.15, 0.2, 0.25];

    eprintln!("multicast: {n} ports, mean fanout {mean_fanout}, {slots} slots, seed={seed}");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for policy in [McastPolicy::Concentrate, McastPolicy::Distribute] {
        let name = format!("{policy:?}").to_lowercase();
        let mut row = vec![name.clone()];
        for &load in &loads {
            let o = run(n, load, mean_fanout, policy, slots, seed);
            let done = o.cells_completed as f64 / o.cells_generated.max(1) as f64;
            row.push(format!("{} ({})", f2(o.mean_cell_latency), f3(done)));
            csv_rows.push(vec![
                name.clone(),
                format!("{load}"),
                format!("{}", o.mean_cell_latency),
                format!("{}", o.branches_per_slot),
                format!("{done}"),
            ]);
        }
        rows.push(row);
    }

    let mut headers = vec!["policy".to_string()];
    headers.extend(loads.iter().map(|l| format!("{l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-17 — mean multicast cell latency [slots] (completion fraction)");
    println!("{}", ascii_table(&header_refs, &rows));
    println!("(cell loads are per input per slot; mean fanout {mean_fanout} branches per cell)");

    let dir = cli::results_dir();
    let path = dir.join("multicast.csv");
    write_csv(
        &path,
        &[
            "policy",
            "load",
            "cell_latency",
            "branches_per_slot",
            "completion",
        ],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
