//! EXT-8 — the round-robin fairness dial (Sec. 3 "Variations").
//!
//! The paper says the guaranteed per-pair bandwidth fraction can be tuned
//! in `0..b/n` by choosing what the round-robin stage covers each cycle:
//! nothing (pure LCF), a single position, a row, a column, the Fig. 2
//! diagonal, or a fully pre-granted diagonal. This ablation measures what
//! each point on the dial costs (matching size, queueing delay) and buys
//! (worst-pair service fraction on the adversarial pattern).
//!
//! Usage: `cargo run --release -p lcf-bench --bin rr_variants [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, write_csv};
use lcf_core::lcf::{CentralLcf, RrPolicy};
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POLICIES: [RrPolicy; 6] = [
    RrPolicy::None,
    RrPolicy::SinglePosition,
    RrPolicy::Row,
    RrPolicy::Column,
    RrPolicy::Diagonal,
    RrPolicy::PriorityDiagonal,
];

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xE8);
    let n = 16;
    let trials = if quick { 2_000 } else { 20_000 };

    // (a) Throughput cost: mean matching size on dense random requests.
    // (b) Fairness gain: service of a pair pure LCF structurally disfavors.
    //     The victim (requester 2) requests *everything* (maximum NRQ);
    //     every other requester has a single request (minimum NRQ) that
    //     covers its own target. Pure LCF always grants the single-request
    //     competitors, so victim pair (2, 3) is served exactly never —
    //     only the round-robin stage can rescue it.
    let mut adversarial = RequestMatrix::new(n);
    for i in 0..n {
        if i != 2 {
            adversarial.set(i, i, true);
        }
    }
    for j in 0..n {
        adversarial.set(2, j, true);
    }
    let victim = (2usize, 3usize);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for policy in POLICIES {
        // Matching size.
        let mut sched = CentralLcf::with_policy(n, policy);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut size_sum = 0usize;
        for _ in 0..trials {
            let requests = RequestMatrix::random(n, 0.5, &mut rng);
            size_sum += sched.schedule(&requests).size();
        }
        let mean_size = size_sum as f64 / trials as f64;

        // Victim service under adversarial background.
        let mut sched = CentralLcf::with_policy(n, policy);
        let slots = (n * n * 50) as u64;
        let mut victim_grants = 0u64;
        for _ in 0..slots {
            if sched.schedule(&adversarial).output_for(victim.0) == Some(victim.1) {
                victim_grants += 1;
            }
        }
        let victim_frac = victim_grants as f64 / slots as f64;

        let name = CentralLcf::with_policy(n, policy).name().to_string();
        rows.push(vec![
            name.clone(),
            format!("{mean_size:.3}"),
            format!("{victim_frac:.5}"),
            format!("{:.5}", 1.0 / (n * n) as f64),
            format!("{:.5}", 1.0 / n as f64),
        ]);
        csv_rows.push(vec![name, format!("{mean_size}"), format!("{victim_frac}")]);
    }

    println!("\nEXT-8 — round-robin policy dial (n = {n})");
    println!(
        "{}",
        ascii_table(
            &[
                "policy",
                "mean matching size",
                "victim pair fraction",
                "b/n^2",
                "b/n"
            ],
            &rows
        )
    );
    println!("(throughput cost rises and the fairness floor climbs from 0 toward b/n\n as the round-robin stage covers more of the matrix)");

    let dir = cli::results_dir();
    let path = dir.join("rr_variants.csv");
    write_csv(
        &path,
        &["policy", "mean_matching_size", "victim_fraction"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
