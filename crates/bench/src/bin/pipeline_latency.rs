//! EXT-11 — scheduler pipelining: throughput is preserved, latency is not.
//!
//! Sec. 1 of the paper: "Timing requirements can be relaxed with the help
//! of pipelining techniques. By pipelining the scheduler and overlapping
//! scheduling and packet forwarding, packet throughput is optimized. Note
//! that these techniques do not reduce latency and that the scheduling
//! latency adds to the overall switch forwarding latency." This experiment
//! quantifies both halves of that sentence.
//!
//! Usage: `cargo run --release -p lcf-bench --bin pipeline_latency [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, f3, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_sim::cioq::CioqSwitch;
use lcf_sim::config::SimConfig;
use lcf_sim::stats::SimStats;
use lcf_sim::traffic::{Bernoulli, DestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xEB);
    let mut cfg = SimConfig::paper_default();
    cfg.seed = seed;
    let (warmup, measure) = if quick {
        (5_000, 20_000)
    } else {
        (30_000, 120_000)
    };
    let depths = [0usize, 1, 2, 4, 8];
    let load = 0.85;

    eprintln!("pipeline_latency: 16-port CIOQ, lcf_central_rr, load {load}, seed={seed}");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &depth in &depths {
        let n = cfg.n;
        let mut sw = CioqSwitch::new(
            n,
            SchedulerKind::LcfCentralRr.build(n, cfg.iterations, seed),
            1,
            depth,
            cfg.pq_cap,
            cfg.voq_cap,
            cfg.outbuf_cap,
        );
        let mut traffic = Bernoulli::new(n, load, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut warm = SimStats::new(n, 0, cfg.max_latency_bucket);
        for slot in 0..warmup {
            sw.step(slot, &mut traffic, &mut rng, &mut warm);
        }
        let mut stats = SimStats::new(n, warmup, cfg.max_latency_bucket);
        for slot in warmup..warmup + measure {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let throughput = stats.delivered as f64 / (measure as f64 * n as f64);
        rows.push(vec![
            depth.to_string(),
            f2(stats.mean_latency()),
            f3(throughput),
            sw.wasted_grants().to_string(),
        ]);
        csv_rows.push(vec![
            depth.to_string(),
            format!("{}", stats.mean_latency()),
            format!("{throughput}"),
            sw.wasted_grants().to_string(),
        ]);
    }

    println!("\nEXT-11 — scheduling pipeline depth at load {load}");
    println!(
        "{}",
        ascii_table(
            &[
                "pipeline depth [slots]",
                "mean delay",
                "throughput",
                "stale grants"
            ],
            &rows
        )
    );
    println!("(each slot of scheduler pipeline adds ~a slot of delay; throughput\n holds because scheduling overlaps forwarding — the paper's Sec. 1 point)");

    let dir = cli::results_dir();
    let path = dir.join("pipeline_latency.csv");
    write_csv(
        &path,
        &["depth", "latency_slots", "throughput", "stale_grants"],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
