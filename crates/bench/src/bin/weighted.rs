//! EXT-14 — least choice vs longest queue vs oldest cell.
//!
//! LCF optimizes *matching size* using only the request pattern; LQF and
//! OCF optimize backlog/age using weights. This experiment runs all three
//! on the Fig. 12 switch under uniform, bursty and diagonal traffic and
//! reports mean/p99 delay — the cases where weight information starts
//! paying for itself.
//!
//! Usage: `cargo run --release -p lcf-bench --bin weighted [--quick]`

#![forbid(unsafe_code)]

use lcf_bench::cli;
use lcf_bench::table::{ascii_table, f2, write_csv};
use lcf_core::registry::SchedulerKind;
use lcf_core::weighted::GreedyWeight;
use lcf_sim::config::SimConfig;
use lcf_sim::stats::SimStats;
use lcf_sim::switch::{IqSwitch, QueueMode, WeightSource};
use lcf_sim::traffic::{Bernoulli, DestPattern, OnOffBursty, Traffic};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    mean: f64,
    p99: u64,
    throughput: f64,
}

fn run(sw: &mut IqSwitch, traffic: &mut dyn Traffic, cfg: &SimConfig) -> Outcome {
    let n = cfg.n;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut warm = SimStats::new(n, 0, cfg.max_latency_bucket);
    for slot in 0..cfg.warmup_slots {
        sw.step(slot, traffic, &mut rng, &mut warm);
    }
    let start = cfg.warmup_slots;
    let mut stats = SimStats::new(n, start, cfg.max_latency_bucket);
    for slot in start..start + cfg.measure_slots {
        sw.step(slot, traffic, &mut rng, &mut stats);
    }
    Outcome {
        mean: stats.mean_latency(),
        p99: stats.latency_quantile(0.99),
        throughput: stats.delivered as f64 / (cfg.measure_slots as f64 * n as f64),
    }
}

fn build_switch(name: &str, cfg: &SimConfig) -> IqSwitch {
    let n = cfg.n;
    match name {
        "lqf" => IqSwitch::new_weighted(
            n,
            Box::new(GreedyWeight::new(n, "lqf")),
            WeightSource::QueueLength,
            cfg.voq_cap,
            cfg.pq_cap,
        ),
        "ocf" => IqSwitch::new_weighted(
            n,
            Box::new(GreedyWeight::new(n, "ocf")),
            WeightSource::HolAge,
            cfg.voq_cap,
            cfg.pq_cap,
        ),
        _ => IqSwitch::new(
            n,
            SchedulerKind::from_name(name)
                .expect("known scheduler")
                .build(n, cfg.iterations, cfg.seed),
            QueueMode::Voq { cap: cfg.voq_cap },
            cfg.pq_cap,
        ),
    }
}

fn main() {
    let quick = cli::quick_mode();
    let seed = cli::seed_arg().unwrap_or(0xEE);
    let mut cfg = SimConfig::paper_default();
    cfg.seed = seed;
    if quick {
        cfg.warmup_slots = 10_000;
        cfg.measure_slots = 40_000;
    } else {
        cfg.warmup_slots = 40_000;
        cfg.measure_slots = 160_000;
    }

    let contenders = ["lcf_central_rr", "lqf", "ocf", "islip"];
    let scenarios: Vec<(&str, f64)> = vec![
        ("uniform", 0.9),
        ("uniform", 0.99),
        ("bursty16", 0.8),
        ("diagonal", 0.9),
    ];

    eprintln!("weighted: 16 ports, seed={seed}");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for name in contenders {
        let mut row = vec![name.to_string()];
        for &(scenario, load) in &scenarios {
            let mut sw = build_switch(name, &cfg);
            let mut traffic: Box<dyn Traffic> = match scenario {
                "bursty16" => Box::new(OnOffBursty::new(cfg.n, load, 16.0, DestPattern::Uniform)),
                "diagonal" => Box::new(Bernoulli::new(cfg.n, load, DestPattern::Diagonal)),
                _ => Box::new(Bernoulli::new(cfg.n, load, DestPattern::Uniform)),
            };
            let o = run(&mut sw, traffic.as_mut(), &cfg);
            row.push(format!("{} / p99 {}", f2(o.mean), o.p99));
            csv_rows.push(vec![
                name.to_string(),
                scenario.to_string(),
                format!("{load}"),
                format!("{}", o.mean),
                o.p99.to_string(),
                format!("{}", o.throughput),
            ]);
        }
        rows.push(row);
    }

    let mut headers = vec!["scheduler".to_string()];
    headers.extend(scenarios.iter().map(|(s, l)| format!("{s}@{l}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\nEXT-14 — mean delay [slots] / p99: pattern-based LCF vs weighted LQF/OCF");
    println!("{}", ascii_table(&header_refs, &rows));
    println!("(LQF/OCF pay O(n^2 log n) per slot and need queue/age state on the\n wire; the interesting question is where that buys delay back)");

    let dir = cli::results_dir();
    let path = dir.join("weighted.csv");
    write_csv(
        &path,
        &[
            "scheduler",
            "scenario",
            "load",
            "mean_delay",
            "p99",
            "throughput",
        ],
        &csv_rows,
    )
    .expect("write csv");
    eprintln!("wrote {}", path.display());
}
